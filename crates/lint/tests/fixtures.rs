//! Fixture-corpus integration tests: every rule firing and passing, the
//! golden diagnostic set, and the mutation checks (deleting a single
//! `tick(` or `// invariant:` must turn the lint red).

use rbq_lint::{check_workspace, run, Context, SourceFile};
use std::path::Path;

/// (fixture file, pretend workspace path) pairs. The pretend paths place
/// fixtures inside the fixture context's serving crates; none contain a
/// test-path marker, so the files are linted as production code.
const FIXTURES: &[(&str, &str)] = &[
    ("fx_serving.rs", "crates/core/src/fx_serving.rs"),
    ("fx_lock.rs", "crates/engine/src/fx_lock.rs"),
    ("fx_kernel.rs", "crates/core/src/fx_kernel.rs"),
    ("fx_hot.rs", "crates/core/src/fx_hot.rs"),
    ("fx_faultpoint.rs", "crates/core/src/fx_faultpoint.rs"),
    ("fx_wire.rs", "crates/engine/src/fx_wire.rs"),
    ("fx_snapshot.rs", "crates/core/src/fx_snapshot.rs"),
    ("fx_wal.rs", "crates/core/src/fx_wal.rs"),
    ("fx_allows.rs", "crates/core/src/fx_allows.rs"),
];

fn fixture_ctx() -> Context {
    Context {
        serving_prefixes: vec!["crates/core/src/".into(), "crates/engine/src/".into()],
        kernel_files: vec!["crates/core/src/fx_kernel.rs".into()],
        registry_file: "crates/core/src/fx_faultpoint.rs".into(),
        wire_file: "crates/engine/src/fx_wire.rs".into(),
        snapshot_file: "crates/core/src/fx_snapshot.rs".into(),
        wal_file: "crates/core/src/fx_wal.rs".into(),
        test_path_markers: vec!["tests/".into()],
    }
}

fn fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn load_fixtures() -> Vec<SourceFile> {
    FIXTURES
        .iter()
        .map(|(file, pretend)| SourceFile {
            path: pretend.to_string(),
            source: std::fs::read_to_string(fixture_dir().join(file))
                .unwrap_or_else(|e| panic!("read fixture {file}: {e}")),
        })
        .collect()
}

fn render(diags: &[rbq_lint::Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// The full corpus against the golden diagnostic set. Regenerate with
/// `RBQ_LINT_BLESS=1 cargo test -p rbq-lint --test fixtures` after a
/// deliberate rule change, then review the diff.
#[test]
fn corpus_matches_golden_diagnostics() {
    let actual = render(&run(&fixture_ctx(), &load_fixtures()));
    let golden_path = fixture_dir().join("expected.txt");
    if std::env::var_os("RBQ_LINT_BLESS").is_some() {
        std::fs::write(&golden_path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&golden_path)
        .expect("golden file missing — run with RBQ_LINT_BLESS=1 to create it");
    assert_eq!(
        actual, expected,
        "fixture diagnostics diverged from tests/fixtures/expected.txt \
         (bless with RBQ_LINT_BLESS=1 after reviewing)"
    );
}

/// Each rule id appears at least once in the golden corpus — the corpus
/// demonstrably exercises every rule.
#[test]
fn corpus_covers_every_rule() {
    let diags = run(&fixture_ctx(), &load_fixtures());
    for rule in rbq_lint::rules::RULES {
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "no fixture finding for rule {rule}"
        );
    }
    assert!(
        diags.iter().any(|d| d.rule == rbq_lint::rules::LINT_ALLOW),
        "no fixture finding for the lint-allow meta-rule"
    );
}

fn run_with_replacement(pretend: &str, from: &str, to: &str) -> Vec<rbq_lint::Diagnostic> {
    let mut files = load_fixtures();
    let f = files.iter_mut().find(|f| f.path == pretend).unwrap();
    assert!(f.source.contains(from), "fixture lost the marker {from:?}");
    f.source = f.source.replacen(from, to, 1);
    run(&fixture_ctx(), &files)
}

/// Deleting the single `tick(` call from the good kernel loop turns the
/// lint red with a new cancel-coverage finding.
#[test]
fn removing_tick_turns_red() {
    let base = run(&fixture_ctx(), &load_fixtures());
    let mutated = run_with_replacement(
        "crates/core/src/fx_kernel.rs",
        "cancel.tick(\"fx.kernel\");",
        "",
    );
    let count = |ds: &[rbq_lint::Diagnostic]| {
        ds.iter()
            .filter(|d| d.rule == "cancel-coverage" && d.file.ends_with("fx_kernel.rs"))
            .count()
    };
    assert_eq!(count(&mutated), count(&base) + 1);
}

/// Deleting a `// invariant:` comment turns its documented `.expect(` into
/// a serving-unwrap finding.
#[test]
fn removing_invariant_turns_red() {
    let base = run(&fixture_ctx(), &load_fixtures());
    let mutated = run_with_replacement(
        "crates/core/src/fx_serving.rs",
        "// invariant: the caller populated `v` two lines up; this cannot fail.",
        "",
    );
    let count = |ds: &[rbq_lint::Diagnostic]| {
        ds.iter()
            .filter(|d| d.rule == "serving-unwrap" && d.file.ends_with("fx_serving.rs"))
            .count()
    };
    assert_eq!(count(&mutated), count(&base) + 1);
}

/// Stripping the reason off a working allow turns it into a lint-allow
/// finding AND resurfaces the finding it used to suppress.
#[test]
fn stripping_allow_reason_turns_red() {
    let base = run(&fixture_ctx(), &load_fixtures());
    let mutated = run_with_replacement(
        "crates/core/src/fx_serving.rs",
        "allow(serving-unwrap, \"fixture demonstrating a reasoned allow\")",
        "allow(serving-unwrap)",
    );
    let unwraps = |ds: &[rbq_lint::Diagnostic]| {
        ds.iter()
            .filter(|d| d.rule == "serving-unwrap" && d.file.ends_with("fx_serving.rs"))
            .count()
    };
    let allows = |ds: &[rbq_lint::Diagnostic]| {
        ds.iter()
            .filter(|d| d.rule == "lint-allow" && d.file.ends_with("fx_serving.rs"))
            .count()
    };
    assert_eq!(unwraps(&mutated), unwraps(&base) + 1);
    assert_eq!(allows(&mutated), allows(&base) + 1);
}

/// Un-registering a fired fault point flags the call site; registering one
/// that is never fired flags the registry line.
#[test]
fn faultpoint_mutations_turn_red() {
    let dropped = run_with_replacement(
        "crates/core/src/fx_faultpoint.rs",
        "\"fx.fired\",   // fired below — consistent",
        "",
    );
    assert!(dropped
        .iter()
        .any(|d| d.rule == "faultpoint-registry" && d.message.contains("fx.fired")));
}

/// The committed workspace itself is lint-clean — the same invariant CI
/// enforces, kept here so plain `cargo test` catches a violation too.
#[test]
fn committed_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = check_workspace(&root).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        render(&diags)
    );
}
