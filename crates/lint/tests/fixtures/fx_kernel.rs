//! Fixture: `cancel-coverage` — registered as a kernel hot-loop file
//! (`crates/core/src/fx_kernel.rs` in the fixture context).

pub fn good_ticked(xs: &[u32], cancel: &mut crate::CancelTicker) -> u32 {
    crate::fx_faultpoint::fire("fx.kernel");
    let mut sum = 0;
    let mut i = 0;
    while i < xs.len() {
        cancel.tick("fx.kernel");
        sum += xs[i];
        i += 1;
    }
    sum
}

pub fn bad_unticked(xs: &[u32]) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while i < xs.len() {
        sum += xs[i];
        i += 1;
    }
    sum
}

pub fn bad_loop(mut n: u32) -> u32 {
    loop {
        if n == 0 {
            return n;
        }
        n /= 2;
    }
}

pub fn good_allowed(xs: &[u32]) -> u32 {
    let mut sum = 0;
    // rbq-lint: allow(cancel-coverage, "fixture: bounded by a tiny constant, not |G|")
    while sum < 8 {
        sum += xs.first().copied().unwrap_or(1);
    }
    sum
}

#[cfg(test)]
mod tests {
    #[test]
    fn loops_in_tests_need_no_tick() {
        let mut n = 4u32;
        while n > 0 {
            n -= 1;
        }
    }
}
