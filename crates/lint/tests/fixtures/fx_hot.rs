//! Fixture: `hot-path-alloc` — checked as `crates/core/src/fx_hot.rs`.

// rbq-lint: hot
pub fn bad_hot(xs: &[u32]) -> u32 {
    let v: Vec<u32> = xs.to_vec();
    let mut out = Vec::new();
    out.extend_from_slice(&v);
    let s = format!("{}", out.len());
    s.len() as u32
}

// rbq-lint: hot
pub fn good_hot(xs: &[u32], scratch: &mut Vec<u32>) -> u32 {
    scratch.clear();
    scratch.extend_from_slice(xs);
    scratch.iter().sum()
}

// rbq-lint: hot
pub fn good_arc_clone(a: &std::sync::Arc<u32>) -> std::sync::Arc<u32> {
    std::sync::Arc::clone(a)
}

// rbq-lint: hot
pub fn good_cold_branch_allowed(xs: &[u32], pool: &mut Vec<Vec<u32>>) {
    if pool.is_empty() {
        // rbq-lint: allow(hot-path-alloc, "fixture: cold first-use growth of the pool")
        pool.resize_with(4, Vec::new);
    }
    pool[0].extend_from_slice(xs);
}

pub fn cold_fn_may_allocate() -> Vec<u32> {
    vec![1, 2, 3]
}

// rbq-lint: hot
pub const DANGLING_ANNOTATION: u32 = 0;
