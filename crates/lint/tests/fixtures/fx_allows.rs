//! Fixture: `lint-allow` suppression hygiene — checked as
//! `crates/core/src/fx_allows.rs`.

// rbq-lint: allow(serving-unwrap)
pub fn bad_blanket_no_reason(v: Option<u32>) -> u32 {
    v.unwrap()
}

// rbq-lint: allow(*, "everything")
pub fn bad_blanket_star(v: Option<u32>) -> u32 {
    v.unwrap()
}

// rbq-lint: allow(bogus-rule, "no such rule")
pub fn bad_unknown_rule() {}

// rbq-lint: allow(serving-unwrap, "suppresses nothing — itself a finding")
pub fn bad_unused_allow() {}

// rbq-lint: frobnicate
pub fn bad_unknown_directive() {}
