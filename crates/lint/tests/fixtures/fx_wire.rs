//! Fixture: `wire-version` declaration + uses — checked as
//! `crates/engine/src/fx_wire.rs` (the fixture context's wire module).

pub const QUERY_FILE_HEADER: &str = "#rbq-queries v2";
pub const ANSWER_FILE_HEADER: &str = "#rbq-answers v2";
pub const DELTA_FILE_HEADER: &str = "#rbq-deltas v2";

pub fn good_current() -> &'static str {
    "#rbq-queries v2"
}

pub fn bad_stale() -> &'static str {
    "#rbq-answers v1"
}

pub fn good_versionless_prefix(line: &str) -> bool {
    // A prefix check without a version is a dispatch, not a header.
    line.starts_with("#rbq-deltas")
}

#[cfg(test)]
mod tests {
    #[test]
    fn old_versions_are_legacy_read_coverage() {
        let _v1 = "#rbq-queries v1";
    }

    #[test]
    fn bad_future_version_without_allow() {
        let _v3 = "#rbq-answers v3";
    }

    #[test]
    fn good_future_version_with_allow() {
        // rbq-lint: allow(wire-version, "fixture: deliberate rejection test")
        let _v9 = "#rbq-deltas v9";
    }
}
