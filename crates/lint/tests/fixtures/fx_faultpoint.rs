//! Fixture: `faultpoint-registry` declaration side — checked as
//! `crates/core/src/fx_faultpoint.rs` (the fixture context's registry).

pub const REGISTRY: &[&str] = &[
    "fx.fired",   // fired below — consistent
    "fx.unused",  // never fired — finding
    "fx.dup",     // duplicate — finding
    "fx.dup",
    "fx.kernel",  // fired from fx_kernel.rs
];

pub fn fire(_point: &'static str) {}

pub fn fire_at(_point: &'static str, _index: u64) {}

pub fn uses_registered() {
    fire("fx.fired");
}

pub fn uses_unregistered() {
    fire_at("fx.rogue", 3);
}
