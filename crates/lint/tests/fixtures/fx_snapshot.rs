//! Fixture: the snapshot-magic declaration plus one stale occurrence.
//! The declared current format below is v2; the helper still mentions the
//! v1 magic, which `snapshot-version` must flag (comment and literal).

/// Declared current snapshot file format.
pub const SNAPSHOT_FILE_MAGIC: &str = "#rbq-snapshot v2";

/// Returns the legacy `#rbq-snapshot v1` magic — stale, fires the rule.
pub fn stale_magic() -> &'static str {
    "#rbq-snapshot v1"
}

#[cfg(test)]
mod tests {
    // Older versions are fine in test scope (legacy-read coverage)…
    #[test]
    fn reads_legacy() {
        assert!("#rbq-snapshot v1".starts_with("#rbq-snapshot"));
    }

    // …but a future version marks a rejection test and needs an allow.
    #[test]
    fn rejects_future() {
        assert!(!"#rbq-snapshot v3".is_empty());
    }
}
