//! Fixture: `lock-relock` — checked as `crates/engine/src/fx_lock.rs`.
//! A `.lock().unwrap()` fires lock-relock (and only lock-relock — the
//! serving-unwrap rule cedes lock receivers to the sharper rule).

use std::sync::{Mutex, RwLock};

pub fn bad_lock(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn bad_read(l: &RwLock<u32>) -> u32 {
    *l.read().unwrap()
}

pub fn bad_write(l: &RwLock<u32>) {
    *l.write().expect("poisoned") = 1;
}

pub fn good_relock(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}
