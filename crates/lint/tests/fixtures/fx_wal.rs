//! Fixture: the WAL-magic declaration, consistent throughout — the
//! passing counterpart to `fx_snapshot.rs`. Note the WAL version is
//! independent of both the wire version and the snapshot version.

/// Declared current WAL file format.
pub const WAL_FILE_MAGIC: &str = "#rbq-wal v1";

/// Every mention of the `#rbq-wal v1` magic here matches the declaration.
pub fn current_magic() -> &'static str {
    "#rbq-wal v1"
}
