//! Fixture: `serving-unwrap` — checked as `crates/core/src/fx_serving.rs`.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("should be set")
}

pub fn bad_panic(v: u32) {
    if v == 0 {
        panic!("zero is not allowed");
    }
}

pub fn good_documented(v: Option<u32>) -> u32 {
    // invariant: the caller populated `v` two lines up; this cannot fail.
    v.expect("populated by caller")
}

pub fn good_trailing(v: Option<u32>) -> u32 {
    v.expect("populated by caller") // invariant: caller populated it
}

pub fn good_allowed(v: Option<u32>) -> u32 {
    // rbq-lint: allow(serving-unwrap, "fixture demonstrating a reasoned allow")
    v.unwrap()
}

pub fn not_flagged_in_strings() -> &'static str {
    "this string mentions .unwrap() and panic! but is data"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        Some(1u32).unwrap();
    }
}
