//! `rbq-lint check [ROOT]` — run the workspace static-analysis pass and
//! exit nonzero on any finding. Diagnostics go to stderr as
//! `file:line: rule-id: message`, one per line.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => ("", &args[..]),
    };
    if cmd != "check" || rest.len() > 1 {
        eprintln!("usage: rbq-lint check [ROOT]");
        return ExitCode::from(2);
    }
    let start = rest
        .first()
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = rbq_lint::find_workspace_root(&start) else {
        eprintln!(
            "rbq-lint: no workspace root at or above {}",
            start.display()
        );
        return ExitCode::from(2);
    };
    match rbq_lint::check_and_report(&root) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("rbq-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}
