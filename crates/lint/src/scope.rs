//! Structural analysis over the token stream: matching braces, finding the
//! bodies of items and loops, and computing which token/line ranges are
//! *test scope* (`#[cfg(test)]` items, `#[test]` functions, `mod tests`).
//! Rules skip test scope — test code may unwrap, allocate, and fabricate
//! wire headers freely.

use crate::lexer::{Tok, Token};

/// A half-open token-index range that is also carried as a closed line
/// range (for attributing comments to scopes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
    pub start_line: u32,
    pub end_line: u32,
}

/// Test-scoped spans of a file, queryable by token index or line.
#[derive(Debug, Default)]
pub struct TestScope {
    spans: Vec<Span>,
    /// Whole file is test scope (integration tests, benches, examples).
    pub whole_file: bool,
}

impl TestScope {
    pub fn contains_token(&self, idx: usize) -> bool {
        self.whole_file || self.spans.iter().any(|s| idx >= s.start && idx < s.end)
    }

    pub fn contains_line(&self, line: u32) -> bool {
        self.whole_file
            || self
                .spans
                .iter()
                .any(|s| line >= s.start_line && line <= s.end_line)
    }
}

/// Index of the `}` matching the `{` at `open` (which must be a `{`), or
/// `None` if unbalanced.
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    debug_assert_eq!(tokens[open].tok, Tok::Punct('{'));
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index one past the `]` closing the attribute whose `#` is at `hash`
/// (`tokens[hash] == '#'`, `tokens[hash+1] == '['`), plus the attribute's
/// inner tokens. Returns `None` if unbalanced.
fn attr_end(tokens: &[Token], hash: usize) -> Option<(usize, &[Token])> {
    let open = hash + 1;
    if tokens.get(open).map(|t| &t.tok) != Some(&Tok::Punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((i + 1, &tokens[open + 1..i]));
                }
            }
            _ => {}
        }
    }
    None
}

fn is_attr_start(tokens: &[Token], i: usize) -> bool {
    tokens[i].tok == Tok::Punct('#') && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('['))
}

/// Whether an attribute's inner tokens select test builds: `#[test]`, any
/// `*::test]` path attribute, or `#[cfg(...)]` whose condition mentions
/// `test` outside a `not(...)` group.
fn is_test_attr(inner: &[Token]) -> bool {
    if inner
        .iter()
        .all(|t| matches!(&t.tok, Tok::Ident(_) | Tok::Punct(':')))
        && matches!(inner.last().map(|t| &t.tok), Some(Tok::Ident(n)) if n == "test")
    {
        return true; // #[test], #[tokio::test], …
    }
    if !matches!(inner.first().map(|t| &t.tok), Some(Tok::Ident(n)) if n == "cfg") {
        return false;
    }
    // Scan the cfg condition: `test` counts unless inside `not(...)`.
    let mut group_stack: Vec<String> = Vec::new();
    let mut last_ident = String::new();
    for t in &inner[1..] {
        match &t.tok {
            Tok::Punct('(') => {
                group_stack.push(std::mem::take(&mut last_ident));
            }
            Tok::Punct(')') => {
                group_stack.pop();
            }
            Tok::Ident(n) => {
                if n == "test" && !group_stack.iter().any(|g| g == "not") {
                    return true;
                }
                last_ident = n.clone();
            }
            _ => last_ident.clear(),
        }
    }
    false
}

/// Compute the test-scoped spans of a token stream.
pub fn test_scope(tokens: &[Token]) -> TestScope {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_attr_start(tokens, i) {
            let Some((after, inner)) = attr_end(tokens, i) else {
                break;
            };
            if is_test_attr(inner) {
                if let Some(span) = item_body_span(tokens, after) {
                    spans.push(span);
                    i = span.end;
                    continue;
                }
            }
            i = after;
            continue;
        }
        // `mod tests { … }` (or any `mod test*`) without an attribute.
        if let Tok::Ident(kw) = &tokens[i].tok {
            if kw == "mod" {
                if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                    if name.starts_with("test")
                        && tokens.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('{'))
                    {
                        if let Some(close) = matching_brace(tokens, i + 2) {
                            spans.push(Span {
                                start: i,
                                end: close + 1,
                                start_line: tokens[i].line,
                                end_line: tokens[close].line,
                            });
                            i = close + 1;
                            continue;
                        }
                    }
                }
            }
        }
        i += 1;
    }
    TestScope {
        spans,
        whole_file: false,
    }
}

/// The braced body of the item starting at `from` (after its attributes):
/// skips further attributes and header tokens, then spans the first `{` at
/// bracket/paren depth zero through its match. Returns `None` for items
/// ending in `;` first (e.g. `mod tests;`, consts, use-decls).
fn item_body_span(tokens: &[Token], from: usize) -> Option<Span> {
    let mut i = from;
    // Skip any further attributes on the same item.
    while i < tokens.len() && is_attr_start(tokens, i) {
        i = attr_end(tokens, i)?.0;
    }
    let start = i;
    let mut paren = 0i32;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct(';') if paren == 0 => return None,
            Tok::Punct('{') if paren == 0 => {
                let close = matching_brace(tokens, i)?;
                return Some(Span {
                    start,
                    end: close + 1,
                    start_line: tokens[start].line,
                    end_line: tokens[close].line,
                });
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// The body brace span of the `fn` item whose first token (attribute,
/// visibility, or the `fn` keyword itself) is the first code token on a
/// line strictly after `line`. Used to resolve `// rbq-lint: hot`
/// annotations. Returns the token-index span of `{ … }` inclusive.
pub fn fn_body_after_line(tokens: &[Token], line: u32) -> Option<Span> {
    let first = tokens.iter().position(|t| t.line > line)?;
    // The annotated item must start with `fn` within a handful of header
    // tokens (attrs / pub / const / unsafe / extern "abi"); find it.
    let mut i = first;
    loop {
        if is_attr_start(tokens, i) {
            i = attr_end(tokens, i)?.0;
            continue;
        }
        match &tokens[i].tok {
            Tok::Ident(k) if k == "fn" => break,
            Tok::Ident(k)
                if matches!(k.as_str(), "pub" | "const" | "unsafe" | "extern" | "async") =>
            {
                i += 1;
            }
            Tok::Punct('(') => {
                // pub(crate) / pub(super)
                let mut depth = 0i32;
                while i < tokens.len() {
                    match tokens[i].tok {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                i += 1;
            }
            Tok::Str(_) => i += 1, // extern "C"
            _ => return None,
        }
        if i >= tokens.len() {
            return None;
        }
    }
    // From `fn`, the body is the first `{` at paren/bracket depth zero.
    let mut paren = 0i32;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct(';') if paren == 0 => return None, // trait method decl
            Tok::Punct('{') if paren == 0 => {
                let close = matching_brace(tokens, j)?;
                return Some(Span {
                    start: j,
                    end: close + 1,
                    start_line: tokens[j].line,
                    end_line: tokens[close].line,
                });
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// The body brace span of the `loop` / `while` whose keyword is at `kw`:
/// the first `{` after the keyword at paren/bracket depth zero (closure
/// braces inside a parenthesized condition are correctly skipped because
/// they sit at positive depth).
pub fn loop_body_span(tokens: &[Token], kw: usize) -> Option<Span> {
    let mut paren = 0i32;
    for j in kw + 1..tokens.len() {
        match tokens[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct('{') if paren == 0 => {
                let close = matching_brace(tokens, j)?;
                return Some(Span {
                    start: j,
                    end: close + 1,
                    start_line: tokens[j].line,
                    end_line: tokens[close].line,
                });
            }
            Tok::Punct(';') if paren == 0 => return None,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scope_of(src: &str) -> (Vec<Token>, TestScope) {
        let l = lex(src).unwrap();
        let s = test_scope(&l.tokens);
        (l.tokens, s)
    }

    fn ident_at(tokens: &[Token], name: &str) -> usize {
        tokens
            .iter()
            .position(|t| t.tok == Tok::Ident(name.into()))
            .unwrap()
    }

    #[test]
    fn cfg_test_mod_is_scoped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let (toks, s) = scope_of(src);
        assert!(!s.contains_token(ident_at(&toks, "live")));
        assert!(s.contains_token(ident_at(&toks, "unwrap")));
        assert!(s.contains_line(4));
        assert!(!s.contains_line(1));
    }

    #[test]
    fn test_attribute_scopes_one_fn() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn live() { b; }\n";
        let (toks, s) = scope_of(src);
        assert!(s.contains_token(ident_at(&toks, "unwrap")));
        assert!(!s.contains_token(ident_at(&toks, "live")));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn live() { a.unwrap(); }\n";
        let (toks, s) = scope_of(src);
        assert!(!s.contains_token(ident_at(&toks, "unwrap")));
    }

    #[test]
    fn cfg_any_containing_test_is_scoped() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() { a.unwrap(); }\n";
        let (toks, s) = scope_of(src);
        assert!(s.contains_token(ident_at(&toks, "unwrap")));
    }

    #[test]
    fn bare_mod_tests_is_scoped() {
        let src = "mod tests { fn t() { x.unwrap(); } }\nfn live() {}\n";
        let (toks, s) = scope_of(src);
        assert!(s.contains_token(ident_at(&toks, "unwrap")));
        assert!(!s.contains_token(ident_at(&toks, "live")));
    }

    #[test]
    fn cfg_test_use_decl_without_body() {
        // `#[cfg(test)] use …;` has no braced body; the next item stays live.
        let src = "#[cfg(test)]\nuse helpers::x;\nfn live() { a.unwrap(); }\n";
        let (toks, s) = scope_of(src);
        assert!(!s.contains_token(ident_at(&toks, "unwrap")));
    }

    #[test]
    fn loop_body_spans() {
        let l = lex("while q.pop().is_some() { work(); }\nloop { tick(); }").unwrap();
        let w = ident_at(&l.tokens, "while");
        let span = loop_body_span(&l.tokens, w).unwrap();
        let inner = &l.tokens[span.start..span.end];
        assert!(inner.iter().any(|t| t.tok == Tok::Ident("work".into())));
        assert!(!inner.iter().any(|t| t.tok == Tok::Ident("tick".into())));
    }

    #[test]
    fn while_condition_closure_brace_is_not_body() {
        let l = lex("while items.iter().any(|x| { deep(x) }) { body(); }").unwrap();
        let w = ident_at(&l.tokens, "while");
        let span = loop_body_span(&l.tokens, w).unwrap();
        let inner = &l.tokens[span.start..span.end];
        assert!(inner.iter().any(|t| t.tok == Tok::Ident("body".into())));
        assert!(!inner.iter().any(|t| t.tok == Tok::Ident("deep".into())));
    }

    #[test]
    fn fn_body_after_annotation_line() {
        let src = "// rbq-lint: hot\n#[inline]\npub(crate) fn hot_one(a: &[u32]) -> u32 {\n    a.len() as u32\n}\nfn other() { vec![1]; }\n";
        let l = lex(src).unwrap();
        let span = fn_body_after_line(&l.tokens, 1).unwrap();
        let inner = &l.tokens[span.start..span.end];
        assert!(inner.iter().any(|t| t.tok == Tok::Ident("len".into())));
        assert!(!inner.iter().any(|t| t.tok == Tok::Ident("vec".into())));
    }
}
