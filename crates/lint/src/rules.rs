//! The repo-specific rule set. Each rule walks one file's token stream
//! (test scope already excluded by the caller-supplied [`Analysis`]) and
//! emits raw findings; the engine in `lib.rs` applies `allow` suppression
//! afterwards.

use crate::lexer::Tok;
use crate::scope::{fn_body_after_line, loop_body_span};
use crate::{Analysis, RawFinding};

pub const SERVING_UNWRAP: &str = "serving-unwrap";
pub const LOCK_RELOCK: &str = "lock-relock";
pub const CANCEL_COVERAGE: &str = "cancel-coverage";
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
pub const FAULTPOINT_REGISTRY: &str = "faultpoint-registry";
pub const WIRE_VERSION: &str = "wire-version";
pub const SNAPSHOT_VERSION: &str = "snapshot-version";
/// Meta-rule for suppression hygiene: malformed, blanket, or unused
/// `allow` directives. Not itself suppressible.
pub const LINT_ALLOW: &str = "lint-allow";

/// Every real (suppressible) rule id.
pub const RULES: &[&str] = &[
    SERVING_UNWRAP,
    LOCK_RELOCK,
    CANCEL_COVERAGE,
    HOT_PATH_ALLOC,
    FAULTPOINT_REGISTRY,
    WIRE_VERSION,
    SNAPSHOT_VERSION,
];

fn ident_is(t: &Tok, name: &str) -> bool {
    matches!(t, Tok::Ident(n) if n == name)
}

fn punct_is(t: &Tok, c: char) -> bool {
    *t == Tok::Punct(c)
}

/// `serving-unwrap`: no `.unwrap()` / `.expect(` / `panic!` on the serving
/// path unless the site carries a `// invariant:` comment (preceding line
/// or trailing) or a reasoned `allow`. `.lock()/.read()/.write()` receivers
/// are excluded here — `lock-relock` owns those sites with the sharper fix.
pub fn serving_unwrap(a: &Analysis, out: &mut Vec<RawFinding>) {
    let toks = &a.lexed.tokens;
    for i in 0..toks.len() {
        if a.scope.contains_token(i) {
            continue;
        }
        let t = &toks[i].tok;
        let line = toks[i].line;
        let mut hit: Option<&str> = None;
        if ident_is(t, "unwrap")
            && i >= 1
            && punct_is(&toks[i - 1].tok, '.')
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(p) if punct_is(p, '('))
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(p) if punct_is(p, ')'))
        {
            hit = Some(".unwrap()");
        } else if ident_is(t, "expect")
            && i >= 1
            && punct_is(&toks[i - 1].tok, '.')
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(p) if punct_is(p, '('))
        {
            hit = Some(".expect(…)");
        } else if ident_is(t, "panic")
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(p) if punct_is(p, '!'))
        {
            hit = Some("panic!");
        }
        let Some(what) = hit else { continue };
        if what != "panic!" && is_lock_receiver(a, i) {
            continue; // lock-relock reports these
        }
        if a.invariant_covers(line) {
            continue;
        }
        out.push(RawFinding {
            line,
            rule: SERVING_UNWRAP,
            message: format!(
                "{what} on the serving path — return a typed error, or document the \
                 invariant with a `// invariant:` comment on the line above"
            ),
        });
    }
}

/// Whether the method-name token at `i` (unwrap/expect) is called directly
/// on a `.lock()` / `.read()` / `.write()` result.
fn is_lock_receiver(a: &Analysis, i: usize) -> bool {
    let toks = &a.lexed.tokens;
    i >= 4
        && punct_is(&toks[i - 1].tok, '.')
        && punct_is(&toks[i - 2].tok, ')')
        && punct_is(&toks[i - 3].tok, '(')
        && matches!(&toks[i - 4].tok, Tok::Ident(n) if matches!(n.as_str(), "lock" | "read" | "write"))
}

/// `lock-relock`: serving code never unwraps a lock acquisition directly —
/// poisoning must go through the crate's `relock` helpers so a contained
/// panic in one query cannot take the whole engine down.
pub fn lock_relock(a: &Analysis, out: &mut Vec<RawFinding>) {
    let toks = &a.lexed.tokens;
    for i in 0..toks.len() {
        if a.scope.contains_token(i) {
            continue;
        }
        let Tok::Ident(m) = &toks[i].tok else {
            continue;
        };
        if !matches!(m.as_str(), "lock" | "read" | "write") {
            continue;
        }
        let ok = i >= 1
            && punct_is(&toks[i - 1].tok, '.')
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(p) if punct_is(p, '('))
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(p) if punct_is(p, ')'))
            && matches!(toks.get(i + 3).map(|t| &t.tok), Some(p) if punct_is(p, '.'))
            && matches!(
                toks.get(i + 4).map(|t| &t.tok),
                Some(Tok::Ident(u)) if matches!(u.as_str(), "unwrap" | "expect")
            )
            && matches!(toks.get(i + 5).map(|t| &t.tok), Some(p) if punct_is(p, '('));
        if ok {
            out.push(RawFinding {
                line: toks[i].line,
                rule: LOCK_RELOCK,
                message: format!(
                    ".{m}().unwrap()-style acquisition on the serving path — use the \
                     poison-recovering `relock` helpers instead"
                ),
            });
        }
    }
}

/// `cancel-coverage`: every `loop` / `while` body in a registered kernel
/// hot-loop file must contain a cooperative `tick(` cancellation point
/// (directly or in a nested loop), so an armed deadline can always
/// interrupt the kernel.
pub fn cancel_coverage(a: &Analysis, out: &mut Vec<RawFinding>) {
    let toks = &a.lexed.tokens;
    for i in 0..toks.len() {
        if a.scope.contains_token(i) {
            continue;
        }
        let Tok::Ident(kw) = &toks[i].tok else {
            continue;
        };
        if kw != "loop" && kw != "while" {
            continue;
        }
        let Some(body) = loop_body_span(toks, i) else {
            continue;
        };
        let has_tick = (body.start..body.end).any(|j| {
            ident_is(&toks[j].tok, "tick")
                && matches!(toks.get(j + 1).map(|t| &t.tok), Some(p) if punct_is(p, '('))
        });
        if !has_tick {
            out.push(RawFinding {
                line: toks[i].line,
                rule: CANCEL_COVERAGE,
                message: format!(
                    "`{kw}` body in a registered kernel file has no `CancelTicker::tick` \
                     cancellation point — an armed deadline cannot interrupt it"
                ),
            });
        }
    }
}

/// Allocating constructs recognized by `hot-path-alloc`.
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Arc", "new"),
    ("Rc", "new"),
];
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_string", "to_owned", "clone"];
/// Path-form calls that look allocating but are not: `Arc::clone` /
/// `Rc::clone` are refcount bumps.
const ALLOWED_PATHS: &[(&str, &str)] = &[("Arc", "clone"), ("Rc", "clone")];

/// `hot-path-alloc`: inside a function annotated `// rbq-lint: hot`, no
/// allocating construct outside the built-in allowlist — the static
/// complement to the counting-allocator pin in `tests/alloc_free.rs`.
/// Cold branches inside a hot function carry a reasoned `allow`.
pub fn hot_path_alloc(a: &Analysis, out: &mut Vec<RawFinding>) {
    let toks = &a.lexed.tokens;
    for &hot_line in &a.hot_lines {
        if a.scope.contains_line(hot_line) {
            continue;
        }
        let Some(body) = fn_body_after_line(toks, hot_line) else {
            out.push(RawFinding {
                line: hot_line,
                rule: HOT_PATH_ALLOC,
                message: "dangling `// rbq-lint: hot` — no function body follows the annotation"
                    .into(),
            });
            continue;
        };
        for j in body.start..body.end {
            if a.scope.contains_token(j) {
                continue;
            }
            let line = toks[j].line;
            let Tok::Ident(name) = &toks[j].tok else {
                continue;
            };
            let next = toks.get(j + 1).map(|t| &t.tok);
            // vec! / format!
            if ALLOC_MACROS.contains(&name.as_str()) && matches!(next, Some(p) if punct_is(p, '!'))
            {
                out.push(RawFinding {
                    line,
                    rule: HOT_PATH_ALLOC,
                    message: format!("`{name}!` allocates inside a `// rbq-lint: hot` function"),
                });
                continue;
            }
            // Type::method( path calls
            if punct_is(
                toks.get(j + 1).map(|t| &t.tok).unwrap_or(&Tok::Punct(' ')),
                ':',
            ) && matches!(toks.get(j + 2).map(|t| &t.tok), Some(p) if punct_is(p, ':'))
            {
                if let Some(Tok::Ident(m)) = toks.get(j + 3).map(|t| &t.tok) {
                    let pair = (name.as_str(), m.as_str());
                    if ALLOC_PATHS.contains(&pair) && !ALLOWED_PATHS.contains(&pair) {
                        out.push(RawFinding {
                            line,
                            rule: HOT_PATH_ALLOC,
                            message: format!(
                                "`{name}::{m}` allocates inside a `// rbq-lint: hot` function"
                            ),
                        });
                        continue;
                    }
                }
            }
            // .method( calls
            if j >= 1
                && punct_is(&toks[j - 1].tok, '.')
                && ALLOC_METHODS.contains(&name.as_str())
                && matches!(next, Some(p) if punct_is(p, '('))
            {
                out.push(RawFinding {
                    line,
                    rule: HOT_PATH_ALLOC,
                    message: format!(
                        "`.{name}(` allocates inside a `// rbq-lint: hot` function \
                         (use `Arc::clone` for refcount bumps; cold branches need a \
                         reasoned allow)"
                    ),
                });
            }
        }
    }
}

/// A `fire("name")` / `fire_at("name", …)` call site.
#[derive(Debug, Clone)]
pub struct FireSite {
    pub name: String,
    pub file: String,
    pub line: u32,
}

/// Collect the non-test fault-point call sites of one file.
pub fn collect_fire_sites(a: &Analysis, out: &mut Vec<FireSite>) {
    let toks = &a.lexed.tokens;
    for i in 0..toks.len() {
        if a.scope.contains_token(i) {
            continue;
        }
        let Tok::Ident(f) = &toks[i].tok else {
            continue;
        };
        if f != "fire" && f != "fire_at" {
            continue;
        }
        // Skip the definitions (`fn fire(...)`).
        if i >= 1 && ident_is(&toks[i - 1].tok, "fn") {
            continue;
        }
        if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(p) if punct_is(p, '(')) {
            continue;
        }
        if let Some(Tok::Str(name)) = toks.get(i + 2).map(|t| &t.tok) {
            out.push(FireSite {
                name: name.clone(),
                file: a.path.clone(),
                line: toks[i].line,
            });
        }
    }
}

/// A registry entry parsed out of the declared `REGISTRY` const.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    pub name: String,
    pub line: u32,
}

/// Parse the `REGISTRY: &[&str]` const from the fault-point module: every
/// string literal between `REGISTRY` and the closing `;`.
pub fn parse_registry(a: &Analysis) -> Option<Vec<RegistryEntry>> {
    let toks = &a.lexed.tokens;
    let start = toks.iter().position(|t| ident_is(&t.tok, "REGISTRY"))?;
    let mut entries = Vec::new();
    for t in &toks[start..] {
        match &t.tok {
            Tok::Str(s) => entries.push(RegistryEntry {
                name: s.clone(),
                line: t.line,
            }),
            Tok::Punct(';') => break,
            _ => {}
        }
    }
    Some(entries)
}

/// One declared `#rbq-<kind> v<N>` header or file magic: the version the
/// workspace currently writes, where it is declared, and which rule id
/// polices stale occurrences of its kind. Wire headers share one version
/// (`wire-version`); the durable-state magics (`snapshot-version`) each
/// version independently.
#[derive(Debug, Clone)]
pub struct HeaderDecl {
    pub kind: String,
    pub version: u32,
    pub line: u32,
    pub rule: &'static str,
}

/// Every declared header/magic the occurrence checker knows about.
#[derive(Debug, Clone)]
pub struct WireDecl {
    pub headers: Vec<HeaderDecl>,
}

const HEADER_CONSTS: &[(&str, &str)] = &[
    ("QUERY_FILE_HEADER", "queries"),
    ("ANSWER_FILE_HEADER", "answers"),
    ("DELTA_FILE_HEADER", "deltas"),
];

/// Parse the three header consts from the wire module, reporting malformed
/// or missing ones as findings against that file.
pub fn parse_wire_decl(a: &Analysis, out: &mut Vec<RawFinding>) -> Option<WireDecl> {
    let toks = &a.lexed.tokens;
    let mut headers = Vec::new();
    for (cname, kind) in HEADER_CONSTS {
        let Some(i) = toks.iter().position(|t| ident_is(&t.tok, cname)) else {
            out.push(RawFinding {
                line: 1,
                rule: WIRE_VERSION,
                message: format!("wire module does not declare `{cname}`"),
            });
            continue;
        };
        // The const's value is the first string literal before the `;`.
        let mut lit = None;
        for t in &toks[i..] {
            match &t.tok {
                Tok::Str(s) => {
                    lit = Some((s.clone(), t.line));
                    break;
                }
                Tok::Punct(';') => break,
                _ => {}
            }
        }
        let parsed = lit.as_ref().and_then(|(s, _)| parse_header(s));
        match (lit, parsed) {
            (Some((_, line)), Some((k, v))) if k == *kind => headers.push(HeaderDecl {
                kind: k,
                version: v,
                line,
                rule: WIRE_VERSION,
            }),
            (Some((s, line)), _) => out.push(RawFinding {
                line,
                rule: WIRE_VERSION,
                message: format!("`{cname}` value {s:?} is not a `#rbq-{kind} v<N>` header"),
            }),
            (None, _) => out.push(RawFinding {
                line: toks[i].line,
                rule: WIRE_VERSION,
                message: format!("`{cname}` has no string literal value"),
            }),
        }
    }
    if headers.is_empty() {
        return None;
    }
    let v0 = headers[0].version;
    for h in &headers {
        if h.version != v0 {
            out.push(RawFinding {
                line: h.line,
                rule: WIRE_VERSION,
                message: format!(
                    "wire header versions disagree: `#rbq-{}` is v{} but \
                     `#rbq-{}` is v{v0}",
                    h.kind, h.version, headers[0].kind
                ),
            });
        }
    }
    Some(WireDecl { headers })
}

/// Parse a single `#rbq-<kind> v<N>` magic const (the snapshot / WAL file
/// formats) out of its declaring module, reporting a missing or malformed
/// declaration under `snapshot-version`. Unlike the wire headers, each
/// magic versions independently.
pub fn parse_magic_decl(
    a: &Analysis,
    cname: &str,
    kind: &str,
    out: &mut Vec<RawFinding>,
) -> Option<HeaderDecl> {
    let toks = &a.lexed.tokens;
    let Some(i) = toks.iter().position(|t| ident_is(&t.tok, cname)) else {
        out.push(RawFinding {
            line: 1,
            rule: SNAPSHOT_VERSION,
            message: format!("module does not declare `{cname}`"),
        });
        return None;
    };
    let mut lit = None;
    for t in &toks[i..] {
        match &t.tok {
            Tok::Str(s) => {
                lit = Some((s.clone(), t.line));
                break;
            }
            Tok::Punct(';') => break,
            _ => {}
        }
    }
    match lit {
        Some((s, line)) => match parse_header(&s) {
            Some((k, v)) if k == kind => Some(HeaderDecl {
                kind: k,
                version: v,
                line,
                rule: SNAPSHOT_VERSION,
            }),
            _ => {
                out.push(RawFinding {
                    line,
                    rule: SNAPSHOT_VERSION,
                    message: format!("`{cname}` value {s:?} is not a `#rbq-{kind} v<N>` magic"),
                });
                None
            }
        },
        None => {
            out.push(RawFinding {
                line: toks[i].line,
                rule: SNAPSHOT_VERSION,
                message: format!("`{cname}` has no string literal value"),
            });
            None
        }
    }
}

/// Parse `#rbq-<kind> v<N>` from the *start* of a header string. The kind
/// is a lowercase word and ` v<digits>` must follow it immediately, so
/// prose mentions like "has no #rbq-queries header" don't parse.
fn parse_header(s: &str) -> Option<(String, u32)> {
    let rest = s.strip_prefix("#rbq-")?;
    let kind: String = rest.chars().take_while(char::is_ascii_lowercase).collect();
    if kind.is_empty() {
        return None;
    }
    let rest = rest[kind.len()..].strip_prefix(" v")?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    Some((kind, digits.parse().ok()?))
}

/// `wire-version` / `snapshot-version`: every `#rbq-…` header occurrence
/// in string literals and comments must agree with the declared current
/// version of its kind — wire headers against the wire declaration,
/// snapshot/WAL magics against theirs. Test scope may reference older
/// versions (legacy-read coverage); a *future* version in a test marks an
/// intentional rejection test and needs an explicit allow.
pub fn wire_version(a: &Analysis, decl: &WireDecl, out: &mut Vec<RawFinding>) {
    if decl.headers.is_empty() {
        return;
    }
    let mut check = |text: &str, line: u32, in_test: bool| {
        let mut rest = text;
        while let Some(pos) = rest.find("#rbq-") {
            rest = &rest[pos..];
            let occurrence = rest;
            rest = &rest["#rbq-".len()..];
            let Some((kind, v)) = parse_header(occurrence) else {
                continue; // versionless prefix check like `starts_with("#rbq-queries")`
            };
            let Some(h) = decl.headers.iter().find(|h| h.kind == kind) else {
                if !in_test {
                    out.push(RawFinding {
                        line,
                        rule: WIRE_VERSION,
                        message: format!("unknown wire header kind `#rbq-{kind}`"),
                    });
                }
                continue;
            };
            let current = h.version;
            if !in_test && v != current {
                out.push(RawFinding {
                    line,
                    rule: h.rule,
                    message: format!(
                        "stale header `#rbq-{kind} v{v}` — the declared current \
                         version is v{current}"
                    ),
                });
            } else if in_test && v > current {
                out.push(RawFinding {
                    line,
                    rule: h.rule,
                    message: format!(
                        "future version `#rbq-{kind} v{v}` in test (current is \
                         v{current}) — a deliberate rejection test needs a reasoned allow"
                    ),
                });
            }
        }
    };
    for (i, t) in a.lexed.tokens.iter().enumerate() {
        if let Tok::Str(s) = &t.tok {
            check(s, t.line, a.scope.contains_token(i));
        }
    }
    for c in &a.lexed.comments {
        check(&c.text, c.line, a.scope.contains_line(c.line));
    }
}
