//! A minimal hand-rolled Rust lexer — just enough syntax awareness for the
//! lint rules, with zero dependencies (the build environment is offline, so
//! `syn` is not an option).
//!
//! The lexer's one job is to never misread where code ends and text begins:
//! it tracks cooked strings with escapes, raw strings with arbitrary `#`
//! fences, byte strings, char literals (distinguished from lifetimes),
//! nested block comments, and raw identifiers. Everything else degrades to
//! single-character punctuation tokens, which is all the rules need.

/// One code token. Comments are reported separately (see [`Comment`]) so
/// rules can scan code and conventions independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword; raw identifiers (`r#type`) are normalized to
    /// their bare name.
    Ident(String),
    /// A lifetime such as `'a` (without the quote).
    Lifetime(String),
    /// String or byte-string literal; the *raw inner text*, escapes left
    /// unprocessed (the rules only match plain ASCII names and headers).
    Str(String),
    /// Char or byte literal; content is irrelevant to every rule.
    Char,
    /// Numeric literal (digits plus any alphanumeric suffix run).
    Num(String),
    /// Any other single character: braces, dots, operators, `#`, …
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment with its text (delimiters stripped) and line span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs only for block comments).
    pub end_line: u32,
    /// Comment text without `//` / `/* */` delimiters, untrimmed.
    pub text: String,
    /// Whether this was a `/* … */` block comment.
    pub block: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// A lexing failure — unterminated string or block comment. The engine
/// surfaces it as a diagnostic rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

pub fn lex(src: &str) -> Result<Lexed, LexError> {
    Lexer {
        s: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    s: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Result<Lexed, LexError> {
        while self.i < self.s.len() {
            let line = self.line;
            let c = self.s[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment()?,
                b'"' => self.cooked_string(line)?,
                b'\'' => self.quote(line)?,
                b'r' | b'b' if self.starts_string_prefix() => self.prefixed_string(line)?,
                _ if is_ident_start(c) => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.push(Tok::Punct(c as char), line);
                    self.i += 1;
                }
            }
        }
        Ok(self.out)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.s.get(self.i + ahead).copied()
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.i += 2;
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i] != b'\n' {
            self.i += 1;
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text: String::from_utf8_lossy(&self.s[start..self.i]).into_owned(),
            block: false,
        });
    }

    /// Block comments nest, per the Rust reference: `/* /* */ */` is one
    /// comment.
    fn block_comment(&mut self) -> Result<(), LexError> {
        let line = self.line;
        self.i += 2;
        let start = self.i;
        let mut depth = 1usize;
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.i += 2;
                    if depth == 0 {
                        self.out.comments.push(Comment {
                            line,
                            end_line: self.line,
                            text: String::from_utf8_lossy(&self.s[start..self.i - 2]).into_owned(),
                            block: true,
                        });
                        return Ok(());
                    }
                }
                _ => self.i += 1,
            }
        }
        Err(LexError {
            line,
            message: "unterminated block comment".into(),
        })
    }

    fn cooked_string(&mut self, line: u32) -> Result<(), LexError> {
        self.i += 1; // opening quote
        let start = self.i;
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\\' => self.i += 2, // skip the escaped character
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
                    self.i += 1;
                    self.push(Tok::Str(text), line);
                    return Ok(());
                }
                _ => self.i += 1,
            }
        }
        Err(LexError {
            line,
            message: "unterminated string literal".into(),
        })
    }

    /// `'` — either a char literal or a lifetime. A char literal has a
    /// closing quote after exactly one (possibly escaped) character; a
    /// lifetime is `'` followed by an identifier with no closing quote.
    fn quote(&mut self, line: u32) -> Result<(), LexError> {
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: skip the quote, the backslash, and
                // the escaped character (which may itself be a quote), then
                // scan to the closing quote.
                self.i += 3;
                while self.i < self.s.len() && self.s[self.i] != b'\'' {
                    if self.s[self.i] == b'\n' {
                        self.line += 1;
                    }
                    self.i += 1;
                }
                if self.i >= self.s.len() {
                    return Err(LexError {
                        line,
                        message: "unterminated char literal".into(),
                    });
                }
                self.i += 1; // closing quote
                self.push(Tok::Char, line);
                Ok(())
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'a' (char) or 'a / 'abc (lifetime): scan the
                // identifier run and look for a closing quote.
                let mut j = self.i + 1;
                while j < self.s.len() && is_ident_continue(self.s[j]) {
                    j += 1;
                }
                if self.s.get(j) == Some(&b'\'') && j == self.i + 2 {
                    // exactly one character, closed: 'x'
                    self.i = j + 1;
                    self.push(Tok::Char, line);
                } else {
                    let name = String::from_utf8_lossy(&self.s[self.i + 1..j]).into_owned();
                    self.i = j;
                    self.push(Tok::Lifetime(name), line);
                }
                Ok(())
            }
            Some(_) => {
                // Non-identifier char literal like '(' or '\n' handled
                // above; here: '(' — find the closing quote two ahead.
                if self.peek(2) == Some(b'\'') {
                    self.i += 3;
                    self.push(Tok::Char, line);
                    Ok(())
                } else {
                    Err(LexError {
                        line,
                        message: "unterminated char literal".into(),
                    })
                }
            }
            None => Err(LexError {
                line,
                message: "dangling quote at end of input".into(),
            }),
        }
    }

    /// Whether the cursor starts a raw/byte string (`r"`, `r#"`, `b"`,
    /// `br#"`, …) or a byte char (`b'`) rather than a plain identifier.
    fn starts_string_prefix(&self) -> bool {
        let mut j = self.i;
        if self.s[j] == b'b' {
            j += 1;
            if self.s.get(j) == Some(&b'\'') {
                return true;
            }
        }
        if self.s.get(j) == Some(&b'r') {
            j += 1;
            // r#ident is a raw identifier, r#" is a raw string: only a
            // `#`-run ending in `"` makes this a string prefix.
            let mut k = j;
            while self.s.get(k) == Some(&b'#') {
                k += 1;
            }
            return self.s.get(k) == Some(&b'"');
        }
        self.s.get(j) == Some(&b'"')
    }

    fn prefixed_string(&mut self, line: u32) -> Result<(), LexError> {
        if self.s[self.i] == b'b' {
            self.i += 1;
            if self.s.get(self.i) == Some(&b'\'') {
                return self.quote(line); // byte char literal b'x'
            }
        }
        if self.s.get(self.i) == Some(&b'r') {
            self.i += 1;
            let mut fence = 0usize;
            while self.s.get(self.i) == Some(&b'#') {
                fence += 1;
                self.i += 1;
            }
            self.i += 1; // opening quote (guaranteed by starts_string_prefix)
            let start = self.i;
            while self.i < self.s.len() {
                if self.s[self.i] == b'\n' {
                    self.line += 1;
                    self.i += 1;
                    continue;
                }
                if self.s[self.i] == b'"' {
                    let mut k = self.i + 1;
                    let mut seen = 0usize;
                    while seen < fence && self.s.get(k) == Some(&b'#') {
                        seen += 1;
                        k += 1;
                    }
                    if seen == fence {
                        let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
                        self.i = k;
                        self.push(Tok::Str(text), line);
                        return Ok(());
                    }
                }
                self.i += 1;
            }
            return Err(LexError {
                line,
                message: "unterminated raw string literal".into(),
            });
        }
        // b"..." — a cooked byte string.
        self.cooked_string(line)
    }

    fn ident(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.s.len() && is_ident_continue(self.s[self.i]) {
            self.i += 1;
        }
        let mut name = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        // Raw identifier r#type: the `r` lexes into the ident run only when
        // starts_string_prefix said this is not a raw string, so peel the
        // `r#` marker off here.
        if name == "r" && self.s.get(self.i) == Some(&b'#') {
            let rstart = self.i + 1;
            self.i = rstart;
            while self.i < self.s.len() && is_ident_continue(self.s[self.i]) {
                self.i += 1;
            }
            name = String::from_utf8_lossy(&self.s[rstart..self.i]).into_owned();
        }
        self.push(Tok::Ident(name), line);
    }

    fn number(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.s.len() && is_ident_continue(self.s[self.i]) {
            self.i += 1;
        }
        self.push(
            Tok::Num(String::from_utf8_lossy(&self.s[start..self.i]).into_owned()),
            line,
        );
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn strs(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Str(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cooked_string_with_escapes() {
        assert_eq!(strs(r#"let s = "a\"b\\c";"#), vec![r#"a\"b\\c"#]);
    }

    #[test]
    fn raw_strings_any_fence() {
        assert_eq!(
            strs(r###"let s = r"no escapes \ here";"###),
            vec![r"no escapes \ here"]
        );
        assert_eq!(
            strs(r###"let s = r#"quote " inside"#;"###),
            vec![r#"quote " inside"#]
        );
        assert_eq!(
            strs("let s = r##\"has \"# inside\"##;"),
            vec!["has \"# inside"]
        );
    }

    #[test]
    fn raw_string_does_not_hide_following_code() {
        // If the fence matching were wrong, the unwrap after the raw
        // string would be swallowed into the literal.
        let src = r##"let s = r#"x"#; y.unwrap();"##;
        assert!(idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(strs(r#"let s = b"bytes"; let c = b'x';"#), vec!["bytes"]);
        let toks = lex("b'x'").unwrap().tokens;
        assert_eq!(toks[0].tok, Tok::Char);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = lex("'a' 'static 'x fn<'b>(c: &'b str)").unwrap().tokens;
        assert_eq!(toks[0].tok, Tok::Char);
        assert_eq!(toks[1].tok, Tok::Lifetime("static".into()));
        assert_eq!(toks[2].tok, Tok::Lifetime("x".into()));
        // an unwrap-looking name inside a char literal is not an ident
        assert!(!idents("let c = '\"'; let d = '\\'';").contains(&"unwrap".into()));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = lex(r"'\n' '\'' '\\' '\u{1F600}'").unwrap().tokens;
        assert!(toks.iter().all(|t| t.tok == Tok::Char));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still comment */ b").unwrap();
        assert_eq!(
            idents("a /* outer /* inner */ still comment */ b"),
            vec!["a", "b"]
        );
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
        assert!(l.comments[0].block);
    }

    #[test]
    fn line_comment_text_and_lines() {
        let l = lex("x // first\ny // invariant: second\n").unwrap();
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.comments[1].text, " invariant: second");
    }

    #[test]
    fn block_comment_line_span() {
        let l = lex("/* a\nb\nc */ x").unwrap();
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].end_line, 3);
        assert_eq!(l.tokens[0].line, 3);
    }

    #[test]
    fn raw_identifier_normalized() {
        assert_eq!(idents("let r#type = r#fn;"), vec!["let", "type", "fn"]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let l = lex("let s = \"a\nb\";\nx").unwrap();
        let x = l.tokens.last().unwrap();
        assert_eq!(x.tok, Tok::Ident("x".into()));
        assert_eq!(x.line, 3);
    }

    #[test]
    fn unterminated_inputs_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
        assert!(lex("r#\"abc\"").is_err());
    }

    #[test]
    fn line_numbers_on_tokens() {
        let l = lex("a\nb\n  c").unwrap();
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
