//! `rbq-lint` — a dependency-free, workspace-native static-analysis pass
//! that machine-enforces the serving-path invariants PRs 3–8 established by
//! convention:
//!
//! | rule | invariant |
//! |---|---|
//! | `serving-unwrap` | no undocumented `.unwrap()`/`.expect(`/`panic!` in serving crates |
//! | `lock-relock` | lock poisoning goes through the `relock` helpers |
//! | `cancel-coverage` | every kernel hot loop has a `CancelTicker::tick` point |
//! | `hot-path-alloc` | `// rbq-lint: hot` functions never allocate (static complement to `tests/alloc_free.rs`) |
//! | `faultpoint-registry` | `fire(…)` names ↔ the declared `REGISTRY` in `faultpoint.rs` |
//! | `wire-version` | `#rbq-*` header literals agree with the declared wire version |
//! | `snapshot-version` | `#rbq-snapshot`/`#rbq-wal` magics agree with the declared file-format versions |
//!
//! Suppression is explicit and audited: `// rbq-lint: allow(rule-id,
//! "reason")` with a mandatory non-empty reason; blanket, malformed, or
//! unused allows are themselves findings (`lint-allow`). `// invariant:`
//! comments document intentional panics for `serving-unwrap`, and
//! `// rbq-lint: hot` marks a function for `hot-path-alloc`.
//!
//! No `syn`, no filesystem crates: the build environment is offline, so the
//! lexer in [`lexer`] is hand-rolled (raw strings, char literals vs
//! lifetimes, nested block comments, `#[cfg(test)]` scoping).

pub mod lexer;
pub mod rules;
pub mod scope;

use lexer::{Comment, Lexed};
use scope::TestScope;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One `file:line: rule-id: message` finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A finding before suppression (no file yet — per-file rules add it).
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// A parsed `// rbq-lint: …` directive.
#[derive(Debug, Clone)]
enum DirectiveKind {
    Hot,
    Allow { rule: String, reason: String },
    Malformed(String),
}

#[derive(Debug, Clone)]
struct Directive {
    kind: DirectiveKind,
    /// Lines this directive covers (its own line if trailing, else the
    /// next code line after it).
    covers: Vec<u32>,
    line: u32,
}

/// One input file: workspace-relative path (forward slashes) + source.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub source: String,
}

/// What the engine knows about the workspace layout: which paths are
/// serving code, which files are registered kernel hot loops, and where
/// the fault-point registry and wire declaration live.
#[derive(Debug, Clone)]
pub struct Context {
    pub serving_prefixes: Vec<String>,
    pub kernel_files: Vec<String>,
    pub registry_file: String,
    pub wire_file: String,
    /// Declares `SNAPSHOT_FILE_MAGIC` (the durable snapshot format).
    pub snapshot_file: String,
    /// Declares `WAL_FILE_MAGIC` (the durable delta log format).
    pub wal_file: String,
    /// Path substrings that make an entire file test scope.
    pub test_path_markers: Vec<String>,
}

impl Context {
    /// The layout of this workspace.
    pub fn workspace() -> Self {
        Context {
            serving_prefixes: ["graph", "core", "pattern", "reach", "engine", "router"]
                .iter()
                .map(|c| format!("crates/{c}/src/"))
                .collect(),
            kernel_files: [
                "crates/graph/src/neighborhood.rs", // ball BFS
                "crates/pattern/src/dualsim.rs",    // dual-sim fixpoint
                "crates/core/src/reduction.rs",     // reduction Pick loop
                "crates/pattern/src/vf2.rs",        // VF2 step
                "crates/reach/src/parallel.rs",     // parallel reach join
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            registry_file: "crates/graph/src/faultpoint.rs".into(),
            wire_file: "crates/engine/src/wire.rs".into(),
            snapshot_file: "crates/graph/src/snapshot.rs".into(),
            wal_file: "crates/graph/src/wal.rs".into(),
            test_path_markers: ["tests/", "benches/", "examples/", "fixtures/"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

/// Per-file analysis shared by every rule.
pub struct Analysis {
    pub path: String,
    pub lexed: Lexed,
    pub scope: TestScope,
    pub serving: bool,
    pub kernel: bool,
    /// Lines annotated `// rbq-lint: hot` (the comment's line).
    pub hot_lines: Vec<u32>,
    /// Line coverage of `// invariant:` comments.
    invariant_cover: BTreeSet<u32>,
    directives: Vec<Directive>,
}

impl Analysis {
    pub fn invariant_covers(&self, line: u32) -> bool {
        self.invariant_cover.contains(&line)
    }
}

/// Lines a comment covers: its own line when it trails code, otherwise the
/// next line carrying a code token.
fn comment_cover(c: &Comment, code_lines: &BTreeSet<u32>) -> Vec<u32> {
    if code_lines.contains(&c.line) {
        vec![c.line]
    } else {
        code_lines
            .range(c.end_line + 1..)
            .next()
            .map(|l| vec![*l])
            .unwrap_or_default()
    }
}

fn parse_directive(text: &str) -> Option<DirectiveKind> {
    let t = text.trim();
    let rest = t.strip_prefix("rbq-lint:")?.trim();
    if rest == "hot" || rest.starts_with("hot ") {
        return Some(DirectiveKind::Hot);
    }
    if let Some(args) = rest.strip_prefix("allow") {
        let args = args.trim();
        let inner = args
            .strip_prefix('(')
            .and_then(|a| a.strip_suffix(')'))
            .map(str::trim);
        let Some(inner) = inner else {
            return Some(DirectiveKind::Malformed(
                "allow needs the form allow(rule-id, \"reason\")".into(),
            ));
        };
        let (rule, reason) = match inner.split_once(',') {
            Some((r, rest)) => (r.trim(), rest.trim()),
            None => (inner, ""),
        };
        if rule == "*" || rule.eq_ignore_ascii_case("all") {
            return Some(DirectiveKind::Malformed(
                "blanket allows are forbidden — name one rule id".into(),
            ));
        }
        if !rules::RULES.contains(&rule) {
            return Some(DirectiveKind::Malformed(format!(
                "unknown rule id {rule:?} in allow"
            )));
        }
        let reason = reason
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            return Some(DirectiveKind::Malformed(
                "allow requires a non-empty quoted reason".into(),
            ));
        }
        return Some(DirectiveKind::Allow {
            rule: rule.to_string(),
            reason: reason.to_string(),
        });
    }
    Some(DirectiveKind::Malformed(format!(
        "unrecognized rbq-lint directive {rest:?} (expected `hot` or `allow(rule, \"reason\")`)"
    )))
}

fn analyze(ctx: &Context, file: &SourceFile, lexed: Lexed) -> Analysis {
    let mut scope = scope::test_scope(&lexed.tokens);
    if ctx
        .test_path_markers
        .iter()
        .any(|m| file.path.starts_with(m.as_str()) || file.path.contains(&format!("/{m}")))
    {
        scope.whole_file = true;
    }
    let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut hot_lines = Vec::new();
    let mut invariant_cover = BTreeSet::new();
    let mut directives = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim();
        if text.starts_with("invariant:") {
            invariant_cover.extend(comment_cover(c, &code_lines));
            continue;
        }
        if let Some(kind) = parse_directive(&c.text) {
            if matches!(kind, DirectiveKind::Hot) {
                hot_lines.push(c.line);
            }
            directives.push(Directive {
                kind,
                covers: comment_cover(c, &code_lines),
                line: c.line,
            });
        }
    }
    Analysis {
        path: file.path.clone(),
        serving: ctx
            .serving_prefixes
            .iter()
            .any(|p| file.path.starts_with(p.as_str())),
        kernel: ctx.kernel_files.contains(&file.path),
        lexed,
        scope,
        hot_lines,
        invariant_cover,
        directives,
    }
}

/// Run every rule over `files`, apply suppression, and return the sorted
/// diagnostics. `files` is the whole set to check — the cross-file rules
/// (`faultpoint-registry`, `wire-version`, `snapshot-version`) read their
/// declarations from `ctx.registry_file` / `ctx.wire_file` /
/// `ctx.snapshot_file` / `ctx.wal_file` if present in the set.
pub fn run(ctx: &Context, files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut analyses: Vec<Analysis> = Vec::new();
    for f in files {
        match lexer::lex(&f.source) {
            Ok(lexed) => analyses.push(analyze(ctx, f, lexed)),
            Err(e) => diags.push(Diagnostic {
                file: f.path.clone(),
                line: e.line,
                rule: "parse".into(),
                message: e.message,
            }),
        }
    }

    // Cross-file declarations.
    let registry = analyses
        .iter()
        .find(|a| a.path == ctx.registry_file)
        .and_then(rules::parse_registry);
    let mut wire_decl = None;
    let mut wire_decl_findings = Vec::new();
    if let Some(a) = analyses.iter().find(|a| a.path == ctx.wire_file) {
        wire_decl = rules::parse_wire_decl(a, &mut wire_decl_findings);
    }
    let mut snapshot_decl_findings = Vec::new();
    let snapshot_decl = analyses
        .iter()
        .find(|a| a.path == ctx.snapshot_file)
        .and_then(|a| {
            rules::parse_magic_decl(
                a,
                "SNAPSHOT_FILE_MAGIC",
                "snapshot",
                &mut snapshot_decl_findings,
            )
        });
    let mut wal_decl_findings = Vec::new();
    let wal_decl = analyses
        .iter()
        .find(|a| a.path == ctx.wal_file)
        .and_then(|a| rules::parse_magic_decl(a, "WAL_FILE_MAGIC", "wal", &mut wal_decl_findings));
    // One combined declaration set drives the occurrence checker, so a
    // `#rbq-snapshot` literal anywhere in the workspace is checked against
    // the snapshot module's declared version.
    let header_decl = {
        let mut headers: Vec<rules::HeaderDecl> = wire_decl.map(|d| d.headers).unwrap_or_default();
        headers.extend(snapshot_decl);
        headers.extend(wal_decl);
        (!headers.is_empty()).then_some(rules::WireDecl { headers })
    };

    // Per-file rules.
    let mut fire_sites = Vec::new();
    let mut per_file: Vec<(usize, Vec<RawFinding>)> = Vec::new();
    for (ai, a) in analyses.iter().enumerate() {
        let mut raw = Vec::new();
        if a.serving {
            rules::serving_unwrap(a, &mut raw);
            rules::lock_relock(a, &mut raw);
        }
        if a.kernel {
            rules::cancel_coverage(a, &mut raw);
        }
        rules::hot_path_alloc(a, &mut raw);
        rules::collect_fire_sites(a, &mut fire_sites);
        if let Some(decl) = &header_decl {
            rules::wire_version(a, decl, &mut raw);
        }
        if a.path == ctx.wire_file {
            raw.append(&mut wire_decl_findings);
        }
        if a.path == ctx.snapshot_file {
            raw.append(&mut snapshot_decl_findings);
        }
        if a.path == ctx.wal_file {
            raw.append(&mut wal_decl_findings);
        }
        per_file.push((ai, raw));
    }

    // faultpoint-registry: both directions.
    if let Some(entries) = &registry {
        let reg_idx = analyses
            .iter()
            .position(|a| a.path == ctx.registry_file)
            .unwrap_or(0);
        let mut reg_findings = Vec::new();
        let mut seen = BTreeSet::new();
        for e in entries {
            if !seen.insert(e.name.as_str()) {
                reg_findings.push(RawFinding {
                    line: e.line,
                    rule: rules::FAULTPOINT_REGISTRY,
                    message: format!("duplicate registry entry {:?}", e.name),
                });
            }
            if !fire_sites.iter().any(|s| s.name == e.name) {
                reg_findings.push(RawFinding {
                    line: e.line,
                    rule: rules::FAULTPOINT_REGISTRY,
                    message: format!(
                        "registered fault point {:?} is never fired outside tests",
                        e.name
                    ),
                });
            }
        }
        for (ai, a) in analyses.iter().enumerate() {
            let mut raw: Vec<RawFinding> = fire_sites
                .iter()
                .filter(|s| s.file == a.path)
                .filter(|s| !entries.iter().any(|e| e.name == s.name))
                .map(|s| RawFinding {
                    line: s.line,
                    rule: rules::FAULTPOINT_REGISTRY,
                    message: format!(
                        "fault point {:?} is not declared in the REGISTRY ({})",
                        s.name, ctx.registry_file
                    ),
                })
                .collect();
            if ai == reg_idx {
                raw.append(&mut reg_findings);
            }
            if let Some((_, v)) = per_file.iter_mut().find(|(i, _)| *i == ai) {
                v.append(&mut raw);
            }
        }
    } else if analyses.iter().any(|a| a.path == ctx.registry_file) {
        diags.push(Diagnostic {
            file: ctx.registry_file.clone(),
            line: 1,
            rule: rules::FAULTPOINT_REGISTRY.into(),
            message: "fault-point module declares no REGISTRY const".into(),
        });
    }

    // Suppression: reasoned allows consume findings; everything else lands
    // in the output. Allows that consume nothing are themselves findings.
    for (ai, raw) in per_file {
        let a = &analyses[ai];
        let mut used = vec![false; a.directives.len()];
        for f in raw {
            let allow = a.directives.iter().enumerate().find(|(_, d)| {
                matches!(&d.kind, DirectiveKind::Allow { rule, .. }
                    if *rule == f.rule && d.covers.contains(&f.line))
            });
            if let Some((di, _)) = allow {
                used[di] = true;
            } else {
                diags.push(Diagnostic {
                    file: a.path.clone(),
                    line: f.line,
                    rule: f.rule.into(),
                    message: f.message,
                });
            }
        }
        for (di, d) in a.directives.iter().enumerate() {
            match &d.kind {
                DirectiveKind::Malformed(m) => diags.push(Diagnostic {
                    file: a.path.clone(),
                    line: d.line,
                    rule: rules::LINT_ALLOW.into(),
                    message: m.clone(),
                }),
                DirectiveKind::Allow { rule, reason } if !used[di] => diags.push(Diagnostic {
                    file: a.path.clone(),
                    line: d.line,
                    rule: rules::LINT_ALLOW.into(),
                    message: format!(
                        "allow({rule}, {reason:?}) suppresses nothing — remove it (audited \
                         suppressions must stay attached to a real finding)"
                    ),
                }),
                _ => {}
            }
        }
    }

    diags.sort();
    diags
}

/// Walk the workspace under `root`, collecting every `.rs` file outside
/// `vendor/`, `target/`, `.git/`, and the lint crate itself (whose fixture
/// corpus is violations by design).
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let skip_top = ["vendor", "target", ".git", ".github"];
    let mut stack = vec![PathBuf::from(root)];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if path.is_dir() {
                if skip_top.contains(&rel.as_str()) || rel == "crates/lint" {
                    continue;
                }
                stack.push(path);
            } else if rel.ends_with(".rs") {
                files.push(SourceFile {
                    path: rel,
                    source: std::fs::read_to_string(&path)?,
                });
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Check the workspace at `root` with the standard [`Context::workspace`]
/// layout. The declaration files must exist — a refactor that moves or
/// deletes them must move the lint's anchors too, loudly.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let ctx = Context::workspace();
    let files = collect_workspace_files(root)?;
    let mut diags = run(&ctx, &files);
    for anchor in [
        &ctx.registry_file,
        &ctx.wire_file,
        &ctx.snapshot_file,
        &ctx.wal_file,
    ] {
        if !files.iter().any(|f| f.path == *anchor) {
            diags.push(Diagnostic {
                file: anchor.clone(),
                line: 1,
                rule: "anchor".into(),
                message: "declaration file missing — update the lint's Context if it moved".into(),
            });
        }
    }
    for k in &ctx.kernel_files {
        if !files.iter().any(|f| f.path == *k) {
            diags.push(Diagnostic {
                file: k.clone(),
                line: 1,
                rule: "anchor".into(),
                message: "registered kernel file missing — update the lint's Context if it moved"
                    .into(),
            });
        }
    }
    diags.sort();
    Ok(diags)
}

/// Locate the workspace root at or above `start` (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Run the full check and print findings to stderr; returns the number of
/// findings. Shared by the `rbq-lint` binary and the `rbq lint` subcommand.
pub fn check_and_report(root: &Path) -> std::io::Result<usize> {
    let diags = check_workspace(root)?;
    for d in &diags {
        eprintln!("{d}");
    }
    if diags.is_empty() {
        eprintln!("rbq-lint: clean");
    } else {
        eprintln!("rbq-lint: {} finding(s)", diags.len());
    }
    Ok(diags.len())
}
