//! Anchored subgraph isomorphism in the style of VF2 (Cordella et al. [11]).
//!
//! A match of `Q` in `G` is an injective mapping `h : V_p → V` with
//! `h(u_p) = v_p`, label-preserving, and edge-preserving: `(u, u') ∈ E_p`
//! implies `(h(u), h(u')) ∈ E` (§2; the matched subgraph `G'` is taken to be
//! the image of `Q`, so the embedding is non-induced). The answer `Q(G)` is
//! the set of images `h(u_o)` over all embeddings.
//!
//! The enumerator is anchored at the personalized pair, explores query nodes
//! in a connectivity-aware order, and prunes by label, degree, and mapped-
//! neighbor consistency. `VF2OPT` — the paper's optimized baseline —
//! restricts the search to the `d_Q`-neighborhood `G_dQ(v_p)` first.

use crate::pattern::{PNode, ResolvedPattern};
use crate::strongsim::ball_nodes;
use rbq_graph::{CancelTicker, CancelToken, Graph, GraphView, NodeId};
use rustc_hash::FxHashSet;

/// Knobs for the VF2 enumerator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Vf2Config {
    /// Stop after this many *search steps* (candidate probes). `None` means
    /// run to exhaustion. A hit is reported in [`Vf2Outcome::truncated`].
    pub max_steps: Option<u64>,
    /// Cooperative deadline, checked alongside the step counter; on expiry
    /// the search unwinds with a [`rbq_graph::CancelPanic`] tagged
    /// `"vf2.step"`.
    pub cancel: CancelToken,
}

/// Result of a VF2 enumeration.
#[derive(Debug, Clone)]
pub struct Vf2Outcome {
    /// Sorted, deduplicated images of the output node across all embeddings.
    pub output_matches: Vec<NodeId>,
    /// Number of complete embeddings found.
    pub embeddings: u64,
    /// Whether the step budget was exhausted before exhaustion.
    pub truncated: bool,
}

/// Enumerate all output-node matches of `q` in `g` by anchored subgraph
/// isomorphism.
pub fn vf2_all_output_matches<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    config: Vf2Config,
) -> Vf2Outcome {
    vf2_impl(q, g, config, None)
}

/// The paper's `VF2OPT` baseline: VF2 restricted to the `d_Q`-neighborhood
/// `G_dQ(v_p)` (every match must lie inside it, by data locality of
/// subgraph queries).
pub fn vf2_opt(q: &ResolvedPattern, g: &Graph, config: Vf2Config) -> Vf2Outcome {
    let ball = ball_nodes(g, q.vp(), q.dq());
    vf2_impl(q, g, config, Some(&ball))
}

/// Core backtracking enumerator. `restrict`, when present, confines data
/// nodes to the given **sorted** id slice (membership is a binary search).
fn vf2_impl<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    config: Vf2Config,
    restrict: Option<&[NodeId]>,
) -> Vf2Outcome {
    let p = q.pattern();
    let n = p.node_count();
    let vp = q.vp();
    let mut outcome = Vf2Outcome {
        output_matches: Vec::new(),
        embeddings: 0,
        truncated: false,
    };
    let allowed = |v: NodeId| restrict.is_none_or(|r| r.binary_search(&v).is_ok());

    if !g.contains(vp) || g.label(vp) != q.label(q.up()) || !allowed(vp) {
        return outcome;
    }

    // Query-node visit order: BFS over the undirected pattern from u_p so
    // every node (in a connected pattern) has a previously mapped neighbor;
    // stragglers of disconnected patterns are appended arbitrarily.
    let order = connectivity_order(q);

    let mut mapping: Vec<Option<NodeId>> = vec![None; n];
    let mut used: FxHashSet<NodeId> = FxHashSet::default();
    mapping[q.up().index()] = Some(vp);
    used.insert(vp);

    let mut steps: u64 = 0;
    let mut cancel = CancelTicker::new(config.cancel);
    let mut found: FxHashSet<NodeId> = FxHashSet::default();

    // Depth starts at 1: order[0] == u_p is pre-mapped.
    backtrack(
        q,
        g,
        &order,
        1,
        &mut mapping,
        &mut used,
        &mut steps,
        config.max_steps,
        &mut cancel,
        &mut found,
        &mut outcome,
        &allowed,
    );

    outcome.output_matches = found.into_iter().collect();
    outcome.output_matches.sort_unstable();
    outcome
}

/// BFS order over the undirected pattern starting at `u_p`.
fn connectivity_order(q: &ResolvedPattern) -> Vec<PNode> {
    let p = q.pattern();
    let n = p.node_count();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[q.up().index()] = true;
    queue.push_back(q.up());
    // rbq-lint: allow(cancel-coverage, "bounded by pattern size |Vp| (a handful of nodes), not by |G|")
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &w in p.out(u).iter().chain(p.inn(u)) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    for u in p.nodes() {
        if !seen[u.index()] {
            order.push(u);
        }
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn backtrack<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    order: &[PNode],
    depth: usize,
    mapping: &mut Vec<Option<NodeId>>,
    used: &mut FxHashSet<NodeId>,
    steps: &mut u64,
    max_steps: Option<u64>,
    cancel: &mut CancelTicker,
    found: &mut FxHashSet<NodeId>,
    outcome: &mut Vf2Outcome,
    allowed: &dyn Fn(NodeId) -> bool,
) {
    if outcome.truncated {
        return;
    }
    if depth == order.len() {
        outcome.embeddings += 1;
        // invariant: `depth == order.len()` means every pattern node —
        // including `uo` — was assigned an image on the way down.
        let img = mapping[q.uo().index()].expect("complete mapping");
        found.insert(img);
        return;
    }
    let u = order[depth];
    let p = q.pattern();

    // Candidate generation: prefer expanding from an already-mapped pattern
    // neighbor (its data image's adjacency), falling back to a label scan.
    // Slice-backed adjacency copies in one memcpy via `as_slice`.
    let collect = |nb: rbq_graph::Neighbors<'_>| match nb.as_slice() {
        Some(s) => s.to_vec(),
        None => nb.collect(),
    };
    let mut candidates: Vec<NodeId> = Vec::new();
    let mut anchored = false;
    for &w in p.out(u) {
        if let Some(img) = mapping[w.index()] {
            candidates = collect(g.in_neighbors(img));
            anchored = true;
            break;
        }
    }
    if !anchored {
        for &w in p.inn(u) {
            if let Some(img) = mapping[w.index()] {
                candidates = collect(g.out_neighbors(img));
                anchored = true;
                break;
            }
        }
    }
    if !anchored {
        // Label-partition seeding (O(1) + output on a full graph).
        let lu = q.label(u);
        g.for_each_node_with_label(lu, &mut |v| candidates.push(v));
    }

    let du_out = p.out(u).len();
    let du_in = p.inn(u).len();

    for v in candidates {
        cancel.tick("vf2.step");
        rbq_graph::faultpoint::fire("vf2.step");
        if let Some(m) = max_steps {
            *steps += 1;
            if *steps > m {
                outcome.truncated = true;
                return;
            }
        }
        if !allowed(v) || used.contains(&v) || g.label(v) != q.label(u) {
            continue;
        }
        if g.out_degree(v) < du_out || g.in_degree(v) < du_in {
            continue;
        }
        // Full consistency with every already-mapped pattern neighbor.
        let mut ok = true;
        for &w in p.out(u) {
            if let Some(img) = mapping[w.index()] {
                if !g.has_edge(v, img) {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            for &w in p.inn(u) {
                if let Some(img) = mapping[w.index()] {
                    if !g.has_edge(img, v) {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if !ok {
            continue;
        }
        mapping[u.index()] = Some(v);
        used.insert(v);
        backtrack(
            q,
            g,
            order,
            depth + 1,
            mapping,
            used,
            steps,
            max_steps,
            cancel,
            found,
            outcome,
            allowed,
        );
        mapping[u.index()] = None;
        used.remove(&v);
        if outcome.truncated {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{fig1_pattern, PatternBuilder};
    use rbq_graph::GraphBuilder;

    fn fig1_graph() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let hg1 = b.add_node("HG");
        let hgm = b.add_node("HG");
        let cc1 = b.add_node("CC");
        let cc2 = b.add_node("CC");
        let cc3 = b.add_node("CC");
        let cl1 = b.add_node("CL");
        let cln_1 = b.add_node("CL");
        let cln = b.add_node("CL");
        b.add_edge(michael, hg1);
        b.add_edge(michael, hgm);
        b.add_edge(michael, cc1);
        b.add_edge(michael, cc3);
        b.add_edge(cc2, cl1);
        b.add_edge(cc1, cln_1);
        b.add_edge(cc1, cln);
        b.add_edge(cc3, cln);
        b.add_edge(hgm, cln_1);
        b.add_edge(hgm, cln);
        let g = b.build();
        (g, vec![michael, hg1, hgm, cc1, cc2, cc3, cl1, cln_1, cln])
    }

    #[test]
    fn fig1_isomorphism_matches() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let out = vf2_all_output_matches(&q, &g, Vf2Config::default());
        // Isomorphic embeddings: Michael->cc1->cln-1<-hgm<-Michael,
        // Michael->cc1->cln<-hgm, Michael->cc3->cln<-hgm.
        assert_eq!(out.output_matches, vec![ids[7], ids[8]]);
        assert_eq!(out.embeddings, 3);
        assert!(!out.truncated);
    }

    #[test]
    fn vf2_opt_agrees_with_unrestricted() {
        let (g, _) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let a = vf2_all_output_matches(&q, &g, Vf2Config::default());
        let b = vf2_opt(&q, &g, Vf2Config::default());
        assert_eq!(a.output_matches, b.output_matches);
        assert_eq!(a.embeddings, b.embeddings);
    }

    #[test]
    fn injectivity_enforced() {
        // Pattern needs two distinct A children; graph has only one.
        let mut gb = GraphBuilder::new();
        let p = gb.add_node("P");
        let a = gb.add_node("A");
        gb.add_edge(p, a);
        let g = gb.build();
        let mut pb = PatternBuilder::new();
        let qp = pb.add_node("P");
        let qa1 = pb.add_node("A");
        let qa2 = pb.add_node("A");
        pb.add_edge(qp, qa1).add_edge(qp, qa2);
        pb.personalized(qp).output(qa1);
        let q = pb.build().resolve(&g).unwrap();
        let out = vf2_all_output_matches(&q, &g, Vf2Config::default());
        assert!(out.output_matches.is_empty());
        assert_eq!(out.embeddings, 0);
    }

    #[test]
    fn two_distinct_children_found() {
        let mut gb = GraphBuilder::new();
        let p = gb.add_node("P");
        let a1 = gb.add_node("A");
        let a2 = gb.add_node("A");
        gb.add_edge(p, a1);
        gb.add_edge(p, a2);
        let g = gb.build();
        let mut pb = PatternBuilder::new();
        let qp = pb.add_node("P");
        let qa1 = pb.add_node("A");
        let qa2 = pb.add_node("A");
        pb.add_edge(qp, qa1).add_edge(qp, qa2);
        pb.personalized(qp).output(qa1);
        let q = pb.build().resolve(&g).unwrap();
        let out = vf2_all_output_matches(&q, &g, Vf2Config::default());
        assert_eq!(out.output_matches, vec![a1, a2]);
        assert_eq!(out.embeddings, 2);
    }

    #[test]
    fn non_induced_semantics_extra_edges_ok() {
        // Graph has an extra edge a->p not demanded by the pattern.
        let mut gb = GraphBuilder::new();
        let p = gb.add_node("P");
        let a = gb.add_node("A");
        gb.add_edge(p, a);
        gb.add_edge(a, p);
        let g = gb.build();
        let mut pb = PatternBuilder::new();
        let qp = pb.add_node("P");
        let qa = pb.add_node("A");
        pb.add_edge(qp, qa);
        pb.personalized(qp).output(qa);
        let q = pb.build().resolve(&g).unwrap();
        let out = vf2_all_output_matches(&q, &g, Vf2Config::default());
        assert_eq!(out.output_matches, vec![a]);
    }

    #[test]
    fn isomorphism_stricter_than_simulation() {
        // Strong simulation matches a 2-cycle pattern onto a longer even
        // cycle via relation semantics; isomorphism cannot if labels force
        // distinct images. Pattern: p->a->b->p (3-cycle). Data: p->a->b
        // (no closing edge).
        let mut gb = GraphBuilder::new();
        let p = gb.add_node("P");
        let a = gb.add_node("A");
        let b = gb.add_node("B");
        gb.add_edge(p, a);
        gb.add_edge(a, b);
        let g = gb.build();
        let mut pb = PatternBuilder::new();
        let qp = pb.add_node("P");
        let qa = pb.add_node("A");
        let qb = pb.add_node("B");
        pb.add_edge(qp, qa).add_edge(qa, qb).add_edge(qb, qp);
        pb.personalized(qp).output(qb);
        let q = pb.build().resolve(&g).unwrap();
        let out = vf2_all_output_matches(&q, &g, Vf2Config::default());
        assert!(out.output_matches.is_empty());
    }

    #[test]
    fn step_budget_truncates() {
        // A dense-ish bipartite blow-up to force many probes with a tiny cap.
        let mut gb = GraphBuilder::new();
        let p = gb.add_node("P");
        let layer1: Vec<_> = (0..8).map(|_| gb.add_node("A")).collect();
        let layer2: Vec<_> = (0..8).map(|_| gb.add_node("B")).collect();
        for &x in &layer1 {
            gb.add_edge(p, x);
            for &y in &layer2 {
                gb.add_edge(x, y);
            }
        }
        let g = gb.build();
        let mut pb = PatternBuilder::new();
        let qp = pb.add_node("P");
        let qa = pb.add_node("A");
        let qb1 = pb.add_node("B");
        let qb2 = pb.add_node("B");
        pb.add_edge(qp, qa).add_edge(qa, qb1).add_edge(qa, qb2);
        pb.personalized(qp).output(qb1);
        let q = pb.build().resolve(&g).unwrap();
        let full = vf2_all_output_matches(&q, &g, Vf2Config::default());
        assert_eq!(full.output_matches.len(), 8);
        assert!(!full.truncated);
        let capped = vf2_all_output_matches(
            &q,
            &g,
            Vf2Config {
                max_steps: Some(5),
                ..Default::default()
            },
        );
        assert!(capped.truncated);
        assert!(capped.output_matches.len() <= full.output_matches.len());
    }

    #[test]
    fn single_node_pattern_maps_to_vp() {
        let (g, ids) = fig1_graph();
        let mut pb = PatternBuilder::new();
        let m = pb.add_node("Michael");
        pb.personalized(m).output(m);
        let q = pb.build().resolve(&g).unwrap();
        let out = vf2_all_output_matches(&q, &g, Vf2Config::default());
        assert_eq!(out.output_matches, vec![ids[0]]);
        assert_eq!(out.embeddings, 1);
    }

    #[test]
    fn degree_prefilter_does_not_lose_matches() {
        // Candidate with exactly matching degrees must be kept.
        let mut gb = GraphBuilder::new();
        let p = gb.add_node("P");
        let a = gb.add_node("A");
        let b = gb.add_node("B");
        gb.add_edge(p, a);
        gb.add_edge(a, b);
        let g = gb.build();
        let mut pb = PatternBuilder::new();
        let qp = pb.add_node("P");
        let qa = pb.add_node("A");
        let qb = pb.add_node("B");
        pb.add_edge(qp, qa).add_edge(qa, qb);
        pb.personalized(qp).output(qb);
        let q = pb.build().resolve(&g).unwrap();
        let out = vf2_all_output_matches(&q, &g, Vf2Config::default());
        assert_eq!(out.output_matches, vec![b]);
    }
}
