//! Dual simulation — the fixpoint both strong simulation and the dynamic
//! reduction's accuracy arguments build on.
//!
//! A binary relation `R ⊆ V_p × V` is a *dual simulation* if for every
//! `(u, v) ∈ R`: labels agree, and (a) every query child `u'` of `u` has a
//! match `v'` among `v`'s children with `(u', v') ∈ R`, and (b) every query
//! parent `u''` of `u` has a match among `v`'s parents (paper §2,
//! conditions (a)/(b)). There is a unique **maximum** dual simulation, which
//! this module computes by iterated pruning, seeded with the personalized
//! pair `(u_p, v_p)`.

use crate::pattern::{PNode, ResolvedPattern};
use rbq_graph::{GraphView, NodeId};
use rustc_hash::FxHashSet;

/// The maximum dual-simulation relation, as per-query-node match sets.
#[derive(Debug, Clone)]
pub struct DualSim {
    sim: Vec<FxHashSet<NodeId>>,
}

impl DualSim {
    /// Matches of query node `u`.
    pub fn matches(&self, u: PNode) -> &FxHashSet<NodeId> {
        &self.sim[u.index()]
    }

    /// Matches of `u` as a sorted vector (deterministic order).
    pub fn matches_sorted(&self, u: PNode) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.sim[u.index()].iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// All data nodes participating in the relation (the match-graph nodes).
    pub fn all_matched(&self) -> FxHashSet<NodeId> {
        let mut s = FxHashSet::default();
        for m in &self.sim {
            s.extend(m.iter().copied());
        }
        s
    }

    /// Whether `(u, v)` is in the relation.
    pub fn contains(&self, u: PNode, v: NodeId) -> bool {
        self.sim[u.index()].contains(&v)
    }
}

/// Compute the maximum dual simulation of `q` in `g`, optionally restricted
/// to a node `universe`, seeded with `(u_p, v_p)`.
///
/// Returns `None` if no total relation exists (some query node has no match,
/// or `v_p` is pruned). The `universe`, when given, must be a subset of the
/// view's nodes; only those nodes may appear in the relation — this is how
/// ball-restricted relations `R_{v0}` are computed without copying balls.
pub fn dual_simulation<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    universe: Option<&FxHashSet<NodeId>>,
) -> Option<DualSim> {
    let p = q.pattern();
    let n = p.node_count();
    let in_universe = |v: NodeId| universe.is_none_or(|u| u.contains(&v));

    // Personalized seed must be present and well-labeled.
    if !g.contains(q.vp()) || !in_universe(q.vp()) || g.label(q.vp()) != q.label(q.up()) {
        return None;
    }

    // Initialize candidate sets by label.
    let mut sim: Vec<FxHashSet<NodeId>> = vec![FxHashSet::default(); n];
    for u in p.nodes() {
        if u == q.up() {
            sim[u.index()].insert(q.vp());
            continue;
        }
        let lu = q.label(u);
        match universe {
            Some(uni) => {
                for &v in uni {
                    if g.contains(v) && g.label(v) == lu {
                        sim[u.index()].insert(v);
                    }
                }
            }
            None => {
                for v in g.node_ids() {
                    if g.label(v) == lu {
                        sim[u.index()].insert(v);
                    }
                }
            }
        }
        if sim[u.index()].is_empty() {
            return None;
        }
    }

    // Iterated pruning to the greatest fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for u in p.nodes() {
            let ui = u.index();
            // Collect removals first to avoid aliasing sim[u] while probing
            // sim[u'] (u' may equal u on self-loop query edges).
            let mut remove: Vec<NodeId> = Vec::new();
            'cand: for &v in &sim[ui] {
                for &uc in p.out(u) {
                    let target = &sim[uc.index()];
                    let ok = g.out_neighbors(v).any(|w| target.contains(&w));
                    if !ok {
                        remove.push(v);
                        continue 'cand;
                    }
                }
                for &up_ in p.inn(u) {
                    let source = &sim[up_.index()];
                    let ok = g.in_neighbors(v).any(|w| source.contains(&w));
                    if !ok {
                        remove.push(v);
                        continue 'cand;
                    }
                }
            }
            if !remove.is_empty() {
                changed = true;
                for v in remove {
                    sim[ui].remove(&v);
                }
                if sim[ui].is_empty() {
                    return None;
                }
            }
        }
    }

    // The personalized pair must have survived.
    if !sim[q.up().index()].contains(&q.vp()) {
        return None;
    }
    Some(DualSim { sim })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{fig1_pattern, PatternBuilder};
    use rbq_graph::Graph;
    use rbq_graph::GraphBuilder;

    /// The Fig. 1 graph: Michael, hiking group members hg1..hgm, cycling
    /// club cc1..cc3, cycling lovers cl1..cln. Michael -> HG*, Michael ->
    /// cc1/cc3 (cc2 not adjacent to Michael in our reduced copy), cc1/cc3 ->
    /// cl_{n-1}, cl_n; hgm -> cl_{n-1}, cl_n; other CLs dangling.
    fn fig1_graph() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let hg1 = b.add_node("HG");
        let hgm = b.add_node("HG");
        let cc1 = b.add_node("CC");
        let cc2 = b.add_node("CC");
        let cc3 = b.add_node("CC");
        let cl1 = b.add_node("CL");
        let cln_1 = b.add_node("CL");
        let cln = b.add_node("CL");
        b.add_edge(michael, hg1);
        b.add_edge(michael, hgm);
        b.add_edge(michael, cc1);
        b.add_edge(michael, cc3);
        b.add_edge(cc2, cl1); // cc2 has a CL child but no Michael parent
        b.add_edge(cc1, cln_1);
        b.add_edge(cc1, cln);
        b.add_edge(cc3, cln);
        b.add_edge(hgm, cln_1);
        b.add_edge(hgm, cln);
        let g = b.build();
        (g, vec![michael, hg1, hgm, cc1, cc2, cc3, cl1, cln_1, cln])
    }

    #[test]
    fn fig1_dual_sim_finds_cln_matches() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        let uo = q.uo();
        let matches = d.matches_sorted(uo);
        // cl_{n-1} and cl_n both have CC and HG parents reachable from
        // Michael; cl1's only parent cc2 is pruned (no Michael parent).
        assert_eq!(matches, vec![ids[7], ids[8]]);
    }

    #[test]
    fn seed_is_fixed_to_vp() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        assert_eq!(d.matches_sorted(q.up()), vec![ids[0]]);
    }

    #[test]
    fn cc2_pruned_for_missing_parent() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        let cc_q = PNode(1);
        assert!(!d.contains(cc_q, ids[4]), "cc2 must be pruned");
        assert!(d.contains(cc_q, ids[3]));
        assert!(d.contains(cc_q, ids[5]));
    }

    #[test]
    fn hg_without_cl_child_pruned() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        let hg_q = PNode(2);
        assert!(!d.contains(hg_q, ids[1]), "hg1 has no CL child");
        assert!(d.contains(hg_q, ids[2]));
    }

    #[test]
    fn no_match_when_label_missing_everywhere() {
        let (g, _) = fig1_graph();
        let mut pb = PatternBuilder::new();
        let m = pb.add_node("Michael");
        let cc = pb.add_node("CC");
        let cl = pb.add_node("CL");
        pb.add_edge(m, cc).add_edge(cc, cl).add_edge(cl, m); // CL -> Michael edge exists nowhere
        pb.personalized(m).output(cl);
        let q = pb.build().resolve(&g).unwrap();
        assert!(dual_simulation(&q, &g, None).is_none());
    }

    #[test]
    fn universe_restriction_prunes() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        // Universe excludes cc1 and cc3 -> no CC candidate with a Michael
        // parent -> no relation.
        let uni: FxHashSet<NodeId> = ids
            .iter()
            .copied()
            .filter(|&v| v != ids[3] && v != ids[5])
            .collect();
        assert!(dual_simulation(&q, &g, Some(&uni)).is_none());
    }

    #[test]
    fn universe_missing_vp_fails() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let uni: FxHashSet<NodeId> = ids[1..].iter().copied().collect();
        assert!(dual_simulation(&q, &g, Some(&uni)).is_none());
    }

    #[test]
    fn single_node_pattern_matches_vp_only() {
        let (g, ids) = fig1_graph();
        let mut pb = PatternBuilder::new();
        let m = pb.add_node("Michael");
        pb.personalized(m).output(m);
        let q = pb.build().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        assert_eq!(d.matches_sorted(m), vec![ids[0]]);
        assert_eq!(d.all_matched().len(), 1);
    }

    #[test]
    fn self_loop_query_edge() {
        // Query: P -> A with a self loop A -> A. Data: x(P) -> y(A), y -> y.
        // y satisfies all three conditions (P parent, A parent via the self
        // loop, A child via the self loop). A decoy z(A) without a self loop
        // is pruned: it lacks an A parent in the relation.
        let mut b = GraphBuilder::new();
        let x = b.add_node("P");
        let y = b.add_node("A");
        let z = b.add_node("A");
        b.add_edge(x, y);
        b.add_edge(y, y);
        b.add_edge(x, z);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let p = pb.add_node("P");
        let a = pb.add_node("A");
        pb.add_edge(p, a).add_edge(a, a);
        pb.personalized(p).output(a);
        let q = pb.build().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        assert_eq!(d.matches_sorted(a), vec![y]);
        let _ = (x, z);
    }

    #[test]
    fn cascading_prune_empties_relation() {
        // Chain query a->b->c; data has labels a, b, c but the c node hangs
        // off the wrong parent, so pruning cascades b -> a and the relation
        // collapses.
        let mut b = GraphBuilder::new();
        let x = b.add_node("a");
        let y = b.add_node("b");
        let w = b.add_node("b"); // second b, parent of the only c
        let z = b.add_node("c");
        b.add_edge(x, y); // a -> b (this b has no c child)
        b.add_edge(w, z); // orphan b -> c (this b has no a parent)
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let pa = pb.add_node("a");
        let pb2 = pb.add_node("b");
        let pc = pb.add_node("c");
        pb.add_edge(pa, pb2).add_edge(pb2, pc);
        pb.personalized(pa).output(pc);
        let q = pb.build().resolve(&g).unwrap();
        assert!(dual_simulation(&q, &g, None).is_none());
    }

    #[test]
    fn all_matched_collects_union() {
        let (g, _) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        // Michael + hgm + cc1 + cc3 + cln-1 + cln = 6
        assert_eq!(d.all_matched().len(), 6);
    }
}
