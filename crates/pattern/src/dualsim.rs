//! Dual simulation — the fixpoint both strong simulation and the dynamic
//! reduction's accuracy arguments build on.
//!
//! A binary relation `R ⊆ V_p × V` is a *dual simulation* if for every
//! `(u, v) ∈ R`: labels agree, and (a) every query child `u'` of `u` has a
//! match `v'` among `v`'s children with `(u', v') ∈ R`, and (b) every query
//! parent `u''` of `u` has a match among `v`'s parents (paper §2,
//! conditions (a)/(b)). There is a unique **maximum** dual simulation, which
//! this module computes seeded with the personalized pair `(u_p, v_p)`.
//!
//! ## Algorithm
//!
//! The fixpoint is computed by the counter-based worklist algorithm (in the
//! tradition of Henzinger–Henzinger–Kopke's efficient simulation): for every
//! query edge `(a, b)` and candidate `v` of `a`, a counter holds
//! `|out(v) ∩ sim(b)|`; symmetrically for parents. A pair is removed exactly
//! when one of its counters reaches zero, and each removal decrements only
//! the counters of the removed node's data neighbors — so total work is
//! `O((|V_p| + |E_p|) · (|V| + |E|))` instead of the naive algorithm's
//! repeated full re-sweeps. Match sets are sorted candidate vectors with a
//! dense alive mask, not hash sets: probes are binary searches, results are
//! borrowed sorted slices, and the inner loops never allocate per probe
//! (adjacency comes from [`GraphView`]'s slice-backed
//! [`rbq_graph::Neighbors`]).
//!
//! The naive iterated-pruning fixpoint is retained under `#[cfg(test)]` as
//! the differential oracle for the property tests below.
//!
//! ## Scratch threading
//!
//! Every per-call allocation of the fixpoint (candidate lists, alive masks,
//! counters, membership bitmaps, the worklist, the result vectors) lives in
//! a reusable [`DualSimScratch`]. The `_with` entry points
//! ([`dual_simulation_with`], [`dual_simulation_screened_with`]) borrow the
//! scratch and return a borrowed [`DualSimRef`] — strong simulation holds
//! one scratch per query and evaluates hundreds of balls through it with
//! zero steady-state allocation, the way [`rbq_graph::BallScratch`] already
//! serves the ball BFS. The original [`dual_simulation`] /
//! [`dual_simulation_screened`] remain as one-shot conveniences over a
//! fresh scratch.

use crate::pattern::{PNode, ResolvedPattern};
use rbq_graph::{GraphView, NodeId};

/// The maximum dual-simulation relation, as per-query-node match sets.
///
/// Match sets are sorted, deduplicated vectors: deterministic order is
/// inherent, and [`DualSim::matches_sorted`] is a borrowed slice.
#[derive(Debug, Clone)]
pub struct DualSim {
    sim: Vec<Vec<NodeId>>,
}

impl DualSim {
    /// Matches of query node `u`, sorted ascending.
    #[inline]
    pub fn matches(&self, u: PNode) -> &[NodeId] {
        &self.sim[u.index()]
    }

    /// Matches of `u` in deterministic (ascending) order — the same slice
    /// as [`DualSim::matches`]; kept as the name the callers grew up with.
    #[inline]
    pub fn matches_sorted(&self, u: PNode) -> &[NodeId] {
        self.matches(u)
    }

    /// All data nodes participating in the relation (the match-graph
    /// nodes), sorted and deduplicated.
    pub fn all_matched(&self) -> Vec<NodeId> {
        let mut s: Vec<NodeId> = self.sim.iter().flatten().copied().collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Whether `(u, v)` is in the relation.
    pub fn contains(&self, u: PNode, v: NodeId) -> bool {
        self.sim[u.index()].binary_search(&v).is_ok()
    }
}

/// Position of `v` in the sorted candidate list of one query node.
#[inline]
fn pos(cand: &[NodeId], v: NodeId) -> Option<usize> {
    cand.binary_search(&v).ok()
}

/// Membership test in a bitmap indexed by data-node id offset by `base`;
/// ids outside the bitmap (never candidates) are absent. Ids below `base`
/// wrap to a huge index and fall off the slice, reading as absent.
#[inline]
fn bit(words: &[u64], base: usize, v: NodeId) -> bool {
    let i = v.index().wrapping_sub(base);
    words.get(i >> 6).is_some_and(|w| (w >> (i & 63)) & 1 == 1)
}

/// Label guard for one direction: does `v` carry every label of `req`
/// (sorted, deduplicated) among its children (`out = true`) or parents?
/// Early-exits once all requirements are seen.
#[inline]
fn guard_dir<V: GraphView + ?Sized>(g: &V, v: NodeId, req: &[rbq_graph::Label], out: bool) -> bool {
    if req.is_empty() {
        return true;
    }
    if req.len() > 64 {
        // Beyond the seen-mask width the guard cannot be tracked in one
        // word; skip it (the counters below remain authoritative).
        return true;
    }
    let need: u64 = u64::MAX >> (64 - req.len());
    let mut seen = 0u64;
    let neighbors = if out {
        g.out_neighbors(v)
    } else {
        g.in_neighbors(v)
    };
    // Slice fast path: candidate screening probes every neighbor of every
    // candidate, so the generic iterator's per-element branch matters.
    match neighbors.as_slice() {
        Some(s) => {
            for &w in s {
                if let Ok(k) = req.binary_search(&g.label(w)) {
                    seen |= 1 << k;
                    if seen == need {
                        return true;
                    }
                }
            }
        }
        None => {
            for w in neighbors {
                if let Ok(k) = req.binary_search(&g.label(w)) {
                    seen |= 1 << k;
                    if seen == need {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Number of `nb` targets present in the bitmap — the counter-initialization
/// kernel, with the slice fast path.
#[inline]
fn count_members(nb: rbq_graph::Neighbors<'_>, words: &[u64], base: usize) -> u32 {
    match nb.as_slice() {
        Some(s) => s.iter().filter(|&&w| bit(words, base, w)).count() as u32,
        None => nb.filter(|&w| bit(words, base, w)).count() as u32,
    }
}

/// Compute the maximum dual simulation of `q` in `g`, optionally restricted
/// to a node `universe`, seeded with `(u_p, v_p)`.
///
/// Returns `None` if no total relation exists (some query node has no match,
/// or `v_p` is pruned). The `universe`, when given, is a **sorted,
/// deduplicated slice** of node ids (the representation
/// [`rbq_graph::BallScratch`] emits); only those nodes may appear in the
/// relation — this is how ball-restricted relations `R_{v0}` are computed
/// without copying balls or building per-ball hash sets.
pub fn dual_simulation<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    universe: Option<&[NodeId]>,
) -> Option<DualSim> {
    let mut scratch = DualSimScratch::new();
    let rel = dual_simulation_with(q, g, universe, &mut scratch)?;
    Some(rel.to_dual_sim())
}

/// [`dual_simulation`] through a reusable [`DualSimScratch`]: identical
/// answers, zero steady-state allocation. The returned [`DualSimRef`]
/// borrows the scratch's result buffers.
// rbq-lint: hot
pub fn dual_simulation_with<'s, V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    universe: Option<&[NodeId]>,
    scratch: &'s mut DualSimScratch,
) -> Option<DualSimRef<'s>> {
    debug_assert!(
        universe.is_none_or(|u| u.windows(2).all(|w| w[0] < w[1])),
        "universe must be sorted and deduplicated"
    );
    let n = q.pattern().node_count();
    {
        let DualSimScratch {
            cand,
            by_label,
            req_out,
            req_in,
            ..
        } = scratch;
        if !screen_into(q, g, universe, cand, by_label, req_out, req_in) {
            return None;
        }
    }
    if !fixpoint_scratch(q, g, scratch) {
        return None;
    }
    Some(DualSimRef {
        sim: &scratch.sim[..n],
    })
}

/// Retain only the guard-passing candidates of query node `u`: a candidate
/// must have, per query child (resp. parent) label of `u`, at least one
/// matching-labeled data child (resp. parent). Guard failures violate
/// condition (a)/(b) against the label-consistent superset of the relation,
/// so they cannot appear in the maximum dual simulation — dropping them up
/// front keeps the counter structures (and the cache-hostile worklist
/// propagation) proportional to the plausible candidates, not the label
/// frequency. `req_out`/`req_in` are caller-owned scratch, reused across
/// query nodes.
fn guard_screen<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    u: PNode,
    list: &mut Vec<NodeId>,
    req_out: &mut Vec<rbq_graph::Label>,
    req_in: &mut Vec<rbq_graph::Label>,
) {
    let p = q.pattern();
    req_out.clear();
    req_out.extend(p.out(u).iter().map(|&uc| q.label(uc)));
    req_out.sort_unstable();
    req_out.dedup();
    req_in.clear();
    req_in.extend(p.inn(u).iter().map(|&up_| q.label(up_)));
    req_in.sort_unstable();
    req_in.dedup();
    if !req_out.is_empty() || !req_in.is_empty() {
        list.retain(|&v| guard_dir(g, v, req_out, true) && guard_dir(g, v, req_in, false));
    }
}

/// Per-query-node candidate universe with label and guard screening already
/// applied, for evaluating **many** universes (balls) of the same query on
/// the same view.
///
/// Labels and the guard depend only on `(data node, query node)` — not on
/// the ball — so strong simulation builds this screen once per query and
/// intersects it with each ball, instead of re-labeling and re-guarding
/// every ball member for every center (the dominant cost of per-ball
/// evaluation once the BFS itself is cheap).
#[derive(Debug, Clone, Default)]
pub struct CandidateScreen {
    /// Sorted guarded candidates per query node (`[v_p]` for `u_p`).
    /// Buffers are recycled by [`candidate_screen_within_into`]; entries
    /// beyond the current pattern's node count are stale pool slots.
    per_node: Vec<Vec<NodeId>>,
}

impl CandidateScreen {
    /// Sorted guarded candidates of query node `u` across the whole view.
    pub fn candidates(&self, u: PNode) -> &[NodeId] {
        &self.per_node[u.index()]
    }
}

/// Build the [`CandidateScreen`] of `q` on `g`: for every query node, the
/// sorted list of same-labeled, guard-passing data nodes. Returns `None`
/// when some query node has no candidate anywhere in the view — then no
/// universe can admit a total relation.
pub fn candidate_screen<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
) -> Option<CandidateScreen> {
    let mut screen = CandidateScreen::default();
    let mut scratch = DualSimScratch::new();
    candidate_screen_within_into(q, g, None, &mut screen, &mut scratch).then_some(screen)
}

/// [`candidate_screen`] restricted to a **sorted** node `domain` — only
/// domain members are screened. Candidates are seeded in one pass over the
/// domain (each node lands in every same-labeled query node's list via a
/// tiny label → query-node table, so the lists are born sorted), then
/// guard-screened.
///
/// Strong simulation builds its screen from `N_{2d_Q}(v_p)` this way:
/// every ball it evaluates is a subset of that neighborhood, so screening
/// the whole view would be wasted work on large graphs with localized
/// queries.
pub fn candidate_screen_within<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    domain: &[NodeId],
) -> Option<CandidateScreen> {
    let mut screen = CandidateScreen::default();
    let mut scratch = DualSimScratch::new();
    candidate_screen_within_into(q, g, Some(domain), &mut screen, &mut scratch).then_some(screen)
}

/// Rebuild `screen` in place (recycling its per-query-node buffers) from
/// `domain` — `None` screens the whole view, `Some` a sorted node set. The
/// `scratch` lends the label-table and requirement buffers. Returns `false`
/// when some query node has no candidate (then `screen`'s contents are
/// unspecified and must not be read).
pub fn candidate_screen_within_into<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    domain: Option<&[NodeId]>,
    screen: &mut CandidateScreen,
    scratch: &mut DualSimScratch,
) -> bool {
    let DualSimScratch {
        by_label,
        req_out,
        req_in,
        ..
    } = scratch;
    screen_into(
        q,
        g,
        domain,
        &mut screen.per_node,
        by_label,
        req_out,
        req_in,
    )
}

/// The shared screening core: fill `per_node[..n]` (recycled buffers) with
/// the sorted, guard-passing candidates of each query node, `[v_p]` at
/// `u_p`. Returns `false` as soon as some query node has no candidate.
fn screen_into<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    domain: Option<&[NodeId]>,
    per_node: &mut Vec<Vec<NodeId>>,
    by_label: &mut Vec<(rbq_graph::Label, usize)>,
    req_out: &mut Vec<rbq_graph::Label>,
    req_in: &mut Vec<rbq_graph::Label>,
) -> bool {
    debug_assert!(
        domain.is_none_or(|d| d.windows(2).all(|w| w[0] < w[1])),
        "domain must be sorted and deduplicated"
    );
    if !g.contains(q.vp()) || g.label(q.vp()) != q.label(q.up()) {
        return false;
    }
    if let Some(d) = domain {
        if d.binary_search(&q.vp()).is_err() {
            return false;
        }
    }
    let p = q.pattern();
    let n = p.node_count();
    reuse_pool(per_node, n);
    per_node[q.up().index()].push(q.vp());
    match domain {
        Some(d) => {
            by_label.clear();
            by_label.extend(
                p.nodes()
                    .filter(|&u| u != q.up())
                    .map(|u| (q.label(u), u.index())),
            );
            for &v in d {
                if !g.contains(v) {
                    continue;
                }
                let lv = g.label(v);
                for &(l, ui) in by_label.iter() {
                    if l == lv {
                        per_node[ui].push(v);
                    }
                }
            }
        }
        None => {
            // Label partitions are emitted in ascending id order.
            for u in p.nodes() {
                if u == q.up() {
                    continue;
                }
                let list = &mut per_node[u.index()];
                g.for_each_node_with_label(q.label(u), &mut |v| list.push(v));
            }
        }
    }
    for u in p.nodes() {
        if u == q.up() {
            continue;
        }
        guard_screen(q, g, u, &mut per_node[u.index()], req_out, req_in);
        if per_node[u.index()].is_empty() {
            return false;
        }
    }
    true
}

/// [`dual_simulation`] restricted to `universe`, seeded from a prebuilt
/// [`CandidateScreen`] instead of re-screening the universe: per query node
/// the candidates are `screen ∩ universe`, a sorted-merge (galloping from
/// the smaller side) with no label or guard work. Answers are identical to
/// `dual_simulation(q, g, Some(universe))` for any `universe` that is a
/// subset of the screen's domain (the whole view for
/// [`candidate_screen`], the given node set for
/// [`candidate_screen_within`]).
pub fn dual_simulation_screened<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    universe: &[NodeId],
    screen: &CandidateScreen,
) -> Option<DualSim> {
    let mut scratch = DualSimScratch::new();
    let rel = dual_simulation_screened_with(q, g, universe, screen, &mut scratch)?;
    Some(rel.to_dual_sim())
}

/// [`dual_simulation_screened`] through a reusable [`DualSimScratch`] —
/// the per-ball hot path of strong simulation. Identical answers; the
/// intersection lists, fixpoint state, and result vectors are all recycled
/// scratch buffers.
// rbq-lint: hot
pub fn dual_simulation_screened_with<'s, V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    universe: &[NodeId],
    screen: &CandidateScreen,
    scratch: &'s mut DualSimScratch,
) -> Option<DualSimRef<'s>> {
    debug_assert!(
        universe.windows(2).all(|w| w[0] < w[1]),
        "universe must be sorted and deduplicated"
    );
    if universe.binary_search(&q.vp()).is_err() {
        return None;
    }
    let p = q.pattern();
    let n = p.node_count();
    let cand = &mut scratch.cand;
    reuse_pool(cand, n);
    cand[q.up().index()].push(q.vp());
    for u in p.nodes() {
        if u == q.up() {
            continue;
        }
        let list = &mut cand[u.index()];
        let s = screen.candidates(u);
        // Gallop from the smaller side: balls are usually much larger than
        // the guarded candidate lists (or vice versa for huge universes).
        let (small, big) = if s.len() <= universe.len() {
            (s, universe)
        } else {
            (universe, s)
        };
        for &v in small {
            if big.binary_search(&v).is_ok() {
                list.push(v);
            }
        }
        if list.is_empty() {
            return None;
        }
    }
    if !fixpoint_scratch(q, g, scratch) {
        return None;
    }
    Some(DualSimRef {
        sim: &scratch.sim[..n],
    })
}

/// Reusable state for the dual-simulation fixpoint and candidate screening:
/// candidate lists, alive masks, per-edge counters, membership bitmaps, the
/// removal worklist, and the result vectors, all recycled across calls.
///
/// One scratch serves any sequence of queries, views, and universes; every
/// buffer is (re)sized per call, so results are identical to fresh
/// construction (see the scratch-differential property tests).
#[derive(Debug, Clone, Default)]
pub struct DualSimScratch {
    /// Candidate lists per query node — the fixpoint's working relation.
    cand: Vec<Vec<NodeId>>,
    /// Alive mask per query node, parallel to `cand`.
    alive: Vec<Vec<bool>>,
    /// Live count per query node.
    alive_count: Vec<usize>,
    /// Removal worklist of (query node index, candidate position).
    worklist: Vec<(usize, usize)>,
    /// Flat membership bitmaps over the initial candidate sets.
    member_flat: Vec<u64>,
    /// Per-query-edge matched-successor counters.
    succ_cnt: Vec<Vec<u32>>,
    /// Per-query-edge matched-predecessor counters.
    pred_cnt: Vec<Vec<u32>>,
    /// Edge indices with each query node as source.
    edges_out: Vec<Vec<usize>>,
    /// Edge indices with each query node as target.
    edges_in: Vec<Vec<usize>>,
    /// Result match sets (what [`DualSimRef`] borrows).
    sim: Vec<Vec<NodeId>>,
    /// Screening: label → query-node table for the one-pass domain seeding.
    by_label: Vec<(rbq_graph::Label, usize)>,
    /// Screening: sorted required child labels.
    req_out: Vec<rbq_graph::Label>,
    /// Screening: sorted required parent labels.
    req_in: Vec<rbq_graph::Label>,
    /// Deadline ticker checked in the fixpoint's removal-propagation loop.
    cancel: rbq_graph::CancelTicker,
}

impl DualSimScratch {
    /// Fresh scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or clear) the deadline checked by every subsequent fixpoint run
    /// through this scratch. On expiry the fixpoint unwinds with a
    /// [`rbq_graph::CancelPanic`] tagged `"dualsim.fixpoint"`.
    pub fn set_cancel(&mut self, token: rbq_graph::CancelToken) {
        self.cancel.arm(token);
    }
}

/// A maximum dual simulation borrowed from a [`DualSimScratch`] — valid
/// until the scratch's next use. Match sets are sorted slices, exactly as
/// in the owned [`DualSim`].
#[derive(Debug)]
pub struct DualSimRef<'s> {
    sim: &'s [Vec<NodeId>],
}

impl<'s> DualSimRef<'s> {
    /// Matches of query node `u`, sorted ascending.
    #[inline]
    pub fn matches(&self, u: PNode) -> &'s [NodeId] {
        &self.sim[u.index()]
    }

    /// Alias of [`DualSimRef::matches`], mirroring [`DualSim`].
    #[inline]
    pub fn matches_sorted(&self, u: PNode) -> &'s [NodeId] {
        self.matches(u)
    }

    /// Whether `(u, v)` is in the relation.
    pub fn contains(&self, u: PNode, v: NodeId) -> bool {
        self.sim[u.index()].binary_search(&v).is_ok()
    }

    /// All data nodes participating in the relation, sorted and
    /// deduplicated, written into `out` (cleared first).
    pub fn all_matched_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        for s in self.sim {
            out.extend_from_slice(s);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Copy into an owned [`DualSim`].
    pub fn to_dual_sim(&self) -> DualSim {
        DualSim {
            sim: self.sim.to_vec(),
        }
    }
}

/// Grow `pool` to at least `n` entries and clear the first `n` — the
/// shared reset idiom for every recycled `Vec<Vec<_>>` buffer in the
/// pattern crate.
pub(crate) fn reuse_pool<T>(pool: &mut Vec<Vec<T>>, n: usize) {
    if pool.len() < n {
        pool.resize_with(n, Vec::new);
    }
    for v in pool[..n].iter_mut() {
        v.clear();
    }
}

/// The counter-based worklist fixpoint over the scratch's prepared
/// candidate lists (sorted, guard-screened, `[v_p]` at `u_p`) — the shared
/// core of [`dual_simulation_with`] and [`dual_simulation_screened_with`].
/// Returns `false` when no total relation exists; on `true` the result is
/// in `scratch.sim[..n]`.
fn fixpoint_scratch<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    scratch: &mut DualSimScratch,
) -> bool {
    rbq_graph::faultpoint::fire("dualsim.fixpoint");
    // Copied out (tickers are `Copy`) so the field can ride the `..` of the
    // destructure below; the counter restarting per call only means one
    // extra clock read per fixpoint, which the loop amortizes.
    let mut cancel = scratch.cancel;
    let p = q.pattern();
    let n = p.node_count();
    let DualSimScratch {
        cand,
        alive,
        alive_count,
        worklist,
        member_flat,
        succ_cnt,
        pred_cnt,
        edges_out,
        edges_in,
        sim,
        ..
    } = scratch;
    let cand = &cand[..n];

    // Alive mask + live count per query node; the relation is
    // `{(u, cand[u][i]) : alive[u][i]}` throughout.
    reuse_pool(alive, n);
    let alive = &mut alive[..n];
    for (a, c) in alive.iter_mut().zip(cand) {
        a.resize(c.len(), true);
    }
    alive_count.clear();
    alive_count.extend(cand.iter().map(Vec::len));

    // Removal worklist of (query node index, candidate position). `kill`
    // retires a pair at most once; `false` means some match set emptied.
    worklist.clear();
    fn kill(
        u: usize,
        i: usize,
        alive: &mut [Vec<bool>],
        alive_count: &mut [usize],
        worklist: &mut Vec<(usize, usize)>,
    ) -> bool {
        if !alive[u][i] {
            return true;
        }
        alive[u][i] = false;
        alive_count[u] -= 1;
        worklist.push((u, i));
        alive_count[u] > 0
    }

    // Static membership bitmaps over the *initial* candidate sets, indexed
    // by data-node id: counter initialization probes adjacency once per
    // (edge, candidate, neighbor) and must not pay a binary search each
    // time. Bitmaps stay fixed; liveness is tracked by `alive`. Indexing
    // is offset by the smallest candidate id so ball-restricted calls
    // (localized but high ids) size for the candidate id *range*, not the
    // base graph's whole id space. One flat buffer holds all n bitmaps.
    let min_id = cand
        .iter()
        .filter_map(|c| c.first())
        .map(|v| v.index())
        .min()
        .unwrap_or(0);
    let max_id = cand
        .iter()
        .filter_map(|c| c.last())
        .map(|v| v.index())
        .max()
        .unwrap_or(0);
    let words_per = ((max_id - min_id) >> 6) + 1;
    member_flat.clear();
    member_flat.resize(words_per * n, 0);
    for (u, c) in cand.iter().enumerate() {
        let words = &mut member_flat[u * words_per..(u + 1) * words_per];
        for &v in c {
            let i = v.index() - min_id;
            words[i >> 6] |= 1 << (i & 63);
        }
    }
    let member = |u: usize| &member_flat[u * words_per..(u + 1) * words_per];

    // Per-edge counters against the initial candidate sets; worklist
    // processing keeps them equal to |neighbors ∩ current sim| for every
    // still-alive pair. succ_cnt[e][i]: edge e = (a, b), candidate i of a,
    // matched children. pred_cnt[e][i]: candidate i of b, matched parents.
    // Candidates already killed by an earlier edge keep a zero counter:
    // dead pairs' counters are never consulted again.
    let edges = p.edges();
    reuse_pool(succ_cnt, edges.len());
    reuse_pool(pred_cnt, edges.len());
    for (e, &(a, b)) in edges.iter().enumerate() {
        let (ai, bi) = (a.index(), b.index());
        let sc = &mut succ_cnt[e];
        sc.resize(cand[ai].len(), 0);
        for (i, &v) in cand[ai].iter().enumerate() {
            if !alive[ai][i] {
                continue;
            }
            let c = count_members(g.out_neighbors(v), member(bi), min_id);
            sc[i] = c;
            if c == 0 && !kill(ai, i, alive, alive_count, worklist) {
                return false;
            }
        }
        let pc = &mut pred_cnt[e];
        pc.resize(cand[bi].len(), 0);
        for (i, &v) in cand[bi].iter().enumerate() {
            if !alive[bi][i] {
                continue;
            }
            let c = count_members(g.in_neighbors(v), member(ai), min_id);
            pc[i] = c;
            if c == 0 && !kill(bi, i, alive, alive_count, worklist) {
                return false;
            }
        }
    }

    // Incidence lists: which edge indices have `u` as source / target.
    reuse_pool(edges_out, n);
    reuse_pool(edges_in, n);
    for (e, &(a, b)) in edges.iter().enumerate() {
        edges_out[a.index()].push(e);
        edges_in[b.index()].push(e);
    }

    // Propagate removals to the greatest fixpoint: losing `w` from sim(u)
    // decrements the child-counter of each data parent of `w` (for edges
    // into `u`) and the parent-counter of each data child (for edges out).
    while let Some((ui, i)) = worklist.pop() {
        cancel.tick("dualsim.fixpoint");
        let w = cand[ui][i];
        for &e in &edges_in[ui] {
            let ai = edges[e].0.index();
            for x in g.in_neighbors(w) {
                // Bit test first: most data neighbors are not candidates,
                // and the bitmap filters them without a binary search.
                if !bit(member(ai), min_id, x) {
                    continue;
                }
                if let Some(j) = pos(&cand[ai], x) {
                    if alive[ai][j] {
                        succ_cnt[e][j] -= 1;
                        if succ_cnt[e][j] == 0 && !kill(ai, j, alive, alive_count, worklist) {
                            return false;
                        }
                    }
                }
            }
        }
        for &e in &edges_out[ui] {
            let bi = edges[e].1.index();
            for x in g.out_neighbors(w) {
                if !bit(member(bi), min_id, x) {
                    continue;
                }
                if let Some(j) = pos(&cand[bi], x) {
                    if alive[bi][j] {
                        pred_cnt[e][j] -= 1;
                        if pred_cnt[e][j] == 0 && !kill(bi, j, alive, alive_count, worklist) {
                            return false;
                        }
                    }
                }
            }
        }
    }

    // The personalized pair must have survived.
    if !alive[q.up().index()][0] {
        return false;
    }

    reuse_pool(sim, n);
    for ((s, c), a) in sim[..n].iter_mut().zip(cand).zip(alive.iter()) {
        s.extend(c.iter().zip(a).filter_map(|(&v, &al)| al.then_some(v)));
    }
    true
}

/// The pre-worklist fixpoint, kept verbatim as a `#[cfg(test)]` oracle: the
/// maximum dual simulation is unique, so the two implementations must agree
/// on every input (see the differential property test below). It still
/// takes its universe as a hash set — deliberately: the oracle's input
/// representation stays independent of the sorted-slice rewrite under test.
#[cfg(test)]
mod naive {
    use super::*;
    use rustc_hash::FxHashSet;

    pub fn dual_simulation_naive<V: GraphView + ?Sized>(
        q: &ResolvedPattern,
        g: &V,
        universe: Option<&FxHashSet<NodeId>>,
    ) -> Option<Vec<Vec<NodeId>>> {
        let p = q.pattern();
        let n = p.node_count();
        let in_universe = |v: NodeId| universe.is_none_or(|u| u.contains(&v));
        if !g.contains(q.vp()) || !in_universe(q.vp()) || g.label(q.vp()) != q.label(q.up()) {
            return None;
        }
        let mut sim: Vec<FxHashSet<NodeId>> = vec![FxHashSet::default(); n];
        for u in p.nodes() {
            if u == q.up() {
                sim[u.index()].insert(q.vp());
                continue;
            }
            let lu = q.label(u);
            match universe {
                Some(uni) => {
                    for &v in uni {
                        if g.contains(v) && g.label(v) == lu {
                            sim[u.index()].insert(v);
                        }
                    }
                }
                None => {
                    for v in g.node_ids() {
                        if g.label(v) == lu {
                            sim[u.index()].insert(v);
                        }
                    }
                }
            }
            if sim[u.index()].is_empty() {
                return None;
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for u in p.nodes() {
                let ui = u.index();
                let mut remove: Vec<NodeId> = Vec::new();
                'cand: for &v in &sim[ui] {
                    for &uc in p.out(u) {
                        let target = &sim[uc.index()];
                        let ok = g.out_neighbors(v).any(|w| target.contains(&w));
                        if !ok {
                            remove.push(v);
                            continue 'cand;
                        }
                    }
                    for &up_ in p.inn(u) {
                        let source = &sim[up_.index()];
                        let ok = g.in_neighbors(v).any(|w| source.contains(&w));
                        if !ok {
                            remove.push(v);
                            continue 'cand;
                        }
                    }
                }
                if !remove.is_empty() {
                    changed = true;
                    for v in remove {
                        sim[ui].remove(&v);
                    }
                    if sim[ui].is_empty() {
                        return None;
                    }
                }
            }
        }
        if !sim[q.up().index()].contains(&q.vp()) {
            return None;
        }
        Some(
            sim.into_iter()
                .map(|s| {
                    let mut v: Vec<NodeId> = s.into_iter().collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{fig1_pattern, PatternBuilder};
    use rbq_graph::Graph;
    use rbq_graph::GraphBuilder;

    /// The Fig. 1 graph: Michael, hiking group members hg1..hgm, cycling
    /// club cc1..cc3, cycling lovers cl1..cln. Michael -> HG*, Michael ->
    /// cc1/cc3 (cc2 not adjacent to Michael in our reduced copy), cc1/cc3 ->
    /// cl_{n-1}, cl_n; hgm -> cl_{n-1}, cl_n; other CLs dangling.
    fn fig1_graph() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let hg1 = b.add_node("HG");
        let hgm = b.add_node("HG");
        let cc1 = b.add_node("CC");
        let cc2 = b.add_node("CC");
        let cc3 = b.add_node("CC");
        let cl1 = b.add_node("CL");
        let cln_1 = b.add_node("CL");
        let cln = b.add_node("CL");
        b.add_edge(michael, hg1);
        b.add_edge(michael, hgm);
        b.add_edge(michael, cc1);
        b.add_edge(michael, cc3);
        b.add_edge(cc2, cl1); // cc2 has a CL child but no Michael parent
        b.add_edge(cc1, cln_1);
        b.add_edge(cc1, cln);
        b.add_edge(cc3, cln);
        b.add_edge(hgm, cln_1);
        b.add_edge(hgm, cln);
        let g = b.build();
        (g, vec![michael, hg1, hgm, cc1, cc2, cc3, cl1, cln_1, cln])
    }

    #[test]
    fn fig1_dual_sim_finds_cln_matches() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        let uo = q.uo();
        let matches = d.matches_sorted(uo);
        // cl_{n-1} and cl_n both have CC and HG parents reachable from
        // Michael; cl1's only parent cc2 is pruned (no Michael parent).
        assert_eq!(matches, &[ids[7], ids[8]]);
    }

    #[test]
    fn seed_is_fixed_to_vp() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        assert_eq!(d.matches_sorted(q.up()), &[ids[0]]);
    }

    #[test]
    fn cc2_pruned_for_missing_parent() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        let cc_q = PNode(1);
        assert!(!d.contains(cc_q, ids[4]), "cc2 must be pruned");
        assert!(d.contains(cc_q, ids[3]));
        assert!(d.contains(cc_q, ids[5]));
    }

    #[test]
    fn hg_without_cl_child_pruned() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        let hg_q = PNode(2);
        assert!(!d.contains(hg_q, ids[1]), "hg1 has no CL child");
        assert!(d.contains(hg_q, ids[2]));
    }

    #[test]
    fn no_match_when_label_missing_everywhere() {
        let (g, _) = fig1_graph();
        let mut pb = PatternBuilder::new();
        let m = pb.add_node("Michael");
        let cc = pb.add_node("CC");
        let cl = pb.add_node("CL");
        pb.add_edge(m, cc).add_edge(cc, cl).add_edge(cl, m); // CL -> Michael edge exists nowhere
        pb.personalized(m).output(cl);
        let q = pb.build().resolve(&g).unwrap();
        assert!(dual_simulation(&q, &g, None).is_none());
    }

    #[test]
    fn universe_restriction_prunes() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        // Universe excludes cc1 and cc3 -> no CC candidate with a Michael
        // parent -> no relation.
        let mut uni: Vec<NodeId> = ids
            .iter()
            .copied()
            .filter(|&v| v != ids[3] && v != ids[5])
            .collect();
        uni.sort_unstable();
        assert!(dual_simulation(&q, &g, Some(&uni)).is_none());
    }

    #[test]
    fn universe_missing_vp_fails() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let mut uni: Vec<NodeId> = ids[1..].to_vec();
        uni.sort_unstable();
        assert!(dual_simulation(&q, &g, Some(&uni)).is_none());
    }

    #[test]
    fn single_node_pattern_matches_vp_only() {
        let (g, ids) = fig1_graph();
        let mut pb = PatternBuilder::new();
        let m = pb.add_node("Michael");
        pb.personalized(m).output(m);
        let q = pb.build().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        assert_eq!(d.matches_sorted(m), &[ids[0]]);
        assert_eq!(d.all_matched().len(), 1);
    }

    #[test]
    fn self_loop_query_edge() {
        // Query: P -> A with a self loop A -> A. Data: x(P) -> y(A), y -> y.
        // y satisfies all three conditions (P parent, A parent via the self
        // loop, A child via the self loop). A decoy z(A) without a self loop
        // is pruned: it lacks an A parent in the relation.
        let mut b = GraphBuilder::new();
        let x = b.add_node("P");
        let y = b.add_node("A");
        let z = b.add_node("A");
        b.add_edge(x, y);
        b.add_edge(y, y);
        b.add_edge(x, z);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let p = pb.add_node("P");
        let a = pb.add_node("A");
        pb.add_edge(p, a).add_edge(a, a);
        pb.personalized(p).output(a);
        let q = pb.build().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        assert_eq!(d.matches_sorted(a), &[y]);
        let _ = (x, z);
    }

    #[test]
    fn cascading_prune_empties_relation() {
        // Chain query a->b->c; data has labels a, b, c but the c node hangs
        // off the wrong parent, so pruning cascades b -> a and the relation
        // collapses.
        let mut b = GraphBuilder::new();
        let x = b.add_node("a");
        let y = b.add_node("b");
        let w = b.add_node("b"); // second b, parent of the only c
        let z = b.add_node("c");
        b.add_edge(x, y); // a -> b (this b has no c child)
        b.add_edge(w, z); // orphan b -> c (this b has no a parent)
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let pa = pb.add_node("a");
        let pb2 = pb.add_node("b");
        let pc = pb.add_node("c");
        pb.add_edge(pa, pb2).add_edge(pb2, pc);
        pb.personalized(pa).output(pc);
        let q = pb.build().resolve(&g).unwrap();
        assert!(dual_simulation(&q, &g, None).is_none());
    }

    #[test]
    fn all_matched_collects_union() {
        let (g, _) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        // Michael + hgm + cc1 + cc3 + cln-1 + cln = 6
        assert_eq!(d.all_matched().len(), 6);
    }

    // ------------------------------------------------ differential oracle

    use proptest::prelude::*;
    use rbq_graph::builder::graph_from_edges;
    use rbq_graph::InducedSubgraph;

    /// A random digraph (≤ 20 nodes, ≤ 4 labels) where node 0 is the unique
    /// "ME", plus a random small pattern anchored at ME.
    fn arb_graph_and_pattern() -> impl Strategy<Value = (Graph, crate::pattern::Pattern)> {
        (2usize..20).prop_flat_map(|n| {
            let labels = proptest::collection::vec(0u8..4, n - 1);
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
            let extra = proptest::collection::vec((0u8..4, prop::bool::ANY), 1..5);
            (labels, edges, extra).prop_map(|(labels, edges, extra)| {
                let names: Vec<String> = std::iter::once("ME".to_string())
                    .chain(labels.iter().map(|l| format!("L{l}")))
                    .collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let g = graph_from_edges(&refs, &edges);
                let mut pb = PatternBuilder::new();
                let me = pb.add_node("ME");
                let mut prev = me;
                for (l, fwd) in extra {
                    let u = pb.add_node(&format!("L{l}"));
                    if fwd {
                        pb.add_edge(prev, u);
                    } else {
                        pb.add_edge(u, prev);
                    }
                    prev = u;
                }
                pb.personalized(me).output(prev);
                (g, pb.build())
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The worklist algorithm computes the same (unique) maximum dual
        /// simulation as the naive full-resweep fixpoint, on every graph,
        /// pattern, and query node.
        #[test]
        fn worklist_equals_naive_fixpoint((g, p) in arb_graph_and_pattern()) {
            let Ok(q) = p.resolve(&g) else { return Ok(()); };
            let fast = dual_simulation(&q, &g, None);
            let slow = naive::dual_simulation_naive(&q, &g, None);
            match (fast, slow) {
                (None, None) => {}
                (Some(f), Some(s)) => {
                    for u in p.nodes() {
                        prop_assert_eq!(
                            f.matches_sorted(u),
                            s[u.index()].as_slice(),
                            "mismatch at query node {:?}", u
                        );
                    }
                }
                (f, s) => prop_assert!(
                    false,
                    "existence mismatch: fast={} naive={}",
                    f.is_some(),
                    s.is_some()
                ),
            }
        }

        /// Agreement also holds under a restricting universe (the
        /// ball-restricted mode strong simulation uses): the fast path gets
        /// the sorted slice, the oracle the equivalent hash set.
        #[test]
        fn worklist_equals_naive_under_universe(
            (g, p) in arb_graph_and_pattern(),
            keep in proptest::collection::vec(prop::bool::ANY, 20),
        ) {
            let Ok(q) = p.resolve(&g) else { return Ok(()); };
            let mut uni: Vec<NodeId> = g
                .nodes()
                .filter(|v| keep.get(v.index()).copied().unwrap_or(false))
                .chain(std::iter::once(q.vp()))
                .collect();
            uni.sort_unstable();
            uni.dedup();
            let uni_set: rustc_hash::FxHashSet<NodeId> = uni.iter().copied().collect();
            let fast = dual_simulation(&q, &g, Some(&uni));
            let slow = naive::dual_simulation_naive(&q, &g, Some(&uni_set));
            match (fast, slow) {
                (None, None) => {}
                (Some(f), Some(s)) => {
                    for u in p.nodes() {
                        prop_assert_eq!(f.matches_sorted(u), s[u.index()].as_slice());
                    }
                }
                (f, s) => prop_assert!(
                    false,
                    "existence mismatch: fast={} naive={}",
                    f.is_some(),
                    s.is_some()
                ),
            }
        }

        /// The screened evaluation path (per-query candidate screen +
        /// per-ball intersection) is answer-identical to screening the
        /// universe directly.
        #[test]
        fn screened_equals_direct_universe(
            (g, p) in arb_graph_and_pattern(),
            keep in proptest::collection::vec(prop::bool::ANY, 20),
        ) {
            let Ok(q) = p.resolve(&g) else { return Ok(()); };
            let mut uni: Vec<NodeId> = g
                .nodes()
                .filter(|v| keep.get(v.index()).copied().unwrap_or(false))
                .chain(std::iter::once(q.vp()))
                .collect();
            uni.sort_unstable();
            uni.dedup();
            let direct = dual_simulation(&q, &g, Some(&uni));
            // Whole-view screen, and a screen restricted to a domain that
            // is a superset of the universe (the strong-simulation shape).
            let screened = candidate_screen(&q, &g)
                .and_then(|s| dual_simulation_screened(&q, &g, &uni, &s));
            let all: Vec<NodeId> = g.nodes().collect();
            let within = candidate_screen_within(&q, &g, &all)
                .and_then(|s| dual_simulation_screened(&q, &g, &uni, &s));
            for screened in [screened, within] {
                match (direct.as_ref(), screened) {
                    (None, None) => {}
                    (Some(d), Some(s)) => {
                        for u in p.nodes() {
                            prop_assert_eq!(d.matches_sorted(u), s.matches_sorted(u));
                        }
                    }
                    (d, s) => prop_assert!(
                        false,
                        "existence mismatch: direct={} screened={}",
                        d.is_some(),
                        s.is_some()
                    ),
                }
            }
        }

        /// And on virtual (filtered) views, whose adjacency is not
        /// slice-backed.
        #[test]
        fn worklist_equals_naive_on_induced_view(
            (g, p) in arb_graph_and_pattern(),
            keep in proptest::collection::vec(prop::bool::ANY, 20),
        ) {
            let Ok(q) = p.resolve(&g) else { return Ok(()); };
            let members: Vec<NodeId> = g
                .nodes()
                .filter(|v| keep.get(v.index()).copied().unwrap_or(false))
                .chain(std::iter::once(q.vp()))
                .collect();
            let view = InducedSubgraph::new(&g, members);
            let fast = dual_simulation(&q, &view, None);
            let slow = naive::dual_simulation_naive(&q, &view, None);
            match (fast, slow) {
                (None, None) => {}
                (Some(f), Some(s)) => {
                    for u in p.nodes() {
                        prop_assert_eq!(f.matches_sorted(u), s[u.index()].as_slice());
                    }
                }
                (f, s) => prop_assert!(
                    false,
                    "existence mismatch: fast={} naive={}",
                    f.is_some(),
                    s.is_some()
                ),
            }
        }
    }
}
