//! Simulation-preserving compression (related work [12], Fan et al.
//! SIGMOD 2012).
//!
//! The paper's related-work section notes that query-preserving compression
//! reduces graphs to ~43% of their size for *simulation* queries and can be
//! combined with resource-bounded querying as a preprocessing step. This
//! module implements that compression: a **forward-and-backward
//! bisimulation quotient**. Nodes are merged when they carry the same label
//! and have children/parents in exactly the same equivalence classes; such
//! nodes are indistinguishable to (dual) simulation, so for every query
//! node `u`, the match set in `G` is exactly the preimage of the match set
//! in the quotient.
//!
//! Computed by iterated partition refinement: start from label classes,
//! split by `(out-block set, in-block set)` signatures until stable.

use crate::dualsim::dual_simulation;
use crate::pattern::ResolvedPattern;
use rbq_graph::{Graph, GraphBuilder, NodeId};
use rustc_hash::{FxHashMap, FxHashSet};

/// A simulation-preserving compressed graph.
#[derive(Debug, Clone)]
pub struct SimCompressed {
    /// The quotient graph: one node per bisimulation class.
    pub quotient: Graph,
    /// `block_of[v]` — quotient node of original node `v`.
    block_of: Vec<u32>,
    /// Members of each block, sorted.
    members: Vec<Vec<NodeId>>,
}

impl SimCompressed {
    /// Quotient node of original node `v`.
    #[inline]
    pub fn block(&self, v: NodeId) -> NodeId {
        NodeId(self.block_of[v.index()])
    }

    /// Original nodes represented by quotient node `b`.
    pub fn members(&self, b: NodeId) -> &[NodeId] {
        &self.members[b.index()]
    }

    /// Number of equivalence classes.
    pub fn block_count(&self) -> usize {
        self.members.len()
    }

    /// Expand quotient-side matches to the original graph (the preimage).
    pub fn expand(&self, quotient_matches: &[NodeId]) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = quotient_matches
            .iter()
            .flat_map(|&b| self.members[b.index()].iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Compression ratio `|quotient| / |original|` in nodes+edges units.
    pub fn ratio(&self, original: &Graph) -> f64 {
        use rbq_graph::GraphView;
        self.quotient.size() as f64 / original.size().max(1) as f64
    }

    /// Evaluate a dual-simulation query on the quotient and expand the
    /// answer — equivalent to evaluating on the original graph.
    ///
    /// The pattern must resolve against the *quotient* (labels are
    /// preserved; the personalized node's unique label keeps its block a
    /// singleton). The evaluation is unrestricted (no universe); a
    /// ball-restricted quotient evaluation would pass the sorted block-id
    /// slice as the `dual_simulation` universe.
    pub fn dual_sim_via_quotient(&self, q: &ResolvedPattern) -> Option<Vec<NodeId>> {
        let rel = dual_simulation(q, &self.quotient, None)?;
        Some(self.expand(rel.matches_sorted(q.uo())))
    }
}

/// Compute the forward-and-backward bisimulation quotient of `g`.
///
/// `O(iterations · (|V| + |E|))` with hashing; iterations are bounded by
/// `|V|` and small in practice.
pub fn bisimulation_compress(g: &Graph) -> SimCompressed {
    let n = g.node_count();
    // Initial partition: by label.
    let mut block_of: Vec<u32> = (0..n).map(|i| g.node_label(NodeId::new(i)).0).collect();
    normalize(&mut block_of);

    loop {
        // Signature: (current block, sorted out-block set, sorted in-block set).
        let mut sig_ids: FxHashMap<(u32, Vec<u32>, Vec<u32>), u32> = FxHashMap::default();
        let mut next: Vec<u32> = vec![0; n];
        for v in g.nodes() {
            let mut outs: Vec<u32> = g.out(v).iter().map(|w| block_of[w.index()]).collect();
            outs.sort_unstable();
            outs.dedup();
            let mut ins: Vec<u32> = g.inn(v).iter().map(|w| block_of[w.index()]).collect();
            ins.sort_unstable();
            ins.dedup();
            let key = (block_of[v.index()], outs, ins);
            let id = sig_ids.len() as u32;
            next[v.index()] = *sig_ids.entry(key).or_insert(id);
        }
        let stable = sig_ids.len() == block_of.iter().copied().collect::<FxHashSet<u32>>().len();
        block_of = next;
        if stable {
            break;
        }
    }
    normalize(&mut block_of);

    // Build quotient.
    let block_count = block_of.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); block_count];
    for v in g.nodes() {
        members[block_of[v.index()] as usize].push(v);
    }
    let mut b = GraphBuilder::with_capacity(block_count, g.edge_count());
    for m in &members {
        b.add_node(g.node_label_str(m[0]));
    }
    for (u, v) in g.edges() {
        let bu = block_of[u.index()];
        let bv = block_of[v.index()];
        b.add_edge(NodeId(bu), NodeId(bv));
    }
    SimCompressed {
        quotient: b.build(),
        block_of,
        members,
    }
}

/// Renumber partition ids densely in first-occurrence order.
fn normalize(block_of: &mut [u32]) {
    let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
    for b in block_of.iter_mut() {
        let id = remap.len() as u32;
        *b = *remap.entry(*b).or_insert(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use rbq_graph::builder::graph_from_edges;

    #[test]
    fn identical_twins_merge() {
        // Two B-children of the same parent with identical (empty)
        // neighborhoods beyond it.
        let g = graph_from_edges(&["A", "B", "B"], &[(0, 1), (0, 2)]);
        let c = bisimulation_compress(&g);
        assert_eq!(c.block_count(), 2);
        assert_eq!(c.block(NodeId(1)), c.block(NodeId(2)));
        assert_eq!(c.quotient.node_count(), 2);
        assert_eq!(c.quotient.edge_count(), 1);
    }

    #[test]
    fn different_context_keeps_nodes_apart() {
        // b1 has a C child, b2 does not -> not bisimilar.
        let g = graph_from_edges(&["A", "B", "B", "C"], &[(0, 1), (0, 2), (1, 3)]);
        let c = bisimulation_compress(&g);
        assert_ne!(c.block(NodeId(1)), c.block(NodeId(2)));
    }

    #[test]
    fn backward_direction_matters() {
        // Same children, different parents: must stay apart (dual
        // simulation checks parents).
        let g = graph_from_edges(
            &["A", "X", "B", "B", "T"],
            &[(0, 2), (1, 3), (2, 4), (3, 4)],
        );
        let c = bisimulation_compress(&g);
        assert_ne!(c.block(NodeId(2)), c.block(NodeId(3)));
    }

    #[test]
    fn cascading_refinement() {
        // Chain of B's: b_i distinguished by distance to the end.
        let g = graph_from_edges(&["B"; 4], &[(0, 1), (1, 2), (2, 3)]);
        let c = bisimulation_compress(&g);
        assert_eq!(c.block_count(), 4, "all chain positions distinct");
    }

    #[test]
    fn cycle_of_equal_nodes_merges() {
        // Uniform cycle: all nodes bisimilar.
        let n = 6u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = graph_from_edges(&vec!["A"; n as usize], &edges);
        let c = bisimulation_compress(&g);
        assert_eq!(c.block_count(), 1);
        assert_eq!(c.quotient.node_count(), 1);
    }

    #[test]
    fn expand_returns_preimage() {
        let g = graph_from_edges(&["A", "B", "B"], &[(0, 1), (0, 2)]);
        let c = bisimulation_compress(&g);
        let b = c.block(NodeId(1));
        let expanded = c.expand(&[b]);
        assert_eq!(expanded, vec![NodeId(1), NodeId(2)]);
        assert_eq!(c.members(b), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn dual_simulation_preserved_through_quotient() {
        // Fig.1-like: query answers must be identical via the quotient.
        let g = graph_from_edges(
            &["ME", "CC", "CC", "HG", "CL", "CL", "CL"],
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 4),
                (1, 5),
                (2, 5),
                (3, 4),
                (3, 5),
                (2, 6),
            ],
        );
        let mut pb = PatternBuilder::new();
        let me = pb.add_node("ME");
        let cc = pb.add_node("CC");
        let hg = pb.add_node("HG");
        let cl = pb.add_node("CL");
        pb.add_edge(me, cc)
            .add_edge(me, hg)
            .add_edge(cc, cl)
            .add_edge(hg, cl);
        pb.personalized(me).output(cl);
        let pattern = pb.build();

        let q_orig = pattern.resolve(&g).unwrap();
        let direct = dual_simulation(&q_orig, &g, None)
            .map(|d| d.matches_sorted(q_orig.uo()).to_vec())
            .unwrap_or_default();

        let c = bisimulation_compress(&g);
        let q_quot = pattern.resolve(&c.quotient).unwrap();
        let via_quotient = c.dual_sim_via_quotient(&q_quot).unwrap_or_default();

        assert_eq!(direct, via_quotient);
    }

    #[test]
    fn quotient_is_smaller_on_redundant_graphs() {
        // Star with many identical leaves compresses massively.
        let mut labels = vec!["R"];
        labels.extend(std::iter::repeat_n("L", 50));
        let edges: Vec<(u32, u32)> = (1..=50).map(|i| (0, i)).collect();
        let g = graph_from_edges(&labels, &edges);
        let c = bisimulation_compress(&g);
        assert_eq!(c.quotient.node_count(), 2);
        assert!(c.ratio(&g) < 0.1);
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(&[], &[]);
        let c = bisimulation_compress(&g);
        assert_eq!(c.block_count(), 0);
        assert_eq!(c.quotient.node_count(), 0);
    }
}
