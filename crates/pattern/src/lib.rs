#![warn(missing_docs)]
//! # rbq-pattern — graph pattern queries and unbounded baselines
//!
//! Graph patterns for personalized social search (paper §2): a pattern
//! `Q = (V_p, E_p, f_v, u_p, u_o)` has query nodes/edges, node labels `f_v`,
//! a *personalized node* `u_p` (with a unique match `v_p` in the data graph)
//! and an *output node* `u_o` whose matches are the query answer.
//!
//! Two matching semantics are implemented, each with the unbounded baseline
//! algorithms the paper evaluates against:
//!
//! * **Strong simulation** (Ma et al., PVLDB 2011): [`strongsim`] provides
//!   `Match` and the optimized `MatchOpt` restricted to the
//!   `d_Q`-neighborhood of `v_p`.
//! * **Subgraph isomorphism**: [`vf2`] provides an anchored VF2-style
//!   enumerator and its restricted `VF2OPT` variant.
//!
//! [`dualsim`] implements the dual-simulation fixpoint both semantics build
//! on, and all matchers are generic over [`rbq_graph::GraphView`] so the
//! *same code* evaluates `Q(G)` (baselines) and `Q(G_Q)` (the reduced graph
//! of resource-bounded algorithms).

pub mod dualsim;
pub mod incremental;
pub mod pattern;
pub mod simcompress;
pub mod strongsim;
pub mod vf2;

pub use dualsim::{
    candidate_screen, candidate_screen_within, candidate_screen_within_into, dual_simulation,
    dual_simulation_screened, dual_simulation_screened_with, dual_simulation_with, CandidateScreen,
    DualSim, DualSimRef, DualSimScratch,
};
pub use incremental::dual_simulation_incremental;
pub use pattern::{PNode, Pattern, PatternBuilder, ResolveError, ResolvedPattern};
pub use simcompress::{bisimulation_compress, SimCompressed};
pub use strongsim::{
    match_opt, strong_simulation, strong_simulation_on_view, strong_simulation_on_view_with,
    StrongSimScratch,
};
pub use vf2::{vf2_all_output_matches, vf2_opt, Vf2Config};
