//! Strong simulation matching (Ma et al., PVLDB 2011 [20]) with the
//! personalized-pattern semantics of §2.
//!
//! `G` matches `Q` at ball center `v0` if the `d_Q`-neighborhood ball
//! `G_dQ(v0)` admits a total dual simulation `R_{v0}` containing the
//! personalized pair `(u_p, v_p)`. The global match relation is the union of
//! all `R_{v0}`, and the answer `Q(G)` is the match set of the output node.
//!
//! Because every valid ball must contain `v_p`, candidate centers are
//! exactly the nodes of `N_dQ(v_p)` — the paper's `MatchOpt` ("only checks
//! subgraphs within `d_Q` hops of `v_p`") is therefore the natural baseline
//! and [`match_opt`] implements it directly. [`strong_simulation`] /
//! [`strong_simulation_on_view`] add a shared dual-simulation prefilter that
//! preserves the answer set (any ball-restricted relation is contained in
//! the prefilter relation) while skipping doomed balls early; the reduced
//! graph `G_Q` is evaluated with the same code.

use crate::dualsim::{
    candidate_screen_within_into, dual_simulation_screened_with, CandidateScreen, DualSimScratch,
};
use crate::pattern::ResolvedPattern;
use rbq_graph::{BallScratch, Graph, GraphView, NodeId};

/// Node set of the ball `G_r(center)` within an arbitrary view — nodes
/// within `r` hops following edges in either direction — as a **sorted**
/// vector.
///
/// One-shot convenience over [`BallScratch`]; loops evaluating many balls
/// should hold a scratch and call [`BallScratch::ball_into`] to reuse the
/// epoch-stamped visited buffer across centers.
pub fn ball_nodes<V: GraphView + ?Sized>(g: &V, center: NodeId, r: usize) -> Vec<NodeId> {
    let mut out = Vec::new();
    BallScratch::new().ball_into(g, center, r, &mut out);
    out
}

/// The paper's `MatchOpt` baseline: strong simulation evaluated per ball,
/// for every candidate center in `N_dQ(v_p)`, without cross-ball sharing.
///
/// Returns the sorted matches of the output node.
pub fn match_opt(q: &ResolvedPattern, g: &Graph) -> Vec<NodeId> {
    let mut scratch = StrongSimScratch::new();
    let mut out = Vec::new();
    strong_sim_impl(q, g, false, &mut scratch, &mut out);
    out
}

/// Optimized strong simulation on a full graph: identical answers to
/// [`match_opt`], with a shared prefilter.
pub fn strong_simulation(q: &ResolvedPattern, g: &Graph) -> Vec<NodeId> {
    let mut scratch = StrongSimScratch::new();
    let mut out = Vec::new();
    strong_sim_impl(q, g, true, &mut scratch, &mut out);
    out
}

/// Strong simulation over any [`GraphView`] — used to evaluate `Q(G_Q)` on
/// the reduced graph produced by dynamic reduction.
pub fn strong_simulation_on_view<V: GraphView + ?Sized>(q: &ResolvedPattern, g: &V) -> Vec<NodeId> {
    let mut scratch = StrongSimScratch::new();
    let mut out = Vec::new();
    strong_sim_impl(q, g, true, &mut scratch, &mut out);
    out
}

/// [`strong_simulation_on_view`] through a reusable [`StrongSimScratch`]:
/// identical answers, written into `out` (cleared first), with zero
/// steady-state allocation. This is the evaluation half of the warm
/// `rbsim` serving path.
// rbq-lint: hot
pub fn strong_simulation_on_view_with<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    scratch: &mut StrongSimScratch,
    out: &mut Vec<NodeId>,
) {
    strong_sim_impl(q, g, true, scratch, out);
}

/// Strong simulation for a pattern **without** a personalized node (the
/// paper's §7 future work): the answer is the union over every candidate
/// anchor assignment of the anchored answer. Exact but expensive — the
/// baseline `RBSimAny` is measured against.
pub fn strong_simulation_anonymous(pattern: &crate::pattern::Pattern, g: &Graph) -> Vec<NodeId> {
    let Some(anchor_label) = g.labels().get(pattern.label_str(pattern.personalized())) else {
        return Vec::new();
    };
    let mut scratch = StrongSimScratch::new();
    let mut per_anchor: Vec<NodeId> = Vec::new();
    let mut out: Vec<NodeId> = Vec::new();
    for &v in g.nodes_with_label(anchor_label) {
        if let Ok(q) = pattern.resolve_with_anchor(g, v) {
            strong_sim_impl(&q, g, true, &mut scratch, &mut per_anchor);
            out.extend_from_slice(&per_anchor);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Reusable state for one strong-simulation evaluation loop: the ball
/// scratch, the center/domain/ball buffers, the per-query candidate
/// screen, the dual-simulation scratch, and the per-center universes —
/// everything [`strong_simulation_on_view_with`] touches per query.
///
/// One scratch serves any sequence of queries and views; results are
/// identical to fresh construction.
#[derive(Debug, Default)]
pub struct StrongSimScratch {
    balls: BallScratch,
    centers: Vec<NodeId>,
    domain: Vec<NodeId>,
    ball: Vec<NodeId>,
    restricted: Vec<NodeId>,
    matched: Vec<NodeId>,
    per_center: Vec<Vec<NodeId>>,
    screen: CandidateScreen,
    dual: DualSimScratch,
}

impl StrongSimScratch {
    /// Fresh scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or clear) the deadline for every subsequent evaluation through
    /// this scratch — forwarded to the ball BFS and the dual-simulation
    /// fixpoint, the two loops whose work scales with the data graph.
    pub fn set_cancel(&mut self, token: rbq_graph::CancelToken) {
        self.balls.set_cancel(token);
        self.dual.set_cancel(token);
    }
}

fn strong_sim_impl<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    prefilter: bool,
    scratch: &mut StrongSimScratch,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    let vp = q.vp();
    if !g.contains(vp) || g.label(vp) != q.label(q.up()) {
        return;
    }
    let dq = q.dq();
    let StrongSimScratch {
        balls,
        centers,
        domain,
        ball,
        restricted,
        matched,
        per_center,
        screen,
        dual,
    } = scratch;

    // One traversal yields both the candidate centers (balls must contain
    // v_p, i.e. centers within d_Q undirected hops of v_p) and the
    // 2·d_Q-neighborhood every per-center ball lies inside — the centers
    // are the depth-≤-d_Q prefix of the same BFS.
    balls.ball_pair_into(g, vp, 2 * dq, dq, domain, centers);

    // Per-query candidate screen over N_{2dQ}(v_p): labels and guards
    // depend only on the data node, so they are evaluated once here
    // instead of once per ball — and only inside the neighborhood the
    // balls can reach, not the whole view. No screen at all means some
    // query node has no candidate anywhere near v_p — no ball can match.
    if !candidate_screen_within_into(q, g, Some(domain), screen, dual) {
        return;
    }

    // Optional shared prefilter: the maximum dual simulation on
    // G_{2dQ}(v_p) contains every ball-restricted relation, so non-members
    // can never match and balls disjoint from it can be skipped. The
    // matched set is a sorted vector (the relation's native
    // representation), copied out of the dual scratch so the per-ball
    // evaluations below can reuse it.
    let use_filter = if prefilter {
        match dual_simulation_screened_with(q, g, domain, screen, dual) {
            Some(rel) => {
                rel.all_matched_into(matched);
                true
            }
            None => return,
        }
    } else {
        false
    };

    match use_filter {
        // Inverted prefiltered evaluation. Every per-center universe is
        // `m ∩ ball(v0, d_Q)`, and undirected distance is symmetric:
        // `v ∈ ball(v0, d_Q) ⇔ v0 ∈ ball(v, d_Q)`. So |m| BFS traversals
        // (one per matched node, recording which centers its ball covers)
        // produce *every* center's universe — instead of one ball BFS per
        // center over neighborhoods that are typically orders of magnitude
        // larger than m. Universes are identical to the direct
        // intersection, so the answers are too.
        true if matched.len() <= centers.len() => {
            crate::dualsim::reuse_pool(per_center, centers.len());
            for &v in matched.iter() {
                balls.ball_into(g, v, dq, ball);
                let (mut i, mut j) = (0usize, 0usize);
                while i < ball.len() && j < centers.len() {
                    match ball[i].cmp(&centers[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            per_center[j].push(v);
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            // m is iterated in ascending order, so each universe is sorted.
            for (j, &v0) in centers.iter().enumerate() {
                let uni = &mut per_center[j];
                if uni.binary_search(&vp).is_err() {
                    continue;
                }
                // Keep the center in the universe even if unmatched: it is
                // harmless (it will simply not join the relation).
                if let Err(pos) = uni.binary_search(&v0) {
                    uni.insert(pos, v0);
                }
                if let Some(rel) = dual_simulation_screened_with(q, g, uni, screen, dual) {
                    out.extend_from_slice(rel.matches(q.uo()));
                }
            }
        }
        // Per-center evaluation: the unfiltered baseline (`MatchOpt`), and
        // the prefiltered path when m is so large that per-matched-node
        // traversals would cost more than per-center ones.
        _ => {
            for &v0 in centers.iter() {
                balls.ball_into(g, v0, dq, ball);
                let universe: &[NodeId] = if use_filter {
                    // Linear sorted merge of ball ∩ matched filter
                    // (both sorted), tracking v_p / center membership
                    // on the way.
                    let m = &*matched;
                    restricted.clear();
                    let mut has_vp = false;
                    let mut has_center = false;
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < ball.len() && j < m.len() {
                        match ball[i].cmp(&m[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                let v = ball[i];
                                restricted.push(v);
                                has_vp |= v == vp;
                                has_center |= v == v0;
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    if !has_vp {
                        continue;
                    }
                    if !has_center {
                        let pos = restricted.binary_search(&v0).unwrap_err();
                        restricted.insert(pos, v0);
                    }
                    restricted
                } else {
                    ball
                };
                if let Some(rel) = dual_simulation_screened_with(q, g, universe, screen, dual) {
                    out.extend_from_slice(rel.matches(q.uo()));
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualsim::dual_simulation;
    use crate::pattern::{fig1_pattern, PatternBuilder};
    use rbq_graph::{GraphBuilder, InducedSubgraph};

    fn fig1_graph() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let hg1 = b.add_node("HG");
        let hgm = b.add_node("HG");
        let cc1 = b.add_node("CC");
        let cc2 = b.add_node("CC");
        let cc3 = b.add_node("CC");
        let cl1 = b.add_node("CL");
        let cln_1 = b.add_node("CL");
        let cln = b.add_node("CL");
        b.add_edge(michael, hg1);
        b.add_edge(michael, hgm);
        b.add_edge(michael, cc1);
        b.add_edge(michael, cc3);
        b.add_edge(cc2, cl1);
        b.add_edge(cc1, cln_1);
        b.add_edge(cc1, cln);
        b.add_edge(cc3, cln);
        b.add_edge(hgm, cln_1);
        b.add_edge(hgm, cln);
        let g = b.build();
        (g, vec![michael, hg1, hgm, cc1, cc2, cc3, cl1, cln_1, cln])
    }

    #[test]
    fn fig1_answer_is_cln_pair() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let ans = match_opt(&q, &g);
        assert_eq!(ans, vec![ids[7], ids[8]]);
    }

    #[test]
    fn optimized_agrees_with_baseline_on_fig1() {
        let (g, _) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        assert_eq!(match_opt(&q, &g), strong_simulation(&q, &g));
    }

    #[test]
    fn no_match_when_vp_absent_from_view() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let view = InducedSubgraph::new(&g, ids[1..].iter().copied());
        assert!(strong_simulation_on_view(&q, &view).is_empty());
    }

    #[test]
    fn works_on_induced_subgraph_view() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        // Keep exactly the ideal G_Q of Example 2: Michael, cc1, cc3, hgm,
        // cl_{n-1}, cl_n.
        let keep = [ids[0], ids[3], ids[5], ids[2], ids[7], ids[8]];
        let view = InducedSubgraph::new(&g, keep);
        let ans = strong_simulation_on_view(&q, &view);
        assert_eq!(ans, vec![ids[7], ids[8]]);
    }

    #[test]
    fn ball_nodes_radius_semantics() {
        let (g, ids) = fig1_graph();
        let b0 = ball_nodes(&g, ids[0], 0);
        assert_eq!(b0.len(), 1);
        let b1 = ball_nodes(&g, ids[0], 1);
        // Michael + hg1 + hgm + cc1 + cc3
        assert_eq!(b1.len(), 5);
        let b2 = ball_nodes(&g, ids[0], 2);
        // + cln-1, cln ; not cc2/cl1 (3 hops away)
        assert_eq!(b2.len(), 7);
        assert!(b2.windows(2).all(|w| w[0] < w[1]), "balls are sorted");
    }

    #[test]
    fn prefilter_center_set_equals_direct_dq_ball() {
        // The d_Q center set is derived from the 2·d_Q prefilter BFS (one
        // traversal, depths recorded once); pin that it equals a direct
        // d_Q-ball for every center and radius.
        let (g, _) = fig1_graph();
        let mut scratch = BallScratch::new();
        let (mut outer, mut inner) = (Vec::new(), Vec::new());
        for v in g.nodes() {
            for dq in 0..4usize {
                scratch.ball_pair_into(&g, v, 2 * dq, dq, &mut outer, &mut inner);
                assert_eq!(inner, ball_nodes(&g, v, dq), "center {v:?} dq {dq}");
                assert_eq!(outer, ball_nodes(&g, v, 2 * dq), "center {v:?} dq {dq}");
            }
        }
    }

    #[test]
    fn ball_nodes_missing_center_is_empty() {
        let (g, ids) = fig1_graph();
        let view = InducedSubgraph::new(&g, [ids[0]]);
        assert!(ball_nodes(&view, ids[1], 3).is_empty());
    }

    #[test]
    fn chain_pattern_on_chain_graph() {
        // Pattern: p -> a -> b; graph: P -> A -> B and a decoy A without B.
        let mut gb = GraphBuilder::new();
        let p = gb.add_node("P");
        let a1 = gb.add_node("A");
        let b1 = gb.add_node("B");
        let a2 = gb.add_node("A");
        gb.add_edge(p, a1);
        gb.add_edge(a1, b1);
        gb.add_edge(p, a2); // a2 has no B child
        let g = gb.build();
        let mut pb = PatternBuilder::new();
        let qp = pb.add_node("P");
        let qa = pb.add_node("A");
        let qb = pb.add_node("B");
        pb.add_edge(qp, qa).add_edge(qa, qb);
        pb.personalized(qp).output(qb);
        let q = pb.build().resolve(&g).unwrap();
        assert_eq!(match_opt(&q, &g), vec![b1]);
        assert_eq!(strong_simulation(&q, &g), vec![b1]);
    }

    #[test]
    fn single_node_pattern() {
        let (g, ids) = fig1_graph();
        let mut pb = PatternBuilder::new();
        let m = pb.add_node("Michael");
        pb.personalized(m).output(m);
        let q = pb.build().resolve(&g).unwrap();
        assert_eq!(match_opt(&q, &g), vec![ids[0]]);
    }

    #[test]
    fn strong_sim_subset_of_dual_sim() {
        let (g, _) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        let strong = match_opt(&q, &g);
        for v in &strong {
            assert!(d.contains(q.uo(), *v));
        }
    }

    #[test]
    fn cycle_pattern_matches_cycle() {
        // Pattern p -> a, a -> p (2-cycle); graph has a matching 2-cycle and
        // a dead-end A.
        let mut gb = GraphBuilder::new();
        let p = gb.add_node("P");
        let a1 = gb.add_node("A");
        let a2 = gb.add_node("A");
        gb.add_edge(p, a1);
        gb.add_edge(a1, p);
        gb.add_edge(p, a2); // no back-edge
        let g = gb.build();
        let mut pb = PatternBuilder::new();
        let qp = pb.add_node("P");
        let qa = pb.add_node("A");
        pb.add_edge(qp, qa).add_edge(qa, qp);
        pb.personalized(qp).output(qa);
        let q = pb.build().resolve(&g).unwrap();
        assert_eq!(match_opt(&q, &g), vec![a1]);
        assert_eq!(strong_simulation(&q, &g), vec![a1]);
    }

    // ------------------------------------------------ differential oracles

    use proptest::prelude::*;
    use rbq_graph::builder::graph_from_edges;
    use rbq_graph::BallScratch;
    use rustc_hash::FxHashSet;
    use std::collections::VecDeque;

    /// The pre-`BallScratch` implementation, kept verbatim as the hash-set
    /// oracle for the sorted-slice ball evaluation.
    fn ball_nodes_naive<V: GraphView + ?Sized>(
        g: &V,
        center: NodeId,
        r: usize,
    ) -> FxHashSet<NodeId> {
        let mut seen = FxHashSet::default();
        if !g.contains(center) {
            return seen;
        }
        let mut q = VecDeque::new();
        seen.insert(center);
        q.push_back((center, 0usize));
        while let Some((v, d)) = q.pop_front() {
            if d == r {
                continue;
            }
            for w in g.out_neighbors(v).chain(g.in_neighbors(v)) {
                if seen.insert(w) {
                    q.push_back((w, d + 1));
                }
            }
        }
        seen
    }

    fn sorted(set: FxHashSet<NodeId>) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// A random digraph with ≤ 24 nodes and 4 labels.
    fn arb_graph() -> impl Strategy<Value = Graph> {
        (2usize..24).prop_flat_map(|n| {
            let labels = proptest::collection::vec(0u8..4, n);
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
            (labels, edges).prop_map(|(labels, edges)| {
                let names: Vec<String> = labels.iter().map(|l| format!("L{l}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                graph_from_edges(&refs, &edges)
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Sorted-slice `ball_nodes` equals the hash-set BFS oracle on full
        /// graphs, for every center and small radius.
        #[test]
        fn ball_matches_naive_on_full_graph(g in arb_graph(), r in 0usize..5) {
            for v in g.nodes() {
                prop_assert_eq!(ball_nodes(&g, v, r), sorted(ball_nodes_naive(&g, v, r)));
            }
        }

        /// ... and on induced (filtered) views, whose adjacency is virtual.
        #[test]
        fn ball_matches_naive_on_induced_view(
            g in arb_graph(),
            keep in proptest::collection::vec(prop::bool::ANY, 24),
            r in 0usize..5,
        ) {
            let members: Vec<NodeId> = g
                .nodes()
                .filter(|v| keep.get(v.index()).copied().unwrap_or(false))
                .collect();
            let view = InducedSubgraph::new(&g, members);
            for v in g.nodes() {
                prop_assert_eq!(
                    ball_nodes(&view, v, r),
                    sorted(ball_nodes_naive(&view, v, r))
                );
            }
        }

        /// Epoch reuse: every ball of the graph through ONE scratch agrees
        /// with a fresh oracle run — no cross-ball contamination.
        #[test]
        fn scratch_reuse_matches_naive(g in arb_graph()) {
            let mut scratch = BallScratch::new();
            let mut ball = Vec::new();
            for r in 0..4usize {
                for v in g.nodes() {
                    scratch.ball_into(&g, v, r, &mut ball);
                    prop_assert_eq!(&ball, &sorted(ball_nodes_naive(&g, v, r)));
                }
            }
        }

        /// The prefiltered evaluator (shared 2·d_Q dual simulation, merged
        /// sorted universes) returns exactly the `MatchOpt` baseline answer
        /// on random graphs and chain patterns.
        #[test]
        fn strong_simulation_equals_match_opt(
            g in arb_graph(),
            extra in proptest::collection::vec((0u8..4, prop::bool::ANY), 1..4),
        ) {
            let mut pb = PatternBuilder::new();
            let me = pb.add_node("L0");
            let mut prev = me;
            for (l, fwd) in extra {
                let u = pb.add_node(&format!("L{l}"));
                if fwd {
                    pb.add_edge(prev, u);
                } else {
                    pb.add_edge(u, prev);
                }
                prev = u;
            }
            pb.personalized(me).output(prev);
            let pattern = pb.build();
            // Anchor at every label-compatible node: each anchor gives one
            // personalized query.
            for v in g.nodes() {
                let Ok(q) = pattern.resolve_with_anchor(&g, v) else {
                    continue;
                };
                prop_assert_eq!(match_opt(&q, &g), strong_simulation(&q, &g));
            }
        }
    }
}
