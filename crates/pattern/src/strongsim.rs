//! Strong simulation matching (Ma et al., PVLDB 2011 [20]) with the
//! personalized-pattern semantics of §2.
//!
//! `G` matches `Q` at ball center `v0` if the `d_Q`-neighborhood ball
//! `G_dQ(v0)` admits a total dual simulation `R_{v0}` containing the
//! personalized pair `(u_p, v_p)`. The global match relation is the union of
//! all `R_{v0}`, and the answer `Q(G)` is the match set of the output node.
//!
//! Because every valid ball must contain `v_p`, candidate centers are
//! exactly the nodes of `N_dQ(v_p)` — the paper's `MatchOpt` ("only checks
//! subgraphs within `d_Q` hops of `v_p`") is therefore the natural baseline
//! and [`match_opt`] implements it directly. [`strong_simulation`] /
//! [`strong_simulation_on_view`] add a shared dual-simulation prefilter that
//! preserves the answer set (any ball-restricted relation is contained in
//! the prefilter relation) while skipping doomed balls early; the reduced
//! graph `G_Q` is evaluated with the same code.

use crate::dualsim::dual_simulation;
use crate::pattern::ResolvedPattern;
use rbq_graph::{Graph, GraphView, NodeId};
use rustc_hash::FxHashSet;
use std::collections::VecDeque;

/// Node set of the ball `G_r(center)` within an arbitrary view: nodes within
/// `r` hops following edges in either direction.
pub fn ball_nodes<V: GraphView + ?Sized>(g: &V, center: NodeId, r: usize) -> FxHashSet<NodeId> {
    let mut seen = FxHashSet::default();
    if !g.contains(center) {
        return seen;
    }
    let mut q = VecDeque::new();
    seen.insert(center);
    q.push_back((center, 0usize));
    while let Some((v, d)) = q.pop_front() {
        if d == r {
            continue;
        }
        for w in g.out_neighbors(v).chain(g.in_neighbors(v)) {
            if seen.insert(w) {
                q.push_back((w, d + 1));
            }
        }
    }
    seen
}

/// The paper's `MatchOpt` baseline: strong simulation evaluated per ball,
/// for every candidate center in `N_dQ(v_p)`, without cross-ball sharing.
///
/// Returns the sorted matches of the output node.
pub fn match_opt(q: &ResolvedPattern, g: &Graph) -> Vec<NodeId> {
    strong_sim_impl(q, g, false)
}

/// Optimized strong simulation on a full graph: identical answers to
/// [`match_opt`], with a shared prefilter.
pub fn strong_simulation(q: &ResolvedPattern, g: &Graph) -> Vec<NodeId> {
    strong_sim_impl(q, g, true)
}

/// Strong simulation over any [`GraphView`] — used to evaluate `Q(G_Q)` on
/// the reduced graph produced by dynamic reduction.
pub fn strong_simulation_on_view<V: GraphView + ?Sized>(q: &ResolvedPattern, g: &V) -> Vec<NodeId> {
    strong_sim_impl(q, g, true)
}

/// Strong simulation for a pattern **without** a personalized node (the
/// paper's §7 future work): the answer is the union over every candidate
/// anchor assignment of the anchored answer. Exact but expensive — the
/// baseline `RBSimAny` is measured against.
pub fn strong_simulation_anonymous(pattern: &crate::pattern::Pattern, g: &Graph) -> Vec<NodeId> {
    let Some(anchor_label) = g.labels().get(pattern.label_str(pattern.personalized())) else {
        return Vec::new();
    };
    let mut out: FxHashSet<NodeId> = FxHashSet::default();
    for &v in g.nodes_with_label(anchor_label) {
        if let Ok(q) = pattern.resolve_with_anchor(g, v) {
            out.extend(strong_simulation(&q, g));
        }
    }
    let mut res: Vec<NodeId> = out.into_iter().collect();
    res.sort_unstable();
    res
}

fn strong_sim_impl<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    prefilter: bool,
) -> Vec<NodeId> {
    let vp = q.vp();
    if !g.contains(vp) || g.label(vp) != q.label(q.up()) {
        return Vec::new();
    }
    let dq = q.dq();

    // Candidate centers: balls must contain v_p, i.e. centers within d_Q
    // undirected hops of v_p.
    let mut centers: Vec<NodeId> = ball_nodes(g, vp, dq).into_iter().collect();
    centers.sort_unstable();

    // Optional shared prefilter: the maximum dual simulation on
    // G_{2dQ}(v_p) contains every ball-restricted relation (balls around
    // centers in N_dQ(v_p) lie inside N_{2dQ}(v_p)), so non-members can
    // never match and balls disjoint from it can be skipped. The matched
    // set is a sorted vector (the relation's native representation);
    // membership is a binary search.
    let matched_filter: Option<Vec<NodeId>> = if prefilter {
        let uni = ball_nodes(g, vp, 2 * dq);
        match dual_simulation(q, g, Some(&uni)) {
            Some(d) => Some(d.all_matched()),
            None => return Vec::new(),
        }
    } else {
        None
    };

    let mut out: FxHashSet<NodeId> = FxHashSet::default();
    for v0 in centers {
        let ball = ball_nodes(g, v0, dq);
        let universe: FxHashSet<NodeId> = match &matched_filter {
            Some(m) => {
                let mut u: FxHashSet<NodeId> = ball
                    .iter()
                    .copied()
                    .filter(|v| m.binary_search(v).is_ok())
                    .collect();
                if !u.contains(&vp) {
                    continue;
                }
                // Keep the center in the universe even if unmatched: it is
                // harmless (it will simply not join the relation).
                u.insert(v0);
                u
            }
            None => ball,
        };
        if let Some(rel) = dual_simulation(q, g, Some(&universe)) {
            out.extend(rel.matches(q.uo()).iter().copied());
        }
    }
    let mut res: Vec<NodeId> = out.into_iter().collect();
    res.sort_unstable();
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{fig1_pattern, PatternBuilder};
    use rbq_graph::{GraphBuilder, InducedSubgraph};

    fn fig1_graph() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let hg1 = b.add_node("HG");
        let hgm = b.add_node("HG");
        let cc1 = b.add_node("CC");
        let cc2 = b.add_node("CC");
        let cc3 = b.add_node("CC");
        let cl1 = b.add_node("CL");
        let cln_1 = b.add_node("CL");
        let cln = b.add_node("CL");
        b.add_edge(michael, hg1);
        b.add_edge(michael, hgm);
        b.add_edge(michael, cc1);
        b.add_edge(michael, cc3);
        b.add_edge(cc2, cl1);
        b.add_edge(cc1, cln_1);
        b.add_edge(cc1, cln);
        b.add_edge(cc3, cln);
        b.add_edge(hgm, cln_1);
        b.add_edge(hgm, cln);
        let g = b.build();
        (g, vec![michael, hg1, hgm, cc1, cc2, cc3, cl1, cln_1, cln])
    }

    #[test]
    fn fig1_answer_is_cln_pair() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let ans = match_opt(&q, &g);
        assert_eq!(ans, vec![ids[7], ids[8]]);
    }

    #[test]
    fn optimized_agrees_with_baseline_on_fig1() {
        let (g, _) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        assert_eq!(match_opt(&q, &g), strong_simulation(&q, &g));
    }

    #[test]
    fn no_match_when_vp_absent_from_view() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let view = InducedSubgraph::new(&g, ids[1..].iter().copied());
        assert!(strong_simulation_on_view(&q, &view).is_empty());
    }

    #[test]
    fn works_on_induced_subgraph_view() {
        let (g, ids) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        // Keep exactly the ideal G_Q of Example 2: Michael, cc1, cc3, hgm,
        // cl_{n-1}, cl_n.
        let keep = [ids[0], ids[3], ids[5], ids[2], ids[7], ids[8]];
        let view = InducedSubgraph::new(&g, keep);
        let ans = strong_simulation_on_view(&q, &view);
        assert_eq!(ans, vec![ids[7], ids[8]]);
    }

    #[test]
    fn ball_nodes_radius_semantics() {
        let (g, ids) = fig1_graph();
        let b0 = ball_nodes(&g, ids[0], 0);
        assert_eq!(b0.len(), 1);
        let b1 = ball_nodes(&g, ids[0], 1);
        // Michael + hg1 + hgm + cc1 + cc3
        assert_eq!(b1.len(), 5);
        let b2 = ball_nodes(&g, ids[0], 2);
        // + cln-1, cln ; not cc2/cl1 (3 hops away)
        assert_eq!(b2.len(), 7);
    }

    #[test]
    fn ball_nodes_missing_center_is_empty() {
        let (g, ids) = fig1_graph();
        let view = InducedSubgraph::new(&g, [ids[0]]);
        assert!(ball_nodes(&view, ids[1], 3).is_empty());
    }

    #[test]
    fn chain_pattern_on_chain_graph() {
        // Pattern: p -> a -> b; graph: P -> A -> B and a decoy A without B.
        let mut gb = GraphBuilder::new();
        let p = gb.add_node("P");
        let a1 = gb.add_node("A");
        let b1 = gb.add_node("B");
        let a2 = gb.add_node("A");
        gb.add_edge(p, a1);
        gb.add_edge(a1, b1);
        gb.add_edge(p, a2); // a2 has no B child
        let g = gb.build();
        let mut pb = PatternBuilder::new();
        let qp = pb.add_node("P");
        let qa = pb.add_node("A");
        let qb = pb.add_node("B");
        pb.add_edge(qp, qa).add_edge(qa, qb);
        pb.personalized(qp).output(qb);
        let q = pb.build().resolve(&g).unwrap();
        assert_eq!(match_opt(&q, &g), vec![b1]);
        assert_eq!(strong_simulation(&q, &g), vec![b1]);
    }

    #[test]
    fn single_node_pattern() {
        let (g, ids) = fig1_graph();
        let mut pb = PatternBuilder::new();
        let m = pb.add_node("Michael");
        pb.personalized(m).output(m);
        let q = pb.build().resolve(&g).unwrap();
        assert_eq!(match_opt(&q, &g), vec![ids[0]]);
    }

    #[test]
    fn strong_sim_subset_of_dual_sim() {
        let (g, _) = fig1_graph();
        let q = fig1_pattern().resolve(&g).unwrap();
        let d = dual_simulation(&q, &g, None).unwrap();
        let strong = match_opt(&q, &g);
        for v in &strong {
            assert!(d.contains(q.uo(), *v));
        }
    }

    #[test]
    fn cycle_pattern_matches_cycle() {
        // Pattern p -> a, a -> p (2-cycle); graph has a matching 2-cycle and
        // a dead-end A.
        let mut gb = GraphBuilder::new();
        let p = gb.add_node("P");
        let a1 = gb.add_node("A");
        let a2 = gb.add_node("A");
        gb.add_edge(p, a1);
        gb.add_edge(a1, p);
        gb.add_edge(p, a2); // no back-edge
        let g = gb.build();
        let mut pb = PatternBuilder::new();
        let qp = pb.add_node("P");
        let qa = pb.add_node("A");
        pb.add_edge(qp, qa).add_edge(qa, qp);
        pb.personalized(qp).output(qa);
        let q = pb.build().resolve(&g).unwrap();
        assert_eq!(match_opt(&q, &g), vec![a1]);
        assert_eq!(strong_simulation(&q, &g), vec![a1]);
    }
}
