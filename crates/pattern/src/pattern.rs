//! The graph-pattern query type `Q = (V_p, E_p, f_v, u_p, u_o)` (§2).

use rbq_graph::{Graph, Label, NodeId};
use std::collections::VecDeque;
use std::fmt;

/// A pattern (query) node index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PNode(pub u32);

impl PNode {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize`.
    #[inline]
    pub fn new(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        PNode(i as u32)
    }
}

impl fmt::Debug for PNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A graph pattern with string labels, independent of any data graph.
///
/// Build with [`PatternBuilder`], then [`Pattern::resolve`] against a data
/// graph to obtain a [`ResolvedPattern`] ready for matching.
#[derive(Debug, Clone)]
pub struct Pattern {
    labels: Vec<String>,
    edges: Vec<(PNode, PNode)>,
    out_adj: Vec<Vec<PNode>>,
    in_adj: Vec<Vec<PNode>>,
    personalized: PNode,
    output: PNode,
}

impl Pattern {
    /// Number of query nodes `|V_p|`.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of query edges `|E_p|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Query size `|Q| = |V_p| + |E_p|`.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// The personalized node `u_p`.
    pub fn personalized(&self) -> PNode {
        self.personalized
    }

    /// The output node `u_o`.
    pub fn output(&self) -> PNode {
        self.output
    }

    /// Label string of query node `u`.
    pub fn label_str(&self, u: PNode) -> &str {
        &self.labels[u.index()]
    }

    /// Children of `u` in the pattern.
    pub fn out(&self, u: PNode) -> &[PNode] {
        &self.out_adj[u.index()]
    }

    /// Parents of `u` in the pattern.
    pub fn inn(&self, u: PNode) -> &[PNode] {
        &self.in_adj[u.index()]
    }

    /// All pattern edges.
    pub fn edges(&self) -> &[(PNode, PNode)] {
        &self.edges
    }

    /// Iterate all pattern node ids.
    pub fn nodes(&self) -> impl Iterator<Item = PNode> + '_ {
        (0..self.labels.len() as u32).map(PNode)
    }

    /// Total degree of `u` within the pattern.
    pub fn degree(&self, u: PNode) -> usize {
        self.out(u).len() + self.inn(u).len()
    }

    /// Number of distinct labels `l` in the pattern (Theorem 3).
    pub fn distinct_labels(&self) -> usize {
        let mut ls: Vec<&str> = self.labels.iter().map(String::as_str).collect();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    }

    /// Diameter of the pattern treated as an *undirected* graph — the `d`
    /// of Theorem 3, and the ball radius `d_Q` we use for locality (matches
    /// within a ball must be within `d_Q` undirected hops of any ball
    /// member).
    ///
    /// Returns `node_count - 1` as a conservative value for disconnected
    /// patterns (which cannot match anything under strong simulation in a
    /// single ball anyway).
    pub fn undirected_diameter(&self) -> usize {
        let n = self.node_count();
        if n == 0 {
            return 0;
        }
        let mut best = 0usize;
        let mut connected = true;
        let mut dist = vec![usize::MAX; n];
        for s in 0..n {
            dist.iter_mut().for_each(|d| *d = usize::MAX);
            dist[s] = 0;
            let mut q = VecDeque::new();
            q.push_back(PNode::new(s));
            let mut reached = 1usize;
            while let Some(u) = q.pop_front() {
                let du = dist[u.index()];
                for &w in self.out(u).iter().chain(self.inn(u)) {
                    if dist[w.index()] == usize::MAX {
                        dist[w.index()] = du + 1;
                        best = best.max(du + 1);
                        reached += 1;
                        q.push_back(w);
                    }
                }
            }
            if reached < n {
                connected = false;
            }
        }
        if connected {
            best
        } else {
            n.saturating_sub(1)
        }
    }

    /// Whether the pattern is weakly connected. Patterns in the paper's
    /// evaluation are connected; disconnected ones are legal but never match
    /// under strong simulation.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut q = VecDeque::from([PNode(0)]);
        let mut cnt = 1usize;
        while let Some(u) = q.pop_front() {
            for &w in self.out(u).iter().chain(self.inn(u)) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    cnt += 1;
                    q.push_back(w);
                }
            }
        }
        cnt == n
    }

    /// Resolve against a data graph with an explicit anchor assignment
    /// `u_anchor ↦ v_anchor`, bypassing the unique-label requirement.
    ///
    /// Used for patterns *without* a personalized node (the paper's §7
    /// future work): the caller enumerates candidate anchors and unions the
    /// per-anchor answers. The anchor's label must match.
    pub fn resolve_with_anchor(
        &self,
        g: &Graph,
        v_anchor: NodeId,
    ) -> Result<ResolvedPattern, ResolveError> {
        let mut labels = Vec::with_capacity(self.labels.len());
        for (i, name) in self.labels.iter().enumerate() {
            match g.labels().get(name) {
                Some(l) => labels.push(l),
                None => return Err(ResolveError::UnknownLabel(PNode::new(i), name.clone())),
            }
        }
        if g.node_label(v_anchor) != labels[self.personalized.index()] {
            return Err(ResolveError::NoPersonalizedMatch);
        }
        Ok(ResolvedPattern {
            dq: self.undirected_diameter(),
            pattern: self.clone(),
            labels,
            vp: v_anchor,
        })
    }

    /// Resolve against a data graph: intern labels and locate the unique
    /// match `v_p` of the personalized node.
    pub fn resolve(&self, g: &Graph) -> Result<ResolvedPattern, ResolveError> {
        let mut labels = Vec::with_capacity(self.labels.len());
        for (i, name) in self.labels.iter().enumerate() {
            match g.labels().get(name) {
                Some(l) => labels.push(l),
                None => return Err(ResolveError::UnknownLabel(PNode::new(i), name.clone())),
            }
        }
        let lp = labels[self.personalized.index()];
        let vp = match g.nodes_with_label(lp) {
            [] => return Err(ResolveError::NoPersonalizedMatch),
            [v] => *v,
            _ => return Err(ResolveError::AmbiguousPersonalizedMatch),
        };
        Ok(ResolvedPattern {
            dq: self.undirected_diameter(),
            pattern: self.clone(),
            labels,
            vp,
        })
    }
}

/// Errors from [`Pattern::resolve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// A pattern label does not occur in the data graph at all.
    UnknownLabel(PNode, String),
    /// No data node carries the personalized node's label.
    NoPersonalizedMatch,
    /// More than one data node carries the personalized node's label; the
    /// paper requires the personalized match `v_p` to be unique (§2).
    AmbiguousPersonalizedMatch,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::UnknownLabel(u, name) => {
                write!(
                    f,
                    "pattern node {u:?} has label {name:?} absent from the graph"
                )
            }
            ResolveError::NoPersonalizedMatch => {
                write!(f, "no data node matches the personalized node's label")
            }
            ResolveError::AmbiguousPersonalizedMatch => {
                write!(f, "multiple data nodes match the personalized node's label")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// A pattern bound to a data graph: labels interned, `v_p` located.
#[derive(Debug, Clone)]
pub struct ResolvedPattern {
    pattern: Pattern,
    labels: Vec<Label>,
    vp: NodeId,
    /// Cached `d_Q` — strong simulation reads it per ball, and recomputing
    /// the diameter BFS there would put allocations back on the warm path.
    dq: usize,
}

impl ResolvedPattern {
    /// The underlying pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The interned label of query node `u`.
    #[inline]
    pub fn label(&self, u: PNode) -> Label {
        self.labels[u.index()]
    }

    /// The unique data-graph match `v_p` of the personalized node.
    #[inline]
    pub fn vp(&self) -> NodeId {
        self.vp
    }

    /// Shorthand for `self.pattern().personalized()`.
    #[inline]
    pub fn up(&self) -> PNode {
        self.pattern.personalized()
    }

    /// Shorthand for `self.pattern().output()`.
    #[inline]
    pub fn uo(&self) -> PNode {
        self.pattern.output()
    }

    /// Ball radius `d_Q` used for locality.
    pub fn dq(&self) -> usize {
        self.dq
    }

    /// Re-anchor at `v` in place: only `v_p` changes — labels and `d_Q`
    /// are anchor-independent, so enumerating candidate anchors (the §7
    /// anonymous-pattern evaluation) needs one resolve plus one cheap
    /// `set_anchor` per candidate instead of a full pattern clone each.
    /// Returns `false` (and leaves the anchor unchanged) when `v` does not
    /// carry the personalized node's label.
    pub fn set_anchor(&mut self, g: &Graph, v: NodeId) -> bool {
        if g.node_label(v) != self.labels[self.pattern.personalized().index()] {
            return false;
        }
        self.vp = v;
        true
    }
}

/// Builder for [`Pattern`].
///
/// ```
/// use rbq_pattern::PatternBuilder;
/// // Fig. 1's query: Michael -> CC -> CL, Michael -> HG -> CL, output CL.
/// let mut b = PatternBuilder::new();
/// let michael = b.add_node("Michael");
/// let cc = b.add_node("CC");
/// let hg = b.add_node("HG");
/// let cl = b.add_node("CL");
/// b.add_edge(michael, cc);
/// b.add_edge(michael, hg);
/// b.add_edge(cc, cl);
/// b.add_edge(hg, cl);
/// let q = b.personalized(michael).output(cl).build();
/// assert_eq!(q.node_count(), 4);
/// assert_eq!(q.undirected_diameter(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PatternBuilder {
    labels: Vec<String>,
    edges: Vec<(PNode, PNode)>,
    personalized: Option<PNode>,
    output: Option<PNode>,
}

impl PatternBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a query node with the given label.
    pub fn add_node(&mut self, label: &str) -> PNode {
        let id = PNode::new(self.labels.len());
        self.labels.push(label.to_owned());
        id
    }

    /// Add a query edge `u -> v`.
    pub fn add_edge(&mut self, u: PNode, v: PNode) -> &mut Self {
        debug_assert!(u.index() < self.labels.len());
        debug_assert!(v.index() < self.labels.len());
        self.edges.push((u, v));
        self
    }

    /// Designate the personalized node `u_p`.
    pub fn personalized(&mut self, u: PNode) -> &mut Self {
        self.personalized = Some(u);
        self
    }

    /// Designate the output node `u_o`.
    pub fn output(&mut self, u: PNode) -> &mut Self {
        self.output = Some(u);
        self
    }

    /// Finish the pattern.
    ///
    /// # Panics
    /// Panics if the pattern has no nodes or the personalized/output nodes
    /// were not set.
    pub fn build(&self) -> Pattern {
        assert!(!self.labels.is_empty(), "pattern must have nodes");
        // invariant: documented `# Panics` contract of `build` — pattern
        // construction is an offline/setup step, not a serving-path one.
        let personalized = self.personalized.expect("personalized node not set");
        // invariant: same documented `# Panics` contract as above.
        let output = self.output.expect("output node not set");
        let n = self.labels.len();
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        edges.dedup();
        let mut out_adj = vec![Vec::new(); n];
        let mut in_adj = vec![Vec::new(); n];
        for &(u, v) in &edges {
            out_adj[u.index()].push(v);
            in_adj[v.index()].push(u);
        }
        Pattern {
            labels: self.labels.clone(),
            edges,
            out_adj,
            in_adj,
            personalized,
            output,
        }
    }
}

/// The running example of the paper (Fig. 1): pattern
/// `Michael -> CC -> CL <- HG <- Michael` with output `CL`.
/// Handy for tests and docs across the workspace.
pub fn fig1_pattern() -> Pattern {
    let mut b = PatternBuilder::new();
    let michael = b.add_node("Michael");
    let cc = b.add_node("CC");
    let hg = b.add_node("HG");
    let cl = b.add_node("CL");
    b.add_edge(michael, cc);
    b.add_edge(michael, hg);
    b.add_edge(cc, cl);
    b.add_edge(hg, cl);
    b.personalized(michael).output(cl);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::GraphBuilder;

    #[test]
    fn builder_basics() {
        let q = fig1_pattern();
        assert_eq!(q.node_count(), 4);
        assert_eq!(q.edge_count(), 4);
        assert_eq!(q.size(), 8);
        assert_eq!(q.label_str(q.personalized()), "Michael");
        assert_eq!(q.label_str(q.output()), "CL");
    }

    #[test]
    fn adjacency() {
        let q = fig1_pattern();
        let michael = PNode(0);
        let cl = PNode(3);
        assert_eq!(q.out(michael).len(), 2);
        assert_eq!(q.inn(cl).len(), 2);
        assert_eq!(q.degree(michael), 2);
        assert_eq!(q.degree(cl), 2);
    }

    #[test]
    fn distinct_labels_counts() {
        let q = fig1_pattern();
        assert_eq!(q.distinct_labels(), 4);
        let mut b = PatternBuilder::new();
        let a = b.add_node("X");
        let c = b.add_node("X");
        b.add_edge(a, c).personalized(a).output(c);
        assert_eq!(b.build().distinct_labels(), 1);
    }

    #[test]
    fn diameter_undirected() {
        let q = fig1_pattern();
        assert_eq!(q.undirected_diameter(), 2);

        // Directed path of 3 edges has undirected diameter 3.
        let mut b = PatternBuilder::new();
        let n0 = b.add_node("a");
        let n1 = b.add_node("b");
        let n2 = b.add_node("c");
        let n3 = b.add_node("d");
        b.add_edge(n0, n1).add_edge(n1, n2).add_edge(n2, n3);
        b.personalized(n0).output(n3);
        assert_eq!(b.build().undirected_diameter(), 3);
    }

    #[test]
    fn disconnected_pattern_detected() {
        let mut b = PatternBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("B");
        b.personalized(a).output(c);
        let q = b.build();
        assert!(!q.is_connected());
        assert_eq!(q.undirected_diameter(), 1); // conservative n-1
    }

    #[test]
    fn connected_pattern_detected() {
        assert!(fig1_pattern().is_connected());
    }

    fn fig1_like_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let cc = b.add_node("CC");
        let hg = b.add_node("HG");
        let cl = b.add_node("CL");
        b.add_edge(michael, cc);
        b.add_edge(michael, hg);
        b.add_edge(cc, cl);
        b.add_edge(hg, cl);
        b.build()
    }

    #[test]
    fn resolve_success() {
        let q = fig1_pattern();
        let g = fig1_like_graph();
        let r = q.resolve(&g).unwrap();
        assert_eq!(r.vp(), NodeId(0));
        assert_eq!(r.up(), PNode(0));
        assert_eq!(r.uo(), PNode(3));
        assert_eq!(r.dq(), 2);
        assert_eq!(r.label(PNode(1)), g.labels().get("CC").unwrap());
    }

    #[test]
    fn resolve_unknown_label() {
        let q = fig1_pattern();
        let mut b = GraphBuilder::new();
        b.add_node("Michael");
        let g = b.build();
        match q.resolve(&g) {
            Err(ResolveError::UnknownLabel(_, name)) => assert_eq!(name, "CC"),
            other => panic!("expected UnknownLabel, got {other:?}"),
        }
    }

    #[test]
    fn resolve_ambiguous_personalized() {
        let q = fig1_pattern();
        let mut b = GraphBuilder::new();
        b.add_node("Michael");
        b.add_node("Michael");
        b.add_node("CC");
        b.add_node("HG");
        b.add_node("CL");
        let g = b.build();
        assert!(matches!(
            q.resolve(&g),
            Err(ResolveError::AmbiguousPersonalizedMatch)
        ));
    }

    #[test]
    fn resolve_no_personalized() {
        // All pattern labels exist, but the personalized label "Michael"
        // does not.
        let mut pb = PatternBuilder::new();
        let a = pb.add_node("Michael");
        let c = pb.add_node("CC");
        pb.add_edge(a, c).personalized(a).output(c);
        let q = pb.build();
        let mut b = GraphBuilder::new();
        b.add_node("CC");
        b.intern_label("Michael");
        let g = b.build();
        assert!(matches!(
            q.resolve(&g),
            Err(ResolveError::NoPersonalizedMatch)
        ));
    }

    #[test]
    fn duplicate_pattern_edges_deduped() {
        let mut b = PatternBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("B");
        b.add_edge(a, c).add_edge(a, c).personalized(a).output(c);
        assert_eq!(b.build().edge_count(), 1);
    }

    #[test]
    fn error_display() {
        let e = ResolveError::NoPersonalizedMatch;
        assert!(format!("{e}").contains("personalized"));
    }
}
