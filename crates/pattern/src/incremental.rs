//! Incremental dual-simulation repair under graph deltas.
//!
//! The counter-based fixpoint of [`crate::dualsim`] is naturally
//! incremental: after a batch of edge insertions/removals, the maximum
//! dual simulation on the updated graph can be recomputed from the
//! previous relation plus a small *closure* of nodes reachable from the
//! delta's endpoints, instead of re-screening the whole graph. This is the
//! direction of Berkholz et al.'s maintenance-under-updates results, scoped
//! to the dual-simulation fragment this codebase serves.
//!
//! ## Why the universe is `prev ∪ closure`
//!
//! The maximum dual simulation is **monotone non-decreasing in data
//! edges**: every condition asks for the *existence* of a matched
//! neighbor, so extra edges can only help. Writing `G′ = (G ∖ removes) ∪
//! adds`:
//!
//! * `sim(G′) ⊆ sim(G ∪ adds)` — removals only shrink the relation.
//! * Any node of `sim(G ∪ adds) ∖ sim(G)` survives *because of* an added
//!   edge: tracing why it now satisfies conditions (a)/(b) walks a chain
//!   of relation members (hence label-candidates) connected by data edges,
//!   and the chain terminates at an endpoint of an added edge. So every
//!   newly admitted node lies in the candidate-restricted (bidirectional)
//!   reachability closure of the added-edge endpoints — plus brand-new
//!   nodes, which seed the closure directly.
//!
//! Hence `sim(G′) ⊆ prev ∪ closure`, and the greatest fixpoint restricted
//! to any universe `U ⊇ sim(G′)` equals the unrestricted one (a dual
//! simulation inside `U` is one globally, and the global maximum fits in
//! `U`). Removed edges need **no** seeding: the repair initializes its
//! counters fresh over the universe on the *final* graph, so stale matches
//! that lost their support are killed by the ordinary worklist.
//!
//! The full fixpoint stays the differential oracle — see the property
//! test, per house style.

use crate::dualsim::{dual_simulation, DualSim};
use crate::pattern::ResolvedPattern;
use rbq_graph::{GraphView, Label, NodeId};
use rustc_hash::FxHashSet;

/// Recompute the maximum dual simulation on the post-delta graph `g` from
/// the pre-delta relation `prev`, re-seeding only from the delta.
///
/// * `g` — the graph **after** the delta is applied.
/// * `prev` — the relation on the pre-delta graph (`None` when it was
///   empty/nonexistent).
/// * `added` — the added edges of the delta (a superset of the effective
///   ones is fine — extra endpoints only enlarge the universe, never
///   change the answer). Removed edges need not be supplied.
/// * `first_new_node` — the pre-delta node count; ids at or above it are
///   nodes the delta created.
///
/// Answers are identical to `dual_simulation(q, g, None)` on the updated
/// graph; the work is proportional to the previous relation plus the
/// candidate-restricted closure of the delta, not to `|V|`.
pub fn dual_simulation_incremental<V: GraphView + ?Sized>(
    q: &ResolvedPattern,
    g: &V,
    prev: Option<&DualSim>,
    added: &[(NodeId, NodeId)],
    first_new_node: usize,
) -> Option<DualSim> {
    // Labels the query mentions — the candidate alphabet. Nodes outside it
    // can never enter the relation, so the closure BFS skips them.
    let mut qlabels: Vec<Label> = q.pattern().nodes().map(|u| q.label(u)).collect();
    qlabels.sort_unstable();
    qlabels.dedup();
    let is_candidate = |v: NodeId| g.contains(v) && qlabels.binary_search(&g.label(v)).is_ok();

    // Closure: candidate-restricted bidirectional BFS from the added
    // edges' endpoints and every new node.
    let mut visited: FxHashSet<NodeId> = FxHashSet::default();
    let mut frontier: Vec<NodeId> = Vec::new();
    let seed = |v: NodeId, visited: &mut FxHashSet<NodeId>, frontier: &mut Vec<NodeId>| {
        if is_candidate(v) && visited.insert(v) {
            frontier.push(v);
        }
    };
    for &(u, v) in added {
        seed(u, &mut visited, &mut frontier);
        seed(v, &mut visited, &mut frontier);
    }
    for i in first_new_node..g.num_nodes() {
        seed(NodeId::new(i), &mut visited, &mut frontier);
    }
    while let Some(v) = frontier.pop() {
        for w in g.out_neighbors(v) {
            seed(w, &mut visited, &mut frontier);
        }
        for w in g.in_neighbors(v) {
            seed(w, &mut visited, &mut frontier);
        }
    }

    // Universe = previous relation ∪ closure ∪ new nodes ∪ {v_p}. Extra
    // members are harmless (the fixpoint re-verifies everything), missing
    // ones are not — every set below is argued for in the module docs.
    let mut universe: Vec<NodeId> = visited.into_iter().collect();
    if let Some(prev) = prev {
        for u in q.pattern().nodes() {
            universe.extend_from_slice(prev.matches(u));
        }
    }
    universe.extend((first_new_node..g.num_nodes()).map(NodeId::new));
    if g.contains(q.vp()) {
        universe.push(q.vp());
    }
    universe.sort_unstable();
    universe.dedup();

    dual_simulation(q, g, Some(&universe))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use proptest::prelude::*;
    use rbq_graph::builder::graph_from_edges;
    use rbq_graph::{DeltaBatch, Graph};

    /// Chain query A -> B -> C anchored at A.
    fn chain_query() -> crate::pattern::Pattern {
        let mut pb = PatternBuilder::new();
        let a = pb.add_node("A");
        let b = pb.add_node("B");
        let c = pb.add_node("C");
        pb.add_edge(a, b).add_edge(b, c);
        pb.personalized(a).output(c);
        pb.build()
    }

    #[test]
    fn resurrection_cascades_past_delta_endpoints() {
        // a(A) -> b(B), c(C) dangling: no relation (b has no C child).
        // Adding b -> c must resurrect a — which is NOT a delta endpoint;
        // only the closure through candidate b reaches it.
        let g = graph_from_edges(&["A", "B", "C"], &[(0, 1)]);
        let q = chain_query().resolve(&g).unwrap();
        let prev = dual_simulation(&q, &g, None);
        assert!(prev.is_none());

        let mut d = DeltaBatch::new();
        d.add_edge(NodeId(1), NodeId(2));
        let (g2, _) = g.apply_delta(&d).unwrap();
        let q2 = chain_query().resolve(&g2).unwrap();
        let inc = dual_simulation_incremental(
            &q2,
            &g2,
            prev.as_ref(),
            &[(NodeId(1), NodeId(2))],
            g.node_count(),
        )
        .unwrap();
        let full = dual_simulation(&q2, &g2, None).unwrap();
        for u in q2.pattern().nodes() {
            assert_eq!(inc.matches_sorted(u), full.matches_sorted(u));
        }
        assert_eq!(inc.matches_sorted(crate::pattern::PNode(2)), &[NodeId(2)]);
    }

    #[test]
    fn removal_kills_stale_matches_without_seeding() {
        // Full chain exists; removing b -> c collapses the relation even
        // though no added edge seeds the repair.
        let g = graph_from_edges(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let q = chain_query().resolve(&g).unwrap();
        let prev = dual_simulation(&q, &g, None);
        assert!(prev.is_some());

        let mut d = DeltaBatch::new();
        d.remove_edge(NodeId(1), NodeId(2));
        let (g2, _) = g.apply_delta(&d).unwrap();
        let q2 = chain_query().resolve(&g2).unwrap();
        let inc = dual_simulation_incremental(&q2, &g2, prev.as_ref(), &[], g.node_count());
        assert!(inc.is_none());
        assert!(dual_simulation(&q2, &g2, None).is_none());
    }

    #[test]
    fn new_node_with_new_label_joins_relation() {
        // Graph lacks any C node; the delta adds one under b. The new node
        // seeds the closure even though no pre-existing node changed.
        let g = graph_from_edges(&["A", "B"], &[(0, 1)]);
        let q = chain_query().resolve(&g); // "C" unknown -> resolve fails
        assert!(q.is_err());

        let mut d = DeltaBatch::new();
        d.add_node("C"); // node 2
        d.add_edge(NodeId(1), NodeId(2));
        let (g2, _) = g.apply_delta(&d).unwrap();
        let q2 = chain_query().resolve(&g2).unwrap();
        let inc =
            dual_simulation_incremental(&q2, &g2, None, &[(NodeId(1), NodeId(2))], g.node_count())
                .unwrap();
        let full = dual_simulation(&q2, &g2, None).unwrap();
        for u in q2.pattern().nodes() {
            assert_eq!(inc.matches_sorted(u), full.matches_sorted(u));
        }
    }

    // ------------------------------------------------ differential oracle

    /// One generated case: base graph, anchored chain pattern, edge adds,
    /// edge removes, new-node labels.
    type Case = (
        Graph,
        crate::pattern::Pattern,
        Vec<(u32, u32)>,
        Vec<(u32, u32)>,
        Vec<u8>,
    );

    /// Random base graph over labels {ME, L0..L3} with node 0 = ME, a
    /// random anchored chain pattern, and a random delta batch (adds,
    /// removes, node additions, self-loops, duplicates).
    fn arb_case() -> impl Strategy<Value = Case> {
        (3usize..16).prop_flat_map(|n| {
            let labels = proptest::collection::vec(0u8..4, n - 1);
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 2);
            let extra = proptest::collection::vec((0u8..4, prop::bool::ANY), 1..4);
            let new_nodes = proptest::collection::vec(0u8..4, 0..3);
            // Delta endpoints may reference the new nodes too.
            let m = (n + 3) as u32;
            let adds = proptest::collection::vec((0..m, 0..m), 0..6);
            let removes = proptest::collection::vec((0..m, 0..m), 0..6);
            ((labels, edges, extra), (adds, removes, new_nodes)).prop_map(
                |((labels, edges, extra), (adds, removes, new_nodes))| {
                    let names: Vec<String> = std::iter::once("ME".to_string())
                        .chain(labels.iter().map(|l| format!("L{l}")))
                        .collect();
                    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                    let g = graph_from_edges(&refs, &edges);
                    let mut pb = PatternBuilder::new();
                    let me = pb.add_node("ME");
                    let mut prev = me;
                    for (l, fwd) in extra {
                        let u = pb.add_node(&format!("L{l}"));
                        if fwd {
                            pb.add_edge(prev, u);
                        } else {
                            pb.add_edge(u, prev);
                        }
                        prev = u;
                    }
                    pb.personalized(me).output(prev);
                    (g, pb.build(), adds, removes, new_nodes)
                },
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(160))]

        /// Incremental repair from the previous relation equals the full
        /// fixpoint on the updated graph, for arbitrary deltas.
        #[test]
        fn incremental_equals_full((g, p, adds, removes, new_nodes) in arb_case()) {
            let prev = p.resolve(&g).ok().and_then(|q| dual_simulation(&q, &g, None));

            let mut d = DeltaBatch::new();
            for l in &new_nodes {
                d.add_node(&format!("L{l}"));
            }
            let n1 = (g.node_count() + new_nodes.len()) as u32;
            let mut added: Vec<(NodeId, NodeId)> = Vec::new();
            for &(u, v) in &adds {
                let (u, v) = (u % n1, v % n1);
                d.add_edge(NodeId(u), NodeId(v));
                added.push((NodeId(u), NodeId(v)));
            }
            for &(u, v) in &removes {
                d.remove_edge(NodeId(u % n1), NodeId(v % n1));
            }
            let (g2, _) = g.apply_delta(&d).unwrap();

            let Ok(q2) = p.resolve(&g2) else { return Ok(()); };
            let inc = dual_simulation_incremental(
                &q2, &g2, prev.as_ref(), &added, g.node_count(),
            );
            let full = dual_simulation(&q2, &g2, None);
            match (inc, full) {
                (None, None) => {}
                (Some(i), Some(f)) => {
                    for u in p.nodes() {
                        prop_assert_eq!(
                            i.matches_sorted(u),
                            f.matches_sorted(u),
                            "mismatch at query node {:?}", u
                        );
                    }
                }
                (i, f) => prop_assert!(
                    false,
                    "existence mismatch: incremental={} full={}",
                    i.is_some(),
                    f.is_some()
                ),
            }
        }
    }
}
