//! Shortest-path distances and path reconstruction (unweighted).
//!
//! Supports the workload generators (distance-stratified query sampling),
//! the diameter computations of §2, and debugging utilities (showing *why*
//! a reachability answer is `true` by exhibiting a path).

use crate::graph::Graph;
use crate::types::{Direction, NodeId};
use std::collections::VecDeque;

/// Unreachable marker in distance arrays.
pub const INF: u32 = u32::MAX;

/// Single-source BFS distances following `dir` edges. `dist[v] == INF`
/// means unreachable.
pub fn distances(g: &Graph, source: NodeId, dir: Direction) -> Vec<u32> {
    distances_multi(g, std::iter::once(source), dir)
}

/// Multi-source BFS distances (distance to the nearest source).
pub fn distances_multi(
    g: &Graph,
    sources: impl IntoIterator<Item = NodeId>,
    dir: Direction,
) -> Vec<u32> {
    let mut dist = vec![INF; g.node_count()];
    let mut queue = VecDeque::new();
    for s in sources {
        if dist[s.index()] == INF {
            dist[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for &w in g.adj(v, dir) {
            if dist[w.index()] == INF {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// A shortest directed path from `s` to `t` (inclusive), or `None` if
/// unreachable. `O(|V| + |E|)`.
pub fn shortest_path(g: &Graph, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
    if s == t {
        return Some(vec![s]);
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    seen[s.index()] = true;
    let mut queue = VecDeque::from([s]);
    while let Some(v) = queue.pop_front() {
        for &w in g.out(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                parent[w.index()] = Some(v);
                if w == t {
                    let mut path = vec![t];
                    let mut cur = t;
                    while let Some(p) = parent[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

/// Eccentricity of `v`: the greatest finite BFS distance from `v`
/// following out-edges (0 if `v` reaches nothing).
pub fn eccentricity(g: &Graph, v: NodeId) -> u32 {
    distances(g, v, Direction::Out)
        .into_iter()
        .filter(|&d| d != INF)
        .max()
        .unwrap_or(0)
}

/// Histogram of finite distances from `source` (index = distance).
pub fn distance_histogram(g: &Graph, source: NodeId, dir: Direction) -> Vec<usize> {
    let dist = distances(g, source, dir);
    let max = dist
        .iter()
        .copied()
        .filter(|&d| d != INF)
        .max()
        .unwrap_or(0);
    let mut hist = vec![0usize; max as usize + 1];
    for d in dist.into_iter().filter(|&d| d != INF) {
        hist[d as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn sample() -> Graph {
        // 0 -> 1 -> 2 -> 3, 0 -> 2 (shortcut), 4 isolated
        graph_from_edges(&["A"; 5], &[(0, 1), (1, 2), (2, 3), (0, 2)])
    }

    #[test]
    fn distances_shortest() {
        let g = sample();
        let d = distances(&g, NodeId(0), Direction::Out);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 1); // via shortcut
        assert_eq!(d[3], 2);
        assert_eq!(d[4], INF);
    }

    #[test]
    fn distances_backward() {
        let g = sample();
        let d = distances(&g, NodeId(3), Direction::In);
        assert_eq!(d[3], 0);
        assert_eq!(d[2], 1);
        assert_eq!(d[0], 2);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = graph_from_edges(&["A"; 5], &[(0, 1), (1, 2), (4, 3), (3, 2)]);
        let d = distances_multi(&g, [NodeId(0), NodeId(4)], Direction::Out);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], 1);
        assert_eq!(d[1], 1);
    }

    #[test]
    fn shortest_path_found_and_minimal() {
        let g = sample();
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.first(), Some(&NodeId(0)));
        assert_eq!(p.last(), Some(&NodeId(3)));
        assert_eq!(p.len(), 3); // 0 -> 2 -> 3
        for w in p.windows(2) {
            assert!(g.edge(w[0], w[1]), "non-edge in path");
        }
    }

    #[test]
    fn shortest_path_unreachable() {
        let g = sample();
        assert!(shortest_path(&g, NodeId(3), NodeId(0)).is_none());
        assert!(shortest_path(&g, NodeId(0), NodeId(4)).is_none());
    }

    #[test]
    fn shortest_path_self() {
        let g = sample();
        assert_eq!(
            shortest_path(&g, NodeId(2), NodeId(2)),
            Some(vec![NodeId(2)])
        );
    }

    #[test]
    fn eccentricity_values() {
        let g = sample();
        assert_eq!(eccentricity(&g, NodeId(0)), 2);
        assert_eq!(eccentricity(&g, NodeId(3)), 0);
        assert_eq!(eccentricity(&g, NodeId(4)), 0);
    }

    #[test]
    fn histogram_counts() {
        let g = sample();
        let h = distance_histogram(&g, NodeId(0), Direction::Out);
        assert_eq!(h, vec![1, 2, 1]); // self; {1,2}; {3}
    }
}
