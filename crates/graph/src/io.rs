//! Plain-text graph interchange.
//!
//! Format (line oriented, `#` comments allowed):
//!
//! ```text
//! n <node-id> <label>
//! e <src-id> <dst-id>
//! ```
//!
//! Node ids in the file must be dense `0..n`; labels are arbitrary
//! whitespace-free strings. This mirrors the edge-list snapshots the paper's
//! real datasets (Youtube, Yahoo web) ship as, with labels added.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::types::NodeId;
use std::io::{self, BufRead, Write};

/// Errors from [`read_graph`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based number and content.
    Parse(usize, String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse(line, content) => {
                write!(f, "parse error at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse(..) => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Write a file atomically: the content goes to a sibling temp file which
/// is fsynced and then renamed over `path`, so a crash mid-write can never
/// leave a half-written artifact at the destination — readers see either
/// the old file or the complete new one.
///
/// The temp file lives in the same directory as `path` (renames are only
/// atomic within a filesystem). On any error the temp file is removed
/// best-effort and the destination is untouched.
pub fn atomic_write<F>(path: &std::path::Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut io::BufWriter<std::fs::File>) -> io::Result<()>,
{
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "artifact".into());
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let f = std::fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(f);
        write(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Serialize `g` to the text format.
pub fn write_graph<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "# rbq graph: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    )?;
    for v in g.nodes() {
        writeln!(w, "n {} {}", v.0, g.node_label_str(v))?;
    }
    for (u, v) in g.edges() {
        writeln!(w, "e {} {}", u.0, v.0)?;
    }
    Ok(())
}

/// Parse a graph from the text format.
///
/// Uses a workhorse line buffer (single allocation) per the I/O guidance in
/// the Rust Performance Book.
pub fn read_graph<R: BufRead>(mut r: R) -> Result<Graph, ReadError> {
    let mut b = GraphBuilder::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut expected_next_node = 0u32;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        match parts.next() {
            Some("n") => {
                let id: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ReadError::Parse(lineno, t.to_owned()))?;
                let label = parts
                    .next()
                    .ok_or_else(|| ReadError::Parse(lineno, t.to_owned()))?;
                if id != expected_next_node {
                    return Err(ReadError::Parse(lineno, t.to_owned()));
                }
                expected_next_node += 1;
                b.add_node(label);
            }
            Some("e") => {
                let u: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ReadError::Parse(lineno, t.to_owned()))?;
                let v: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ReadError::Parse(lineno, t.to_owned()))?;
                if u >= expected_next_node || v >= expected_next_node {
                    return Err(ReadError::Parse(lineno, t.to_owned()));
                }
                b.add_edge(NodeId(u), NodeId(v));
            }
            _ => return Err(ReadError::Parse(lineno, t.to_owned())),
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn roundtrip() {
        let g = graph_from_edges(&["A", "B", "C"], &[(0, 1), (1, 2), (2, 0)]);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g2.node_count(), 3);
        assert_eq!(g2.edge_count(), 3);
        for v in g.nodes() {
            assert_eq!(g.node_label_str(v), g2.node_label_str(v));
        }
        for (u, v) in g.edges() {
            assert!(g2.edge(u, v));
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\nn 0 A\nn 1 B\n# mid\ne 0 1\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn non_dense_node_ids_rejected() {
        let text = "n 0 A\nn 2 B\n";
        assert!(matches!(
            read_graph(text.as_bytes()),
            Err(ReadError::Parse(2, _))
        ));
    }

    #[test]
    fn edge_to_unknown_node_rejected() {
        let text = "n 0 A\ne 0 5\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn garbage_line_rejected() {
        let text = "n 0 A\nx y z\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn error_display_mentions_line() {
        let text = "bogus\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 1"), "got: {msg}");
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_graph("".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("rbq_io_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        std::fs::write(&path, "old").unwrap();
        atomic_write(&path, |w| w.write_all(b"new contents")).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new contents");
        // No temp file survives a successful write.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_failure_keeps_old_file() {
        let dir = std::env::temp_dir().join(format!("rbq_io_atomic_err_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        std::fs::write(&path, "old").unwrap();
        let err = atomic_write(&path, |_| Err(io::Error::other("writer failed")));
        assert!(err.is_err());
        // Destination untouched, temp cleaned up.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "old");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
