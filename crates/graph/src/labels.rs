//! String-label interning.
//!
//! Data graphs carry textual node labels ("CC", "HG", "CL" in the paper's
//! Fig. 1). All algorithms compare labels by dense [`Label`] id; the
//! interner owns the id ↔ string bijection.

use crate::types::Label;
use rustc_hash::FxHashMap;

/// Interns label strings to dense [`Label`] ids.
///
/// Lookup by string is hash-based; lookup by id is an array index. The
/// interner is append-only: once issued, an id never changes meaning.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    by_name: FxHashMap<String, Label>,
    names: Vec<String>,
}

impl LabelInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id. Idempotent.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let l = Label::new(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), l);
        l
    }

    /// Resolve a previously interned `name` without inserting.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// The string for label id `l`.
    ///
    /// # Panics
    /// Panics if `l` was not issued by this interner.
    pub fn name(&self, l: Label) -> &str {
        &self.names[l.index()]
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(Label, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Label::new(i), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = LabelInterner::new();
        let a = it.intern("CC");
        let b = it.intern("CC");
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut it = LabelInterner::new();
        let a = it.intern("CC");
        let b = it.intern("HG");
        let c = it.intern("CL");
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut it = LabelInterner::new();
        assert_eq!(it.intern("x"), Label(0));
        assert_eq!(it.intern("y"), Label(1));
        assert_eq!(it.intern("x"), Label(0));
        assert_eq!(it.intern("z"), Label(2));
    }

    #[test]
    fn name_roundtrip() {
        let mut it = LabelInterner::new();
        let l = it.intern("Michael");
        assert_eq!(it.name(l), "Michael");
        assert_eq!(it.get("Michael"), Some(l));
        assert_eq!(it.get("Eric"), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut it = LabelInterner::new();
        it.intern("a");
        it.intern("b");
        let pairs: Vec<_> = it.iter().map(|(l, s)| (l.index(), s.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }

    #[test]
    fn empty_interner() {
        let it = LabelInterner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }
}
