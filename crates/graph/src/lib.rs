#![warn(missing_docs)]
//! # rbq-graph — graph substrate for resource-bounded querying
//!
//! This crate provides the data-graph substrate used by the `rbq` family of
//! crates, which together reproduce *"Querying Big Graphs within Bounded
//! Resources"* (Fan, Wang & Wu, SIGMOD 2014).
//!
//! A data graph is a **node-labeled directed graph** `G = (V, E, L)`
//! (paper §2). This crate supplies:
//!
//! * [`Graph`] — an immutable CSR (compressed sparse row) representation with
//!   both out- and in-adjacency, built via [`GraphBuilder`];
//! * [`LabelInterner`] — string labels interned to dense `u32` ids;
//! * [`GraphView`] — the read-only abstraction all matching algorithms are
//!   generic over, so they run unchanged on a full graph, an induced
//!   subgraph, or a dynamically grown `G_Q`;
//! * traversals ([`traverse`]) — BFS / DFS / bounded and bidirectional BFS
//!   with visit accounting;
//! * neighborhoods ([`neighborhood`]) — `N_r(v)` node sets, `G_r(v)` balls
//!   (the `r`-neighborhood subgraphs of §2), and the reusable epoch-stamped
//!   [`BallScratch`] for evaluating many balls without per-ball allocation;
//! * [`scc`] — Tarjan strongly connected components, and [`condense`] —
//!   reachability-preserving DAG condensation (the first half of the
//!   query-preserving compression of §5);
//! * [`delta`] — live updates: [`DeltaBatch`] edge/node batches applied via
//!   a CSR overlay with threshold-triggered compaction, the substrate for
//!   serving under churn;
//! * [`partition`] — node-to-shard assignments (label-hash and
//!   SCC/community-aware) with boundary bookkeeping, the substrate for
//!   sharded serving;
//! * [`topo`] — topological ranks `v.r` on DAGs (auxiliary info of §5.1);
//! * [`subgraph`] — induced subgraphs and the incrementally grown
//!   [`subgraph::DynamicSubgraph`] used for `G_Q`;
//! * [`stats`] — degree and label statistics (`d_G`, `l`, `f` of Theorem 3);
//! * [`io`] — a plain-text edge-list interchange format, plus the atomic
//!   write-temp-then-rename helper every durable artifact goes through;
//! * [`snapshot`] — a versioned, checksummed binary snapshot of the
//!   compacted CSR (the mmap-loader precursor of ROADMAP item 3), and
//! * [`wal`] — a length-prefixed, per-record-CRC append-only log of
//!   [`DeltaBatch`]es with torn-tail truncation on replay: together the
//!   durability substrate for crash-recoverable serving.

pub mod adapters;
pub mod builder;
pub mod cancel;
pub mod condense;
pub mod delta;
pub mod distance;
pub mod faultpoint;
pub mod graph;
pub mod io;
pub mod labels;
pub mod neighborhood;
pub mod partition;
pub mod scc;
pub mod snapshot;
pub mod stats;
pub mod subgraph;
pub mod topo;
pub mod traverse;
pub mod types;
pub mod view;
pub mod wal;

pub use builder::GraphBuilder;
pub use cancel::{CancelPanic, CancelTicker, CancelToken};
pub use delta::{DeltaBatch, DeltaError, DeltaOp, DeltaReport};
pub use graph::Graph;
pub use labels::LabelInterner;
pub use neighborhood::BallScratch;
pub use partition::{PartitionError, PartitionStats, ShardAssignment};
pub use snapshot::{load_snapshot, write_snapshot, SnapshotError, SnapshotMeta};
pub use subgraph::{DynamicSubgraph, InducedSubgraph, SubgraphScratch};
pub use types::{Label, NodeId};
pub use view::{GraphView, Neighbors, NodeIds};
pub use wal::{replay as wal_replay, WalError, WalReplay, WalWriter};
