//! Mutable graph construction.
//!
//! [`GraphBuilder`] accumulates nodes and edges, then [`GraphBuilder::build`]
//! freezes them into the immutable CSR [`Graph`]. Duplicate edges are
//! deduplicated and self-loops are allowed (real web/social snapshots contain
//! them; none of the paper's algorithms forbid them).

use crate::graph::Graph;
use crate::labels::LabelInterner;
use crate::types::{Label, NodeId};

/// Builder for [`Graph`].
///
/// ```
/// use rbq_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let michael = b.add_node("Michael");
/// let cc = b.add_node("CC");
/// b.add_edge(michael, cc);
/// let g = b.build();
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    labels: LabelInterner,
    node_labels: Vec<Label>,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with pre-reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            labels: LabelInterner::new(),
            node_labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Add a node with the given label string; returns its id.
    pub fn add_node(&mut self, label: &str) -> NodeId {
        let l = self.labels.intern(label);
        self.add_node_with_label(l)
    }

    /// Add a node with an already-interned label; returns its id.
    pub fn add_node_with_label(&mut self, l: Label) -> NodeId {
        debug_assert!(l.index() < self.labels.len(), "label not interned");
        let id = NodeId::new(self.node_labels.len());
        self.node_labels.push(l);
        id
    }

    /// Intern a label without creating a node.
    pub fn intern_label(&mut self, name: &str) -> Label {
        self.labels.intern(name)
    }

    /// Add a directed edge `u -> v`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `u` or `v` has not been added.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(u.index() < self.node_labels.len(), "unknown source node");
        debug_assert!(v.index() < self.node_labels.len(), "unknown target node");
        self.edges.push((u, v));
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of `add_edge` calls so far — **before** deduplication, so
    /// this can exceed the built graph's [`Graph::edge_count`] when
    /// parallel edges were added. Use only for capacity hints and
    /// progress reporting, never as `|E|`.
    pub fn added_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Access the interner built so far.
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Freeze into an immutable [`Graph`].
    ///
    /// Runs in `O(|V| + |E|)` (counting-sort CSR construction) plus a final
    /// per-list sort for deterministic, binary-searchable adjacency.
    pub fn build(mut self) -> Graph {
        let n = self.node_labels.len();

        // Deduplicate edges.
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();

        // Counting-sort into CSR, both directions.
        let mut out_offsets = vec![0usize; n + 1];
        let mut in_offsets = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            out_offsets[u.index() + 1] += 1;
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut out_targets = vec![NodeId(0); m];
        let mut in_targets = vec![NodeId(0); m];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for &(u, v) in &self.edges {
            out_targets[out_cursor[u.index()]] = v;
            out_cursor[u.index()] += 1;
            in_targets[in_cursor[v.index()]] = u;
            in_cursor[v.index()] += 1;
        }
        // Edges were globally sorted by (u, v), so each out list is already
        // sorted; in-lists need sorting per node.
        for i in 0..n {
            in_targets[in_offsets[i]..in_offsets[i + 1]].sort_unstable();
        }

        Graph::from_parts(
            self.labels,
            self.node_labels,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        )
    }
}

/// Convenience: build a graph from `(label_of_node_i)` and `(u, v)` index
/// pairs. Primarily for tests and examples.
pub fn graph_from_edges(labels: &[&str], edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for l in labels {
        b.add_node(l);
    }
    for &(u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = graph_from_edges(&["A", "B"], &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out(NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn added_edge_count_is_pre_dedup() {
        // Regression: the builder's count is add_edge calls, NOT |E|.
        // Parallel edges and repeated self-loops must collapse in the
        // built graph while the builder keeps the raw tally.
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("B");
        b.add_edge(a, c);
        b.add_edge(a, c);
        b.add_edge(c, c);
        b.add_edge(c, c);
        assert_eq!(b.added_edge_count(), 4);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out(a), &[c]);
        assert_eq!(g.out(c), &[c]);
        assert_eq!(g.inn(c), &[a, c]);
    }

    #[test]
    fn self_loops_allowed() {
        let g = graph_from_edges(&["A"], &[(0, 0)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out(NodeId(0)), &[NodeId(0)]);
        assert_eq!(g.inn(NodeId(0)), &[NodeId(0)]);
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = graph_from_edges(&["A"; 5], &[(0, 4), (0, 2), (0, 3), (0, 1), (2, 0), (4, 0)]);
        assert_eq!(
            g.out(NodeId(0)),
            &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(g.inn(NodeId(0)), &[NodeId(2), NodeId(4)]);
    }

    #[test]
    fn shared_labels_intern_once() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("same");
        let y = b.add_node("same");
        let g = b.build();
        assert_eq!(g.node_label(x), g.node_label(y));
        assert_eq!(g.labels().len(), 1);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(10, 10);
        let a = b.add_node("A");
        let c = b.add_node("B");
        b.add_edge(a, c);
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_node_with_interned_label() {
        let mut b = GraphBuilder::new();
        let l = b.intern_label("X");
        let v = b.add_node_with_label(l);
        let g = b.build();
        assert_eq!(g.node_label(v), l);
        assert_eq!(g.node_label_str(v), "X");
    }

    #[test]
    fn larger_csr_roundtrip() {
        // Star: center 0 -> 1..=9, plus back edges from odd nodes.
        let labels: Vec<&str> = (0..10).map(|i| if i == 0 { "C" } else { "S" }).collect();
        let mut edges: Vec<(u32, u32)> = (1..10).map(|i| (0, i)).collect();
        edges.extend((1..10).filter(|i| i % 2 == 1).map(|i| (i, 0)));
        let g = graph_from_edges(&labels, &edges);
        assert_eq!(g.deg_out(NodeId(0)), 9);
        assert_eq!(g.deg_in(NodeId(0)), 5);
        for i in 1..10u32 {
            assert!(g.edge(NodeId(0), NodeId(i)));
            assert_eq!(g.edge(NodeId(i), NodeId(0)), i % 2 == 1);
        }
    }
}

#[cfg(test)]
mod panic_tests {
    use super::*;

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unknown source node")]
    fn edge_from_unknown_node_panics_in_debug() {
        let mut b = GraphBuilder::new();
        let v = b.add_node("A");
        b.add_edge(NodeId(99), v);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unknown target node")]
    fn edge_to_unknown_node_panics_in_debug() {
        let mut b = GraphBuilder::new();
        let v = b.add_node("A");
        b.add_edge(v, NodeId(99));
    }

    #[test]
    fn build_empty_then_query() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
