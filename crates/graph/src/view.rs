//! The [`GraphView`] abstraction.
//!
//! Resource-bounded query answering evaluates the *same* matching algorithms
//! on the full graph `G` (baselines) and on the dynamically reduced `G_Q`
//! (paper Fig. 2). Making the matchers generic over a read-only view lets
//! one implementation serve both, without copying `G_Q` into a fresh graph.
//!
//! Adjacency is exposed through the concrete [`Neighbors`] iterator — a
//! borrowed slice, optionally filtered through a membership set — instead of
//! `Box<dyn Iterator>`: the matching fixpoints probe adjacency millions of
//! times per query, and a heap allocation per probe dominated their profile.
//! Slice-backed views (the common case) additionally expose the raw slice
//! via [`Neighbors::as_slice`] so hot loops can iterate without any
//! per-element branching.

use crate::types::{Direction, Label, NodeId};
use rustc_hash::FxHashSet;

const EMPTY: &[NodeId] = &[];

/// Borrowed adjacency of one node: a slice, optionally filtered by a
/// membership set (for induced-subgraph views). Never allocates.
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    rest: &'a [NodeId],
    filter: Option<&'a FxHashSet<NodeId>>,
}

impl<'a> Neighbors<'a> {
    /// Adjacency backed directly by a slice.
    #[inline]
    pub fn slice(list: &'a [NodeId]) -> Self {
        Neighbors {
            rest: list,
            filter: None,
        }
    }

    /// Adjacency backed by a base-graph slice filtered through `members`:
    /// only targets in the set are yielded.
    #[inline]
    pub fn filtered(list: &'a [NodeId], members: &'a FxHashSet<NodeId>) -> Self {
        Neighbors {
            rest: list,
            filter: Some(members),
        }
    }

    /// No neighbors.
    #[inline]
    pub fn empty() -> Self {
        Neighbors {
            rest: EMPTY,
            filter: None,
        }
    }

    /// The remaining neighbors as a plain slice, when unfiltered. Hot loops
    /// use this to bypass the per-element filter branch; `None` means the
    /// view is virtual (filtered) and must be iterated.
    #[inline]
    pub fn as_slice(&self) -> Option<&'a [NodeId]> {
        match self.filter {
            None => Some(self.rest),
            Some(_) => None,
        }
    }
}

impl Iterator for Neighbors<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self.filter {
            None => {
                let (&first, rest) = self.rest.split_first()?;
                self.rest = rest;
                Some(first)
            }
            Some(members) => {
                while let Some((&first, rest)) = self.rest.split_first() {
                    self.rest = rest;
                    if members.contains(&first) {
                        return Some(first);
                    }
                }
                None
            }
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.filter {
            None => (self.rest.len(), Some(self.rest.len())),
            Some(_) => (0, Some(self.rest.len())),
        }
    }
}

/// Node ids of a view, in ascending order. Concrete (non-boxed) so
/// `node_ids()` costs nothing for range- and slice-backed views; only views
/// that keep nodes in insertion order pay a sort + allocation.
#[derive(Debug, Clone)]
pub enum NodeIds<'a> {
    /// Dense id range `0..n` (a full [`crate::Graph`]).
    Range(std::ops::Range<u32>),
    /// Sorted member slice (induced subgraphs).
    Slice(std::slice::Iter<'a, NodeId>),
    /// Materialized sorted ids (views without a sorted member list).
    Owned(std::vec::IntoIter<NodeId>),
}

impl Iterator for NodeIds<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            NodeIds::Range(r) => r.next().map(NodeId),
            NodeIds::Slice(it) => it.next().copied(),
            NodeIds::Owned(it) => it.next(),
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            NodeIds::Range(r) => r.size_hint(),
            NodeIds::Slice(it) => it.size_hint(),
            NodeIds::Owned(it) => it.size_hint(),
        }
    }
}

/// A read-only view of a node-labeled directed graph.
///
/// Node ids are those of the *underlying* base graph; a view over a subgraph
/// simply exposes fewer of them. Implementations must be consistent:
/// `out_neighbors`/`in_neighbors` only yield nodes for which
/// [`GraphView::contains`] is true, and every edge yielded by
/// `out_neighbors(u)` appears as `u` in `in_neighbors(v)`.
pub trait GraphView {
    /// Whether node `v` is present in this view.
    fn contains(&self, v: NodeId) -> bool;

    /// The label of `v`. May panic if `!self.contains(v)`.
    fn label(&self, v: NodeId) -> Label;

    /// Children of `v`: targets of edges `v -> w` present in the view.
    fn out_neighbors(&self, v: NodeId) -> Neighbors<'_>;

    /// Parents of `v`: sources of edges `w -> v` present in the view.
    fn in_neighbors(&self, v: NodeId) -> Neighbors<'_>;

    /// All node ids present in the view, in ascending order.
    fn node_ids(&self) -> NodeIds<'_>;

    /// Number of nodes in the view.
    fn num_nodes(&self) -> usize;

    /// Number of edges in the view.
    fn num_edges(&self) -> usize;

    /// Neighbors in the given direction.
    fn neighbors(&self, v: NodeId, dir: Direction) -> Neighbors<'_> {
        match dir {
            Direction::Out => self.out_neighbors(v),
            Direction::In => self.in_neighbors(v),
        }
    }

    /// Graph size `|G| = |V| + |E|` — the unit in which the resource ratio
    /// `α` is expressed throughout the paper (§2).
    fn size(&self) -> usize {
        self.num_nodes() + self.num_edges()
    }

    /// Out-degree of `v` within the view.
    fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).count()
    }

    /// In-degree of `v` within the view.
    fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).count()
    }

    /// Total degree (in + out) of `v` within the view — the `d(v)` used by
    /// the dynamic-reduction weights (§4.1).
    fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Whether the view has an edge `u -> v`.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).any(|w| w == v)
    }

    /// Visit every node of the view carrying label `l`, in ascending id
    /// order. The default scans all nodes; [`crate::Graph`] overrides it
    /// with its label partition index (`O(1)` + output).
    fn for_each_node_with_label(&self, l: Label, f: &mut dyn FnMut(NodeId)) {
        for v in self.node_ids() {
            if self.label(v) == l {
                f(v);
            }
        }
    }

    /// Number of nodes carrying label `l`. The default scans; [`crate::Graph`]
    /// answers from the label partition in constant time.
    fn count_nodes_with_label(&self, l: Label) -> usize {
        let mut n = 0usize;
        self.for_each_node_with_label(l, &mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn default_methods_consistent_with_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("B");
        let d = b.add_node("A");
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.add_edge(a, d);
        let g = b.build();

        assert_eq!(g.size(), 3 + 3);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.degree(c), 2);
        assert!(g.has_edge(a, c));
        assert!(!g.has_edge(c, a));
    }

    #[test]
    fn neighbors_slice_roundtrip() {
        let list = [NodeId(1), NodeId(3), NodeId(5)];
        let n = Neighbors::slice(&list);
        assert_eq!(n.as_slice(), Some(&list[..]));
        assert_eq!(n.size_hint(), (3, Some(3)));
        let got: Vec<NodeId> = n.collect();
        assert_eq!(got, list);
        assert!(Neighbors::empty().next().is_none());
    }

    #[test]
    fn neighbors_filtered_skips_nonmembers() {
        let list = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let members: FxHashSet<NodeId> = [NodeId(2), NodeId(4)].into_iter().collect();
        let n = Neighbors::filtered(&list, &members);
        assert_eq!(n.as_slice(), None);
        let got: Vec<NodeId> = n.collect();
        assert_eq!(got, vec![NodeId(2), NodeId(4)]);
    }

    #[test]
    fn node_ids_variants_iterate() {
        let ids = [NodeId(2), NodeId(7)];
        assert_eq!(NodeIds::Range(0..3).count(), 3);
        let got: Vec<NodeId> = NodeIds::Slice(ids.iter()).collect();
        assert_eq!(got, ids);
        let got: Vec<NodeId> = NodeIds::Owned(Vec::from(ids).into_iter()).collect();
        assert_eq!(got, ids);
    }
}
