//! The [`GraphView`] abstraction.
//!
//! Resource-bounded query answering evaluates the *same* matching algorithms
//! on the full graph `G` (baselines) and on the dynamically reduced `G_Q`
//! (paper Fig. 2). Making the matchers generic over a read-only view lets
//! one implementation serve both, without copying `G_Q` into a fresh graph.

use crate::types::{Direction, Label, NodeId};

/// A read-only view of a node-labeled directed graph.
///
/// Node ids are those of the *underlying* base graph; a view over a subgraph
/// simply exposes fewer of them. Implementations must be consistent:
/// `out_neighbors`/`in_neighbors` only yield nodes for which
/// [`GraphView::contains`] is true, and every edge yielded by
/// `out_neighbors(u)` appears as `u` in `in_neighbors(v)`.
pub trait GraphView {
    /// Whether node `v` is present in this view.
    fn contains(&self, v: NodeId) -> bool;

    /// The label of `v`. May panic if `!self.contains(v)`.
    fn label(&self, v: NodeId) -> Label;

    /// Children of `v`: targets of edges `v -> w` present in the view.
    fn out_neighbors(&self, v: NodeId) -> Box<dyn Iterator<Item = NodeId> + '_>;

    /// Parents of `v`: sources of edges `w -> v` present in the view.
    fn in_neighbors(&self, v: NodeId) -> Box<dyn Iterator<Item = NodeId> + '_>;

    /// All node ids present in the view, in ascending order.
    fn node_ids(&self) -> Box<dyn Iterator<Item = NodeId> + '_>;

    /// Number of nodes in the view.
    fn num_nodes(&self) -> usize;

    /// Number of edges in the view.
    fn num_edges(&self) -> usize;

    /// Neighbors in the given direction.
    fn neighbors(&self, v: NodeId, dir: Direction) -> Box<dyn Iterator<Item = NodeId> + '_> {
        match dir {
            Direction::Out => self.out_neighbors(v),
            Direction::In => self.in_neighbors(v),
        }
    }

    /// Graph size `|G| = |V| + |E|` — the unit in which the resource ratio
    /// `α` is expressed throughout the paper (§2).
    fn size(&self) -> usize {
        self.num_nodes() + self.num_edges()
    }

    /// Out-degree of `v` within the view.
    fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).count()
    }

    /// In-degree of `v` within the view.
    fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).count()
    }

    /// Total degree (in + out) of `v` within the view — the `d(v)` used by
    /// the dynamic-reduction weights (§4.1).
    fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Whether the view has an edge `u -> v`.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).any(|w| w == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn default_methods_consistent_with_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("B");
        let d = b.add_node("A");
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.add_edge(a, d);
        let g = b.build();

        assert_eq!(g.size(), 3 + 3);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.degree(c), 2);
        assert!(g.has_edge(a, c));
        assert!(!g.has_edge(c, a));
    }
}
