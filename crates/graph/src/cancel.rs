//! Cooperative deadline cancellation for long-running kernels.
//!
//! The paper bounds work in *space* (the `α` resource ratio); serving also
//! needs a bound in *time*. A [`CancelToken`] carries an optional deadline;
//! kernels thread a [`CancelTicker`] through their hot loops and call
//! [`CancelTicker::tick`] at cooperative cancellation points. The tick is a
//! single branch when no deadline is armed (no clock read, no allocation —
//! the warm serving path stays allocation-free), and amortizes the clock
//! read over [`TICK_INTERVAL`] iterations when one is.
//!
//! Expiry is signalled by unwinding with a [`CancelPanic`] payload via
//! [`std::panic::panic_any`]; the engine catches it per query with
//! `catch_unwind` and settles the query as `Answer::TimedOut`. Kernels never
//! observe a half-cancelled state: scratch buffers crossed by an unwind are
//! discarded by the engine, never returned to the pool.

use std::time::Instant;

/// How many ticks elapse between deadline clock reads. The first tick of a
/// kernel always checks, so even tiny inputs hit at least one check.
pub const TICK_INTERVAL: u32 = 1024;

/// An optional deadline handed down from the batch scheduler. `Copy` and
/// two words wide; the default token never expires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CancelToken {
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires — every tick is a single predictable
    /// branch.
    #[inline]
    pub const fn none() -> Self {
        CancelToken { deadline: None }
    }

    /// A token expiring at `deadline`.
    #[inline]
    pub const fn at(deadline: Instant) -> Self {
        CancelToken {
            deadline: Some(deadline),
        }
    }

    /// The armed deadline, if any.
    #[inline]
    pub const fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether a deadline is armed.
    #[inline]
    pub const fn is_armed(&self) -> bool {
        self.deadline.is_some()
    }

    /// Whether the armed deadline has already passed. Never true for an
    /// unarmed token; reads the clock only when armed.
    #[inline]
    pub fn is_expired(&self) -> bool {
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }
}

/// The unwind payload carried by a cooperative cancellation (see the module
/// docs). Engines downcast the caught payload to this type to distinguish a
/// deadline expiry (`TimedOut`) from a genuine kernel panic (`Failed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelPanic {
    /// The cancellation point that fired, e.g. `"dualsim.fixpoint"`.
    pub point: &'static str,
}

/// A per-kernel tick counter over a [`CancelToken`]. `Copy`, so kernels
/// that `mem::take` their scratch into locals can copy the ticker out and
/// write it back.
#[derive(Debug, Clone, Copy, Default)]
pub struct CancelTicker {
    token: CancelToken,
    count: u32,
}

impl CancelTicker {
    /// A ticker over `token` with a fresh counter.
    #[inline]
    pub const fn new(token: CancelToken) -> Self {
        CancelTicker { token, count: 0 }
    }

    /// The underlying token.
    #[inline]
    pub const fn token(&self) -> CancelToken {
        self.token
    }

    /// Replace the token and reset the counter (called once per query).
    #[inline]
    pub fn arm(&mut self, token: CancelToken) {
        self.token = token;
        self.count = 0;
    }

    /// One cooperative cancellation point. When the token is unarmed this
    /// is a single branch; when armed, every [`TICK_INTERVAL`]-th call
    /// (starting with the first) reads the clock and, on expiry, unwinds
    /// with a [`CancelPanic`] tagged `point`.
    #[inline]
    pub fn tick(&mut self, point: &'static str) {
        let Some(deadline) = self.token.deadline else {
            return;
        };
        self.count = self.count.wrapping_add(1);
        if self.count % TICK_INTERVAL == 1 && Instant::now() >= deadline {
            std::panic::panic_any(CancelPanic { point });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unarmed_token_never_fires() {
        let mut t = CancelTicker::new(CancelToken::none());
        for _ in 0..10 * TICK_INTERVAL {
            t.tick("test.point");
        }
        assert!(!t.token().is_armed());
        assert!(!t.token().is_expired());
    }

    #[test]
    fn expired_deadline_fires_on_first_tick() {
        let past = Instant::now() - Duration::from_secs(1);
        let mut t = CancelTicker::new(CancelToken::at(past));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.tick("test.point");
        }))
        .expect_err("expired deadline must unwind");
        let cp = caught
            .downcast_ref::<CancelPanic>()
            .expect("payload is CancelPanic");
        assert_eq!(cp.point, "test.point");
    }

    #[test]
    fn distant_deadline_does_not_fire() {
        let far = Instant::now() + Duration::from_secs(3600);
        let mut t = CancelTicker::new(CancelToken::at(far));
        for _ in 0..3 * TICK_INTERVAL {
            t.tick("test.point");
        }
        assert!(t.token().is_armed());
    }

    #[test]
    fn arm_resets_counter() {
        let far = Instant::now() + Duration::from_secs(3600);
        let mut t = CancelTicker::new(CancelToken::at(far));
        t.tick("a");
        t.arm(CancelToken::none());
        assert!(!t.token().is_armed());
        t.tick("a");
    }
}
