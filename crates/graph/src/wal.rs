//! Append-only write-ahead log of [`DeltaBatch`]es.
//!
//! The WAL is the durable half of live ingest (see [`crate::snapshot`] for
//! the checkpoint half): every batch is appended — and fsynced — *before*
//! the serving layer swaps epochs, so an acked update survives process
//! death. The file starts with a one-line ASCII magic (`#rbq-wal v1`)
//! followed by length-prefixed records:
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload]
//! payload = u64 LE sequence number
//!         + u32 LE op count
//!         + per op: tag u8 (0 = AddNode, 1 = AddEdge, 2 = RemoveEdge)
//!           AddNode:    u32 LE label byte length + UTF-8 bytes
//!           Add/RemoveEdge: u32 LE source id + u32 LE target id
//! ```
//!
//! [`replay`] walks the log front to back and stops at the first record it
//! cannot trust: an incomplete record at the end of the file is a **torn
//! tail** (the expected shape of a crash mid-append) and a record whose
//! CRC or structure is wrong is **quarantined** (corruption). Either way
//! the valid prefix is returned and keeps serving; nothing panics on
//! arbitrary bytes, every failure is a typed [`WalError`].
//! [`WalWriter::open_after_replay`] then rewrites the file to that valid
//! prefix so subsequent appends continue from a clean tail.

use crate::delta::{DeltaBatch, DeltaOp};
use crate::faultpoint;
use crate::io::atomic_write;
use crate::snapshot::crc32;
use crate::types::NodeId;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;

/// The one-line ASCII magic every WAL file starts with. Bump the version
/// when the record layout changes; [`replay`] rejects files whose magic it
/// does not declare.
pub const WAL_FILE_MAGIC: &str = "#rbq-wal v1";

/// Conventional file name of the log inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// Typed failure of WAL create, append, or replay. Corrupt bytes on disk
/// never surface as panics — they end up as a torn tail or quarantined
/// records in [`WalReplay`], and only unusable files (wrong magic, I/O
/// failure) are errors.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`WAL_FILE_MAGIC`].
    BadMagic {
        /// What the first line actually was (lossy, truncated).
        found: String,
    },
    /// A previous append on this writer failed partway; the tail of the
    /// file is suspect and the writer refuses further appends until the
    /// log is replayed and re-opened.
    WriterPoisoned,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::BadMagic { found } => {
                write!(
                    f,
                    "wal has bad magic {found:?} (expected {WAL_FILE_MAGIC:?})"
                )
            }
            WalError::WriterPoisoned => write!(
                f,
                "wal writer poisoned by an earlier failed append; replay and re-open the log"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

fn encode_batch(buf: &mut Vec<u8>, seq: u64, batch: &DeltaBatch) {
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(batch.ops().len() as u32).to_le_bytes());
    for op in batch.ops() {
        match op {
            DeltaOp::AddNode(label) => {
                buf.push(0);
                buf.extend_from_slice(&(label.len() as u32).to_le_bytes());
                buf.extend_from_slice(label.as_bytes());
            }
            DeltaOp::AddEdge(u, v) => {
                buf.push(1);
                buf.extend_from_slice(&u.0.to_le_bytes());
                buf.extend_from_slice(&v.0.to_le_bytes());
            }
            DeltaOp::RemoveEdge(u, v) => {
                buf.push(2);
                buf.extend_from_slice(&u.0.to_le_bytes());
                buf.extend_from_slice(&v.0.to_le_bytes());
            }
        }
    }
}

/// Decode one record payload (already CRC-verified). `None` means the
/// payload is structurally malformed — the caller quarantines the record.
fn decode_batch(payload: &[u8]) -> Option<(u64, DeltaBatch)> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, len: usize| -> Option<&[u8]> {
        let end = pos.checked_add(len).filter(|&e| e <= payload.len())?;
        let s = &payload[*pos..end];
        *pos = end;
        Some(s)
    };
    let seq = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
    let mut batch = DeltaBatch::new();
    for _ in 0..count {
        match take(&mut pos, 1)? {
            [0] => {
                let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
                let label = std::str::from_utf8(take(&mut pos, len)?).ok()?;
                batch.add_node(label);
            }
            [1] => {
                let u = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
                let v = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
                batch.add_edge(NodeId(u), NodeId(v));
            }
            [2] => {
                let u = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
                let v = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
                batch.remove_edge(NodeId(u), NodeId(v));
            }
            _ => return None,
        }
    }
    if pos != payload.len() {
        return None; // trailing bytes inside a record
    }
    Some((seq, batch))
}

/// Appender over a WAL file. Each [`WalWriter::append`] writes one record
/// and fsyncs before returning, so a returned sequence number is durable.
pub struct WalWriter {
    file: std::fs::File,
    next_seq: u64,
    /// Set while an append is in flight; a panic or error mid-append
    /// leaves it set, and the writer refuses further appends (the file
    /// tail is suspect) until the log is replayed and re-opened.
    poisoned: bool,
}

impl fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalWriter")
            .field("next_seq", &self.next_seq)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl WalWriter {
    /// Create a fresh, empty log at `path` (atomically replacing any
    /// previous file) whose first append will be assigned `start_seq`.
    pub fn create(path: &Path, start_seq: u64) -> Result<WalWriter, WalError> {
        atomic_write(path, |w| writeln!(w, "{WAL_FILE_MAGIC}"))?;
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(WalWriter {
            file,
            next_seq: start_seq,
            poisoned: false,
        })
    }

    /// Re-open `path` for appending after a [`replay`]: the file is first
    /// rewritten (atomically) to the replay's valid prefix — dropping any
    /// torn tail or quarantined suffix — and the next append is assigned
    /// `next_seq`.
    pub fn open_after_replay(
        path: &Path,
        replayed: &WalReplay,
        next_seq: u64,
    ) -> Result<WalWriter, WalError> {
        if replayed.torn_tail || replayed.quarantined > 0 {
            let raw = std::fs::read(path)?;
            let keep = replayed.valid_bytes.min(raw.len());
            atomic_write(path, |w| w.write_all(&raw[..keep]))?;
        }
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(WalWriter {
            file,
            next_seq,
            poisoned: false,
        })
    }

    /// The sequence number the next append will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one batch and fsync. Returns the durable sequence number.
    ///
    /// Fires the `wal.append` fault point before writing and `wal.fsync`
    /// before syncing. If either the write or the sync fails (or panics
    /// via an armed fault), the writer poisons itself: the on-disk tail
    /// may hold a partial record, so further appends return
    /// [`WalError::WriterPoisoned`] until the log is replayed — replay
    /// treats the partial record as a torn tail and drops it.
    pub fn append(&mut self, batch: &DeltaBatch) -> Result<u64, WalError> {
        if self.poisoned {
            return Err(WalError::WriterPoisoned);
        }
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(16 + 9 * batch.len());
        encode_batch(&mut payload, seq, batch);
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.poisoned = true;
        faultpoint::fire("wal.append");
        self.file.write_all(&record)?;
        faultpoint::fire("wal.fsync");
        self.file.sync_data()?;
        self.poisoned = false;
        self.next_seq = seq + 1;
        Ok(seq)
    }
}

/// The trustworthy prefix of a WAL file, as recovered by [`replay`].
#[derive(Debug)]
pub struct WalReplay {
    /// The decoded batches of the valid prefix, in log order, each with
    /// its sequence number.
    pub batches: Vec<(u64, DeltaBatch)>,
    /// Whether the file ended mid-record — the expected shape of a crash
    /// during an append. The partial record is dropped.
    pub torn_tail: bool,
    /// Number of records rejected for corruption (CRC mismatch, malformed
    /// payload, or a non-increasing sequence number). Replay stops at the
    /// first such record: everything after it is untrusted.
    pub quarantined: usize,
    /// Byte length of the valid prefix (magic line included) —
    /// [`WalWriter::open_after_replay`] truncates the file to this.
    pub valid_bytes: usize,
}

impl WalReplay {
    /// Sequence number of the last valid record, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.batches.last().map(|&(seq, _)| seq)
    }
}

/// Walk the log at `path` front to back, returning its valid prefix.
///
/// Stops at the first incomplete record (torn tail) or corrupt record
/// (quarantine); see [`WalReplay`]. Fires the `wal.replay` fault point
/// once per record. Arbitrary on-disk bytes can never panic this path.
pub fn replay(path: &Path) -> Result<WalReplay, WalError> {
    let raw = std::fs::read(path)?;
    let magic_len = WAL_FILE_MAGIC.len() + 1; // trailing newline
    let magic_ok = raw.len() >= magic_len
        && &raw[..magic_len - 1] == WAL_FILE_MAGIC.as_bytes()
        && raw[magic_len - 1] == b'\n';
    if !magic_ok {
        let first_line = raw.split(|&b| b == b'\n').next().unwrap_or(&[]);
        let shown: Vec<u8> = first_line.iter().copied().take(32).collect();
        return Err(WalError::BadMagic {
            found: String::from_utf8_lossy(&shown).into_owned(),
        });
    }
    let mut batches: Vec<(u64, DeltaBatch)> = Vec::new();
    let mut pos = magic_len;
    let mut torn_tail = false;
    let mut quarantined = 0usize;
    let mut valid_bytes = pos;
    let mut prev_seq: Option<u64> = None;
    while pos < raw.len() {
        faultpoint::fire("wal.replay");
        if raw.len() - pos < 8 {
            torn_tail = true; // incomplete length/CRC header
            break;
        }
        // invariant: the bounds check above guarantees 8 bytes from `pos`,
        // so this fixed-size conversion cannot fail.
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
        // invariant: covered by the same 8-byte bounds check.
        let stored_crc = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().unwrap());
        let Some(end) = pos.checked_add(8).and_then(|p| p.checked_add(len)) else {
            quarantined += 1; // length overflows — corrupt, not a torn write
            break;
        };
        if end > raw.len() {
            torn_tail = true; // payload cut short by a crash mid-append
            break;
        }
        let payload = &raw[pos + 8..end];
        if crc32(payload) != stored_crc {
            quarantined += 1;
            break;
        }
        let Some((seq, batch)) = decode_batch(payload) else {
            quarantined += 1;
            break;
        };
        if prev_seq.is_some_and(|p| seq <= p) {
            quarantined += 1; // sequence numbers must strictly increase
            break;
        }
        prev_seq = Some(seq);
        batches.push((seq, batch));
        pos = end;
        valid_bytes = pos;
    }
    Ok(WalReplay {
        batches,
        torn_tail,
        quarantined,
        valid_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rbq_wal_{tag}_{}.log", std::process::id()))
    }

    fn sample_batches() -> Vec<DeltaBatch> {
        let mut b1 = DeltaBatch::new();
        b1.add_node("A");
        b1.add_node("B");
        b1.add_edge(NodeId(0), NodeId(1));
        let mut b2 = DeltaBatch::new();
        b2.add_edge(NodeId(1), NodeId(0));
        b2.remove_edge(NodeId(0), NodeId(1));
        let mut b3 = DeltaBatch::new();
        b3.add_node("C");
        b3.add_edge(NodeId(2), NodeId(0));
        vec![b1, b2, b3]
    }

    fn write_sample(path: &std::path::Path) -> Vec<DeltaBatch> {
        let batches = sample_batches();
        let mut w = WalWriter::create(path, 1).unwrap();
        for (i, b) in batches.iter().enumerate() {
            let seq = w.append(b).unwrap();
            assert_eq!(seq, 1 + i as u64);
        }
        batches
    }

    #[test]
    fn roundtrip_preserves_batches_and_seqs() {
        let path = tmp("roundtrip");
        let batches = write_sample(&path);
        let r = replay(&path).unwrap();
        assert!(!r.torn_tail);
        assert_eq!(r.quarantined, 0);
        assert_eq!(r.batches.len(), batches.len());
        for (i, (seq, b)) in r.batches.iter().enumerate() {
            assert_eq!(*seq, 1 + i as u64);
            assert_eq!(b, &batches[i]);
        }
        assert_eq!(r.last_seq(), Some(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_log_replays_empty() {
        let path = tmp("empty");
        let _w = WalWriter::create(&path, 1).unwrap();
        let r = replay(&path).unwrap();
        assert!(r.batches.is_empty() && !r.torn_tail && r.quarantined == 0);
        assert_eq!(r.last_seq(), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_is_typed() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"#rbq-other v7\nstuff").unwrap();
        assert!(matches!(replay(&path), Err(WalError::BadMagic { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_truncation_keeps_a_valid_prefix() {
        let path = tmp("trunc");
        write_sample(&path);
        let full = std::fs::read(&path).unwrap();
        let magic_len = WAL_FILE_MAGIC.len() + 1;
        for len in magic_len..full.len() {
            let mpath = tmp("trunc_mut");
            std::fs::write(&mpath, &full[..len]).unwrap();
            let r = replay(&mpath).unwrap();
            // A truncated file replays some prefix of the original batches
            // and flags the torn tail unless the cut fell exactly on a
            // record boundary.
            assert!(r.batches.len() <= 3);
            assert!(r.valid_bytes <= len);
            if r.valid_bytes < len {
                assert!(r.torn_tail, "cut at {len} not flagged");
            }
            let _ = std::fs::remove_file(&mpath);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_quarantines_and_keeps_prefix() {
        let path = tmp("corrupt");
        write_sample(&path);
        let full = std::fs::read(&path).unwrap();
        let magic_len = WAL_FILE_MAGIC.len() + 1;
        // Flip one payload byte of the *second* record: record 1 must
        // survive, records 2.. are quarantined.
        let rec1_len =
            u32::from_le_bytes(full[magic_len..magic_len + 4].try_into().unwrap()) as usize;
        let rec2_start = magic_len + 8 + rec1_len;
        let mut mutated = full.clone();
        mutated[rec2_start + 8 + 2] ^= 0xFF;
        std::fs::write(&path, &mutated).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.batches.len(), 1);
        assert_eq!(r.quarantined, 1);
        assert_eq!(r.last_seq(), Some(1));
        assert_eq!(r.valid_bytes, rec2_start);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_single_byte_flip_never_panics_and_never_reorders() {
        let path = tmp("flip");
        let batches = write_sample(&path);
        let full = std::fs::read(&path).unwrap();
        for i in 0..full.len() {
            let mut mutated = full.clone();
            mutated[i] ^= 0x20;
            let mpath = tmp("flip_mut");
            std::fs::write(&mpath, &mutated).unwrap();
            // Any outcome must be typed: either a BadMagic error (flip in
            // the magic line) or a replay whose batches are a prefix of the
            // originals possibly followed by decodes the CRC happened to
            // miss — but with only one flipped byte the CRC always catches
            // payload damage, so surviving batches match the originals.
            if let Ok(r) = replay(&mpath) {
                for (j, (_, b)) in r.batches.iter().enumerate() {
                    if j < batches.len() && !r.torn_tail && r.quarantined == 0 && i < 12 {
                        // length-field flips can resegment the log; only
                        // fully-clean replays pin batch equality.
                        assert_eq!(b, &batches[j]);
                    }
                }
            }
            let _ = std::fs::remove_file(&mpath);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_after_replay_truncates_and_continues() {
        let path = tmp("reopen");
        write_sample(&path);
        // Simulate a torn tail: append garbage half-record.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[9, 0, 0]);
        std::fs::write(&path, &raw).unwrap();
        let r = replay(&path).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.batches.len(), 3);
        let next = r.last_seq().map_or(1, |s| s + 1);
        let mut w = WalWriter::open_after_replay(&path, &r, next).unwrap();
        let mut b4 = DeltaBatch::new();
        b4.add_node("Z");
        assert_eq!(w.append(&b4).unwrap(), 4);
        let r2 = replay(&path).unwrap();
        assert!(!r2.torn_tail);
        assert_eq!(r2.quarantined, 0);
        assert_eq!(r2.batches.len(), 4);
        assert_eq!(r2.last_seq(), Some(4));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn poisoned_writer_refuses_appends() {
        let path = tmp("poison");
        let mut w = WalWriter::create(&path, 1).unwrap();
        w.poisoned = true;
        let b = DeltaBatch::new();
        assert!(matches!(w.append(&b), Err(WalError::WriterPoisoned)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn decreasing_seq_is_quarantined() {
        let path = tmp("seq");
        // Hand-craft two records with the same sequence number.
        let mut b = DeltaBatch::new();
        b.add_node("A");
        let mut raw = format!("{WAL_FILE_MAGIC}\n").into_bytes();
        for _ in 0..2 {
            let mut payload = Vec::new();
            encode_batch(&mut payload, 5, &b);
            raw.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            raw.extend_from_slice(&crc32(&payload).to_le_bytes());
            raw.extend_from_slice(&payload);
        }
        std::fs::write(&path, &raw).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.batches.len(), 1);
        assert_eq!(r.quarantined, 1);
        let _ = std::fs::remove_file(&path);
    }
}
