//! Graph statistics used by the accuracy bound of Theorem 3.
//!
//! Theorem 3(b) guarantees 100% accuracy when
//! `α ≥ 2((l·f)^d − 1) / ((l·f − 1)·|G|)`, where over the neighborhood
//! `G_dQ(v_p)`:
//! * `l` — number of distinct labels in the *query*,
//! * `f` — max number of nodes sharing the same label **and** a common
//!   parent or child,
//! * `d` — diameter of the query as an undirected graph,
//! * `d_G` — max node degree (the visiting coefficient `c`).

use crate::graph::Graph;
use crate::types::Label;
use crate::view::GraphView;
use rustc_hash::FxHashMap;

/// Summary degree statistics of a graph or subgraph view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Maximum total degree `d_G`.
    pub max_degree: usize,
    /// Average total degree.
    pub avg_degree: f64,
    /// Number of nodes considered.
    pub nodes: usize,
}

/// Compute degree statistics over any view.
pub fn degree_stats<V: GraphView + ?Sized>(g: &V) -> DegreeStats {
    let mut max_degree = 0usize;
    let mut sum = 0usize;
    let mut nodes = 0usize;
    for v in g.node_ids() {
        let d = g.degree(v);
        max_degree = max_degree.max(d);
        sum += d;
        nodes += 1;
    }
    DegreeStats {
        max_degree,
        avg_degree: if nodes == 0 {
            0.0
        } else {
            sum as f64 / nodes as f64
        },
        nodes,
    }
}

/// The paper's `f` over a view: the maximum, over all nodes `v` and labels
/// `ℓ`, of the number of neighbors of `v` (parents and children pooled)
/// carrying label `ℓ`.
pub fn max_label_fanout<V: GraphView + ?Sized>(g: &V) -> usize {
    let mut best = 0usize;
    let mut counts: FxHashMap<Label, usize> = FxHashMap::default();
    for v in g.node_ids() {
        counts.clear();
        for w in g.out_neighbors(v).chain(g.in_neighbors(v)) {
            *counts.entry(g.label(w)).or_insert(0) += 1;
        }
        for &c in counts.values() {
            best = best.max(c);
        }
    }
    best
}

/// Histogram of node labels over a view: `label -> node count`.
pub fn label_histogram<V: GraphView + ?Sized>(g: &V) -> FxHashMap<Label, usize> {
    let mut h = FxHashMap::default();
    for v in g.node_ids() {
        *h.entry(g.label(v)).or_insert(0) += 1;
    }
    h
}

/// Number of distinct node labels in a view.
pub fn distinct_labels<V: GraphView + ?Sized>(g: &V) -> usize {
    label_histogram(g).len()
}

/// The per-node neighbor-label summary `S_l` of §4.1: for node `v`, pairs
/// `(ℓ, g)` where `g` counts occurrences of label `ℓ` among `N(v)` (parents
/// and children pooled), plus the degree `d(v)`.
///
/// This is the once-for-all offline structure Example 3 computes; it backs
/// the guarded-condition checks of the dynamic reduction.
#[derive(Debug, Clone, Default)]
pub struct NeighborLabelSummary {
    /// `(label, occurrence count)` pairs, sorted by label id.
    pub label_counts: Vec<(Label, u32)>,
    /// Total degree `d(v) = |N(v)|` counting multiplicity.
    pub degree: u32,
}

impl NeighborLabelSummary {
    /// Occurrences of `l` among the node's neighbors.
    pub fn count(&self, l: Label) -> u32 {
        match self.label_counts.binary_search_by_key(&l, |&(x, _)| x) {
            Ok(i) => self.label_counts[i].1,
            Err(_) => 0,
        }
    }

    /// Whether any neighbor carries label `l`.
    pub fn has(&self, l: Label) -> bool {
        self.count(l) > 0
    }
}

/// Compute [`NeighborLabelSummary`] for every node of `g` in one pass.
pub fn neighbor_label_summaries(g: &Graph) -> Vec<NeighborLabelSummary> {
    let mut out = Vec::with_capacity(g.node_count());
    let mut counts: FxHashMap<Label, u32> = FxHashMap::default();
    for v in g.nodes() {
        counts.clear();
        for &w in g.out(v).iter().chain(g.inn(v)) {
            *counts.entry(g.node_label(w)).or_insert(0) += 1;
        }
        let mut label_counts: Vec<(Label, u32)> = counts.iter().map(|(&l, &c)| (l, c)).collect();
        label_counts.sort_unstable_by_key(|&(l, _)| l);
        out.push(NeighborLabelSummary {
            label_counts,
            degree: (g.deg(v)) as u32,
        });
    }
    out
}

/// Theorem 3(b)'s minimum exact-answer ratio
/// `α_min = 2((l·f)^d − 1) / ((l·f − 1)·|G|)`, computed with saturating
/// arithmetic in `f64` (the bound explodes quickly; callers compare it to a
/// candidate `α` and cap at 1.0).
pub fn theorem3_alpha_bound(l: usize, f: usize, d: usize, graph_size: usize) -> f64 {
    if graph_size == 0 {
        return 1.0;
    }
    let lf = (l.max(1) * f.max(1)) as f64;
    if lf <= 1.0 {
        // Degenerate single-chain case: the bound reduces to 2d/|G|.
        return ((2 * d) as f64 / graph_size as f64).min(1.0);
    }
    let numer = 2.0 * (lf.powi(d as i32) - 1.0);
    let denom = (lf - 1.0) * graph_size as f64;
    (numer / denom).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::types::NodeId;

    fn sample() -> Graph {
        // 0(A) -> 1(B), 0 -> 2(B), 0 -> 3(C), 3 -> 0
        graph_from_edges(&["A", "B", "B", "C"], &[(0, 1), (0, 2), (0, 3), (3, 0)])
    }

    #[test]
    fn degree_stats_basic() {
        let g = sample();
        let s = degree_stats(&g);
        assert_eq!(s.max_degree, 4); // node 0: out 3 + in 1
        assert_eq!(s.nodes, 4);
        assert!((s.avg_degree - 2.0).abs() < 1e-9); // 8 endpoints / 4 nodes
    }

    #[test]
    fn label_fanout_counts_same_label_neighbors() {
        let g = sample();
        // Node 0 has two B-children -> f = 2.
        assert_eq!(max_label_fanout(&g), 2);
    }

    #[test]
    fn histogram_and_distinct() {
        let g = sample();
        let h = label_histogram(&g);
        let b = g.labels().get("B").unwrap();
        assert_eq!(h[&b], 2);
        assert_eq!(distinct_labels(&g), 3);
    }

    #[test]
    fn neighbor_summaries_match_example3_shape() {
        let g = sample();
        let sums = neighbor_label_summaries(&g);
        let s0 = &sums[0];
        assert_eq!(s0.degree, 4);
        let b = g.labels().get("B").unwrap();
        let c = g.labels().get("C").unwrap();
        let a = g.labels().get("A").unwrap();
        assert_eq!(s0.count(b), 2);
        // Node 3 appears twice in N(0): as child and as parent.
        assert_eq!(s0.count(c), 2);
        assert!(!s0.has(a));
        assert!(s0.has(c));
    }

    #[test]
    fn summary_count_missing_label_is_zero() {
        let g = sample();
        let sums = neighbor_label_summaries(&g);
        assert_eq!(sums[1].count(Label(999)), 0);
    }

    #[test]
    fn theorem3_bound_monotone_in_depth() {
        let a1 = theorem3_alpha_bound(2, 3, 1, 10_000);
        let a2 = theorem3_alpha_bound(2, 3, 2, 10_000);
        let a3 = theorem3_alpha_bound(2, 3, 3, 10_000);
        assert!(a1 < a2 && a2 < a3);
    }

    #[test]
    fn theorem3_bound_capped_at_one() {
        assert_eq!(theorem3_alpha_bound(10, 10, 10, 10), 1.0);
        assert_eq!(theorem3_alpha_bound(2, 2, 2, 0), 1.0);
    }

    #[test]
    fn theorem3_bound_degenerate_lf_one() {
        // l = f = 1: path-shaped neighborhoods.
        let a = theorem3_alpha_bound(1, 1, 3, 100);
        assert!((a - 0.06).abs() < 1e-9);
    }

    #[test]
    fn degree_stats_on_induced_view() {
        use crate::subgraph::InducedSubgraph;
        let g = sample();
        let s = InducedSubgraph::new(&g, [NodeId(0), NodeId(1)]);
        let st = degree_stats(&s);
        assert_eq!(st.nodes, 2);
        assert_eq!(st.max_degree, 1);
    }
}
