//! Fundamental identifier types shared across the workspace.
//!
//! Node ids and label ids are dense `u32` indices. Using 32-bit ids halves
//! the memory traffic of adjacency arrays relative to `usize` on 64-bit
//! targets, which matters for the big-graph workloads this library targets
//! (see the Rust Performance Book, "Smaller Integers").

use std::fmt;

/// A node identifier: a dense index into a [`crate::Graph`]'s node arrays.
///
/// `NodeId`s are only meaningful relative to the graph that issued them.
/// [`crate::subgraph::DynamicSubgraph`] and [`crate::subgraph::InducedSubgraph`]
/// share the parent graph's id space, so ids can be passed between a graph
/// and its subgraphs freely.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` exceeds `u32::MAX`.
    #[inline]
    pub fn new(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index overflows u32");
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A label identifier, interned by [`crate::LabelInterner`].
///
/// Labels model node content: the paper uses them for page content, node
/// attributes, or social-group membership (§2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl Label {
    /// The label id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    #[inline]
    pub fn new(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "label index overflows u32");
        Label(i as u32)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Label {
    #[inline]
    fn from(v: u32) -> Self {
        Label(v)
    }
}

/// Direction of edge traversal.
///
/// The paper's neighborhood notion `N_r(v)` is *undirected* — it includes
/// nodes within `r` hops following edges either way (§2) — while pattern
/// matching distinguishes children ([`Direction::Out`]) from parents
/// ([`Direction::In`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Direction {
    /// Follow edges `v -> w` (children of `v`).
    Out,
    /// Follow edges `w -> v` (parents of `v`).
    In,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Self {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn label_roundtrip() {
        let l = Label::new(7);
        assert_eq!(l.index(), 7);
        assert_eq!(Label::from(7u32), l);
    }

    #[test]
    fn node_id_debug_display() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{}", NodeId(3)), "3");
        assert_eq!(format!("{:?}", Label(9)), "L9");
        assert_eq!(format!("{}", Label(9)), "9");
    }

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::Out.reverse(), Direction::In);
        assert_eq!(Direction::In.reverse(), Direction::Out);
        assert_eq!(Direction::Out.reverse().reverse(), Direction::Out);
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        let mut v = vec![NodeId(5), NodeId(1), NodeId(3)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(3), NodeId(5)]);
    }
}
