//! View adapters: lightweight wrappers giving alternative [`GraphView`]s
//! of the same storage.
//!
//! * [`Reversed`] — swaps edge directions. Backward traversals, ancestor
//!   counting, and "who reaches me" queries become forward algorithms on
//!   the reversed view, with zero copying.
//! * [`Relabeled`] — overrides node labels through a lookup function,
//!   e.g. to erase labels for structure-only matching.

use crate::types::{Label, NodeId};
use crate::view::{GraphView, Neighbors, NodeIds};

/// The reverse view of a graph: `u -> v` becomes `v -> u`.
#[derive(Debug, Clone, Copy)]
pub struct Reversed<'a, V: GraphView + ?Sized>(pub &'a V);

impl<V: GraphView + ?Sized> GraphView for Reversed<'_, V> {
    fn contains(&self, v: NodeId) -> bool {
        self.0.contains(v)
    }

    fn label(&self, v: NodeId) -> Label {
        self.0.label(v)
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        self.0.in_neighbors(v)
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        self.0.out_neighbors(v)
    }

    fn node_ids(&self) -> NodeIds<'_> {
        self.0.node_ids()
    }

    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.0.num_edges()
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.0.has_edge(v, u)
    }

    // Reversal leaves labels untouched, so label lookups keep the base
    // view's (possibly indexed) fast path. `Relabeled` must not forward.
    fn for_each_node_with_label(&self, l: Label, f: &mut dyn FnMut(NodeId)) {
        self.0.for_each_node_with_label(l, f)
    }

    fn count_nodes_with_label(&self, l: Label) -> usize {
        self.0.count_nodes_with_label(l)
    }
}

/// A view with labels overridden by a function (topology untouched).
pub struct Relabeled<'a, V: GraphView + ?Sized, F: Fn(NodeId, Label) -> Label> {
    base: &'a V,
    f: F,
}

impl<'a, V: GraphView + ?Sized, F: Fn(NodeId, Label) -> Label> Relabeled<'a, V, F> {
    /// Wrap `base`, mapping each node's label through `f`.
    pub fn new(base: &'a V, f: F) -> Self {
        Relabeled { base, f }
    }
}

impl<V: GraphView + ?Sized, F: Fn(NodeId, Label) -> Label> GraphView for Relabeled<'_, V, F> {
    fn contains(&self, v: NodeId) -> bool {
        self.base.contains(v)
    }

    fn label(&self, v: NodeId) -> Label {
        (self.f)(v, self.base.label(v))
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        self.base.out_neighbors(v)
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        self.base.in_neighbors(v)
    }

    fn node_ids(&self) -> NodeIds<'_> {
        self.base.node_ids()
    }

    fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.base.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn reversed_swaps_directions() {
        let g = graph_from_edges(&["A", "B"], &[(0, 1)]);
        let r = Reversed(&g);
        assert!(r.has_edge(NodeId(1), NodeId(0)));
        assert!(!r.has_edge(NodeId(0), NodeId(1)));
        let outs: Vec<_> = r.out_neighbors(NodeId(1)).collect();
        assert_eq!(outs, vec![NodeId(0)]);
        let ins: Vec<_> = r.in_neighbors(NodeId(0)).collect();
        assert_eq!(ins, vec![NodeId(1)]);
    }

    #[test]
    fn reversed_preserves_counts_and_labels() {
        let g = graph_from_edges(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let r = Reversed(&g);
        assert_eq!(r.num_nodes(), 3);
        assert_eq!(r.num_edges(), 2);
        assert_eq!(r.size(), g.size());
        assert_eq!(r.label(NodeId(2)), g.node_label(NodeId(2)));
    }

    #[test]
    fn double_reverse_is_identity() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let r = Reversed(&g);
        let rr = Reversed(&r);
        for v in g.nodes() {
            let orig: Vec<_> = g.out(v).to_vec();
            let twice: Vec<_> = rr.out_neighbors(v).collect();
            assert_eq!(orig, twice);
        }
    }

    #[test]
    fn relabeled_changes_labels_only() {
        let g = graph_from_edges(&["A", "B"], &[(0, 1)]);
        let erased = Relabeled::new(&g, |_, _| Label(0));
        assert_eq!(erased.label(NodeId(0)), Label(0));
        assert_eq!(erased.label(NodeId(1)), Label(0));
        assert!(erased.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(erased.num_edges(), 1);
    }
}
