//! Versioned, checksummed binary snapshots of the compacted CSR graph.
//!
//! A snapshot is the durable twin of [`Graph`]'s in-memory representation:
//! after a one-line ASCII magic (`#rbq-snapshot v1`), the file is a fixed
//! header followed by the label table and the same flat arrays the CSR
//! holds in memory — node labels, out-offsets/targets, in-offsets/targets —
//! written as little-endian `u32`s, then a trailing CRC-32 over everything
//! after the magic line. Laying the file out exactly like the in-memory
//! arrays is deliberate: it is the stepping stone to the ROADMAP's mmap
//! loader (item 3), where these sections will be mapped instead of copied.
//!
//! The loader is serving code: every failure mode is a typed
//! [`SnapshotError`] — bad magic, truncation, checksum mismatch, or a
//! structurally invalid section — never a panic, no matter what bytes are
//! on disk. Writes go through [`crate::io::atomic_write`], so a crash
//! mid-snapshot leaves the previous snapshot intact.
//!
//! The snapshot records the WAL sequence number it covers (see
//! [`crate::wal`]): recovery loads the snapshot and replays only the log
//! records with a later sequence number.

use crate::faultpoint;
use crate::graph::Graph;
use crate::io::atomic_write;
use crate::labels::LabelInterner;
use crate::types::NodeId;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;

/// The one-line ASCII magic every snapshot file starts with. Bump the
/// version when the binary layout changes; the loader rejects files whose
/// magic it does not declare.
pub const SNAPSHOT_FILE_MAGIC: &str = "#rbq-snapshot v1";

/// Conventional file name of the snapshot inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum used by both
/// the snapshot footer and the per-record WAL checksums. Hand-rolled with a
/// compile-time table: the build environment is offline, so no crc crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Typed failure of snapshot write or load. Corrupt bytes always surface
/// here — the loader never panics on untrusted input.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`SNAPSHOT_FILE_MAGIC`].
    BadMagic {
        /// What the first line actually was (lossy, truncated).
        found: String,
    },
    /// The file ends before a complete section.
    Truncated {
        /// Which section was being read.
        section: &'static str,
    },
    /// The trailing CRC-32 does not match the file contents.
    ChecksumMismatch {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// A section is internally inconsistent (non-monotone offsets, an
    /// out-of-range node id, trailing bytes, …).
    Malformed {
        /// Which invariant the section violated.
        what: &'static str,
    },
    /// The graph does not fit the `u32` file layout.
    TooLarge {
        /// Which count overflowed.
        what: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic { found } => write!(
                f,
                "snapshot has bad magic {found:?} (expected {SNAPSHOT_FILE_MAGIC:?})"
            ),
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated in section {section}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::Malformed { what } => write!(f, "snapshot malformed: {what}"),
            SnapshotError::TooLarge { what } => {
                write!(f, "graph too large for snapshot format: {what} exceeds u32")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// What a loaded snapshot declared about itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// WAL sequence number this snapshot covers: recovery replays only log
    /// records with `seq > meta.seq`.
    pub seq: u64,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Distinct label count.
    pub labels: usize,
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn to_u32(v: usize, what: &'static str) -> Result<u32, SnapshotError> {
    u32::try_from(v).map_err(|_| SnapshotError::TooLarge { what })
}

/// Serialize the compacted form of `g` to `path`, recording `seq` as the
/// WAL sequence number the snapshot covers.
///
/// The write is atomic (temp file + rename via [`atomic_write`]): a crash
/// at any point leaves either the old snapshot or the complete new one.
/// Fires the `snapshot.write` fault point before touching the filesystem.
pub fn write_snapshot(g: &Graph, path: &Path, seq: u64) -> Result<(), SnapshotError> {
    faultpoint::fire("snapshot.write");
    // Snapshots always store the overlay-free CSR: the file layout *is* the
    // compacted in-memory layout.
    let compacted;
    let g = if g.is_overlaid() {
        compacted = g.compact();
        &compacted
    } else {
        g
    };
    let n = g.node_count();
    let m = g.edge_count();
    let nl = g.labels().len();
    let mut body = Vec::with_capacity(32 + 4 * (2 * n + 2 * m + n + 2));
    push_u64(&mut body, seq);
    push_u32(&mut body, to_u32(n, "node count")?);
    push_u32(&mut body, to_u32(m, "edge count")?);
    push_u32(&mut body, to_u32(nl, "label count")?);
    for (_, name) in g.labels().iter() {
        push_u32(&mut body, to_u32(name.len(), "label byte length")?);
        body.extend_from_slice(name.as_bytes());
    }
    for v in g.nodes() {
        push_u32(&mut body, g.node_label(v).0);
    }
    let csr = &g.csr;
    for &off in &csr.out_offsets {
        push_u32(&mut body, to_u32(off, "out offset")?);
    }
    for &t in &csr.out_targets {
        push_u32(&mut body, t.0);
    }
    for &off in &csr.in_offsets {
        push_u32(&mut body, to_u32(off, "in offset")?);
    }
    for &t in &csr.in_targets {
        push_u32(&mut body, t.0);
    }
    let crc = crc32(&body);
    atomic_write(path, |w| {
        writeln!(w, "{SNAPSHOT_FILE_MAGIC}")?;
        w.write_all(&body)?;
        w.write_all(&crc.to_le_bytes())
    })?;
    Ok(())
}

/// A bounds-checked little-endian reader over the snapshot body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize, section: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Truncated { section })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self, section: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, section)?;
        // invariant: `take` returned exactly 4 bytes, so the conversion to
        // a fixed-size array cannot fail.
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, section)?;
        // invariant: `take` returned exactly 8 bytes, so the conversion to
        // a fixed-size array cannot fail.
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn u32_vec(&mut self, count: usize, section: &'static str) -> Result<Vec<u32>, SnapshotError> {
        let bytes = self.take(
            count
                .checked_mul(4)
                .ok_or(SnapshotError::Truncated { section })?,
            section,
        )?;
        Ok(bytes
            .chunks_exact(4)
            // invariant: `chunks_exact(4)` yields exactly 4-byte chunks, so
            // the conversion to a fixed-size array cannot fail.
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Validate one offsets array: length `n + 1`, starts at 0, monotone
/// nondecreasing, ends exactly at `m`.
fn check_offsets(
    offsets: &[u32],
    m: usize,
    what: &'static str,
) -> Result<Vec<usize>, SnapshotError> {
    if offsets.first() != Some(&0) {
        return Err(SnapshotError::Malformed { what });
    }
    let mut prev = 0u32;
    for &o in offsets {
        if o < prev {
            return Err(SnapshotError::Malformed { what });
        }
        prev = o;
    }
    if prev as usize != m {
        return Err(SnapshotError::Malformed { what });
    }
    Ok(offsets.iter().map(|&o| o as usize).collect())
}

/// Validate one targets array: every node id in range.
fn check_targets(
    targets: Vec<u32>,
    n: u32,
    what: &'static str,
) -> Result<Vec<NodeId>, SnapshotError> {
    if targets.iter().any(|&t| t >= n) {
        return Err(SnapshotError::Malformed { what });
    }
    Ok(targets.into_iter().map(NodeId).collect())
}

/// Load a snapshot from `path`, returning the graph and its metadata.
///
/// Every validation failure — bad magic, truncation, checksum mismatch,
/// structurally invalid arrays — is a typed [`SnapshotError`]; arbitrary
/// on-disk corruption can never panic the loader or produce a graph that
/// violates CSR invariants. Fires the `snapshot.load` fault point.
pub fn load_snapshot(path: &Path) -> Result<(Graph, SnapshotMeta), SnapshotError> {
    faultpoint::fire("snapshot.load");
    let raw = std::fs::read(path)?;
    let magic_len = SNAPSHOT_FILE_MAGIC.len() + 1; // trailing newline
    let magic_ok = raw.len() >= magic_len
        && &raw[..magic_len - 1] == SNAPSHOT_FILE_MAGIC.as_bytes()
        && raw[magic_len - 1] == b'\n';
    if !magic_ok {
        let first_line = raw.split(|&b| b == b'\n').next().unwrap_or(&[]);
        let shown: Vec<u8> = first_line.iter().copied().take(32).collect();
        return Err(SnapshotError::BadMagic {
            found: String::from_utf8_lossy(&shown).into_owned(),
        });
    }
    let rest = &raw[magic_len..];
    if rest.len() < 4 {
        return Err(SnapshotError::Truncated {
            section: "checksum",
        });
    }
    let (body, crc_bytes) = rest.split_at(rest.len() - 4);
    // invariant: `split_at` produced exactly 4 trailing bytes, so the
    // conversion to a fixed-size array cannot fail.
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let computed = crc32(body);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    let seq = c.u64("header")?;
    let n = c.u32("header")?;
    let m = c.u32("header")?;
    let nl = c.u32("header")?;
    let mut labels = LabelInterner::new();
    for _ in 0..nl {
        let len = c.u32("label table")? as usize;
        let bytes = c.take(len, "label table")?;
        let name = std::str::from_utf8(bytes).map_err(|_| SnapshotError::Malformed {
            what: "label name is not UTF-8",
        })?;
        labels.intern(name);
    }
    if labels.len() != nl as usize {
        return Err(SnapshotError::Malformed {
            what: "duplicate label names in label table",
        });
    }
    let node_labels_raw = c.u32_vec(n as usize, "node labels")?;
    if node_labels_raw.iter().any(|&l| l >= nl) {
        return Err(SnapshotError::Malformed {
            what: "node label id out of range",
        });
    }
    let node_labels = node_labels_raw
        .into_iter()
        .map(crate::types::Label)
        .collect();
    let out_offsets = check_offsets(
        &c.u32_vec(n as usize + 1, "out offsets")?,
        m as usize,
        "out offsets not a monotone 0..=m partition",
    )?;
    let out_targets = check_targets(
        c.u32_vec(m as usize, "out targets")?,
        n,
        "out target node id out of range",
    )?;
    let in_offsets = check_offsets(
        &c.u32_vec(n as usize + 1, "in offsets")?,
        m as usize,
        "in offsets not a monotone 0..=m partition",
    )?;
    let in_targets = check_targets(
        c.u32_vec(m as usize, "in targets")?,
        n,
        "in target node id out of range",
    )?;
    if c.pos != body.len() {
        return Err(SnapshotError::Malformed {
            what: "trailing bytes after last section",
        });
    }
    let g = Graph::from_parts(
        labels,
        node_labels,
        out_offsets,
        out_targets,
        in_offsets,
        in_targets,
    );
    let meta = SnapshotMeta {
        seq,
        nodes: n as usize,
        edges: m as usize,
        labels: nl as usize,
    };
    Ok((g, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::delta::DeltaBatch;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rbq_snap_{tag}_{}.bin", std::process::id()))
    }

    fn sample() -> Graph {
        graph_from_edges(
            &["A", "B", "A", "C", "B"],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 3)],
        )
    }

    fn assert_same_graph(a: &Graph, b: &Graph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.nodes() {
            assert_eq!(a.node_label_str(v), b.node_label_str(v));
            assert_eq!(a.out(v), b.out(v));
            assert_eq!(a.inn(v), b.inn(v));
        }
        for l in (0..a.labels().len() as u32).map(crate::types::Label) {
            assert_eq!(a.nodes_with_label(l), b.nodes_with_label(l));
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let path = tmp("roundtrip");
        write_snapshot(&g, &path, 7).unwrap();
        let (g2, meta) = load_snapshot(&path).unwrap();
        assert_eq!(
            meta,
            SnapshotMeta {
                seq: 7,
                nodes: 5,
                edges: 6,
                labels: 3
            }
        );
        assert_same_graph(&g, &g2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overlaid_graph_snapshots_its_compaction() {
        let g = sample();
        let mut d = DeltaBatch::new();
        d.add_node("D");
        d.add_edge(NodeId(5), NodeId(0));
        d.remove_edge(NodeId(0), NodeId(1));
        let (g2, _) = g.apply_delta(&d).unwrap();
        assert!(g2.is_overlaid());
        let path = tmp("overlaid");
        write_snapshot(&g2, &path, 1).unwrap();
        let (g3, _) = load_snapshot(&path).unwrap();
        assert!(!g3.is_overlaid());
        assert_same_graph(&g2.compact(), &g3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = crate::builder::GraphBuilder::new().build();
        let path = tmp("empty");
        write_snapshot(&g, &path, 0).unwrap();
        let (g2, meta) = load_snapshot(&path).unwrap();
        assert_eq!((meta.nodes, meta.edges, meta.labels), (0, 0, 0));
        assert_eq!(g2.node_count(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_is_typed() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"#rbq-other v9\njunk").unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(SnapshotError::BadMagic { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = tmp("missing_never_written");
        assert!(matches!(load_snapshot(&path), Err(SnapshotError::Io(_))));
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let g = sample();
        let path = tmp("flip");
        write_snapshot(&g, &path, 3).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Exhaustive over the whole (small) file: flipping any one bit of
        // any byte must yield a typed error, never a panic and never a
        // silently-different graph.
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x40;
            let mpath = tmp("flip_mut");
            std::fs::write(&mpath, &mutated).unwrap();
            assert!(
                load_snapshot(&mpath).is_err(),
                "flip at byte {i} was not detected"
            );
            let _ = std::fs::remove_file(&mpath);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let g = sample();
        let path = tmp("trunc");
        write_snapshot(&g, &path, 3).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for len in 0..bytes.len() {
            let mpath = tmp("trunc_mut");
            std::fs::write(&mpath, &bytes[..len]).unwrap();
            assert!(
                load_snapshot(&mpath).is_err(),
                "truncation to {len} bytes was not detected"
            );
            let _ = std::fs::remove_file(&mpath);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn structural_corruption_with_fixed_crc_is_rejected() {
        // Even an attacker who fixes up the CRC cannot smuggle an invalid
        // CSR past the loader: out-of-range target ids are typed errors.
        let g = sample();
        let path = tmp("structural");
        write_snapshot(&g, &path, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let magic_len = SNAPSHOT_FILE_MAGIC.len() + 1;
        // Body layout: seq u64, n u32, m u32, L u32, labels…; poke the
        // first out-target (after labels + node_labels + out_offsets) to an
        // absurd id, then recompute the CRC so only validation can catch it.
        let body_start = magic_len;
        let body_end = bytes.len() - 4;
        // Walk to the out-targets section.
        let n = 5usize;
        let label_bytes: usize = ["A", "B", "C"].iter().map(|s| 4 + s.len()).sum();
        let off = 8 + 12 + label_bytes + 4 * n + 4 * (n + 1);
        bytes[body_start + off..body_start + off + 4].copy_from_slice(&999u32.to_le_bytes());
        let crc = crc32(&bytes[body_start..body_end]);
        let crc_pos = body_end;
        bytes[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(SnapshotError::Malformed { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
