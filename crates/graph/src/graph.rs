//! Immutable CSR graph storage, with a delta overlay for live updates.
//!
//! [`Graph`] stores a node-labeled directed graph in compressed sparse row
//! form, with *both* out-adjacency and in-adjacency materialized: pattern
//! matching by (strong) simulation must preserve both child and parent
//! relationships (§2, conditions (a)/(b)), so reverse edges are consulted as
//! often as forward ones.
//!
//! The CSR arrays live behind a shared [`Arc`], so applying a
//! [`crate::delta::DeltaBatch`] produces a *new* `Graph` value that shares
//! every untouched adjacency row with its parent and carries the changed
//! rows in a small [`Overlay`] (see [`crate::delta`]). Reads stay plain
//! sorted slices either way — the matching hot paths never learn whether a
//! row came from the base CSR or the overlay.

use crate::labels::LabelInterner;
use crate::types::{Direction, Label, NodeId};
use crate::view::{GraphView, Neighbors, NodeIds};
use std::sync::Arc;

/// The frozen CSR arrays, shared (via [`Arc`]) between a graph and every
/// overlaid descendant produced by delta application.
#[derive(Debug)]
pub(crate) struct Csr {
    pub(crate) out_offsets: Vec<usize>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) in_offsets: Vec<usize>,
    pub(crate) in_targets: Vec<NodeId>,
    pub(crate) label_offsets: Vec<usize>,
    pub(crate) label_nodes: Vec<NodeId>,
}

/// Merged adjacency rows for the nodes a delta touched, one direction.
///
/// The per-node add/remove side-lists of a [`crate::delta::DeltaBatch`] are
/// merged against the base CSR row once at apply time; reads then consult
/// this table first (binary search over the touched-node list) and fall
/// back to the shared base row. Rows are sorted and deduplicated, exactly
/// like base CSR rows.
#[derive(Debug, Clone, Default)]
pub(crate) struct SideTable {
    pub(crate) nodes: Vec<NodeId>,
    pub(crate) offsets: Vec<usize>,
    pub(crate) targets: Vec<NodeId>,
}

impl SideTable {
    #[inline]
    pub(crate) fn row(&self, v: NodeId) -> Option<&[NodeId]> {
        let i = self.nodes.binary_search(&v).ok()?;
        Some(&self.targets[self.offsets[i]..self.offsets[i + 1]])
    }
}

/// Uncompacted delta state layered over the shared base CSR.
#[derive(Debug, Clone)]
pub(crate) struct Overlay {
    /// Node count of the base CSR; ids at or above this are overlay-only
    /// nodes whose adjacency lives entirely in the side tables.
    pub(crate) base_nodes: usize,
    /// Cumulative effective edge churn (adds + removes) since the last
    /// compaction — the trigger for [`Graph::compact`].
    pub(crate) churn: usize,
    /// Effective `|E|` of the overlaid graph.
    pub(crate) edge_count: usize,
    pub(crate) out: SideTable,
    pub(crate) inn: SideTable,
    /// Full label partition over *all* nodes (new ones included), rebuilt
    /// at apply time so label seeding stays `O(1)` + output.
    pub(crate) label_offsets: Vec<usize>,
    pub(crate) label_nodes: Vec<NodeId>,
}

/// An immutable node-labeled directed graph in CSR form.
///
/// Construct via [`crate::GraphBuilder`]. Adjacency lists are sorted by
/// target id and deduplicated, enabling `O(log d)` edge tests via binary
/// search and cache-friendly sequential scans. A third CSR partition maps
/// each label to its (sorted) node list, so candidate seeding by label is
/// `O(1)` + output instead of an `O(|V|)` scan per query node.
///
/// Live updates: [`Graph::apply_delta`] layers a batch of edge/node changes
/// over the shared base CSR without rebuilding it; [`Graph::compact`]
/// rebuilds a fresh overlay-free CSR (triggered automatically once churn
/// passes a threshold). See [`crate::delta`].
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) labels: LabelInterner,
    pub(crate) node_labels: Vec<Label>,
    pub(crate) csr: Arc<Csr>,
    pub(crate) overlay: Option<Box<Overlay>>,
}

impl Graph {
    pub(crate) fn from_parts(
        labels: LabelInterner,
        node_labels: Vec<Label>,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<usize>,
        in_targets: Vec<NodeId>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), node_labels.len() + 1);
        debug_assert_eq!(in_offsets.len(), node_labels.len() + 1);
        debug_assert_eq!(out_targets.len(), in_targets.len());
        let (label_offsets, label_nodes) = label_partition(&labels, &node_labels);
        Graph {
            labels,
            node_labels,
            csr: Arc::new(Csr {
                out_offsets,
                out_targets,
                in_offsets,
                in_targets,
                label_offsets,
                label_nodes,
            }),
            overlay: None,
        }
    }

    pub(crate) fn with_overlay(
        labels: LabelInterner,
        node_labels: Vec<Label>,
        csr: Arc<Csr>,
        overlay: Overlay,
    ) -> Self {
        Graph {
            labels,
            node_labels,
            csr,
            overlay: Some(Box::new(overlay)),
        }
    }

    pub(crate) fn node_labels(&self) -> &[Label] {
        &self.node_labels
    }

    /// The label interner (string ↔ id mapping).
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        match &self.overlay {
            Some(ov) => ov.edge_count,
            None => self.csr.out_targets.len(),
        }
    }

    #[inline]
    fn base_out(&self, v: NodeId) -> &[NodeId] {
        &self.csr.out_targets[self.csr.out_offsets[v.index()]..self.csr.out_offsets[v.index() + 1]]
    }

    #[inline]
    fn base_in(&self, v: NodeId) -> &[NodeId] {
        &self.csr.in_targets[self.csr.in_offsets[v.index()]..self.csr.in_offsets[v.index() + 1]]
    }

    /// Children of `v` as a slice (sorted, deduplicated).
    #[inline]
    pub fn out(&self, v: NodeId) -> &[NodeId] {
        if let Some(ov) = &self.overlay {
            if let Some(row) = ov.out.row(v) {
                return row;
            }
            if v.index() >= ov.base_nodes {
                return &[];
            }
        }
        self.base_out(v)
    }

    /// Parents of `v` as a slice (sorted, deduplicated).
    #[inline]
    pub fn inn(&self, v: NodeId) -> &[NodeId] {
        if let Some(ov) = &self.overlay {
            if let Some(row) = ov.inn.row(v) {
                return row;
            }
            if v.index() >= ov.base_nodes {
                return &[];
            }
        }
        self.base_in(v)
    }

    /// Neighbors of `v` in direction `dir` as a slice.
    #[inline]
    pub fn adj(&self, v: NodeId, dir: Direction) -> &[NodeId] {
        match dir {
            Direction::Out => self.out(v),
            Direction::In => self.inn(v),
        }
    }

    /// The label of node `v`.
    #[inline]
    pub fn node_label(&self, v: NodeId) -> Label {
        self.node_labels[v.index()]
    }

    /// The label string of node `v`.
    pub fn node_label_str(&self, v: NodeId) -> &str {
        self.labels.name(self.node_labels[v.index()])
    }

    /// Out-degree of `v` (constant time on an overlay-free graph).
    #[inline]
    pub fn deg_out(&self, v: NodeId) -> usize {
        if self.overlay.is_some() {
            return self.out(v).len();
        }
        self.csr.out_offsets[v.index() + 1] - self.csr.out_offsets[v.index()]
    }

    /// In-degree of `v` (constant time on an overlay-free graph).
    #[inline]
    pub fn deg_in(&self, v: NodeId) -> usize {
        if self.overlay.is_some() {
            return self.inn(v).len();
        }
        self.csr.in_offsets[v.index() + 1] - self.csr.in_offsets[v.index()]
    }

    /// Total degree `d(v) = deg_out(v) + deg_in(v)`.
    #[inline]
    pub fn deg(&self, v: NodeId) -> usize {
        self.deg_out(v) + self.deg_in(v)
    }

    /// Edge test `u -> v` in `O(log deg_out(u))`.
    #[inline]
    pub fn edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out(u).binary_search(&v).is_ok()
    }

    /// Iterate all node ids `0..|V|`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterate all edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out(u).iter().map(move |&v| (u, v)))
    }

    /// Nodes carrying label `l`, as a sorted slice of the label partition
    /// index — `O(1)` + output. Unknown labels yield the empty slice.
    #[inline]
    pub fn nodes_with_label(&self, l: Label) -> &[NodeId] {
        let (offsets, nodes): (&[usize], &[NodeId]) = match &self.overlay {
            Some(ov) => (&ov.label_offsets, &ov.label_nodes),
            None => (&self.csr.label_offsets, &self.csr.label_nodes),
        };
        if l.index() + 1 >= offsets.len() {
            return &[];
        }
        &nodes[offsets[l.index()]..offsets[l.index() + 1]]
    }

    /// Maximum total degree over all nodes (the paper's `d_G` when applied to
    /// a neighborhood subgraph; see Theorem 3).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.deg(v)).max().unwrap_or(0)
    }

    /// Whether this graph carries uncompacted delta state.
    pub fn is_overlaid(&self) -> bool {
        self.overlay.is_some()
    }

    /// Cumulative effective edge churn (adds + removes) accumulated in the
    /// overlay since the last compaction; 0 for an overlay-free graph.
    pub fn overlay_churn(&self) -> usize {
        self.overlay.as_ref().map_or(0, |ov| ov.churn)
    }

    /// Rebuild a fresh overlay-free CSR from the effective adjacency.
    ///
    /// Runs in `O(|V| + |E|)`: effective out-rows are already sorted and
    /// deduplicated, so the out side is a concatenation and the in side a
    /// counting sort. The result answers every query identically.
    pub fn compact(&self) -> Graph {
        let n = self.node_count();
        let m = self.edge_count();
        let mut out_offsets = vec![0usize; n + 1];
        for v in self.nodes() {
            out_offsets[v.index() + 1] = out_offsets[v.index()] + self.out(v).len();
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut in_offsets = vec![0usize; n + 1];
        for v in self.nodes() {
            for &w in self.out(v) {
                out_targets.push(w);
                in_offsets[w.index() + 1] += 1;
            }
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_targets = vec![NodeId(0); m];
        let mut cursor = in_offsets.clone();
        // Sources visited in ascending order, so each in-row is born sorted.
        for v in self.nodes() {
            for &w in self.out(v) {
                in_targets[cursor[w.index()]] = v;
                cursor[w.index()] += 1;
            }
        }
        Graph::from_parts(
            self.labels.clone(),
            self.node_labels.clone(),
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        )
    }
}

/// Counting-sort node ids by label; ascending visit order keeps each
/// partition sorted.
pub(crate) fn label_partition(
    labels: &LabelInterner,
    node_labels: &[Label],
) -> (Vec<usize>, Vec<NodeId>) {
    let nl = labels.len();
    let mut label_offsets = vec![0usize; nl + 1];
    for &l in node_labels {
        label_offsets[l.index() + 1] += 1;
    }
    for i in 0..nl {
        label_offsets[i + 1] += label_offsets[i];
    }
    let mut label_nodes = vec![NodeId(0); node_labels.len()];
    let mut cursor = label_offsets.clone();
    for (i, &l) in node_labels.iter().enumerate() {
        label_nodes[cursor[l.index()]] = NodeId::new(i);
        cursor[l.index()] += 1;
    }
    (label_offsets, label_nodes)
}

impl GraphView for Graph {
    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        v.index() < self.node_count()
    }

    #[inline]
    fn label(&self, v: NodeId) -> Label {
        self.node_label(v)
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        Neighbors::slice(self.out(v))
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        Neighbors::slice(self.inn(v))
    }

    fn node_ids(&self) -> NodeIds<'_> {
        NodeIds::Range(0..self.node_count() as u32)
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        self.node_count()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.edge_count()
    }

    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        self.deg_out(v)
    }

    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        self.deg_in(v)
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge(u, v)
    }

    fn for_each_node_with_label(&self, l: Label, f: &mut dyn FnMut(NodeId)) {
        for &v in self.nodes_with_label(l) {
            f(v);
        }
    }

    #[inline]
    fn count_nodes_with_label(&self, l: Label) -> usize {
        self.nodes_with_label(l).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> (Graph, [NodeId; 4]) {
        // a -> b, a -> c, b -> d, c -> d
        let mut b = GraphBuilder::new();
        let na = b.add_node("A");
        let nb = b.add_node("B");
        let nc = b.add_node("C");
        let nd = b.add_node("D");
        b.add_edge(na, nb);
        b.add_edge(na, nc);
        b.add_edge(nb, nd);
        b.add_edge(nc, nd);
        (b.build(), [na, nb, nc, nd])
    }

    #[test]
    fn counts() {
        let (g, _) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.size(), 8);
    }

    #[test]
    fn adjacency_out_and_in() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.out(a), &[b, c]);
        assert_eq!(g.inn(d), &[b, c]);
        assert_eq!(g.out(d), &[]);
        assert_eq!(g.inn(a), &[]);
        assert_eq!(g.adj(a, Direction::Out), &[b, c]);
        assert_eq!(g.adj(d, Direction::In), &[b, c]);
    }

    #[test]
    fn degrees() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.deg_out(a), 2);
        assert_eq!(g.deg_in(a), 0);
        assert_eq!(g.deg(a), 2);
        assert_eq!(g.deg(b), 2);
        assert_eq!(g.deg_in(d), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn edge_test_binary_search() {
        let (g, [a, b, c, d]) = diamond();
        assert!(g.edge(a, b));
        assert!(g.edge(c, d));
        assert!(!g.edge(b, a));
        assert!(!g.edge(a, d));
    }

    #[test]
    fn labels_resolve() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.node_label_str(a), "A");
        assert_eq!(g.node_label_str(d), "D");
        let la = g.labels().get("A").unwrap();
        assert_eq!(g.node_label(a), la);
        assert_eq!(g.nodes_with_label(la), &[a]);
    }

    #[test]
    fn label_partition_equals_linear_scan() {
        // The label index must agree with a filter over all nodes, for
        // every interned label, and be sorted.
        let g = crate::builder::graph_from_edges(
            &["A", "B", "A", "C", "B", "A"],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        for l in (0..g.labels().len() as u32).map(Label) {
            let scan: Vec<NodeId> = g.nodes().filter(|&v| g.node_label(v) == l).collect();
            assert_eq!(g.nodes_with_label(l), scan.as_slice());
            assert_eq!(g.count_nodes_with_label(l), scan.len());
            assert!(g.nodes_with_label(l).windows(2).all(|w| w[0] < w[1]));
            let mut via_trait = Vec::new();
            g.for_each_node_with_label(l, &mut |v| via_trait.push(v));
            assert_eq!(via_trait, scan);
        }
        assert_eq!(g.nodes_with_label(Label(999)), &[] as &[NodeId]);
        assert_eq!(g.count_nodes_with_label(Label(999)), 0);
    }

    #[test]
    fn edges_iterator_yields_all() {
        let (g, [a, b, c, d]) = diamond();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(a, b), (a, c), (b, d), (c, d)]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn graph_view_trait_consistency() {
        let (g, [a, _, _, d]) = diamond();
        assert!(g.contains(a));
        assert!(!g.contains(NodeId(99)));
        let outs: Vec<_> = g.out_neighbors(a).collect();
        assert_eq!(outs.len(), 2);
        let ins: Vec<_> = g.in_neighbors(d).collect();
        assert_eq!(ins.len(), 2);
        assert_eq!(g.node_ids().count(), 4);
    }

    #[test]
    fn fresh_graph_has_no_overlay() {
        let (g, _) = diamond();
        assert!(!g.is_overlaid());
        assert_eq!(g.overlay_churn(), 0);
        // Compacting an overlay-free graph is a faithful rebuild.
        let c = g.compact();
        assert_eq!(c.node_count(), g.node_count());
        assert_eq!(c.edge_count(), g.edge_count());
        let es: Vec<_> = g.edges().collect();
        let cs: Vec<_> = c.edges().collect();
        assert_eq!(es, cs);
    }
}
