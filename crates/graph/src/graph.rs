//! Immutable CSR graph storage.
//!
//! [`Graph`] stores a node-labeled directed graph in compressed sparse row
//! form, with *both* out-adjacency and in-adjacency materialized: pattern
//! matching by (strong) simulation must preserve both child and parent
//! relationships (§2, conditions (a)/(b)), so reverse edges are consulted as
//! often as forward ones.

use crate::labels::LabelInterner;
use crate::types::{Direction, Label, NodeId};
use crate::view::{GraphView, Neighbors, NodeIds};

/// An immutable node-labeled directed graph in CSR form.
///
/// Construct via [`crate::GraphBuilder`]. Adjacency lists are sorted by
/// target id and deduplicated, enabling `O(log d)` edge tests via binary
/// search and cache-friendly sequential scans. A third CSR partition maps
/// each label to its (sorted) node list, so candidate seeding by label is
/// `O(1)` + output instead of an `O(|V|)` scan per query node.
#[derive(Debug, Clone)]
pub struct Graph {
    labels: LabelInterner,
    node_labels: Vec<Label>,
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_targets: Vec<NodeId>,
    label_offsets: Vec<usize>,
    label_nodes: Vec<NodeId>,
}

impl Graph {
    pub(crate) fn from_parts(
        labels: LabelInterner,
        node_labels: Vec<Label>,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<usize>,
        in_targets: Vec<NodeId>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), node_labels.len() + 1);
        debug_assert_eq!(in_offsets.len(), node_labels.len() + 1);
        debug_assert_eq!(out_targets.len(), in_targets.len());
        // Label partition: counting-sort node ids by label. Nodes are
        // visited in ascending id order, so each partition comes out sorted.
        let nl = labels.len();
        let mut label_offsets = vec![0usize; nl + 1];
        for &l in &node_labels {
            label_offsets[l.index() + 1] += 1;
        }
        for i in 0..nl {
            label_offsets[i + 1] += label_offsets[i];
        }
        let mut label_nodes = vec![NodeId(0); node_labels.len()];
        let mut cursor = label_offsets.clone();
        for (i, &l) in node_labels.iter().enumerate() {
            label_nodes[cursor[l.index()]] = NodeId::new(i);
            cursor[l.index()] += 1;
        }
        Graph {
            labels,
            node_labels,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
            label_offsets,
            label_nodes,
        }
    }

    /// The label interner (string ↔ id mapping).
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Children of `v` as a slice (sorted, deduplicated).
    #[inline]
    pub fn out(&self, v: NodeId) -> &[NodeId] {
        &self.out_targets[self.out_offsets[v.index()]..self.out_offsets[v.index() + 1]]
    }

    /// Parents of `v` as a slice (sorted, deduplicated).
    #[inline]
    pub fn inn(&self, v: NodeId) -> &[NodeId] {
        &self.in_targets[self.in_offsets[v.index()]..self.in_offsets[v.index() + 1]]
    }

    /// Neighbors of `v` in direction `dir` as a slice.
    #[inline]
    pub fn adj(&self, v: NodeId, dir: Direction) -> &[NodeId] {
        match dir {
            Direction::Out => self.out(v),
            Direction::In => self.inn(v),
        }
    }

    /// The label of node `v`.
    #[inline]
    pub fn node_label(&self, v: NodeId) -> Label {
        self.node_labels[v.index()]
    }

    /// The label string of node `v`.
    pub fn node_label_str(&self, v: NodeId) -> &str {
        self.labels.name(self.node_labels[v.index()])
    }

    /// Out-degree of `v` (constant time, unlike the trait default).
    #[inline]
    pub fn deg_out(&self, v: NodeId) -> usize {
        self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]
    }

    /// In-degree of `v` (constant time).
    #[inline]
    pub fn deg_in(&self, v: NodeId) -> usize {
        self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]
    }

    /// Total degree `d(v) = deg_out(v) + deg_in(v)`.
    #[inline]
    pub fn deg(&self, v: NodeId) -> usize {
        self.deg_out(v) + self.deg_in(v)
    }

    /// Edge test `u -> v` in `O(log deg_out(u))`.
    #[inline]
    pub fn edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out(u).binary_search(&v).is_ok()
    }

    /// Iterate all node ids `0..|V|`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterate all edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out(u).iter().map(move |&v| (u, v)))
    }

    /// Nodes carrying label `l`, as a sorted slice of the label partition
    /// index — `O(1)` + output. Unknown labels yield the empty slice.
    #[inline]
    pub fn nodes_with_label(&self, l: Label) -> &[NodeId] {
        if l.index() + 1 >= self.label_offsets.len() {
            return &[];
        }
        &self.label_nodes[self.label_offsets[l.index()]..self.label_offsets[l.index() + 1]]
    }

    /// Maximum total degree over all nodes (the paper's `d_G` when applied to
    /// a neighborhood subgraph; see Theorem 3).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.deg(v)).max().unwrap_or(0)
    }
}

impl GraphView for Graph {
    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        v.index() < self.node_count()
    }

    #[inline]
    fn label(&self, v: NodeId) -> Label {
        self.node_label(v)
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        Neighbors::slice(self.out(v))
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        Neighbors::slice(self.inn(v))
    }

    fn node_ids(&self) -> NodeIds<'_> {
        NodeIds::Range(0..self.node_count() as u32)
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        self.node_count()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.edge_count()
    }

    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        self.deg_out(v)
    }

    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        self.deg_in(v)
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge(u, v)
    }

    fn for_each_node_with_label(&self, l: Label, f: &mut dyn FnMut(NodeId)) {
        for &v in self.nodes_with_label(l) {
            f(v);
        }
    }

    #[inline]
    fn count_nodes_with_label(&self, l: Label) -> usize {
        self.nodes_with_label(l).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> (Graph, [NodeId; 4]) {
        // a -> b, a -> c, b -> d, c -> d
        let mut b = GraphBuilder::new();
        let na = b.add_node("A");
        let nb = b.add_node("B");
        let nc = b.add_node("C");
        let nd = b.add_node("D");
        b.add_edge(na, nb);
        b.add_edge(na, nc);
        b.add_edge(nb, nd);
        b.add_edge(nc, nd);
        (b.build(), [na, nb, nc, nd])
    }

    #[test]
    fn counts() {
        let (g, _) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.size(), 8);
    }

    #[test]
    fn adjacency_out_and_in() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.out(a), &[b, c]);
        assert_eq!(g.inn(d), &[b, c]);
        assert_eq!(g.out(d), &[]);
        assert_eq!(g.inn(a), &[]);
        assert_eq!(g.adj(a, Direction::Out), &[b, c]);
        assert_eq!(g.adj(d, Direction::In), &[b, c]);
    }

    #[test]
    fn degrees() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.deg_out(a), 2);
        assert_eq!(g.deg_in(a), 0);
        assert_eq!(g.deg(a), 2);
        assert_eq!(g.deg(b), 2);
        assert_eq!(g.deg_in(d), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn edge_test_binary_search() {
        let (g, [a, b, c, d]) = diamond();
        assert!(g.edge(a, b));
        assert!(g.edge(c, d));
        assert!(!g.edge(b, a));
        assert!(!g.edge(a, d));
    }

    #[test]
    fn labels_resolve() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.node_label_str(a), "A");
        assert_eq!(g.node_label_str(d), "D");
        let la = g.labels().get("A").unwrap();
        assert_eq!(g.node_label(a), la);
        assert_eq!(g.nodes_with_label(la), &[a]);
    }

    #[test]
    fn label_partition_equals_linear_scan() {
        // The label index must agree with a filter over all nodes, for
        // every interned label, and be sorted.
        let g = crate::builder::graph_from_edges(
            &["A", "B", "A", "C", "B", "A"],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        for l in (0..g.labels().len() as u32).map(Label) {
            let scan: Vec<NodeId> = g.nodes().filter(|&v| g.node_label(v) == l).collect();
            assert_eq!(g.nodes_with_label(l), scan.as_slice());
            assert_eq!(g.count_nodes_with_label(l), scan.len());
            assert!(g.nodes_with_label(l).windows(2).all(|w| w[0] < w[1]));
            let mut via_trait = Vec::new();
            g.for_each_node_with_label(l, &mut |v| via_trait.push(v));
            assert_eq!(via_trait, scan);
        }
        assert_eq!(g.nodes_with_label(Label(999)), &[] as &[NodeId]);
        assert_eq!(g.count_nodes_with_label(Label(999)), 0);
    }

    #[test]
    fn edges_iterator_yields_all() {
        let (g, [a, b, c, d]) = diamond();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(a, b), (a, c), (b, d), (c, d)]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn graph_view_trait_consistency() {
        let (g, [a, _, _, d]) = diamond();
        assert!(g.contains(a));
        assert!(!g.contains(NodeId(99)));
        let outs: Vec<_> = g.out_neighbors(a).collect();
        assert_eq!(outs.len(), 2);
        let ins: Vec<_> = g.in_neighbors(d).collect();
        assert_eq!(ins.len(), 2);
        assert_eq!(g.node_ids().count(), 4);
    }
}
