//! Node-to-shard partitions for distributed (sharded) serving.
//!
//! The paper notes its resource-bounded techniques "adapt readily to
//! distributed settings"; the first step is deciding which shard *owns*
//! each node of `G`. This module provides the partition data structure and
//! two construction policies:
//!
//! * [`partition_by_label_hash`] — every node of a label lands on the shard
//!   `hash(label) mod k`. Since anchored pattern queries are routed by
//!   their personalized node's label, a router can map a pattern query to
//!   its owner shard from the query text alone (exact label-based shard
//!   pruning, no graph lookup).
//! * [`partition_by_scc`] — community-aware: whole strongly connected
//!   components (via [`crate::condense`]) are assigned to shards as
//!   contiguous runs of the reverse-topological component order, balanced
//!   by member count. Mutually reachable nodes never straddle a shard
//!   boundary, and shard boundaries align with the DAG structure the
//!   reachability index is built over.
//!
//! A [`ShardAssignment`] also provides the boundary bookkeeping a router
//! needs to reason about locality: which nodes have edges crossing into
//! another shard, and how many edges are cut ([`PartitionStats`]).

use crate::condense::condense;
use crate::graph::Graph;
use crate::types::NodeId;
use rustc_hash::FxHasher;
use std::fmt;
use std::hash::Hasher;

/// Typed rejection of an invalid shard configuration or assignment.
///
/// Construction used to `assert!` on these; a corrupt `--shards 0` or a
/// bad dense map now surfaces as an error the router and CLI can turn
/// into an exit code instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A shard count of zero was requested.
    ZeroShards,
    /// A dense-map entry names a shard outside `0..shards`.
    ShardOutOfRange {
        /// The offending shard id.
        shard: u32,
        /// The configured shard count.
        shards: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ZeroShards => write!(f, "need at least one shard"),
            PartitionError::ShardOutOfRange { shard, shards } => {
                write!(f, "shard id {shard} out of range (shards = {shards})")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// An assignment of every node of a graph to one of `k` shards.
///
/// Stored both as a dense `node -> shard` map and as a CSR partition
/// (`owned(s)` is a sorted slice), mirroring the label partition of
/// [`Graph`].
#[derive(Debug, Clone)]
pub struct ShardAssignment {
    shard_of: Vec<u32>,
    shards: usize,
    owned_offsets: Vec<usize>,
    owned_nodes: Vec<NodeId>,
}

impl ShardAssignment {
    /// Build from a dense `node -> shard` map.
    ///
    /// # Errors
    /// [`PartitionError::ZeroShards`] when `shards == 0`;
    /// [`PartitionError::ShardOutOfRange`] when any entry is outside
    /// `0..shards`.
    pub fn new(shard_of: Vec<u32>, shards: usize) -> Result<Self, PartitionError> {
        if shards == 0 {
            return Err(PartitionError::ZeroShards);
        }
        // Counting-sort node ids by shard; ascending visit order keeps each
        // owned slice sorted (same construction as the label partition).
        let mut owned_offsets = vec![0usize; shards + 1];
        for &s in &shard_of {
            if s as usize >= shards {
                return Err(PartitionError::ShardOutOfRange { shard: s, shards });
            }
            owned_offsets[s as usize + 1] += 1;
        }
        for i in 0..shards {
            owned_offsets[i + 1] += owned_offsets[i];
        }
        let mut owned_nodes = vec![NodeId(0); shard_of.len()];
        let mut cursor = owned_offsets.clone();
        for (i, &s) in shard_of.iter().enumerate() {
            owned_nodes[cursor[s as usize]] = NodeId::new(i);
            cursor[s as usize] += 1;
        }
        Ok(ShardAssignment {
            shard_of,
            shards,
            owned_offsets,
            owned_nodes,
        })
    }

    /// Number of shards `k`.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes assigned (the graph's `|V|`).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard owning node `v`, or `None` when `v` is out of range.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> Option<u32> {
        self.shard_of.get(v.index()).copied()
    }

    /// Nodes owned by shard `s`, as a sorted slice.
    #[inline]
    pub fn owned(&self, s: usize) -> &[NodeId] {
        &self.owned_nodes[self.owned_offsets[s]..self.owned_offsets[s + 1]]
    }

    /// Boundary bookkeeping for this assignment over `g`.
    ///
    /// A node is a *boundary node* if it has an out- or in-edge whose other
    /// endpoint lives on a different shard; such edges are *cut*. Runs in
    /// `O(|V| + |E|)`.
    pub fn boundary_stats(&self, g: &Graph) -> PartitionStats {
        assert_eq!(g.node_count(), self.shard_of.len(), "assignment size");
        let mut cut_edges = 0usize;
        let mut is_boundary = vec![false; g.node_count()];
        for (u, v) in g.edges() {
            if self.shard_of[u.index()] != self.shard_of[v.index()] {
                cut_edges += 1;
                is_boundary[u.index()] = true;
                is_boundary[v.index()] = true;
            }
        }
        let mut boundary_per_shard = vec![0usize; self.shards];
        for (i, b) in is_boundary.iter().enumerate() {
            if *b {
                boundary_per_shard[self.shard_of[i] as usize] += 1;
            }
        }
        let nodes_per_shard: Vec<usize> = (0..self.shards).map(|s| self.owned(s).len()).collect();
        PartitionStats {
            shards: self.shards,
            cut_edges,
            total_edges: g.edge_count(),
            boundary_nodes: boundary_per_shard.iter().sum(),
            boundary_per_shard,
            nodes_per_shard,
        }
    }
}

/// Locality statistics of a [`ShardAssignment`] over a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStats {
    /// Number of shards.
    pub shards: usize,
    /// Edges whose endpoints live on different shards.
    pub cut_edges: usize,
    /// Total edges of the graph (denominator for the cut fraction).
    pub total_edges: usize,
    /// Nodes with at least one cut edge.
    pub boundary_nodes: usize,
    /// Boundary nodes owned by each shard.
    pub boundary_per_shard: Vec<usize>,
    /// Nodes owned by each shard.
    pub nodes_per_shard: Vec<usize>,
}

impl PartitionStats {
    /// Fraction of edges cut, in `[0, 1]`; 0 for an edgeless graph.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }

    /// Largest / smallest shard node counts (balance indicator).
    pub fn balance(&self) -> (usize, usize) {
        let max = self.nodes_per_shard.iter().copied().max().unwrap_or(0);
        let min = self.nodes_per_shard.iter().copied().min().unwrap_or(0);
        (max, min)
    }
}

/// Stable shard of a label string: `fxhash(bytes) mod k`.
///
/// Hashing the *string* (not the interned id) keeps the mapping stable
/// across processes and graph builds, which is what lets a router compute a
/// pattern query's owner shard from the query text alone.
///
/// # Errors
/// [`PartitionError::ZeroShards`] when `shards == 0`.
pub fn label_shard(label: &str, shards: usize) -> Result<u32, PartitionError> {
    if shards == 0 {
        return Err(PartitionError::ZeroShards);
    }
    let mut h = FxHasher::default();
    h.write(label.as_bytes());
    Ok((h.finish() % shards as u64) as u32)
}

/// Partition by label hash: node `v` goes to `label_shard(label(v), k)`.
///
/// All candidates of a label share a shard, so label-based routing is
/// exact; balance depends on the label distribution (skewed labels give
/// skewed shards — see [`PartitionStats::balance`]).
///
/// # Errors
/// [`PartitionError::ZeroShards`] when `shards == 0`.
pub fn partition_by_label_hash(
    g: &Graph,
    shards: usize,
) -> Result<ShardAssignment, PartitionError> {
    if shards == 0 {
        return Err(PartitionError::ZeroShards);
    }
    // One hash per *label*, not per node.
    let by_label: Vec<u32> = (0..g.labels().len() as u32)
        .map(|l| label_shard(g.labels().name(crate::types::Label(l)), shards))
        .collect::<Result<_, _>>()?;
    let shard_of: Vec<u32> = g
        .nodes()
        .map(|v| by_label[g.node_label(v).index()])
        .collect();
    ShardAssignment::new(shard_of, shards)
}

/// Community-aware partition: whole SCCs, assigned as contiguous runs of
/// the reverse-topological component order, balanced by member count.
///
/// Mutually reachable nodes always share a shard, and each shard covers a
/// contiguous band of the condensation DAG's topological order — the
/// locality that keeps reachability traffic intra-shard.
///
/// # Errors
/// [`PartitionError::ZeroShards`] when `shards == 0`.
pub fn partition_by_scc(g: &Graph, shards: usize) -> Result<ShardAssignment, PartitionError> {
    if shards == 0 {
        return Err(PartitionError::ZeroShards);
    }
    let cond = condense(g);
    let k = cond.partition.count;
    let mut comp_size = vec![0usize; k];
    for v in g.nodes() {
        comp_size[cond.partition.component_of(v) as usize] += 1;
    }
    // Greedy balanced contiguous partition of the component sequence:
    // cut when the current shard reaches its fair share of the remaining
    // nodes (never leaving later shards starved).
    let mut comp_shard = vec![0u32; k];
    let mut remaining_nodes = g.node_count();
    let mut remaining_shards = shards;
    let mut shard = 0usize;
    let mut in_shard = 0usize;
    // Fair share of the current shard, fixed when the shard starts.
    let mut target = remaining_nodes.div_ceil(remaining_shards.max(1));
    for c in 0..k {
        comp_shard[c] = shard as u32;
        in_shard += comp_size[c];
        remaining_nodes -= comp_size[c];
        if in_shard >= target && shard + 1 < shards {
            shard += 1;
            remaining_shards -= 1;
            in_shard = 0;
            target = remaining_nodes.div_ceil(remaining_shards.max(1));
        }
    }
    let shard_of: Vec<u32> = g
        .nodes()
        .map(|v| comp_shard[cond.partition.component_of(v) as usize])
        .collect();
    ShardAssignment::new(shard_of, shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::scc::tarjan_scc;

    fn sample() -> Graph {
        // Two 2-cycles bridged, plus a tail.
        graph_from_edges(
            &["A", "B", "A", "B", "C", "C"],
            &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (4, 5)],
        )
    }

    fn assert_covers(a: &ShardAssignment, n: usize) {
        // Every node exactly once across the owned slices, each sorted.
        let mut seen = vec![false; n];
        for s in 0..a.shards() {
            let owned = a.owned(s);
            assert!(owned.windows(2).all(|w| w[0] < w[1]), "unsorted shard {s}");
            for &v in owned {
                assert!(!seen[v.index()], "node {v:?} owned twice");
                seen[v.index()] = true;
                assert_eq!(a.shard_of(v), Some(s as u32));
            }
        }
        assert!(seen.iter().all(|&b| b), "some node unowned");
    }

    #[test]
    fn label_hash_covers_and_groups_labels() {
        let g = sample();
        for k in [1usize, 2, 3, 8] {
            let a = partition_by_label_hash(&g, k).unwrap();
            assert_covers(&a, g.node_count());
            // All nodes of a label share a shard, and it is the one
            // `label_shard` names from the string alone.
            for v in g.nodes() {
                assert_eq!(
                    a.shard_of(v),
                    Some(label_shard(g.node_label_str(v), k).unwrap()),
                    "node {v:?}"
                );
            }
        }
    }

    #[test]
    fn scc_covers_and_keeps_components_whole() {
        let g = sample();
        let scc = tarjan_scc(&g);
        for k in [1usize, 2, 3, 8] {
            let a = partition_by_scc(&g, k).unwrap();
            assert_covers(&a, g.node_count());
            for u in g.nodes() {
                for v in g.nodes() {
                    if scc.same(u, v) {
                        assert_eq!(a.shard_of(u), a.shard_of(v), "{u:?} {v:?} split");
                    }
                }
            }
        }
    }

    #[test]
    fn scc_partition_is_roughly_balanced() {
        // 100 singleton components -> every shard gets ~25 nodes.
        let labels = vec!["A"; 100];
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let g = graph_from_edges(&labels, &edges);
        let a = partition_by_scc(&g, 4).unwrap();
        let stats = a.boundary_stats(&g);
        let (max, min) = stats.balance();
        assert!(max <= 26 && min >= 24, "balance {max}/{min}");
    }

    #[test]
    fn boundary_stats_count_cut_edges() {
        let g = graph_from_edges(&["A", "B"], &[(0, 1)]);
        // Force the two nodes onto different shards.
        let a = ShardAssignment::new(vec![0, 1], 2).unwrap();
        let stats = a.boundary_stats(&g);
        assert_eq!(stats.cut_edges, 1);
        assert_eq!(stats.boundary_nodes, 2);
        assert_eq!(stats.boundary_per_shard, vec![1, 1]);
        assert_eq!(stats.nodes_per_shard, vec![1, 1]);
        assert!((stats.cut_fraction() - 1.0).abs() < 1e-12);
        // Same-shard assignment cuts nothing.
        let a1 = ShardAssignment::new(vec![0, 0], 2).unwrap();
        let s1 = a1.boundary_stats(&g);
        assert_eq!(s1.cut_edges, 0);
        assert_eq!(s1.boundary_nodes, 0);
        assert_eq!(s1.cut_fraction(), 0.0);
    }

    #[test]
    fn single_shard_owns_everything() {
        let g = sample();
        for a in [
            partition_by_label_hash(&g, 1).unwrap(),
            partition_by_scc(&g, 1).unwrap(),
        ] {
            assert_eq!(a.owned(0).len(), g.node_count());
            assert_eq!(a.boundary_stats(&g).cut_edges, 0);
        }
    }

    #[test]
    fn empty_graph_partitions() {
        let g = crate::builder::GraphBuilder::new().build();
        for a in [
            partition_by_label_hash(&g, 3).unwrap(),
            partition_by_scc(&g, 3).unwrap(),
        ] {
            assert_eq!(a.node_count(), 0);
            for s in 0..3 {
                assert!(a.owned(s).is_empty());
            }
        }
    }

    #[test]
    fn out_of_range_lookup_is_none() {
        let g = sample();
        let a = partition_by_label_hash(&g, 2).unwrap();
        assert_eq!(a.shard_of(NodeId(999)), None);
    }

    #[test]
    fn label_shard_is_deterministic() {
        assert_eq!(label_shard("ME", 8), label_shard("ME", 8));
        assert!(label_shard("ME", 3).unwrap() < 3);
    }

    #[test]
    fn zero_shards_is_typed_error() {
        let g = sample();
        assert_eq!(
            partition_by_label_hash(&g, 0).unwrap_err(),
            PartitionError::ZeroShards
        );
        assert_eq!(
            partition_by_scc(&g, 0).unwrap_err(),
            PartitionError::ZeroShards
        );
        assert_eq!(label_shard("A", 0).unwrap_err(), PartitionError::ZeroShards);
        assert_eq!(
            ShardAssignment::new(vec![], 0).unwrap_err(),
            PartitionError::ZeroShards
        );
    }

    #[test]
    fn corrupt_assignment_is_typed_error() {
        let err = ShardAssignment::new(vec![0, 7, 1], 2).unwrap_err();
        assert_eq!(
            err,
            PartitionError::ShardOutOfRange {
                shard: 7,
                shards: 2
            }
        );
        assert!(err.to_string().contains("out of range"));
    }
}
