//! Subgraph views over a base [`Graph`].
//!
//! Two flavors, both sharing the base graph's node-id space:
//!
//! * [`InducedSubgraph`] — the subgraph *induced* by a node set `V_s`
//!   (paper §2): all edges of `G` with both endpoints in `V_s`.
//! * [`DynamicSubgraph`] — an incrementally grown subgraph used as the
//!   reduced graph `G_Q` by the dynamic-reduction procedures (§3): nodes and
//!   induced edges are added one node at a time while the resource budget is
//!   charged for each addition.

use crate::graph::Graph;
use crate::types::{Label, NodeId};
use crate::view::{GraphView, Neighbors, NodeIds};
use rustc_hash::{FxHashMap, FxHashSet};

/// The subgraph of a base graph induced by a node set (§2).
///
/// Edges are not materialized: adjacency queries filter the base graph's
/// lists through the membership set, so construction is `O(|V_s|)`.
#[derive(Debug, Clone)]
pub struct InducedSubgraph<'g> {
    base: &'g Graph,
    members: FxHashSet<NodeId>,
    nodes: Vec<NodeId>,
    num_edges: usize,
}

impl<'g> InducedSubgraph<'g> {
    /// Build the subgraph of `base` induced by `nodes`.
    ///
    /// Duplicate ids are ignored. Edge counting costs one adjacency scan per
    /// member node.
    pub fn new(base: &'g Graph, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut members = FxHashSet::default();
        let mut sorted: Vec<NodeId> = Vec::new();
        for v in nodes {
            debug_assert!(v.index() < base.node_count(), "node outside base graph");
            if members.insert(v) {
                sorted.push(v);
            }
        }
        sorted.sort_unstable();
        let num_edges = sorted
            .iter()
            .map(|&u| base.out(u).iter().filter(|v| members.contains(v)).count())
            .sum();
        InducedSubgraph {
            base,
            members,
            nodes: sorted,
            num_edges,
        }
    }

    /// The base graph.
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// Member nodes in ascending id order.
    pub fn members(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Copy into a standalone [`Graph`] with remapped dense ids.
    ///
    /// Returns the new graph and the mapping `new id -> old id`.
    pub fn materialize(&self) -> (Graph, Vec<NodeId>) {
        materialize(self.base, &self.nodes, &self.members)
    }
}

impl GraphView for InducedSubgraph<'_> {
    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        self.members.contains(&v)
    }

    #[inline]
    fn label(&self, v: NodeId) -> Label {
        self.base.node_label(v)
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        Neighbors::filtered(self.base.out(v), &self.members)
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        Neighbors::filtered(self.base.inn(v), &self.members)
    }

    fn node_ids(&self) -> NodeIds<'_> {
        NodeIds::Slice(self.nodes.iter())
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.members.contains(&u) && self.members.contains(&v) && self.base.edge(u, v)
    }
}

/// An incrementally grown subgraph of a base graph — the reduced graph `G_Q`.
///
/// Invariant maintained by [`DynamicSubgraph::add_node`]: the edge set is
/// exactly the base graph's edges induced by the current node set, so
/// [`GraphView::size`] is the `|G_Q|` the resource bound `α|G|` constrains
/// (§3, and Example 2's "14 nodes and edges").
#[derive(Debug, Clone)]
pub struct DynamicSubgraph<'g> {
    base: &'g Graph,
    members: FxHashSet<NodeId>,
    nodes: Vec<NodeId>,
    out_adj: FxHashMap<NodeId, Vec<NodeId>>,
    in_adj: FxHashMap<NodeId, Vec<NodeId>>,
    num_edges: usize,
}

impl<'g> DynamicSubgraph<'g> {
    /// Create an empty subgraph of `base`.
    pub fn new(base: &'g Graph) -> Self {
        DynamicSubgraph {
            base,
            members: FxHashSet::default(),
            nodes: Vec::new(),
            out_adj: FxHashMap::default(),
            in_adj: FxHashMap::default(),
            num_edges: 0,
        }
    }

    /// The base graph.
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// Add `v` and all base-graph edges between `v` and current members.
    ///
    /// Returns the number of size units added (1 for the node plus 1 per
    /// induced edge), or 0 if `v` was already present. The caller charges
    /// this against the resource budget.
    pub fn add_node(&mut self, v: NodeId) -> usize {
        debug_assert!(v.index() < self.base.node_count(), "node outside base");
        if !self.members.insert(v) {
            return 0;
        }
        self.nodes.push(v);
        let mut added = 1usize;
        // Induced edges v -> w and w -> v for members w (v itself included,
        // covering self-loops exactly once).
        let mut out_list: Vec<NodeId> = Vec::new();
        for &w in self.base.out(v) {
            if self.members.contains(&w) {
                out_list.push(w);
                self.in_adj.entry(w).or_default().push(v);
                added += 1;
                self.num_edges += 1;
            }
        }
        let mut in_list: Vec<NodeId> = Vec::new();
        for &w in self.base.inn(v) {
            if w == v {
                // Self-loop fully handled by the out scan (both adjacency
                // directions were registered there).
                continue;
            }
            if self.members.contains(&w) {
                in_list.push(w);
                self.out_adj.entry(w).or_default().push(v);
                added += 1;
                self.num_edges += 1;
            }
        }
        self.out_adj.entry(v).or_default().extend(out_list);
        self.in_adj.entry(v).or_default().extend(in_list);
        added
    }

    /// Member nodes in insertion order.
    pub fn members(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Copy into a standalone [`Graph`] with remapped dense ids.
    ///
    /// Returns the new graph and the mapping `new id -> old id`.
    pub fn materialize(&self) -> (Graph, Vec<NodeId>) {
        let mut sorted = self.nodes.clone();
        sorted.sort_unstable();
        materialize(self.base, &sorted, &self.members)
    }
}

impl GraphView for DynamicSubgraph<'_> {
    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        self.members.contains(&v)
    }

    #[inline]
    fn label(&self, v: NodeId) -> Label {
        self.base.node_label(v)
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        match self.out_adj.get(&v) {
            Some(list) => Neighbors::slice(list),
            None => Neighbors::empty(),
        }
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        match self.in_adj.get(&v) {
            Some(list) => Neighbors::slice(list),
            None => Neighbors::empty(),
        }
    }

    fn node_ids(&self) -> NodeIds<'_> {
        let mut ids = self.nodes.clone();
        ids.sort_unstable();
        NodeIds::Owned(ids.into_iter())
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }
}

/// Shared materialization: copy the subgraph induced by `sorted_nodes` (with
/// membership set `members`) of `base` into a fresh graph.
fn materialize(
    base: &Graph,
    sorted_nodes: &[NodeId],
    members: &FxHashSet<NodeId>,
) -> (Graph, Vec<NodeId>) {
    let mut remap: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    remap.reserve(sorted_nodes.len());
    for (i, &v) in sorted_nodes.iter().enumerate() {
        remap.insert(v, NodeId::new(i));
    }
    let mut b = crate::builder::GraphBuilder::with_capacity(sorted_nodes.len(), 0);
    for &v in sorted_nodes {
        b.add_node(base.node_label_str(v));
    }
    for &v in sorted_nodes {
        let nv = remap[&v];
        for &w in base.out(v) {
            if members.contains(&w) {
                b.add_edge(nv, remap[&w]);
            }
        }
    }
    (b.build(), sorted_nodes.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn path5() -> Graph {
        graph_from_edges(
            &["A", "B", "C", "D", "E"],
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
        )
    }

    #[test]
    fn induced_subgraph_keeps_inner_edges_only() {
        let g = path5();
        let s = InducedSubgraph::new(&g, [NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 1); // only 1 -> 2
        assert!(s.has_edge(NodeId(1), NodeId(2)));
        assert!(!s.has_edge(NodeId(2), NodeId(3)));
        assert!(!s.contains(NodeId(3)));
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = path5();
        let s = InducedSubgraph::new(&g, [NodeId(0), NodeId(0), NodeId(1)]);
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.num_edges(), 1);
    }

    #[test]
    fn induced_neighbors_filtered() {
        let g = graph_from_edges(&["A", "B", "C"], &[(0, 1), (0, 2)]);
        let s = InducedSubgraph::new(&g, [NodeId(0), NodeId(2)]);
        let outs: Vec<_> = s.out_neighbors(NodeId(0)).collect();
        assert_eq!(outs, vec![NodeId(2)]);
        let ins: Vec<_> = s.in_neighbors(NodeId(2)).collect();
        assert_eq!(ins, vec![NodeId(0)]);
    }

    #[test]
    fn dynamic_subgraph_grows_induced() {
        let g = path5();
        let mut d = DynamicSubgraph::new(&g);
        assert_eq!(d.add_node(NodeId(1)), 1); // node only
        assert_eq!(d.add_node(NodeId(2)), 2); // node + edge 1->2
        assert_eq!(d.add_node(NodeId(2)), 0); // duplicate
        assert_eq!(d.num_nodes(), 2);
        assert_eq!(d.num_edges(), 1);
        assert_eq!(d.size(), 3);
        let outs: Vec<_> = d.out_neighbors(NodeId(1)).collect();
        assert_eq!(outs, vec![NodeId(2)]);
        let ins: Vec<_> = d.in_neighbors(NodeId(2)).collect();
        assert_eq!(ins, vec![NodeId(1)]);
    }

    #[test]
    fn dynamic_subgraph_matches_induced_semantics() {
        // Whatever order nodes are added, the edge set must equal the
        // induced edge set.
        let g = graph_from_edges(
            &["A", "B", "C", "D"],
            &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 1), (0, 3)],
        );
        let picks = [NodeId(3), NodeId(0), NodeId(1)];
        let mut d = DynamicSubgraph::new(&g);
        for &v in &picks {
            d.add_node(v);
        }
        let ind = InducedSubgraph::new(&g, picks);
        assert_eq!(d.num_edges(), ind.num_edges());
        for &u in &picks {
            let mut a: Vec<_> = d.out_neighbors(u).collect();
            let mut b: Vec<_> = ind.out_neighbors(u).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "out lists differ at {u:?}");
            let mut a: Vec<_> = d.in_neighbors(u).collect();
            let mut b: Vec<_> = ind.in_neighbors(u).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "in lists differ at {u:?}");
        }
    }

    #[test]
    fn dynamic_subgraph_self_loop_counted_once() {
        let g = graph_from_edges(&["A"], &[(0, 0)]);
        let mut d = DynamicSubgraph::new(&g);
        let added = d.add_node(NodeId(0));
        assert_eq!(added, 2); // node + self loop
        assert_eq!(d.num_edges(), 1);
        let outs: Vec<_> = d.out_neighbors(NodeId(0)).collect();
        assert_eq!(outs, vec![NodeId(0)]);
        let ins: Vec<_> = d.in_neighbors(NodeId(0)).collect();
        assert_eq!(ins, vec![NodeId(0)]);
    }

    #[test]
    fn materialize_roundtrip() {
        let g = path5();
        let s = InducedSubgraph::new(&g, [NodeId(2), NodeId(3), NodeId(4)]);
        let (m, back) = s.materialize();
        assert_eq!(m.node_count(), 3);
        assert_eq!(m.edge_count(), 2);
        assert_eq!(back, vec![NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(m.node_label_str(NodeId(0)), "C");
        assert!(m.edge(NodeId(0), NodeId(1)));
        assert!(m.edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn dynamic_materialize_matches() {
        let g = path5();
        let mut d = DynamicSubgraph::new(&g);
        d.add_node(NodeId(4));
        d.add_node(NodeId(3));
        let (m, back) = d.materialize();
        assert_eq!(m.node_count(), 2);
        assert_eq!(m.edge_count(), 1);
        assert_eq!(back, vec![NodeId(3), NodeId(4)]);
        assert!(m.edge(NodeId(0), NodeId(1)));
    }
}
