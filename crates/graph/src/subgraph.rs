//! Subgraph views over a base [`Graph`].
//!
//! Two flavors, both sharing the base graph's node-id space:
//!
//! * [`InducedSubgraph`] — the subgraph *induced* by a node set `V_s`
//!   (paper §2): all edges of `G` with both endpoints in `V_s`.
//! * [`DynamicSubgraph`] — an incrementally grown subgraph used as the
//!   reduced graph `G_Q` by the dynamic-reduction procedures (§3): nodes and
//!   induced edges are added one node at a time while the resource budget is
//!   charged for each addition. Its state lives in a reusable
//!   [`SubgraphScratch`], so a serving loop evaluating many queries pays no
//!   per-query allocation once the buffers are warm.

use crate::graph::Graph;
use crate::types::{Label, NodeId};
use crate::view::{GraphView, Neighbors, NodeIds};
use rustc_hash::{FxHashMap, FxHashSet};

/// The subgraph of a base graph induced by a node set (§2).
///
/// Edges are not materialized: adjacency queries filter the base graph's
/// lists through the membership set, so construction is `O(|V_s|)`.
#[derive(Debug, Clone)]
pub struct InducedSubgraph<'g> {
    base: &'g Graph,
    members: FxHashSet<NodeId>,
    nodes: Vec<NodeId>,
    num_edges: usize,
}

impl<'g> InducedSubgraph<'g> {
    /// Build the subgraph of `base` induced by `nodes`.
    ///
    /// Duplicate ids are ignored. Edge counting costs one adjacency scan per
    /// member node.
    pub fn new(base: &'g Graph, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut members = FxHashSet::default();
        let mut sorted: Vec<NodeId> = Vec::new();
        for v in nodes {
            debug_assert!(v.index() < base.node_count(), "node outside base graph");
            if members.insert(v) {
                sorted.push(v);
            }
        }
        sorted.sort_unstable();
        let num_edges = sorted
            .iter()
            .map(|&u| base.out(u).iter().filter(|v| members.contains(v)).count())
            .sum();
        InducedSubgraph {
            base,
            members,
            nodes: sorted,
            num_edges,
        }
    }

    /// The base graph.
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// Member nodes in ascending id order.
    pub fn members(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Copy into a standalone [`Graph`] with remapped dense ids.
    ///
    /// Returns the new graph and the mapping `new id -> old id`.
    pub fn materialize(&self) -> (Graph, Vec<NodeId>) {
        materialize(self.base, &self.nodes, |v| self.members.contains(&v))
    }
}

impl GraphView for InducedSubgraph<'_> {
    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        self.members.contains(&v)
    }

    #[inline]
    fn label(&self, v: NodeId) -> Label {
        self.base.node_label(v)
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        Neighbors::filtered(self.base.out(v), &self.members)
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        Neighbors::filtered(self.base.inn(v), &self.members)
    }

    fn node_ids(&self) -> NodeIds<'_> {
        NodeIds::Slice(self.nodes.iter())
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.members.contains(&u) && self.members.contains(&v) && self.base.edge(u, v)
    }
}

/// Reusable state behind [`DynamicSubgraph`]: dense per-node-id membership
/// stamps plus a pool of recycled adjacency buffers.
///
/// The dynamic reduction builds one `G_Q` per query; a fresh hash-set /
/// hash-map subgraph per query made membership probes (the innermost test of
/// `Search`/`Pick`) hash lookups and its growth a stream of small
/// allocations. The scratch keeps:
///
/// * `member_stamp[v] == epoch` ⇔ `v` is a member — starting the next
///   subgraph is one epoch bump, no clearing;
/// * `member_slot[v]` — the member's dense slot, indexing the adjacency
///   pool;
/// * per-slot adjacency `Vec`s, recycled across queries (cleared on slot
///   reuse, capacity kept).
///
/// Obtain a subgraph with [`SubgraphScratch::begin`] and recover the
/// buffers with [`DynamicSubgraph::into_scratch`]:
///
/// ```
/// use rbq_graph::{builder::graph_from_edges, subgraph::SubgraphScratch, NodeId};
/// let g = graph_from_edges(&["A"; 3], &[(0, 1), (1, 2)]);
/// let mut gq = SubgraphScratch::new().begin(&g);
/// gq.add_node(NodeId(0));
/// gq.add_node(NodeId(1));
/// let scratch = gq.into_scratch(); // warm buffers, ready for the next query
/// assert_eq!(scratch.begin(&g).num_nodes(), 0);
/// use rbq_graph::GraphView;
/// ```
#[derive(Debug, Clone, Default)]
pub struct SubgraphScratch {
    /// `member_stamp[v] == epoch` marks `v` a member of the current
    /// subgraph. Slots are zero-initialized and `epoch ≥ 1` after `begin`,
    /// so fresh slots read as absent.
    member_stamp: Vec<u32>,
    /// Dense slot of a member node; garbage unless `member_stamp` matches.
    member_slot: Vec<u32>,
    epoch: u32,
    /// Members in insertion order.
    nodes: Vec<NodeId>,
    /// Members in ascending id order (maintained incrementally).
    sorted_nodes: Vec<NodeId>,
    /// Per-slot adjacency, recycled. `out_adj[member_slot[v]]` are the
    /// children of `v` within the subgraph.
    out_adj: Vec<Vec<NodeId>>,
    in_adj: Vec<Vec<NodeId>>,
}

impl SubgraphScratch {
    /// Fresh scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start an empty [`DynamicSubgraph`] of `base`, reusing warm buffers.
    pub fn begin(mut self, base: &Graph) -> DynamicSubgraph<'_> {
        // Epoch wrap: hard-reset the stamps so marks from a previous epoch 1
        // cannot alias the new epoch 1. Once per 2^32 - 1 subgraphs.
        if self.epoch == u32::MAX {
            self.member_stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.member_stamp.len() < base.node_count() {
            self.member_stamp.resize(base.node_count(), 0);
            self.member_slot.resize(base.node_count(), 0);
        }
        self.nodes.clear();
        self.sorted_nodes.clear();
        DynamicSubgraph {
            base,
            s: self,
            num_edges: 0,
        }
    }
}

/// An incrementally grown subgraph of a base graph — the reduced graph `G_Q`.
///
/// Invariant maintained by [`DynamicSubgraph::add_node`] /
/// [`DynamicSubgraph::try_add_node`]: the edge set is exactly the base
/// graph's edges induced by the current node set, so [`GraphView::size`] is
/// the `|G_Q|` the resource bound `α|G|` constrains (§3, and Example 2's
/// "14 nodes and edges").
///
/// State lives in a [`SubgraphScratch`]; [`DynamicSubgraph::new`] wraps a
/// fresh one for one-shot use.
#[derive(Debug, Clone)]
pub struct DynamicSubgraph<'g> {
    base: &'g Graph,
    s: SubgraphScratch,
    num_edges: usize,
}

impl<'g> DynamicSubgraph<'g> {
    /// Create an empty subgraph of `base` over a fresh scratch.
    pub fn new(base: &'g Graph) -> Self {
        SubgraphScratch::new().begin(base)
    }

    /// The base graph.
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// Recover the scratch buffers for reuse by the next subgraph.
    pub fn into_scratch(self) -> SubgraphScratch {
        self.s
    }

    /// Add `v` and all base-graph edges between `v` and current members.
    ///
    /// Returns the number of size units added (1 for the node plus 1 per
    /// induced edge), or 0 if `v` was already present. The caller charges
    /// this against the resource budget.
    pub fn add_node(&mut self, v: NodeId) -> usize {
        self.try_add_node(v, usize::MAX)
            // invariant: with `remaining = usize::MAX` the budget check in
            // `try_add_node` can never reject, so the result is `Some`.
            .expect("unbounded add cannot exceed the budget")
    }

    /// Add `v` if its size units (1 + induced edges) fit within `remaining`
    /// budget units, in **one** adjacency scan — the fold of the former
    /// `peek_add_units` probe and `add_node` insertion, so each admitted
    /// node scans its base adjacency once, not twice.
    ///
    /// Returns `Some(units)` on admission (0 if `v` was already present) or
    /// `None` — with the subgraph unchanged — when `units > remaining`.
    pub fn try_add_node(&mut self, v: NodeId, remaining: usize) -> Option<usize> {
        debug_assert!(v.index() < self.base.node_count(), "node outside base");
        if self.contains(v) {
            return Some(0);
        }
        // Optimistically register v so the scans see it as a member (a
        // self-loop becomes an induced edge the moment v joins).
        let slot = self.s.nodes.len();
        self.s.member_stamp[v.index()] = self.s.epoch;
        self.s.member_slot[v.index()] = slot as u32;
        self.s.nodes.push(v);
        if slot == self.s.out_adj.len() {
            self.s.out_adj.push(Vec::new());
            self.s.in_adj.push(Vec::new());
        }
        self.s.out_adj[slot].clear();
        self.s.in_adj[slot].clear();

        let mut units = 1usize;
        for &w in self.base.out(v) {
            if self.contains(w) {
                let ws = self.s.member_slot[w.index()] as usize;
                self.s.out_adj[slot].push(w);
                self.s.in_adj[ws].push(v);
                units += 1;
            }
        }
        for &w in self.base.inn(v) {
            if w == v {
                // Self-loop fully handled by the out scan (both adjacency
                // directions were registered there).
                continue;
            }
            if self.contains(w) {
                let ws = self.s.member_slot[w.index()] as usize;
                self.s.in_adj[slot].push(w);
                self.s.out_adj[ws].push(v);
                units += 1;
            }
        }

        if units > remaining {
            // Roll back in reverse scan order. `v` is the most recent push
            // on every *other* member's list it touched; its own lists are
            // cleared on slot reuse. Undo the in-scan first (it ran last),
            // then the out-scan — for a self-loop, the out-scan pushed onto
            // v's own `in_adj`, which needs no undo.
            for i in (0..self.s.in_adj[slot].len()).rev() {
                let w = self.s.in_adj[slot][i];
                if w != v {
                    let ws = self.s.member_slot[w.index()] as usize;
                    self.s.out_adj[ws].pop();
                }
            }
            for i in (0..self.s.out_adj[slot].len()).rev() {
                let w = self.s.out_adj[slot][i];
                if w != v {
                    let ws = self.s.member_slot[w.index()] as usize;
                    self.s.in_adj[ws].pop();
                }
            }
            self.s.nodes.pop();
            // epoch ≥ 1 always, so 0 can never read as a member.
            self.s.member_stamp[v.index()] = 0;
            return None;
        }

        let pos = self.s.sorted_nodes.binary_search(&v).unwrap_err();
        self.s.sorted_nodes.insert(pos, v);
        self.num_edges += units - 1;
        Some(units)
    }

    /// Member nodes in insertion order.
    pub fn members(&self) -> &[NodeId] {
        &self.s.nodes
    }

    #[inline]
    fn slot(&self, v: NodeId) -> Option<usize> {
        if self.contains(v) {
            Some(self.s.member_slot[v.index()] as usize)
        } else {
            None
        }
    }

    /// Copy into a standalone [`Graph`] with remapped dense ids.
    ///
    /// Returns the new graph and the mapping `new id -> old id`.
    pub fn materialize(&self) -> (Graph, Vec<NodeId>) {
        materialize(self.base, &self.s.sorted_nodes, |v| self.contains(v))
    }
}

impl GraphView for DynamicSubgraph<'_> {
    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        self.s
            .member_stamp
            .get(v.index())
            .is_some_and(|&st| st == self.s.epoch)
    }

    #[inline]
    fn label(&self, v: NodeId) -> Label {
        self.base.node_label(v)
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        match self.slot(v) {
            Some(i) => Neighbors::slice(&self.s.out_adj[i]),
            None => Neighbors::empty(),
        }
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        match self.slot(v) {
            Some(i) => Neighbors::slice(&self.s.in_adj[i]),
            None => Neighbors::empty(),
        }
    }

    fn node_ids(&self) -> NodeIds<'_> {
        NodeIds::Slice(self.s.sorted_nodes.iter())
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        self.s.nodes.len()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }
}

/// Shared materialization: copy the subgraph induced by `sorted_nodes` (with
/// membership predicate `is_member`) of `base` into a fresh graph.
fn materialize(
    base: &Graph,
    sorted_nodes: &[NodeId],
    is_member: impl Fn(NodeId) -> bool,
) -> (Graph, Vec<NodeId>) {
    let mut remap: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    remap.reserve(sorted_nodes.len());
    for (i, &v) in sorted_nodes.iter().enumerate() {
        remap.insert(v, NodeId::new(i));
    }
    let mut b = crate::builder::GraphBuilder::with_capacity(sorted_nodes.len(), 0);
    for &v in sorted_nodes {
        b.add_node(base.node_label_str(v));
    }
    for &v in sorted_nodes {
        let nv = remap[&v];
        for &w in base.out(v) {
            if is_member(w) {
                b.add_edge(nv, remap[&w]);
            }
        }
    }
    (b.build(), sorted_nodes.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn path5() -> Graph {
        graph_from_edges(
            &["A", "B", "C", "D", "E"],
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
        )
    }

    #[test]
    fn induced_subgraph_keeps_inner_edges_only() {
        let g = path5();
        let s = InducedSubgraph::new(&g, [NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 1); // only 1 -> 2
        assert!(s.has_edge(NodeId(1), NodeId(2)));
        assert!(!s.has_edge(NodeId(2), NodeId(3)));
        assert!(!s.contains(NodeId(3)));
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = path5();
        let s = InducedSubgraph::new(&g, [NodeId(0), NodeId(0), NodeId(1)]);
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.num_edges(), 1);
    }

    #[test]
    fn induced_neighbors_filtered() {
        let g = graph_from_edges(&["A", "B", "C"], &[(0, 1), (0, 2)]);
        let s = InducedSubgraph::new(&g, [NodeId(0), NodeId(2)]);
        let outs: Vec<_> = s.out_neighbors(NodeId(0)).collect();
        assert_eq!(outs, vec![NodeId(2)]);
        let ins: Vec<_> = s.in_neighbors(NodeId(2)).collect();
        assert_eq!(ins, vec![NodeId(0)]);
    }

    #[test]
    fn dynamic_subgraph_grows_induced() {
        let g = path5();
        let mut d = DynamicSubgraph::new(&g);
        assert_eq!(d.add_node(NodeId(1)), 1); // node only
        assert_eq!(d.add_node(NodeId(2)), 2); // node + edge 1->2
        assert_eq!(d.add_node(NodeId(2)), 0); // duplicate
        assert_eq!(d.num_nodes(), 2);
        assert_eq!(d.num_edges(), 1);
        assert_eq!(d.size(), 3);
        let outs: Vec<_> = d.out_neighbors(NodeId(1)).collect();
        assert_eq!(outs, vec![NodeId(2)]);
        let ins: Vec<_> = d.in_neighbors(NodeId(2)).collect();
        assert_eq!(ins, vec![NodeId(1)]);
    }

    #[test]
    fn dynamic_subgraph_matches_induced_semantics() {
        // Whatever order nodes are added, the edge set must equal the
        // induced edge set.
        let g = graph_from_edges(
            &["A", "B", "C", "D"],
            &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 1), (0, 3)],
        );
        let picks = [NodeId(3), NodeId(0), NodeId(1)];
        let mut d = DynamicSubgraph::new(&g);
        for &v in &picks {
            d.add_node(v);
        }
        let ind = InducedSubgraph::new(&g, picks);
        assert_eq!(d.num_edges(), ind.num_edges());
        for &u in &picks {
            let mut a: Vec<_> = d.out_neighbors(u).collect();
            let mut b: Vec<_> = ind.out_neighbors(u).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "out lists differ at {u:?}");
            let mut a: Vec<_> = d.in_neighbors(u).collect();
            let mut b: Vec<_> = ind.in_neighbors(u).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "in lists differ at {u:?}");
        }
    }

    #[test]
    fn dynamic_subgraph_self_loop_counted_once() {
        let g = graph_from_edges(&["A"], &[(0, 0)]);
        let mut d = DynamicSubgraph::new(&g);
        let added = d.add_node(NodeId(0));
        assert_eq!(added, 2); // node + self loop
        assert_eq!(d.num_edges(), 1);
        let outs: Vec<_> = d.out_neighbors(NodeId(0)).collect();
        assert_eq!(outs, vec![NodeId(0)]);
        let ins: Vec<_> = d.in_neighbors(NodeId(0)).collect();
        assert_eq!(ins, vec![NodeId(0)]);
    }

    #[test]
    fn try_add_node_rejects_over_budget_without_mutation() {
        let g = graph_from_edges(
            &["A", "B", "C", "D"],
            &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 1), (0, 3)],
        );
        let mut d = DynamicSubgraph::new(&g);
        assert_eq!(d.try_add_node(NodeId(0), 1), Some(1));
        assert_eq!(d.try_add_node(NodeId(1), 10), Some(3)); // node + 0->1, 1->0
                                                            // Node 3 would cost 1 + edges 2->? none yet.. 3 edges: 3->1, 0->3.
        assert_eq!(d.try_add_node(NodeId(3), 2), None);
        // The rejection must leave the subgraph byte-identical.
        assert_eq!(d.num_nodes(), 2);
        assert_eq!(d.num_edges(), 2);
        assert!(!d.contains(NodeId(3)));
        let outs: Vec<_> = d.out_neighbors(NodeId(0)).collect();
        assert_eq!(outs, vec![NodeId(1)]);
        let ins: Vec<_> = d.in_neighbors(NodeId(1)).collect();
        assert_eq!(ins, vec![NodeId(0)]);
        // With enough budget the same node is admitted with the same units.
        assert_eq!(d.try_add_node(NodeId(3), 3), Some(3));
        assert_eq!(d.num_edges(), 4);
    }

    #[test]
    fn try_add_node_rollback_with_self_loop() {
        let g = graph_from_edges(&["A", "B"], &[(0, 0), (0, 1), (1, 0)]);
        let mut d = DynamicSubgraph::new(&g);
        assert_eq!(d.add_node(NodeId(1)), 1);
        // Node 0 costs 1 (node) + 1 (self loop) + 2 (0<->1) = 4.
        assert_eq!(d.try_add_node(NodeId(0), 3), None);
        assert_eq!(d.num_nodes(), 1);
        assert_eq!(d.num_edges(), 0);
        assert!(d.in_neighbors(NodeId(1)).next().is_none());
        assert!(d.out_neighbors(NodeId(1)).next().is_none());
        assert_eq!(d.try_add_node(NodeId(0), 4), Some(4));
        assert_eq!(d.num_edges(), 3);
    }

    #[test]
    fn scratch_reuse_is_clean_across_subgraphs() {
        let g = graph_from_edges(
            &["A", "B", "C", "D"],
            &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)],
        );
        let mut scratch = SubgraphScratch::new();
        for round in 0..300u32 {
            // Alternate member sets so stale state would be caught.
            let picks: &[NodeId] = if round % 2 == 0 {
                &[NodeId(0), NodeId(1), NodeId(3)]
            } else {
                &[NodeId(2), NodeId(1)]
            };
            let mut d = scratch.begin(&g);
            for &v in picks {
                d.add_node(v);
            }
            let ind = InducedSubgraph::new(&g, picks.iter().copied());
            assert_eq!(d.num_nodes(), ind.num_nodes(), "round {round}");
            assert_eq!(d.num_edges(), ind.num_edges(), "round {round}");
            let got: Vec<NodeId> = d.node_ids().collect();
            assert_eq!(got, ind.members(), "round {round}");
            for v in g.nodes() {
                assert_eq!(d.contains(v), ind.contains(v), "round {round} {v:?}");
            }
            scratch = d.into_scratch();
        }
    }

    #[test]
    fn node_ids_are_sorted_regardless_of_insertion_order() {
        let g = path5();
        let mut d = DynamicSubgraph::new(&g);
        for v in [4u32, 0, 2, 3, 1] {
            d.add_node(NodeId(v));
        }
        let ids: Vec<NodeId> = d.node_ids().collect();
        assert_eq!(ids, (0..5).map(NodeId).collect::<Vec<_>>());
        // members() stays in insertion order.
        assert_eq!(d.members()[0], NodeId(4));
    }

    #[test]
    fn materialize_roundtrip() {
        let g = path5();
        let s = InducedSubgraph::new(&g, [NodeId(2), NodeId(3), NodeId(4)]);
        let (m, back) = s.materialize();
        assert_eq!(m.node_count(), 3);
        assert_eq!(m.edge_count(), 2);
        assert_eq!(back, vec![NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(m.node_label_str(NodeId(0)), "C");
        assert!(m.edge(NodeId(0), NodeId(1)));
        assert!(m.edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn dynamic_materialize_matches() {
        let g = path5();
        let mut d = DynamicSubgraph::new(&g);
        d.add_node(NodeId(4));
        d.add_node(NodeId(3));
        let (m, back) = d.materialize();
        assert_eq!(m.node_count(), 2);
        assert_eq!(m.edge_count(), 1);
        assert_eq!(back, vec![NodeId(3), NodeId(4)]);
        assert!(m.edge(NodeId(0), NodeId(1)));
    }
}
