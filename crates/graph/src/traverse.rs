//! Graph traversals with visit accounting.
//!
//! Resource-bounded algorithms are judged by *how much data they visit*
//! (§3: at most `α·c·|G|`), so every traversal here reports the number of
//! nodes and edges it touched via [`VisitStats`].

use crate::graph::Graph;
use crate::types::{Direction, NodeId};
use rustc_hash::FxHashSet;
use std::collections::VecDeque;

/// Accounting for how much of the graph a procedure touched.
///
/// "Visiting" a node means dequeuing/expanding it; "visiting" an edge means
/// scanning one adjacency entry. `total()` is comparable against the paper's
/// `α·c·|G|` budget, since `|G| = |V| + |E|`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VisitStats {
    /// Nodes expanded.
    pub nodes: usize,
    /// Adjacency entries scanned.
    pub edges: usize,
}

impl VisitStats {
    /// Total data units visited (`nodes + edges`).
    pub fn total(&self) -> usize {
        self.nodes + self.edges
    }

    /// Merge two accounts.
    pub fn add(&mut self, other: VisitStats) {
        self.nodes += other.nodes;
        self.edges += other.edges;
    }
}

/// Breadth-first traversal from `start` following `dir` edges.
///
/// Returns all reached nodes (including `start`) and visit accounting.
pub fn bfs(g: &Graph, start: NodeId, dir: Direction) -> (Vec<NodeId>, VisitStats) {
    bfs_multi(g, std::iter::once(start), dir)
}

/// BFS from multiple sources.
pub fn bfs_multi(
    g: &Graph,
    starts: impl IntoIterator<Item = NodeId>,
    dir: Direction,
) -> (Vec<NodeId>, VisitStats) {
    let mut seen = FxHashSet::default();
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    let mut stats = VisitStats::default();
    for s in starts {
        if seen.insert(s) {
            order.push(s);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        stats.nodes += 1;
        for &w in g.adj(v, dir) {
            stats.edges += 1;
            if seen.insert(w) {
                order.push(w);
                queue.push_back(w);
            }
        }
    }
    (order, stats)
}

/// BFS limited to `max_hops` following `dir` edges; returns `(node, depth)`
/// pairs in visit order.
pub fn bfs_bounded(
    g: &Graph,
    start: NodeId,
    dir: Direction,
    max_hops: usize,
) -> (Vec<(NodeId, usize)>, VisitStats) {
    let mut seen = FxHashSet::default();
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    let mut stats = VisitStats::default();
    seen.insert(start);
    order.push((start, 0));
    queue.push_back((start, 0usize));
    while let Some((v, d)) = queue.pop_front() {
        stats.nodes += 1;
        if d == max_hops {
            continue;
        }
        for &w in g.adj(v, dir) {
            stats.edges += 1;
            if seen.insert(w) {
                order.push((w, d + 1));
                queue.push_back((w, d + 1));
            }
        }
    }
    (order, stats)
}

/// Does `s` reach `t` (directed)? Plain forward BFS — the paper's `BFS`
/// baseline for reachability queries (§6 Exp-2).
pub fn reaches(g: &Graph, s: NodeId, t: NodeId) -> (bool, VisitStats) {
    let mut stats = VisitStats::default();
    if s == t {
        return (true, stats);
    }
    let mut seen = FxHashSet::default();
    let mut queue = VecDeque::new();
    seen.insert(s);
    queue.push_back(s);
    while let Some(v) = queue.pop_front() {
        stats.nodes += 1;
        for &w in g.out(v) {
            stats.edges += 1;
            if w == t {
                return (true, stats);
            }
            if seen.insert(w) {
                queue.push_back(w);
            }
        }
    }
    (false, stats)
}

/// Does `s` reach `t`, by bidirectional BFS (alternating frontier expansion
/// from `s` forwards and `t` backwards)? Often far fewer visits than
/// [`reaches`]; used as an optimized baseline.
pub fn reaches_bidirectional(g: &Graph, s: NodeId, t: NodeId) -> (bool, VisitStats) {
    let mut stats = VisitStats::default();
    if s == t {
        return (true, stats);
    }
    let mut fwd_seen = FxHashSet::default();
    let mut bwd_seen = FxHashSet::default();
    let mut fwd_frontier = vec![s];
    let mut bwd_frontier = vec![t];
    fwd_seen.insert(s);
    bwd_seen.insert(t);

    while !fwd_frontier.is_empty() && !bwd_frontier.is_empty() {
        // Expand the smaller frontier.
        let forward = fwd_frontier.len() <= bwd_frontier.len();
        let (frontier, seen, other_seen, dir) = if forward {
            (&mut fwd_frontier, &mut fwd_seen, &bwd_seen, Direction::Out)
        } else {
            (&mut bwd_frontier, &mut bwd_seen, &fwd_seen, Direction::In)
        };
        let mut next = Vec::new();
        for &v in frontier.iter() {
            stats.nodes += 1;
            for &w in g.adj(v, dir) {
                stats.edges += 1;
                if other_seen.contains(&w) {
                    return (true, stats);
                }
                if seen.insert(w) {
                    next.push(w);
                }
            }
        }
        *frontier = next;
    }
    (false, stats)
}

/// Depth-first post-order of the whole graph following out-edges.
///
/// Iterative (explicit stack) so million-node graphs don't overflow the call
/// stack. Roots are taken in ascending node-id order.
pub fn dfs_postorder(g: &Graph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Stack entries: (node, next child index to explore).
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for root in g.nodes() {
        if visited[root.index()] {
            continue;
        }
        visited[root.index()] = true;
        stack.push((root, 0));
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let adj = g.out(v);
            if *i < adj.len() {
                let w = adj[*i];
                *i += 1;
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    stack.push((w, 0));
                }
            } else {
                post.push(v);
                stack.pop();
            }
        }
    }
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn chain() -> Graph {
        graph_from_edges(&["A"; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bfs_forward_reaches_downstream() {
        let g = chain();
        let (order, stats) = bfs(&g, NodeId(1), Direction::Out);
        assert_eq!(order, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(stats.nodes, 4);
        assert_eq!(stats.edges, 3);
    }

    #[test]
    fn bfs_backward_reaches_upstream() {
        let g = chain();
        let (order, _) = bfs(&g, NodeId(2), Direction::In);
        assert_eq!(order, vec![NodeId(2), NodeId(1), NodeId(0)]);
    }

    #[test]
    fn bfs_bounded_respects_hops() {
        let g = chain();
        let (order, _) = bfs_bounded(&g, NodeId(0), Direction::Out, 2);
        let nodes: Vec<_> = order.iter().map(|&(v, _)| v).collect();
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(order[2].1, 2);
    }

    #[test]
    fn bfs_bounded_zero_hops_is_self() {
        let g = chain();
        let (order, _) = bfs_bounded(&g, NodeId(3), Direction::Out, 0);
        assert_eq!(order, vec![(NodeId(3), 0)]);
    }

    #[test]
    fn bfs_multi_merges_sources() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (2, 3)]);
        let (order, _) = bfs_multi(&g, [NodeId(0), NodeId(2)], Direction::Out);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn reaches_positive_and_negative() {
        let g = chain();
        assert!(reaches(&g, NodeId(0), NodeId(4)).0);
        assert!(!reaches(&g, NodeId(4), NodeId(0)).0);
        assert!(reaches(&g, NodeId(2), NodeId(2)).0);
    }

    #[test]
    fn reaches_counts_visits() {
        let g = chain();
        let (ok, stats) = reaches(&g, NodeId(0), NodeId(4));
        assert!(ok);
        assert!(stats.total() > 0);
        // Early exit: finding 4 requires scanning edge 3->4 but not expanding 4.
        assert!(stats.nodes <= 4);
    }

    #[test]
    fn bidirectional_agrees_with_bfs_on_cycle() {
        let g = graph_from_edges(&["A"; 6], &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)]);
        for s in 0..6u32 {
            for t in 0..6u32 {
                let plain = reaches(&g, NodeId(s), NodeId(t)).0;
                let bidi = reaches_bidirectional(&g, NodeId(s), NodeId(t)).0;
                assert_eq!(plain, bidi, "disagree on {s}->{t}");
            }
        }
    }

    #[test]
    fn bidirectional_visits_fewer_on_long_chain() {
        let n = 200u32;
        let labels = vec!["A"; n as usize];
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = graph_from_edges(&labels, &edges);
        let (_, plain) = reaches(&g, NodeId(0), NodeId(n - 1));
        let (ok, bidi) = reaches_bidirectional(&g, NodeId(0), NodeId(n - 1));
        assert!(ok);
        // On a chain both end up linear, but bidi must not be worse than ~2x.
        assert!(bidi.total() <= plain.total() * 2 + 4);
    }

    #[test]
    fn dfs_postorder_parents_after_children() {
        let g = chain();
        let post = dfs_postorder(&g);
        let pos = |v: u32| post.iter().position(|&x| x == NodeId(v)).unwrap();
        assert!(pos(4) < pos(3));
        assert!(pos(3) < pos(2));
        assert_eq!(post.len(), 5);
    }

    #[test]
    fn dfs_postorder_covers_disconnected() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (2, 3)]);
        let post = dfs_postorder(&g);
        assert_eq!(post.len(), 4);
    }

    #[test]
    fn visit_stats_add() {
        let mut a = VisitStats { nodes: 1, edges: 2 };
        a.add(VisitStats { nodes: 3, edges: 4 });
        assert_eq!(a, VisitStats { nodes: 4, edges: 6 });
        assert_eq!(a.total(), 10);
    }
}
