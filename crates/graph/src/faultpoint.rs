//! Deterministic fault injection for the chaos differential suite.
//!
//! Named fault points are compiled into the engine, router, and kernels as
//! calls to [`fire`] / [`fire_at`]. Without the `fault-injection` feature
//! these are inline no-ops and the whole module compiles to nothing. With
//! the feature, a seeded [`FaultPlan`] can be armed process-wide; when a
//! fired point matches an armed entry the plan's action happens:
//!
//! * [`FaultAction::Panic`] — a std panic (the engine's containment turns
//!   it into `Answer::Failed`);
//! * [`FaultAction::Delay`] — a bounded sleep (answers must be unchanged);
//! * [`FaultAction::Starve`] — unwinds with a
//!   [`crate::cancel::CancelPanic`], modeling deterministic budget/deadline
//!   starvation (the engine settles the query as `Answer::TimedOut`).
//!
//! Triggers are deterministic: [`fire_at`] matches an explicit index (e.g.
//! the query's batch position), and [`fire`] matches the *n*-th hit of the
//! point since arming (hit counters are process-global, so nth-hit plans
//! are deterministic only under single-threaded evaluation).
//!
//! Arming returns an RAII [`ArmedPlan`] guard that disarms on drop, so a
//! test that panics cannot leak its plan into the next test.

#[cfg(feature = "fault-injection")]
pub use imp::{arm, ArmedPlan, FaultAction, FaultPlan};

/// The declared registry of every fault-point name compiled into the
/// serving path. `rbq-lint`'s `faultpoint-registry` rule checks both
/// directions on every push: a [`fire`] / [`fire_at`] call whose name is
/// not listed here is a lint error, and so is a listed name that nothing
/// fires — so the registry can neither drift stale nor hide typos in the
/// stringly point names.
pub const REGISTRY: &[&str] = &[
    "ball.bfs",           // BallScratch BFS inner loop
    "dualsim.fixpoint",   // dual-simulation worklist fixpoint
    "reduction.pick",     // reduction Pick scoring loop
    "vf2.step",           // VF2 enumeration step
    "reach.parallel",     // parallel reach join
    "engine.run_one",     // per-query engine entry
    "router.shard",       // per-shard router worker
    "router.shard.retry", // cold-replica retry after a lost shard
    "wal.append",         // WAL record write, before bytes reach the file
    "wal.fsync",          // WAL durability barrier, before sync_data
    "snapshot.write",     // snapshot serialization entry
    "snapshot.load",      // snapshot deserialization entry
    "wal.replay",         // WAL replay, once per record walked
];

/// Fire the named fault point. No-op unless the `fault-injection` feature
/// is enabled and an armed plan matches this hit.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn fire(_point: &'static str) {}

/// Fire the named fault point with an explicit index (e.g. a query's batch
/// position). No-op unless the `fault-injection` feature is enabled and an
/// armed plan matches `(point, index)`.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn fire_at(_point: &'static str, _index: u64) {}

#[cfg(feature = "fault-injection")]
pub use imp::{fire, fire_at};

#[cfg(feature = "fault-injection")]
mod imp {
    use crate::cancel::CancelPanic;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    /// What happens when an armed fault entry triggers.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultAction {
        /// A std panic with a string payload — models a kernel bug; the
        /// engine's containment settles the query as `Failed`.
        Panic,
        /// Sleep for the given duration — models a slow shard or page-in;
        /// answers must be byte-identical to a fault-free run.
        Delay(Duration),
        /// Unwind with a [`CancelPanic`] — models deterministic resource
        /// starvation; the engine settles the query as `TimedOut`.
        Starve,
    }

    /// How an entry decides whether a given hit triggers it.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Trigger {
        /// The n-th [`fire`] hit of the point since arming (0-based).
        Nth(u64),
        /// A [`fire_at`] hit with exactly this index.
        At(u64),
    }

    #[derive(Debug, Clone)]
    struct Entry {
        point: &'static str,
        trigger: Trigger,
        action: FaultAction,
        fired: bool,
    }

    /// A deterministic set of faults to inject, built by a seeded test and
    /// armed process-wide via [`arm`]. Each entry fires at most once.
    #[derive(Debug, Clone, Default)]
    pub struct FaultPlan {
        entries: Vec<Entry>,
    }

    impl FaultPlan {
        /// An empty plan (injects nothing).
        pub fn new() -> Self {
            Self::default()
        }

        /// Whether the plan has no entries.
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        /// Trigger `action` on the `nth` [`fire`] hit of `point` (0-based).
        pub fn on_nth(mut self, point: &'static str, nth: u64, action: FaultAction) -> Self {
            self.entries.push(Entry {
                point,
                trigger: Trigger::Nth(nth),
                action,
                fired: false,
            });
            self
        }

        /// Trigger `action` on a [`fire_at`] hit of `point` with `index`.
        pub fn on_index(mut self, point: &'static str, index: u64, action: FaultAction) -> Self {
            self.entries.push(Entry {
                point,
                trigger: Trigger::At(index),
                action,
                fired: false,
            });
            self
        }
    }

    struct PlanState {
        entries: Vec<Entry>,
        /// (point, hits-so-far) counters for nth-hit triggers.
        hits: Vec<(&'static str, u64)>,
    }

    static ARMED: AtomicBool = AtomicBool::new(false);
    static PLAN: Mutex<Option<PlanState>> = Mutex::new(None);

    fn plan_lock() -> std::sync::MutexGuard<'static, Option<PlanState>> {
        // A panic raised by a triggered action never happens while this
        // lock is held (actions run after release), but recover anyway.
        PLAN.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arm `plan` process-wide, returning a guard that disarms on drop.
    /// Arming replaces any previously armed plan.
    pub fn arm(plan: FaultPlan) -> ArmedPlan {
        let mut g = plan_lock();
        *g = Some(PlanState {
            entries: plan.entries,
            hits: Vec::new(),
        });
        ARMED.store(true, Ordering::SeqCst);
        ArmedPlan(())
    }

    /// RAII guard for an armed [`FaultPlan`]; dropping it disarms the plan
    /// even if the owning test unwinds.
    #[must_use = "dropping the guard disarms the plan"]
    pub struct ArmedPlan(());

    impl Drop for ArmedPlan {
        fn drop(&mut self) {
            ARMED.store(false, Ordering::SeqCst);
            *plan_lock() = None;
        }
    }

    /// Point used as the [`CancelPanic`] tag for injected starvation.
    const STARVE_POINT: &str = "faultpoint.starve";

    fn perform(action: FaultAction, point: &'static str) {
        match action {
            // invariant: the injected panic *is* this action's contract —
            // callers opt in via `FaultPlan` and the serving loop contains
            // it with per-query `catch_unwind`.
            FaultAction::Panic => panic!("injected fault at {point}"),
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Starve => std::panic::panic_any(CancelPanic {
                point: STARVE_POINT,
            }),
        }
    }

    /// Fire the named fault point (nth-hit triggers).
    pub fn fire(point: &'static str) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let action = {
            let mut g = plan_lock();
            let Some(state) = g.as_mut() else { return };
            let hit = match state.hits.iter_mut().find(|(p, _)| *p == point) {
                Some((_, n)) => {
                    let h = *n;
                    *n += 1;
                    h
                }
                None => {
                    state.hits.push((point, 1));
                    0
                }
            };
            state
                .entries
                .iter_mut()
                .find(|e| !e.fired && e.point == point && e.trigger == Trigger::Nth(hit))
                .map(|e| {
                    e.fired = true;
                    e.action
                })
        };
        if let Some(a) = action {
            perform(a, point);
        }
    }

    /// Fire the named fault point with an explicit index.
    pub fn fire_at(point: &'static str, index: u64) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let action = {
            let mut g = plan_lock();
            let Some(state) = g.as_mut() else { return };
            state
                .entries
                .iter_mut()
                .find(|e| !e.fired && e.point == point && e.trigger == Trigger::At(index))
                .map(|e| {
                    e.fired = true;
                    e.action
                })
        };
        if let Some(a) = action {
            perform(a, point);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Mutex as TestMutex;

        /// Plans are process-global; serialize the tests that arm them.
        static SERIAL: TestMutex<()> = TestMutex::new(());

        #[test]
        fn unarmed_fire_is_noop() {
            let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
            fire("x");
            fire_at("x", 3);
        }

        #[test]
        fn nth_hit_triggers_once() {
            let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
            let _g = arm(FaultPlan::new().on_nth("p", 2, FaultAction::Panic));
            fire("p");
            fire("p");
            let err = std::panic::catch_unwind(|| fire("p"));
            assert!(err.is_err(), "third hit must panic");
            fire("p"); // entry spent: no further panic
        }

        #[test]
        fn index_trigger_matches_exactly() {
            let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
            let _g = arm(FaultPlan::new().on_index("q", 5, FaultAction::Starve));
            fire_at("q", 4);
            let err = std::panic::catch_unwind(|| fire_at("q", 5)).expect_err("must unwind");
            let cp = err
                .downcast_ref::<CancelPanic>()
                .expect("starve unwinds with CancelPanic");
            assert_eq!(cp.point, STARVE_POINT);
        }

        #[test]
        fn guard_disarms_on_drop() {
            let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
            {
                let _g = arm(FaultPlan::new().on_nth("r", 0, FaultAction::Panic));
            }
            fire("r"); // disarmed: no panic
        }
    }
}
