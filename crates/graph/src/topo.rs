//! Topological orderings and ranks on DAGs.
//!
//! The hierarchical landmark index (§5.1) relies on the *topological rank*
//! `v.r` of every DAG node: `v.r = 0` if `v` has no child, else
//! `v.r = max(child ranks) + 1`. Ranks give the pruning guard of Lemma 5(2):
//! a landmark subtree whose rank range cannot straddle the query endpoints'
//! ranks can be skipped entirely.

use crate::graph::Graph;
use crate::types::NodeId;
use std::collections::VecDeque;

/// Kahn topological order (sources first). Returns `None` if `g` has a cycle.
pub fn topological_order(g: &Graph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|i| g.deg_in(NodeId::new(i))).collect();
    let mut queue: VecDeque<NodeId> = g.nodes().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.out(v) {
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                queue.push_back(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Whether `g` is acyclic.
pub fn is_acyclic(g: &Graph) -> bool {
    topological_order(g).is_some()
}

/// Topological ranks `v.r` as defined in §5.1: sinks have rank 0; otherwise
/// `v.r = 1 + max(rank of children)`.
///
/// # Panics
/// Panics if `g` is cyclic (call on the condensation of a cyclic graph).
pub fn topological_ranks(g: &Graph) -> Vec<u32> {
    // invariant: documented `# Panics` contract — callers pass the (acyclic)
    // condensation, never a raw possibly-cyclic graph.
    let order = topological_order(g).expect("topological_ranks requires a DAG");
    let mut rank = vec![0u32; g.node_count()];
    // Process in reverse topological order so children are ranked first.
    for &v in order.iter().rev() {
        let r = g
            .out(v)
            .iter()
            .map(|&w| rank[w.index()] + 1)
            .max()
            .unwrap_or(0);
        rank[v.index()] = r;
    }
    rank
}

/// Longest path length in the DAG (= max rank).
pub fn longest_path(g: &Graph) -> u32 {
    topological_ranks(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn order_of_chain() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 2), (2, 3)]);
        let order = topological_order(&g).unwrap();
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn cycle_detected() {
        let g = graph_from_edges(&["A"; 3], &[(0, 1), (1, 2), (2, 0)]);
        assert!(topological_order(&g).is_none());
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn self_loop_is_cycle() {
        let g = graph_from_edges(&["A"; 2], &[(0, 0), (0, 1)]);
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn ranks_of_chain() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(topological_ranks(&g), vec![3, 2, 1, 0]);
        assert_eq!(longest_path(&g), 3);
    }

    #[test]
    fn ranks_of_diamond() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3: rank(0)=2 via either branch.
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let r = topological_ranks(&g);
        assert_eq!(r[3], 0);
        assert_eq!(r[1], 1);
        assert_eq!(r[2], 1);
        assert_eq!(r[0], 2);
    }

    #[test]
    fn ranks_respect_max_not_min() {
        // 0 -> 3 directly, and 0 -> 1 -> 2 -> 3: rank(0) must be 3, not 1.
        let g = graph_from_edges(&["A"; 4], &[(0, 3), (0, 1), (1, 2), (2, 3)]);
        let r = topological_ranks(&g);
        assert_eq!(r[0], 3);
    }

    #[test]
    fn isolated_nodes_rank_zero() {
        let g = graph_from_edges(&["A"; 3], &[]);
        assert_eq!(topological_ranks(&g), vec![0, 0, 0]);
        assert_eq!(longest_path(&g), 0);
    }

    #[test]
    fn rank_strictly_greater_than_children() {
        let g = graph_from_edges(&["A"; 6], &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)]);
        let r = topological_ranks(&g);
        for (u, v) in g.edges() {
            assert!(r[u.index()] > r[v.index()], "rank({u:?}) !> rank({v:?})");
        }
    }
}
