//! Live updates: delta batches over the CSR overlay.
//!
//! Production graphs churn; the ROADMAP's serving goal therefore needs a
//! mutation path that does not rebuild the world per update. A
//! [`DeltaBatch`] records edge insertions/removals and node additions; and
//! [`Graph::apply_delta`] folds it into a *new* [`Graph`] value that shares
//! the untouched base CSR with its parent (cheap `Arc` clone) and carries
//! the changed adjacency rows in an overlay:
//!
//! * The batch's per-node add/remove side-lists are merged against the
//!   base rows once at apply time, so every read — [`Graph::out`],
//!   [`Graph::inn`], `Neighbors`, degree and edge tests — keeps returning
//!   plain sorted slices with no per-probe merging or allocation.
//! * The label partition is rebuilt over all nodes (`O(|V|)`), keeping
//!   label-based candidate seeding `O(1)` + output.
//! * Once cumulative churn passes [`COMPACTION_THRESHOLD`] (a fraction of
//!   the base edge count), the apply compacts: a fresh overlay-free CSR is
//!   rebuilt in `O(|V| + |E|)` and the overlay is dropped.
//!
//! Batch semantics are last-op-wins per edge: an add followed by a remove
//! of the same edge in one batch removes it, and vice versa. Adding an
//! edge that already exists (or removing one that does not) is a no-op, so
//! re-applying a delta is idempotent and parallel edges can never
//! double-count — the applied graph always answers exactly like a fresh
//! [`crate::GraphBuilder`] rebuild from the effective edge set.

use crate::graph::{label_partition, Graph, Overlay, SideTable};
use crate::types::{Label, NodeId};
use rustc_hash::FxHashMap;
use std::fmt;

/// Effective churn (adds + removes since the last compaction) at which
/// [`Graph::apply_delta`] compacts, as a fraction of the base edge count:
/// `churn >= max(64, |E_base| / 4)`.
pub const COMPACTION_THRESHOLD_DENOM: usize = 4;

/// Churn floor below which small graphs never auto-compact mid-batch
/// (compaction would cost more than it saves).
pub const COMPACTION_THRESHOLD_MIN: usize = 64;

/// One recorded update operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Add a node with the given label string. The node receives the next
    /// free id (`|V|` plus its rank among the batch's added nodes).
    AddNode(String),
    /// Add the directed edge `u -> v`. May reference nodes added by this
    /// batch. Adding a present edge is a no-op.
    AddEdge(NodeId, NodeId),
    /// Remove the directed edge `u -> v`. Removing an absent edge is a
    /// no-op.
    RemoveEdge(NodeId, NodeId),
}

/// A recorded batch of updates, applied atomically by
/// [`Graph::apply_delta`]. Operation order matters only per edge (last op
/// wins); node additions are independent of edge order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    ops: Vec<DeltaOp>,
    added_nodes: usize,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a node addition; returns the rank of the new node among this
    /// batch's additions (its final id is `|V| + rank` at apply time).
    pub fn add_node(&mut self, label: &str) -> usize {
        self.ops.push(DeltaOp::AddNode(label.to_owned()));
        self.added_nodes += 1;
        self.added_nodes - 1
    }

    /// Record an edge insertion `u -> v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.ops.push(DeltaOp::AddEdge(u, v));
    }

    /// Record an edge removal `u -> v`.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        self.ops.push(DeltaOp::RemoveEdge(u, v));
    }

    /// The recorded operations, in order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch records nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of node additions recorded.
    pub fn added_nodes(&self) -> usize {
        self.added_nodes
    }
}

/// Typed rejection of a malformed delta batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge op references a node id beyond `|V|` plus this batch's
    /// added nodes.
    EdgeOutOfRange {
        /// Source node of the offending edge.
        u: NodeId,
        /// Target node of the offending edge.
        v: NodeId,
        /// Node count after this batch's additions.
        nodes: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::EdgeOutOfRange { u, v, nodes } => write!(
                f,
                "delta edge {u} -> {v} references a node id out of range (|V| after adds = {nodes})"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// What one [`Graph::apply_delta`] actually changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Nodes added.
    pub nodes_added: usize,
    /// Edges effectively inserted (absent before, present after).
    pub edges_added: usize,
    /// Edges effectively removed (present before, absent after).
    pub edges_removed: usize,
    /// Labels of every endpoint of an effective edge change plus every
    /// added node — sorted, deduplicated. The cache-invalidation signal:
    /// a cached answer whose pattern mentions none of these labels is
    /// unaffected by the batch.
    pub touched_labels: Vec<String>,
    /// Whether this apply triggered a compaction.
    pub compacted: bool,
    /// Overlay churn after this apply (0 when compacted).
    pub overlay_churn: usize,
}

impl Graph {
    /// Apply `batch`, returning the updated graph and a [`DeltaReport`].
    ///
    /// The receiver is untouched (it keeps answering on the old state —
    /// the epoch-swap contract upstream layers rely on); the returned
    /// graph shares the base CSR and differs only in the overlay. Cost is
    /// `O(|V| + |batch| log |batch| + Σ degree(touched))`, plus an
    /// `O(|V| + |E|)` compaction when cumulative churn passes the
    /// threshold.
    pub fn apply_delta(&self, batch: &DeltaBatch) -> Result<(Graph, DeltaReport), DeltaError> {
        let n0 = self.node_count();
        let n1 = n0 + batch.added_nodes();

        // Extend the interner and node labels with this batch's nodes.
        // Interners are append-only, so every pre-existing label id keeps
        // its meaning across generations.
        let mut labels = self.labels().clone();
        let mut node_labels = self.node_labels().to_vec();
        node_labels.reserve(batch.added_nodes());
        let mut new_node_labels: Vec<Label> = Vec::with_capacity(batch.added_nodes());
        for op in batch.ops() {
            if let DeltaOp::AddNode(name) = op {
                let l = labels.intern(name);
                node_labels.push(l);
                new_node_labels.push(l);
            }
        }

        // Fold edge ops, last-op-wins per edge.
        let mut edge_state: FxHashMap<(NodeId, NodeId), bool> = FxHashMap::default();
        for op in batch.ops() {
            match *op {
                DeltaOp::AddNode(_) => {}
                DeltaOp::AddEdge(u, v) => {
                    if u.index() >= n1 || v.index() >= n1 {
                        return Err(DeltaError::EdgeOutOfRange { u, v, nodes: n1 });
                    }
                    edge_state.insert((u, v), true);
                }
                DeltaOp::RemoveEdge(u, v) => {
                    if u.index() >= n1 || v.index() >= n1 {
                        return Err(DeltaError::EdgeOutOfRange { u, v, nodes: n1 });
                    }
                    edge_state.insert((u, v), false);
                }
            }
        }

        // Keep only effective changes: an add of an absent edge, a remove
        // of a present one. `self.edge` consults any existing overlay, so
        // stacked deltas compose.
        let mut adds: Vec<(NodeId, NodeId)> = Vec::new();
        let mut removes: Vec<(NodeId, NodeId)> = Vec::new();
        for (&(u, v), &insert) in &edge_state {
            let present = u.index() < n0 && self.edge(u, v);
            if insert && !present {
                adds.push((u, v));
            } else if !insert && present {
                removes.push((u, v));
            }
        }
        adds.sort_unstable();
        removes.sort_unstable();

        // Touched-label signal for downstream cache invalidation.
        let mut touched_labels: Vec<String> = adds
            .iter()
            .chain(removes.iter())
            .flat_map(|&(u, v)| [u, v])
            .map(|w| labels.name(node_labels[w.index()]).to_owned())
            .chain(new_node_labels.iter().map(|&l| labels.name(l).to_owned()))
            .collect();
        touched_labels.sort_unstable();
        touched_labels.dedup();

        let report_base = DeltaReport {
            nodes_added: batch.added_nodes(),
            edges_added: adds.len(),
            edges_removed: removes.len(),
            touched_labels,
            compacted: false,
            overlay_churn: 0,
        };

        if batch.added_nodes() == 0 && adds.is_empty() && removes.is_empty() {
            // Nothing effective: share everything, even the overlay.
            let mut g = self.clone();
            g.labels = labels;
            let report = DeltaReport {
                overlay_churn: g.overlay_churn(),
                ..report_base
            };
            return Ok((g, report));
        }

        let base_nodes = match &self.overlay {
            Some(ov) => ov.base_nodes,
            None => n0,
        };
        let prev_churn = self.overlay_churn();
        let churn = prev_churn + adds.len() + removes.len();
        let edge_count = self.edge_count() + adds.len() - removes.len();

        let out = merge_side(
            self,
            n1,
            Side::Out,
            &adds,
            &removes,
            self.overlay.as_ref().map(|ov| &ov.out),
        );
        let inn = merge_side(
            self,
            n1,
            Side::In,
            &adds,
            &removes,
            self.overlay.as_ref().map(|ov| &ov.inn),
        );
        let (label_offsets, label_nodes) = label_partition(&labels, &node_labels);

        let overlay = Overlay {
            base_nodes,
            churn,
            edge_count,
            out,
            inn,
            label_offsets,
            label_nodes,
        };
        let g = Graph::with_overlay(labels, node_labels, self.csr.clone(), overlay);

        let base_edges = g.csr.out_targets.len();
        let threshold = (base_edges / COMPACTION_THRESHOLD_DENOM).max(COMPACTION_THRESHOLD_MIN);
        if churn >= threshold {
            let report = DeltaReport {
                compacted: true,
                overlay_churn: 0,
                ..report_base
            };
            Ok((g.compact(), report))
        } else {
            let report = DeltaReport {
                overlay_churn: churn,
                ..report_base
            };
            Ok((g, report))
        }
    }
}

#[derive(Clone, Copy)]
enum Side {
    Out,
    In,
}

/// Build one direction's merged side table: for every touched node, merge
/// its current effective row (which may already come from a previous
/// overlay) with this batch's sorted add/remove side-lists.
fn merge_side(
    g: &Graph,
    n1: usize,
    side: Side,
    adds: &[(NodeId, NodeId)],
    removes: &[(NodeId, NodeId)],
    prev: Option<&SideTable>,
) -> SideTable {
    // Per-node side-lists, keyed by the row owner for this direction.
    let key = |&(u, v): &(NodeId, NodeId)| match side {
        Side::Out => (u, v),
        Side::In => (v, u),
    };
    let mut add_by: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    for e in adds {
        let (owner, other) = key(e);
        add_by.entry(owner).or_default().push(other);
    }
    let mut rem_by: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    for e in removes {
        let (owner, other) = key(e);
        rem_by.entry(owner).or_default().push(other);
    }

    // Touched set: rows changed by this batch, plus every row the previous
    // overlay carried (the new table replaces it wholesale), plus all
    // overlay-only nodes so their rows never fall through to the base CSR.
    let mut nodes: Vec<NodeId> = add_by.keys().chain(rem_by.keys()).copied().collect();
    if let Some(prev) = prev {
        nodes.extend_from_slice(&prev.nodes);
    }
    let base_nodes = g
        .overlay
        .as_ref()
        .map_or(g.node_count(), |ov| ov.base_nodes);
    nodes.extend((base_nodes..n1).map(NodeId::new));
    nodes.sort_unstable();
    nodes.dedup();

    let mut offsets = Vec::with_capacity(nodes.len() + 1);
    offsets.push(0usize);
    let mut targets: Vec<NodeId> = Vec::new();
    let mut scratch: Vec<NodeId> = Vec::new();
    for &v in &nodes {
        // Current effective row (empty for nodes this very batch adds).
        let base: &[NodeId] = if v.index() < g.node_count() {
            g.adj_for(side, v)
        } else {
            &[]
        };
        let mut add = add_by.remove(&v).unwrap_or_default();
        add.sort_unstable();
        add.dedup();
        let mut rem = rem_by.remove(&v).unwrap_or_default();
        rem.sort_unstable();
        rem.dedup();
        // (base ∖ rem) ∪ add — all three inputs sorted, adds disjoint from
        // base and removes ⊆ base by effectiveness filtering.
        scratch.clear();
        let mut ai = add.iter().peekable();
        let mut ri = rem.iter().peekable();
        for &w in base {
            while ai.peek().is_some_and(|&&a| a < w) {
                // invariant: `ai.peek()` returned `Some` in the loop guard,
                // so `next()` on the same iterator cannot return `None`.
                scratch.push(*ai.next().unwrap());
            }
            if ri.peek() == Some(&&w) {
                ri.next();
                continue;
            }
            scratch.push(w);
        }
        scratch.extend(ai.copied());
        targets.extend_from_slice(&scratch);
        offsets.push(targets.len());
    }
    SideTable {
        nodes,
        offsets,
        targets,
    }
}

impl Graph {
    #[inline]
    fn adj_for(&self, side: Side, v: NodeId) -> &[NodeId] {
        match side {
            Side::Out => self.out(v),
            Side::In => self.inn(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{graph_from_edges, GraphBuilder};
    use crate::view::GraphView;

    /// Oracle: rebuild from scratch with the effective node/edge sets and
    /// compare every observable surface.
    fn assert_matches_rebuild(g: &Graph, expect_labels: &[&str], expect_edges: &[(u32, u32)]) {
        let want = graph_from_edges(expect_labels, expect_edges);
        assert_eq!(g.node_count(), want.node_count(), "node count");
        assert_eq!(g.edge_count(), want.edge_count(), "edge count");
        for v in want.nodes() {
            assert_eq!(g.node_label_str(v), want.node_label_str(v), "label of {v}");
            assert_eq!(g.out(v), want.out(v), "out({v})");
            assert_eq!(g.inn(v), want.inn(v), "inn({v})");
            assert_eq!(g.deg_out(v), want.deg_out(v), "deg_out({v})");
            assert_eq!(g.deg_in(v), want.deg_in(v), "deg_in({v})");
        }
        for l in 0..want.labels().len() {
            let name = want.labels().name(Label::new(l));
            let got_l = g.labels().get(name).expect("label interned");
            let got: Vec<NodeId> = g.nodes_with_label(got_l).to_vec();
            let exp: Vec<NodeId> = want.nodes_with_label(Label::new(l)).to_vec();
            assert_eq!(got, exp, "label partition for {name}");
        }
    }

    fn abc() -> Graph {
        graph_from_edges(&["A", "B", "C"], &[(0, 1), (1, 2)])
    }

    #[test]
    fn add_and_remove_edges() {
        let g = abc();
        let mut d = DeltaBatch::new();
        d.add_edge(NodeId(0), NodeId(2));
        d.remove_edge(NodeId(1), NodeId(2));
        let (g2, r) = g.apply_delta(&d).unwrap();
        assert_eq!((r.edges_added, r.edges_removed, r.nodes_added), (1, 1, 0));
        assert!(g2.is_overlaid());
        assert_matches_rebuild(&g2, &["A", "B", "C"], &[(0, 1), (0, 2)]);
        // The receiver still answers on the old state.
        assert!(g.edge(NodeId(1), NodeId(2)));
        assert!(!g.edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn add_nodes_with_edges() {
        let g = abc();
        let mut d = DeltaBatch::new();
        assert_eq!(d.add_node("B"), 0); // becomes node 3
        assert_eq!(d.add_node("D"), 1); // becomes node 4, new label
        d.add_edge(NodeId(2), NodeId(3));
        d.add_edge(NodeId(3), NodeId(4));
        let (g2, r) = g.apply_delta(&d).unwrap();
        assert_eq!(r.nodes_added, 2);
        assert_eq!(r.edges_added, 2);
        assert_matches_rebuild(
            &g2,
            &["A", "B", "C", "B", "D"],
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
        );
        assert_eq!(
            r.touched_labels,
            vec!["B".to_string(), "C".to_string(), "D".to_string()]
        );
    }

    #[test]
    fn last_op_wins_and_noops_are_free() {
        let g = abc();
        let mut d = DeltaBatch::new();
        d.add_edge(NodeId(0), NodeId(2));
        d.remove_edge(NodeId(0), NodeId(2)); // net: nothing
        d.remove_edge(NodeId(0), NodeId(1));
        d.add_edge(NodeId(0), NodeId(1)); // net: nothing (already present)
        d.add_edge(NodeId(0), NodeId(1)); // duplicate add of present edge
        d.remove_edge(NodeId(2), NodeId(0)); // absent: no-op
        let (g2, r) = g.apply_delta(&d).unwrap();
        assert_eq!((r.edges_added, r.edges_removed), (0, 0));
        assert!(
            !g2.is_overlaid(),
            "no effective change keeps the overlay off"
        );
        assert_matches_rebuild(&g2, &["A", "B", "C"], &[(0, 1), (1, 2)]);
    }

    #[test]
    fn duplicate_adds_never_double_count() {
        // Regression guard for delta ingest over parallel edges: adding an
        // existing edge (or the same new edge thrice) leaves |E| exact.
        let g = abc();
        let mut d = DeltaBatch::new();
        d.add_edge(NodeId(2), NodeId(0));
        d.add_edge(NodeId(2), NodeId(0));
        d.add_edge(NodeId(2), NodeId(0));
        d.add_edge(NodeId(0), NodeId(1)); // already present
        let (g2, r) = g.apply_delta(&d).unwrap();
        assert_eq!(r.edges_added, 1);
        assert_eq!(g2.edge_count(), 3);
        assert_matches_rebuild(&g2, &["A", "B", "C"], &[(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn self_loops_round_trip() {
        let g = abc();
        let mut d = DeltaBatch::new();
        d.add_edge(NodeId(1), NodeId(1));
        let (g2, _) = g.apply_delta(&d).unwrap();
        assert_matches_rebuild(&g2, &["A", "B", "C"], &[(0, 1), (1, 1), (1, 2)]);
        let mut d2 = DeltaBatch::new();
        d2.remove_edge(NodeId(1), NodeId(1));
        let (g3, r) = g2.apply_delta(&d2).unwrap();
        assert_eq!(r.edges_removed, 1);
        assert_matches_rebuild(&g3, &["A", "B", "C"], &[(0, 1), (1, 2)]);
    }

    #[test]
    fn stacked_deltas_compose() {
        let mut g = abc();
        // 0->1, 1->2 ; apply three batches and track the expected edge set.
        let mut d1 = DeltaBatch::new();
        d1.add_edge(NodeId(2), NodeId(0));
        g = g.apply_delta(&d1).unwrap().0;
        let mut d2 = DeltaBatch::new();
        d2.remove_edge(NodeId(0), NodeId(1));
        d2.add_node("A"); // node 3
        d2.add_edge(NodeId(3), NodeId(0));
        g = g.apply_delta(&d2).unwrap().0;
        let mut d3 = DeltaBatch::new();
        d3.add_edge(NodeId(0), NodeId(1)); // re-add
        g = g.apply_delta(&d3).unwrap().0;
        assert_matches_rebuild(&g, &["A", "B", "C", "A"], &[(0, 1), (1, 2), (2, 0), (3, 0)]);
    }

    #[test]
    fn out_of_range_edge_is_typed_error() {
        let g = abc();
        let mut d = DeltaBatch::new();
        d.add_edge(NodeId(0), NodeId(9));
        let err = g.apply_delta(&d).unwrap_err();
        assert_eq!(
            err,
            DeltaError::EdgeOutOfRange {
                u: NodeId(0),
                v: NodeId(9),
                nodes: 3
            }
        );
        assert!(err.to_string().contains("out of range"));
        // Referencing a node this batch adds is fine.
        let mut d2 = DeltaBatch::new();
        d2.add_node("X");
        d2.add_edge(NodeId(0), NodeId(3));
        assert!(g.apply_delta(&d2).is_ok());
    }

    #[test]
    fn churn_triggers_compaction() {
        // A graph small enough that the floor (64) governs: pile up churn
        // until the apply reports a compaction and the overlay is gone.
        let n = 40u32;
        let labels: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "E" } else { "O" }).collect();
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let mut g = graph_from_edges(&labels, &edges);
        let mut compacted = false;
        let mut expect: Vec<(u32, u32)> = edges.clone();
        for round in 0..8u32 {
            let mut d = DeltaBatch::new();
            for i in 0..10u32 {
                let (u, v) = ((round * 10 + i) % n, (round * 7 + i * 3 + 2) % n);
                d.add_edge(NodeId(u), NodeId(v));
                if !expect.contains(&(u, v)) {
                    expect.push((u, v));
                }
            }
            let (g2, r) = g.apply_delta(&d).unwrap();
            if r.compacted {
                compacted = true;
                assert!(!g2.is_overlaid());
                assert_eq!(r.overlay_churn, 0);
            }
            g = g2;
        }
        assert!(compacted, "expected at least one auto-compaction");
        expect.sort_unstable();
        expect.dedup();
        let got: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        let mut want = expect.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn explicit_compact_preserves_everything() {
        let g = abc();
        let mut d = DeltaBatch::new();
        d.add_node("D");
        d.add_edge(NodeId(3), NodeId(0));
        d.remove_edge(NodeId(1), NodeId(2));
        let (g2, _) = g.apply_delta(&d).unwrap();
        assert!(g2.is_overlaid());
        let c = g2.compact();
        assert!(!c.is_overlaid());
        assert_matches_rebuild(&c, &["A", "B", "C", "D"], &[(0, 1), (3, 0)]);
    }

    #[test]
    fn graph_view_surface_reflects_overlay() {
        let g = abc();
        let mut d = DeltaBatch::new();
        d.add_node("C"); // node 3
        d.add_edge(NodeId(3), NodeId(1));
        d.remove_edge(NodeId(0), NodeId(1));
        let (g2, _) = g.apply_delta(&d).unwrap();
        assert_eq!(g2.num_nodes(), 4);
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.size(), 6);
        assert!(g2.contains(NodeId(3)));
        assert!(g2.has_edge(NodeId(3), NodeId(1)));
        assert!(!g2.has_edge(NodeId(0), NodeId(1)));
        let c = g2.labels().get("C").unwrap();
        assert_eq!(g2.count_nodes_with_label(c), 2);
        let mut seen = Vec::new();
        g2.for_each_node_with_label(c, &mut |v| seen.push(v));
        assert_eq!(seen, vec![NodeId(2), NodeId(3)]);
        let outs: Vec<NodeId> = g2.out_neighbors(NodeId(3)).collect();
        assert_eq!(outs, vec![NodeId(1)]);
        assert_eq!(g2.node_ids().count(), 4);
    }

    #[test]
    fn empty_batch_is_identity() {
        let g = abc();
        let (g2, r) = g.apply_delta(&DeltaBatch::new()).unwrap();
        assert_eq!(r, DeltaReport::default());
        assert_matches_rebuild(&g2, &["A", "B", "C"], &[(0, 1), (1, 2)]);
    }

    #[test]
    fn isolated_new_node_queries_empty() {
        let mut b = GraphBuilder::new();
        b.add_node("A");
        let g = b.build();
        let mut d = DeltaBatch::new();
        d.add_node("A");
        let (g2, _) = g.apply_delta(&d).unwrap();
        assert_eq!(g2.node_count(), 2);
        assert_eq!(g2.out(NodeId(1)), &[]);
        assert_eq!(g2.inn(NodeId(1)), &[]);
        assert_eq!(g2.deg(NodeId(1)), 0);
    }
}
