//! Reachability-preserving DAG condensation.
//!
//! Collapses each SCC of `G` into a single node, producing `G_DAG` such that
//! for all reachability queries `Q`, `Q(G) = Q(G_DAG)` after mapping
//! endpoints through the SCC partition. This is the first half of the
//! query-preserving compression the paper applies before building the
//! hierarchical landmark index (§5 "Preprocessing").

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::scc::{tarjan_scc, SccPartition};
use crate::types::NodeId;

/// A condensed graph together with the node mapping.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// The condensed DAG. Node `c` of `dag` represents SCC `c` of the
    /// original graph; its label is the label of the SCC's smallest member
    /// (labels are irrelevant for reachability).
    pub dag: Graph,
    /// Mapping `original node -> condensed node`.
    pub partition: SccPartition,
}

impl Condensation {
    /// The condensed node representing original node `v`.
    #[inline]
    pub fn map(&self, v: NodeId) -> NodeId {
        NodeId(self.partition.component_of(v))
    }
}

/// Condense `g` into its SCC DAG.
///
/// Runs in `O(|V| + |E|)`. The resulting graph is acyclic (asserted in debug
/// builds by a topological-sort check in tests).
pub fn condense(g: &Graph) -> Condensation {
    let partition = tarjan_scc(g);
    let k = partition.count;

    // Pick a representative label per component (smallest member id wins).
    let mut rep: Vec<Option<NodeId>> = vec![None; k];
    for v in g.nodes() {
        let c = partition.component_of(v) as usize;
        if rep[c].is_none() {
            rep[c] = Some(v);
        }
    }

    let mut b = GraphBuilder::with_capacity(k, g.edge_count().min(k * 4));
    for r in rep.iter().take(k) {
        // invariant: component ids come from `scc()` over the same graph,
        // so every id in `0..k` was assigned to at least one node above.
        let r = r.expect("every component has a member");
        b.add_node(g.node_label_str(r));
    }
    for (u, v) in g.edges() {
        let cu = partition.component_of(u);
        let cv = partition.component_of(v);
        if cu != cv {
            b.add_edge(NodeId(cu), NodeId(cv));
        }
    }
    // GraphBuilder dedups parallel edges between the same SCC pair.
    Condensation {
        dag: b.build(),
        partition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::topo::is_acyclic;
    use crate::traverse::reaches;

    #[test]
    fn dag_stays_identical_in_shape() {
        let g = graph_from_edges(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let c = condense(&g);
        assert_eq!(c.dag.node_count(), 3);
        assert_eq!(c.dag.edge_count(), 2);
        assert!(is_acyclic(&c.dag));
    }

    #[test]
    fn cycle_collapses_to_point() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = condense(&g);
        assert_eq!(c.dag.node_count(), 2);
        assert_eq!(c.dag.edge_count(), 1);
        assert!(is_acyclic(&c.dag));
    }

    #[test]
    fn condensation_preserves_reachability() {
        // Two cycles bridged, plus an isolated node.
        let g = graph_from_edges(
            &["A"; 7],
            &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (5, 0)],
        );
        let c = condense(&g);
        for s in 0..7u32 {
            for t in 0..7u32 {
                let orig = reaches(&g, NodeId(s), NodeId(t)).0;
                let cond = reaches(&c.dag, c.map(NodeId(s)), c.map(NodeId(t))).0;
                assert_eq!(orig, cond, "reachability differs for {s}->{t}");
            }
        }
    }

    #[test]
    fn parallel_scc_edges_deduplicated() {
        // Both 0->2 and 1->2 connect SCC {0,1} to SCC {2}.
        let g = graph_from_edges(&["A"; 3], &[(0, 1), (1, 0), (0, 2), (1, 2)]);
        let c = condense(&g);
        assert_eq!(c.dag.node_count(), 2);
        assert_eq!(c.dag.edge_count(), 1);
    }

    #[test]
    fn compression_ratio_on_cyclic_graph() {
        // A graph that is one big cycle compresses to a single node.
        let n = 100u32;
        let labels = vec!["A"; n as usize];
        let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.push((0, 50));
        let g = graph_from_edges(&labels, &edges);
        let c = condense(&g);
        assert_eq!(c.dag.node_count(), 1);
        assert_eq!(c.dag.edge_count(), 0);
    }
}
