//! Strongly connected components (Tarjan, iterative).
//!
//! SCC condensation is the first step of the query-preserving compression
//! used before reachability indexing (§5 "Preprocessing", citing Fan et al.
//! SIGMOD 2012): collapsing each SCC to a single node preserves the answer
//! to every reachability query.

use crate::graph::Graph;
use crate::types::NodeId;

/// The SCC partition of a graph.
#[derive(Debug, Clone)]
pub struct SccPartition {
    /// `comp[v] = id` of the component containing node `v`.
    pub comp: Vec<u32>,
    /// Number of components. Component ids are `0..count` and are a
    /// **reverse topological** numbering: if SCC `a` has an edge to SCC `b`
    /// (a ≠ b), then `comp id of a > comp id of b`.
    pub count: usize,
}

impl SccPartition {
    /// Component id of `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.comp[v.index()]
    }

    /// Group nodes by component: `groups[c]` lists the members of SCC `c`.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (i, &c) in self.comp.iter().enumerate() {
            groups[c as usize].push(NodeId::new(i));
        }
        groups
    }

    /// Whether `u` and `v` are in the same SCC (mutually reachable).
    pub fn same(&self, u: NodeId, v: NodeId) -> bool {
        self.comp[u.index()] == self.comp[v.index()]
    }
}

/// Tarjan's SCC algorithm, fully iterative (safe for million-node graphs).
pub fn tarjan_scc(g: &Graph) -> SccPartition {
    const UNVISITED: u32 = u32::MAX;
    let n = g.node_count();
    let mut index = vec![UNVISITED; n]; // discovery index
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new(); // Tarjan stack
    let mut next_index = 0u32;
    let mut count = 0u32;

    // Work stack frames: (node, next-child cursor).
    let mut work: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        work.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            let adj = g.out(NodeId(v));
            if *cursor < adj.len() {
                let w = adj[*cursor].0;
                *cursor += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    work.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is an SCC root; pop its component.
                    loop {
                        // invariant: Tarjan pushes `v` before exploring it,
                        // so the component stack holds `v` until this pop
                        // loop reaches it — it cannot underflow first.
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }

    SccPartition {
        comp,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn dag_has_singleton_components() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let p = tarjan_scc(&g);
        assert_eq!(p.count, 4);
        let mut ids: Vec<_> = p.comp.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn cycle_collapses() {
        let g = graph_from_edges(&["A"; 3], &[(0, 1), (1, 2), (2, 0)]);
        let p = tarjan_scc(&g);
        assert_eq!(p.count, 1);
        assert!(p.same(NodeId(0), NodeId(2)));
    }

    #[test]
    fn two_cycles_with_bridge() {
        // {0,1} cycle -> {2,3} cycle
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let p = tarjan_scc(&g);
        assert_eq!(p.count, 2);
        assert!(p.same(NodeId(0), NodeId(1)));
        assert!(p.same(NodeId(2), NodeId(3)));
        assert!(!p.same(NodeId(0), NodeId(2)));
        // Reverse topological numbering: source SCC gets the larger id.
        assert!(p.component_of(NodeId(0)) > p.component_of(NodeId(2)));
    }

    #[test]
    fn reverse_topological_numbering_on_chain() {
        let g = graph_from_edges(&["A"; 3], &[(0, 1), (1, 2)]);
        let p = tarjan_scc(&g);
        assert!(p.component_of(NodeId(0)) > p.component_of(NodeId(1)));
        assert!(p.component_of(NodeId(1)) > p.component_of(NodeId(2)));
    }

    #[test]
    fn self_loop_is_its_own_scc() {
        let g = graph_from_edges(&["A"; 2], &[(0, 0), (0, 1)]);
        let p = tarjan_scc(&g);
        assert_eq!(p.count, 2);
        assert!(!p.same(NodeId(0), NodeId(1)));
    }

    #[test]
    fn groups_partition_all_nodes() {
        let g = graph_from_edges(&["A"; 5], &[(0, 1), (1, 0), (2, 3), (3, 4), (4, 2)]);
        let p = tarjan_scc(&g);
        let groups = p.groups();
        let total: usize = groups.iter().map(|grp| grp.len()).sum();
        assert_eq!(total, 5);
        assert_eq!(p.count, 2);
        assert!(groups.iter().any(|grp| grp.len() == 2));
        assert!(groups.iter().any(|grp| grp.len() == 3));
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(&[], &[]);
        let p = tarjan_scc(&g);
        assert_eq!(p.count, 0);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 100k-node chain would overflow a recursive Tarjan.
        let n = 100_000u32;
        let labels = vec!["A"; n as usize];
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = graph_from_edges(&labels, &edges);
        let p = tarjan_scc(&g);
        assert_eq!(p.count, n as usize);
    }
}
