//! `r`-hop neighborhoods and balls (paper §2).
//!
//! A node `v'` is *within `r` hops* of `v` if there is a path of at most `r`
//! edges from `v` to `v'` **or** from `v'` to `v` — i.e. hops are counted on
//! the underlying undirected graph. `N_r(v)` is the set of such nodes and
//! the *`r`-neighborhood* `G_r(v)` is the subgraph induced by `N_r(v)`.
//!
//! Strong-simulation matching is defined on `d_Q`-neighborhood balls, and
//! the locality argument for pattern queries (they can be answered inside
//! `G_dQ(v_p)`) rests on these definitions.

use crate::cancel::{CancelTicker, CancelToken};
use crate::graph::Graph;
use crate::subgraph::InducedSubgraph;
use crate::traverse::VisitStats;
use crate::types::NodeId;
use crate::view::GraphView;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// Reusable scratch state for repeated ball evaluations.
///
/// Strong simulation runs one undirected BFS per candidate center — hundreds
/// of balls per query, each a handful of hops deep. A fresh hash set per
/// ball made that BFS the dominant cost of `MatchOpt`. `BallScratch` keeps
/// an **epoch-stamped visited buffer** (`stamp[v] == epoch` ⇔ `v` seen in
/// the current ball) and a flat frontier queue, so starting the next ball is
/// one counter increment — no clearing, no rehashing, no allocation once the
/// buffers are warm. Balls are emitted as **sorted `Vec<NodeId>`**, the
/// representation the dual-simulation fixpoint takes as its `universe`.
///
/// ```
/// use rbq_graph::{builder::graph_from_edges, neighborhood::BallScratch, NodeId};
/// let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 2), (2, 3)]);
/// let mut scratch = BallScratch::new();
/// let mut ball = Vec::new();
/// scratch.ball_into(&g, NodeId(1), 1, &mut ball);
/// assert_eq!(ball, vec![NodeId(0), NodeId(1), NodeId(2)]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct BallScratch {
    /// `stamp[v] == epoch` marks `v` visited in the current ball. Slots are
    /// zero-initialized and `epoch` is always ≥ 1, so fresh slots read as
    /// unvisited. One byte per node keeps the buffer cache-resident — the
    /// BFS probes it once per scanned adjacency entry.
    stamp: Vec<u8>,
    epoch: u8,
    /// BFS frontier of `(node, depth)`, drained by index. After the BFS it
    /// holds exactly the ball's nodes, in visit order.
    queue: Vec<(NodeId, u32)>,
    /// Deadline ticker checked once per dequeued node; a single branch when
    /// no deadline is armed.
    cancel: CancelTicker,
}

impl BallScratch {
    /// Fresh scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or clear, with [`CancelToken::none`]) the deadline checked by
    /// every subsequent ball BFS through this scratch. On expiry the BFS
    /// unwinds with a [`crate::cancel::CancelPanic`] tagged `"ball.bfs"`.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel.arm(token);
    }

    /// Start a new ball: bump the epoch, invalidating every stamp in O(1).
    fn next_epoch(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap (every 255 balls): hard-reset the stamps so
                // stale marks from epoch 1 cannot alias the new epoch 1.
                // Amortized over the wrap interval this is ~|V|/255 writes
                // per ball — noise next to the BFS itself.
                self.stamp.fill(0);
                1
            }
        };
    }

    /// The node set `N_r(center)` within the view — nodes within `r` hops
    /// following edges in either direction — written into `out` (cleared
    /// first) in **sorted ascending** order. Empty if the view lacks the
    /// center.
    pub fn ball_into<V: GraphView + ?Sized>(
        &mut self,
        g: &V,
        center: NodeId,
        r: usize,
        out: &mut Vec<NodeId>,
    ) {
        let (lo, hi) = self.bfs(g, center, r);
        out.clear();
        let n = self.queue.len();
        if n == 0 {
            return;
        }
        // Sorted emission: dense balls read off the stamp range — a linear
        // branchless scan (always write the slot, advance on membership)
        // replaces an O(n log n) sort; sparse balls over a wide id range
        // sort the visit order instead.
        if n >= (hi - lo) / 16 {
            let width = hi - lo + 1;
            out.resize(width, NodeId(0));
            let mut k = 0usize;
            for (i, &s) in self.stamp[lo..=hi].iter().enumerate() {
                out[k] = NodeId((lo + i) as u32);
                k += (s == self.epoch) as usize;
            }
            out.truncate(k);
        } else {
            out.extend(self.queue.iter().map(|&(v, _)| v));
            out.sort_unstable();
        }
    }

    /// One BFS to radius `r_outer`, split by recorded depth: the full
    /// `N_{r_outer}(center)` goes to `outer` and the sub-ball
    /// `N_{r_inner}(center)` to `inner`, both sorted ascending. Equivalent
    /// to two [`BallScratch::ball_into`] calls, at the cost of one
    /// traversal — strong simulation needs exactly this pair (candidate
    /// centers at `d_Q`, prefilter universe at `2·d_Q`).
    ///
    /// # Panics
    /// Panics if `r_inner > r_outer`.
    pub fn ball_pair_into<V: GraphView + ?Sized>(
        &mut self,
        g: &V,
        center: NodeId,
        r_outer: usize,
        r_inner: usize,
        outer: &mut Vec<NodeId>,
        inner: &mut Vec<NodeId>,
    ) {
        assert!(r_inner <= r_outer, "inner radius exceeds outer");
        self.bfs(g, center, r_outer);
        outer.clear();
        inner.clear();
        for &(v, d) in &self.queue {
            outer.push(v);
            if d as usize <= r_inner {
                inner.push(v);
            }
        }
        outer.sort_unstable();
        inner.sort_unstable();
    }

    /// Undirected BFS from `center` to depth `r`; leaves the visited set
    /// (with depths) in `self.queue` and returns the `(min, max)` visited
    /// node indexes (`(0, 0)` when the center is absent).
    // rbq-lint: hot
    fn bfs<V: GraphView + ?Sized>(&mut self, g: &V, center: NodeId, r: usize) -> (usize, usize) {
        crate::faultpoint::fire("ball.bfs");
        self.next_epoch();
        // Hot loop state lives in locals (taken out of `self`): field
        // accesses through `&mut self` defeat the register allocation the
        // inner loop depends on.
        let epoch = self.epoch;
        let mut cancel = self.cancel;
        let mut stamp = std::mem::take(&mut self.stamp);
        let mut queue = std::mem::take(&mut self.queue);
        queue.clear();
        if g.contains(center) {
            let ci = center.index();
            if ci >= stamp.len() {
                stamp.resize(ci + 1, 0);
            }
            stamp[ci] = epoch;
            queue.push((center, 0));
            let mut head = 0;
            while head < queue.len() {
                cancel.tick("ball.bfs");
                let (v, d) = queue[head];
                head += 1;
                if d as usize == r {
                    continue;
                }
                for nb in [g.out_neighbors(v), g.in_neighbors(v)] {
                    match nb.as_slice() {
                        // Slice fast path, branchless visit: always write
                        // the next queue slot, advance the cursor only on
                        // first sight. Whether a neighbor was already seen
                        // is data-dependent and mispredicts constantly —
                        // the unconditional store is ~4× faster here than
                        // the natural `if newly { push }`.
                        Some(s) => {
                            let base = queue.len();
                            queue.resize(base + s.len(), (NodeId(0), 0));
                            let mut k = base;
                            for &w in s {
                                let i = w.index();
                                if i >= stamp.len() {
                                    stamp.resize(i + 1, 0);
                                }
                                let newly = (stamp[i] != epoch) as usize;
                                stamp[i] = epoch;
                                queue[k] = (w, d + 1);
                                k += newly;
                            }
                            queue.truncate(k);
                        }
                        None => {
                            for w in nb {
                                let i = w.index();
                                if i >= stamp.len() {
                                    stamp.resize(i + 1, 0);
                                }
                                if stamp[i] != epoch {
                                    stamp[i] = epoch;
                                    queue.push((w, d + 1));
                                }
                            }
                        }
                    }
                }
            }
        }
        // The id span is re-derived from the visit list (one cheap pass)
        // rather than tracked per probe inside the hot loop.
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for &(v, _) in &queue {
            lo = lo.min(v.index());
            hi = hi.max(v.index());
        }
        if queue.is_empty() {
            lo = 0;
        }
        self.stamp = stamp;
        self.queue = queue;
        self.cancel = cancel;
        (lo, hi)
    }
}

/// The node set `N_r(v)`: all nodes within `r` hops of `v`, following edges
/// in either direction, including `v` itself.
///
/// Returns nodes with their hop distance, in BFS order, plus visit stats.
pub fn n_r(g: &Graph, v: NodeId, r: usize) -> (FxHashMap<NodeId, usize>, VisitStats) {
    let mut dist: FxHashMap<NodeId, usize> = FxHashMap::default();
    let mut queue = VecDeque::new();
    let mut stats = VisitStats::default();
    dist.insert(v, 0);
    queue.push_back((v, 0usize));
    // rbq-lint: allow(cancel-coverage, "legacy offline helper for benches and test oracles; the serving path uses the ticked BallScratch::bfs")
    while let Some((u, d)) = queue.pop_front() {
        stats.nodes += 1;
        if d == r {
            continue;
        }
        for &w in g.out(u).iter().chain(g.inn(u)) {
            stats.edges += 1;
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(d + 1);
                queue.push_back((w, d + 1));
            }
        }
    }
    (dist, stats)
}

/// The `r`-neighborhood *ball* `G_r(v)`: the subgraph induced by `N_r(v)`.
pub fn ball<'g>(g: &'g Graph, v: NodeId, r: usize) -> (InducedSubgraph<'g>, VisitStats) {
    let (dist, stats) = n_r(g, v, r);
    (InducedSubgraph::new(g, dist.into_keys()), stats)
}

/// Size `|G_r(v)| = |N_r(v)| + |E(G_r(v))|` without retaining the subgraph.
/// Used by the experiment harness to report the Table-2 ratios
/// `α|G| / |G_dQ(v_p)|`.
pub fn ball_size(g: &Graph, v: NodeId, r: usize) -> usize {
    use crate::view::GraphView;
    let (b, _) = ball(g, v, r);
    b.size()
}

/// The diameter of `g` viewed as an *undirected* graph: the longest shortest
/// path between any connected pair (unreachable pairs are ignored).
///
/// Exact all-pairs BFS — `O(|V|·(|V|+|E|))`. Patterns are tiny (≤ ~8 nodes,
/// §6), for which this is instantaneous; avoid calling it on big data graphs.
pub fn undirected_diameter(g: &Graph) -> usize {
    let mut best = 0usize;
    for s in g.nodes() {
        let (dist, _) = n_r(g, s, usize::MAX);
        for (_, d) in dist {
            best = best.max(d);
        }
    }
    best
}

/// The diameter of `g` respecting edge direction (longest finite directed
/// shortest path). Used for directed-diameter assertions in tests.
pub fn directed_diameter(g: &Graph) -> usize {
    use crate::types::Direction;
    let mut best = 0usize;
    for s in g.nodes() {
        let (order, _) = crate::traverse::bfs_bounded(g, s, Direction::Out, usize::MAX);
        for (_, d) in order {
            best = best.max(d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::view::GraphView;

    fn chain() -> Graph {
        // 0 -> 1 -> 2 -> 3 -> 4
        graph_from_edges(&["A"; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn n_r_counts_both_directions() {
        let g = chain();
        let (dist, _) = n_r(&g, NodeId(2), 1);
        let mut nodes: Vec<_> = dist.keys().copied().collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(dist[&NodeId(2)], 0);
        assert_eq!(dist[&NodeId(1)], 1);
    }

    #[test]
    fn n_r_radius_two() {
        let g = chain();
        let (dist, _) = n_r(&g, NodeId(2), 2);
        assert_eq!(dist.len(), 5);
        assert_eq!(dist[&NodeId(0)], 2);
        assert_eq!(dist[&NodeId(4)], 2);
    }

    #[test]
    fn ball_is_induced() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let (b, _) = ball(&g, NodeId(0), 1);
        // N_1(0) = {0,1,2}; induced edges: 0->1, 1->2, 0->2.
        assert_eq!(b.num_nodes(), 3);
        assert_eq!(b.num_edges(), 3);
    }

    #[test]
    fn ball_size_matches_ball() {
        let g = chain();
        let (b, _) = ball(&g, NodeId(1), 2);
        assert_eq!(ball_size(&g, NodeId(1), 2), b.size());
    }

    #[test]
    fn zero_radius_ball_is_single_node() {
        let g = chain();
        let (b, _) = ball(&g, NodeId(3), 0);
        assert_eq!(b.num_nodes(), 1);
        assert_eq!(b.num_edges(), 0);
    }

    #[test]
    fn undirected_diameter_of_chain() {
        let g = chain();
        assert_eq!(undirected_diameter(&g), 4);
    }

    #[test]
    fn directed_diameter_of_chain() {
        let g = chain();
        assert_eq!(directed_diameter(&g), 4);
    }

    #[test]
    fn undirected_diameter_sees_through_direction() {
        // 0 -> 1 <- 2 : directed diameter 1, undirected 2.
        let g = graph_from_edges(&["A"; 3], &[(0, 1), (2, 1)]);
        assert_eq!(directed_diameter(&g), 1);
        assert_eq!(undirected_diameter(&g), 2);
    }

    #[test]
    fn diameter_of_single_node() {
        let g = graph_from_edges(&["A"], &[]);
        assert_eq!(undirected_diameter(&g), 0);
    }

    /// Hash-set BFS oracle for [`BallScratch`]: the pre-epoch-stamp
    /// implementation, kept for differential checks.
    fn ball_naive(g: &Graph, center: NodeId, r: usize) -> Vec<NodeId> {
        let (dist, _) = n_r(g, center, r);
        let mut out: Vec<NodeId> = dist.into_keys().collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn scratch_ball_matches_naive() {
        let g = graph_from_edges(&["A"; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 2), (4, 0)]);
        let mut scratch = BallScratch::new();
        let mut ball = Vec::new();
        for r in 0..5 {
            for v in 0..6u32 {
                scratch.ball_into(&g, NodeId(v), r, &mut ball);
                assert_eq!(ball, ball_naive(&g, NodeId(v), r), "center {v} r {r}");
            }
        }
    }

    #[test]
    fn scratch_ball_missing_center_is_empty() {
        let g = chain();
        let view = InducedSubgraph::new(&g, [NodeId(0)]);
        let mut scratch = BallScratch::new();
        let mut ball = vec![NodeId(9)];
        scratch.ball_into(&view, NodeId(2), 3, &mut ball);
        assert!(ball.is_empty());
    }

    #[test]
    fn scratch_ball_pair_equals_two_singles() {
        let g = graph_from_edges(
            &["A"; 7],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (6, 3), (5, 0)],
        );
        let mut scratch = BallScratch::new();
        let (mut outer, mut inner) = (Vec::new(), Vec::new());
        let (mut outer1, mut inner1) = (Vec::new(), Vec::new());
        for v in 0..7u32 {
            for r in 0..4usize {
                scratch.ball_pair_into(&g, NodeId(v), 2 * r, r, &mut outer, &mut inner);
                scratch.ball_into(&g, NodeId(v), 2 * r, &mut outer1);
                scratch.ball_into(&g, NodeId(v), r, &mut inner1);
                assert_eq!(outer, outer1, "outer center {v} r {r}");
                assert_eq!(inner, inner1, "inner center {v} r {r}");
            }
        }
    }

    #[test]
    fn scratch_reuse_has_no_cross_ball_contamination() {
        // Two disjoint components: balls computed alternately from each must
        // never leak nodes of the other, over many epoch reuses.
        let g = graph_from_edges(&["A"; 6], &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let mut scratch = BallScratch::new();
        let mut ball = Vec::new();
        for _ in 0..100 {
            scratch.ball_into(&g, NodeId(0), 9, &mut ball);
            assert_eq!(ball, vec![NodeId(0), NodeId(1), NodeId(2)]);
            scratch.ball_into(&g, NodeId(3), 9, &mut ball);
            assert_eq!(ball, vec![NodeId(3), NodeId(4), NodeId(5)]);
            scratch.ball_into(&g, NodeId(2), 0, &mut ball);
            assert_eq!(ball, vec![NodeId(2)]);
        }
    }
}
