//! `r`-hop neighborhoods and balls (paper §2).
//!
//! A node `v'` is *within `r` hops* of `v` if there is a path of at most `r`
//! edges from `v` to `v'` **or** from `v'` to `v` — i.e. hops are counted on
//! the underlying undirected graph. `N_r(v)` is the set of such nodes and
//! the *`r`-neighborhood* `G_r(v)` is the subgraph induced by `N_r(v)`.
//!
//! Strong-simulation matching is defined on `d_Q`-neighborhood balls, and
//! the locality argument for pattern queries (they can be answered inside
//! `G_dQ(v_p)`) rests on these definitions.

use crate::graph::Graph;
use crate::subgraph::InducedSubgraph;
use crate::traverse::VisitStats;
use crate::types::NodeId;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// The node set `N_r(v)`: all nodes within `r` hops of `v`, following edges
/// in either direction, including `v` itself.
///
/// Returns nodes with their hop distance, in BFS order, plus visit stats.
pub fn n_r(g: &Graph, v: NodeId, r: usize) -> (FxHashMap<NodeId, usize>, VisitStats) {
    let mut dist: FxHashMap<NodeId, usize> = FxHashMap::default();
    let mut queue = VecDeque::new();
    let mut stats = VisitStats::default();
    dist.insert(v, 0);
    queue.push_back((v, 0usize));
    while let Some((u, d)) = queue.pop_front() {
        stats.nodes += 1;
        if d == r {
            continue;
        }
        for &w in g.out(u).iter().chain(g.inn(u)) {
            stats.edges += 1;
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(d + 1);
                queue.push_back((w, d + 1));
            }
        }
    }
    (dist, stats)
}

/// The `r`-neighborhood *ball* `G_r(v)`: the subgraph induced by `N_r(v)`.
pub fn ball<'g>(g: &'g Graph, v: NodeId, r: usize) -> (InducedSubgraph<'g>, VisitStats) {
    let (dist, stats) = n_r(g, v, r);
    (InducedSubgraph::new(g, dist.into_keys()), stats)
}

/// Size `|G_r(v)| = |N_r(v)| + |E(G_r(v))|` without retaining the subgraph.
/// Used by the experiment harness to report the Table-2 ratios
/// `α|G| / |G_dQ(v_p)|`.
pub fn ball_size(g: &Graph, v: NodeId, r: usize) -> usize {
    use crate::view::GraphView;
    let (b, _) = ball(g, v, r);
    b.size()
}

/// The diameter of `g` viewed as an *undirected* graph: the longest shortest
/// path between any connected pair (unreachable pairs are ignored).
///
/// Exact all-pairs BFS — `O(|V|·(|V|+|E|))`. Patterns are tiny (≤ ~8 nodes,
/// §6), for which this is instantaneous; avoid calling it on big data graphs.
pub fn undirected_diameter(g: &Graph) -> usize {
    let mut best = 0usize;
    for s in g.nodes() {
        let (dist, _) = n_r(g, s, usize::MAX);
        for (_, d) in dist {
            best = best.max(d);
        }
    }
    best
}

/// The diameter of `g` respecting edge direction (longest finite directed
/// shortest path). Used for directed-diameter assertions in tests.
pub fn directed_diameter(g: &Graph) -> usize {
    use crate::types::Direction;
    let mut best = 0usize;
    for s in g.nodes() {
        let (order, _) = crate::traverse::bfs_bounded(g, s, Direction::Out, usize::MAX);
        for (_, d) in order {
            best = best.max(d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::view::GraphView;

    fn chain() -> Graph {
        // 0 -> 1 -> 2 -> 3 -> 4
        graph_from_edges(&["A"; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn n_r_counts_both_directions() {
        let g = chain();
        let (dist, _) = n_r(&g, NodeId(2), 1);
        let mut nodes: Vec<_> = dist.keys().copied().collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(dist[&NodeId(2)], 0);
        assert_eq!(dist[&NodeId(1)], 1);
    }

    #[test]
    fn n_r_radius_two() {
        let g = chain();
        let (dist, _) = n_r(&g, NodeId(2), 2);
        assert_eq!(dist.len(), 5);
        assert_eq!(dist[&NodeId(0)], 2);
        assert_eq!(dist[&NodeId(4)], 2);
    }

    #[test]
    fn ball_is_induced() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let (b, _) = ball(&g, NodeId(0), 1);
        // N_1(0) = {0,1,2}; induced edges: 0->1, 1->2, 0->2.
        assert_eq!(b.num_nodes(), 3);
        assert_eq!(b.num_edges(), 3);
    }

    #[test]
    fn ball_size_matches_ball() {
        let g = chain();
        let (b, _) = ball(&g, NodeId(1), 2);
        assert_eq!(ball_size(&g, NodeId(1), 2), b.size());
    }

    #[test]
    fn zero_radius_ball_is_single_node() {
        let g = chain();
        let (b, _) = ball(&g, NodeId(3), 0);
        assert_eq!(b.num_nodes(), 1);
        assert_eq!(b.num_edges(), 0);
    }

    #[test]
    fn undirected_diameter_of_chain() {
        let g = chain();
        assert_eq!(undirected_diameter(&g), 4);
    }

    #[test]
    fn directed_diameter_of_chain() {
        let g = chain();
        assert_eq!(directed_diameter(&g), 4);
    }

    #[test]
    fn undirected_diameter_sees_through_direction() {
        // 0 -> 1 <- 2 : directed diameter 1, undirected 2.
        let g = graph_from_edges(&["A"; 3], &[(0, 1), (2, 1)]);
        assert_eq!(directed_diameter(&g), 1);
        assert_eq!(undirected_diameter(&g), 2);
    }

    #[test]
    fn diameter_of_single_node() {
        let g = graph_from_edges(&["A"], &[]);
        assert_eq!(undirected_diameter(&g), 0);
    }
}
