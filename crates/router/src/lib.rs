#![warn(missing_docs)]
//! # rbq-router — sharded serving behind one front door
//!
//! The paper closes by noting its resource-bounded techniques "adapt
//! readily to distributed settings": the offline structures are built once,
//! and each query touches an `α`-bounded fragment of `G`. This crate is
//! that adaptation for the serving layer — a [`Router`] fronting `k`
//! per-shard [`rbq_engine::Engine`]s:
//!
//! * a [`Partitioner`] decides which shard *owns* each node of `G`
//!   ([`LabelHashPartitioner`] and the SCC/community-aware
//!   [`SccPartitioner`], both over [`rbq_graph::partition`]);
//! * every query is routed to the one shard that owns its locus — the
//!   source node for reachability, the unique personalized match for
//!   anchored patterns (label-based shard pruning: the owner is computed
//!   from the query text plus the label → node map, never by evaluating
//!   the query) — and the remaining `k − 1` shards never see it;
//! * per-shard answers are merged back **deterministically**: results
//!   scatter to input order, per-shard [`rbq_engine::EngineStats`] fold
//!   together, and the batch's aggregate visit budget is settled once at
//!   the router (in input order, via [`rbq_engine::settle_aggregate`]) so
//!   [`rbq_engine::Answer::Denied`] falls on exactly the same queries as a
//!   single engine would deny.
//!
//! Shards are engine replicas over `Arc`-shared immutable structures (the
//! graph and both offline indexes), so a shard evaluates a query with
//! byte-identical answers and visit counts to a standalone engine — which
//! is what makes the router's `k`-invariance pinned by the differential
//! suite (`Router(k) ≡ Engine(1)` for every `k` and partitioner) hold at
//! any budget, not just in the limit.

pub mod partitioner;
pub mod router;

pub use partitioner::{LabelHashPartitioner, Partitioner, PartitionerKind, SccPartitioner};
pub use router::{Router, RouterError, RouterReport, ShardReport};
