//! Partitioning policies: how a router splits node ownership across shards.

use rbq_graph::partition::{partition_by_label_hash, partition_by_scc};
use rbq_graph::{Graph, PartitionError, ShardAssignment};

/// A policy assigning every node of `G` to one of `k` shards.
///
/// Implementations must be deterministic — the router builds the
/// assignment once at construction (and once per applied delta batch) and
/// routes against it in between, and differential testing replays the same
/// assignment.
pub trait Partitioner {
    /// Short stable name, for reports and CLI round-trips.
    fn name(&self) -> &'static str;

    /// Assign every node of `g` to one of `shards` shards.
    ///
    /// Malformed inputs (zero shards, an assignment that does not cover
    /// the graph) surface as a typed [`PartitionError`] instead of a
    /// panic, so front ends can report them with an exit code.
    fn partition(&self, g: &Graph, shards: usize) -> Result<ShardAssignment, PartitionError>;
}

/// Label-hash partitioning: all nodes of a label share the shard
/// `fxhash(label) mod k` (see
/// [`rbq_graph::partition::partition_by_label_hash`]).
///
/// Pattern routing under this policy needs no graph lookup at all — the
/// owner shard is a pure function of the personalized node's label string —
/// though the router's label → node routing works for any policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct LabelHashPartitioner;

impl Partitioner for LabelHashPartitioner {
    fn name(&self) -> &'static str {
        "label"
    }

    fn partition(&self, g: &Graph, shards: usize) -> Result<ShardAssignment, PartitionError> {
        partition_by_label_hash(g, shards)
    }
}

/// SCC/community-aware partitioning: whole strongly connected components,
/// in contiguous reverse-topological runs balanced by node count (see
/// [`rbq_graph::partition::partition_by_scc`]).
///
/// Mutually reachable nodes never straddle shards, so reachability traffic
/// stays landmark-local to its owner shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct SccPartitioner;

impl Partitioner for SccPartitioner {
    fn name(&self) -> &'static str {
        "scc"
    }

    fn partition(&self, g: &Graph, shards: usize) -> Result<ShardAssignment, PartitionError> {
        partition_by_scc(g, shards)
    }
}

/// The built-in policies, as a value front ends can parse and pass around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerKind {
    /// [`LabelHashPartitioner`].
    LabelHash,
    /// [`SccPartitioner`].
    Scc,
}

impl Partitioner for PartitionerKind {
    fn name(&self) -> &'static str {
        match self {
            PartitionerKind::LabelHash => LabelHashPartitioner.name(),
            PartitionerKind::Scc => SccPartitioner.name(),
        }
    }

    fn partition(&self, g: &Graph, shards: usize) -> Result<ShardAssignment, PartitionError> {
        match self {
            PartitionerKind::LabelHash => LabelHashPartitioner.partition(g, shards),
            PartitionerKind::Scc => SccPartitioner.partition(g, shards),
        }
    }
}

impl std::str::FromStr for PartitionerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "label" | "label-hash" => Ok(PartitionerKind::LabelHash),
            "scc" => Ok(PartitionerKind::Scc),
            other => Err(format!("unknown partitioner {other:?} (want label|scc)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_names() {
        for kind in [PartitionerKind::LabelHash, PartitionerKind::Scc] {
            assert_eq!(kind.name().parse::<PartitionerKind>().unwrap(), kind);
        }
        assert!("bogus".parse::<PartitionerKind>().is_err());
    }
}
