//! The router: shard construction, per-query routing, deterministic merge.

use crate::partitioner::{Partitioner, PartitionerKind};
use rbq_core::NeighborIndex;
use rbq_engine::{
    settle_aggregate, Answer, BatchReport, Durability, DurabilityConfig, DurabilityError, Engine,
    EngineConfig, EngineError, EngineStats, Query, QueryClass, QueryResult, RecoveryReport,
};
use rbq_graph::{
    DeltaBatch, DeltaError, DeltaReport, Graph, PartitionError, PartitionStats, ShardAssignment,
};
use rbq_reach::HierarchicalIndex;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Lock a mutex, recovering from poisoning: the guarded statistics stay
/// consistent (merges are all-or-nothing from the reader's perspective),
/// and a shard that panicked must not take the router's bookkeeping down.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Count a query the router settled without any shard evaluating it (shed
/// at admission, or its shard lost twice) — same bookkeeping a single
/// engine's recorder does for unevaluated queries.
fn count_unevaluated(stats: &mut EngineStats, class: QueryClass) {
    stats.queries += 1;
    match class {
        QueryClass::Reach => stats.reach.queries += 1,
        QueryClass::Sim => stats.sim.queries += 1,
        QueryClass::Iso => stats.iso.queries += 1,
    }
}

/// Errors constructing or operating a [`Router`].
#[derive(Debug, Clone)]
pub enum RouterError {
    /// A shard count of zero.
    InvalidShards,
    /// The engine configuration was rejected (wrapped losslessly).
    Engine(EngineError),
    /// The partitioner rejected its input (wrapped losslessly).
    Partition(PartitionError),
    /// A delta batch was rejected (wrapped losslessly).
    Delta(DeltaError),
    /// [`Router::apply_deltas`] needs to re-run the partitioning policy,
    /// but the router was built with a custom [`Partitioner`] it cannot
    /// reconstruct from its name. Built-in policies (label, scc) always
    /// support live updates.
    UnsupportedPartitioner(&'static str),
    /// An offline index rebuild panicked during [`Router::apply_deltas`].
    /// Nothing was installed: the router keeps serving its pre-delta
    /// state. Carries the name of the structure whose rebuild failed.
    RebuildFailed(&'static str),
    /// Persisting a delta batch (or recovering durable state) failed
    /// (wrapped losslessly; `Arc` because the underlying I/O error is not
    /// `Clone`). On an append failure nothing was installed — the
    /// pre-delta state keeps serving.
    Durability(std::sync::Arc<DurabilityError>),
}

// Hand-written because `DurabilityError` wraps live `io::Error` values:
// durability variants compare by rendered message, everything else
// structurally (matching the former derive).
impl PartialEq for RouterError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (RouterError::InvalidShards, RouterError::InvalidShards) => true,
            (RouterError::Engine(a), RouterError::Engine(b)) => a == b,
            (RouterError::Partition(a), RouterError::Partition(b)) => a == b,
            (RouterError::Delta(a), RouterError::Delta(b)) => a == b,
            (RouterError::UnsupportedPartitioner(a), RouterError::UnsupportedPartitioner(b)) => {
                a == b
            }
            (RouterError::RebuildFailed(a), RouterError::RebuildFailed(b)) => a == b,
            (RouterError::Durability(a), RouterError::Durability(b)) => {
                a.to_string() == b.to_string()
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::InvalidShards => write!(f, "shard count must be >= 1"),
            RouterError::Engine(e) => write!(f, "{e}"),
            RouterError::Partition(e) => write!(f, "{e}"),
            RouterError::Delta(e) => write!(f, "{e}"),
            RouterError::UnsupportedPartitioner(name) => write!(
                f,
                "partitioner {name:?} cannot be re-applied for live updates"
            ),
            RouterError::RebuildFailed(what) => {
                write!(f, "{what} rebuild panicked; pre-delta state still serving")
            }
            RouterError::Durability(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::Engine(e) => Some(e),
            RouterError::Partition(e) => Some(e),
            RouterError::Delta(e) => Some(e),
            RouterError::Durability(e) => Some(e.as_ref()),
            RouterError::InvalidShards
            | RouterError::UnsupportedPartitioner(_)
            | RouterError::RebuildFailed(_) => None,
        }
    }
}

impl From<EngineError> for RouterError {
    fn from(e: EngineError) -> Self {
        RouterError::Engine(e)
    }
}

impl From<PartitionError> for RouterError {
    fn from(e: PartitionError) -> Self {
        RouterError::Partition(e)
    }
}

impl From<DeltaError> for RouterError {
    fn from(e: DeltaError) -> Self {
        RouterError::Delta(e)
    }
}

impl From<DurabilityError> for RouterError {
    fn from(e: DurabilityError) -> Self {
        RouterError::Durability(std::sync::Arc::new(e))
    }
}

/// Result of [`Router::run_batch`]: input-order answers, merged statistics,
/// and the per-shard breakdown.
#[derive(Debug, Clone)]
pub struct RouterReport {
    /// One result per input query, in input order — byte-identical to what
    /// a single [`Engine`] would return for the same batch.
    pub results: Vec<QueryResult>,
    /// Statistics merged across shards, with the aggregate budget settled
    /// at the router (so `denied` / `charged_visits` match a single
    /// engine's settlement exactly).
    pub stats: EngineStats,
    /// Per-shard breakdown, one entry per shard (including idle ones).
    pub per_shard: Vec<ShardReport>,
}

/// One shard's share of a routed batch.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Queries routed to this shard.
    pub routed: usize,
    /// The shard engine's statistics for its sub-batch (settlement
    /// happens at the router, so `denied` is always 0 here).
    pub stats: EngineStats,
}

/// A sharded serving front: `k` engine replicas over `Arc`-shared
/// immutable structures, one owner shard per query.
///
/// Construction pays the offline cost once — the partition and both
/// offline indexes (§4.1 neighbor index, §5.1 reachability index) are
/// built eagerly and shared by every shard — so shards are cheap replicas
/// and routing is the only per-query work the router adds.
pub struct Router {
    g: Arc<Graph>,
    assignment: ShardAssignment,
    shards: Vec<Engine>,
    /// The shared offline structures and the per-shard configuration —
    /// kept so a shard whose worker is lost mid-batch can be replaced by a
    /// cold replica without re-paying any offline cost.
    nbr: Arc<NeighborIndex>,
    reach: Arc<HierarchicalIndex>,
    shard_cfg: EngineConfig,
    partitioner: &'static str,
    /// The built-in policy behind `partitioner`, when it is one — what
    /// [`Router::apply_deltas`] re-runs to re-resolve ownership after a
    /// batch. `None` for custom policies the router cannot reconstruct.
    repartition: Option<PartitionerKind>,
    /// The front-door aggregate budget; shard engines run unbudgeted and
    /// the router settles once, in input order.
    aggregate_visit_budget: Option<usize>,
    totals: Mutex<EngineStats>,
    /// Durable-state handle when durability is enabled: the router owns
    /// the WAL (one log for the whole deployment) and appends each batch
    /// before any shard installs it.
    durability: Option<Durability>,
}

impl Router {
    /// A router over `g` with `shards` shards assigned by `partitioner`.
    ///
    /// `cfg` is the front-door configuration: every shard engine inherits
    /// it, except that the aggregate visit budget is held back and settled
    /// at the router, and worker threads are divided across shards (each
    /// shard gets `max(1, threads / k)` so a fanned-out batch uses about
    /// the configured parallelism in total).
    pub fn new(
        g: Arc<Graph>,
        cfg: EngineConfig,
        shards: usize,
        partitioner: &dyn Partitioner,
    ) -> Result<Router, RouterError> {
        if shards == 0 {
            return Err(RouterError::InvalidShards);
        }
        cfg.validate()?;
        let assignment = partitioner.partition(&g, shards)?;

        // Offline once, shared everywhere: identical Arc'd indexes are what
        // make shard answers byte-identical to a standalone engine's.
        let nbr = Arc::new(NeighborIndex::build(&g));
        let reach = Arc::new(HierarchicalIndex::build(&g, cfg.reach_alpha));

        let base_threads = if cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            cfg.threads
        };
        let shard_cfg = EngineConfig {
            aggregate_visit_budget: None,
            threads: (base_threads / shards).max(1),
            ..cfg.clone()
        };
        let engines = (0..shards)
            .map(|_| {
                Engine::with_indexes(
                    g.clone(),
                    shard_cfg.clone(),
                    Some(nbr.clone()),
                    Some(reach.clone()),
                )
            })
            .collect();
        Ok(Router {
            g,
            assignment,
            shards: engines,
            nbr,
            reach,
            shard_cfg,
            partitioner: partitioner.name(),
            repartition: partitioner.name().parse::<PartitionerKind>().ok(),
            aggregate_visit_budget: cfg.aggregate_visit_budget,
            totals: Mutex::new(EngineStats::default()),
            durability: None,
        })
    }

    /// Enable durability: initialize `cfg.dir` with a snapshot of the
    /// *current* graph and a fresh WAL, then persist every subsequent
    /// [`Router::apply_deltas`] batch — one log for the whole deployment,
    /// appended and fsynced before any shard installs the new epoch.
    /// Replaces any previous contents of the directory (to resume an
    /// existing directory instead, use [`Router::recover`]).
    pub fn enable_durability(&mut self, cfg: &DurabilityConfig) -> Result<(), RouterError> {
        self.durability = Some(Durability::create(&cfg.dir, &self.g).map_err(RouterError::from)?);
        Ok(())
    }

    /// Whether durability is currently enabled.
    pub fn durability_enabled(&self) -> bool {
        self.durability.is_some()
    }

    /// Recover a sharded deployment from a durability directory: load the
    /// snapshot, replay the WAL's valid prefix (see
    /// [`rbq_engine::durability`]), then build the router over the
    /// recovered graph with durability enabled for further ingest.
    pub fn recover(
        dir: &std::path::Path,
        cfg: EngineConfig,
        shards: usize,
        partitioner: &dyn Partitioner,
    ) -> Result<(Router, RecoveryReport), RouterError> {
        let (g, d, report) = Durability::recover(dir).map_err(RouterError::from)?;
        let mut router = Router::new(Arc::new(g), cfg, shards, partitioner)?;
        router.durability = Some(d);
        Ok((router, report))
    }

    /// Apply a delta batch to the whole sharded deployment.
    ///
    /// The delta is applied **once** and both offline indexes are rebuilt
    /// **once** (concurrently, off the serving path); the shared result is
    /// then installed into every shard engine — each bumps its generation
    /// and evicts its touched cache entries — and ownership is re-resolved
    /// by re-running the partitioning policy on the post-delta graph, so
    /// new and moved nodes route to their proper owners. Batches already
    /// in flight on shard engines drain on their pinned pre-delta epochs.
    ///
    /// Requires `&mut self`: routing state (graph, assignment) swaps
    /// atomically with respect to [`Router::run_batch`] borrows.
    pub fn apply_deltas(&mut self, batch: &DeltaBatch) -> Result<DeltaReport, RouterError> {
        let kind = self
            .repartition
            .ok_or(RouterError::UnsupportedPartitioner(self.partitioner))?;
        let (g2, report) = self.g.apply_delta(batch)?;
        let g2 = Arc::new(g2);
        // Durability barrier: the batch must be on disk (and fsynced)
        // before any shard can install the post-delta epoch. An append
        // failure installs nothing — the pre-delta state keeps serving.
        if let Some(d) = self.durability.as_mut() {
            d.append(batch).map_err(RouterError::from)?;
        }
        let reach_alpha = self.shards[0].config().reach_alpha;
        let (nbr, reach) = std::thread::scope(|s| {
            let hn = s.spawn(|| Arc::new(NeighborIndex::build(&g2)));
            let hr = s.spawn(|| Arc::new(HierarchicalIndex::build(&g2, reach_alpha)));
            (hn.join(), hr.join())
        });
        // A panicked rebuild installs nothing: the error is typed and the
        // pre-delta epoch keeps serving.
        let nbr = nbr.map_err(|_| RouterError::RebuildFailed("neighbor index"))?;
        let reach = reach.map_err(|_| RouterError::RebuildFailed("reachability index"))?;
        let assignment = kind.partition(&g2, self.shards.len())?;
        for engine in &self.shards {
            engine.install_graph(
                g2.clone(),
                Some(nbr.clone()),
                Some(reach.clone()),
                &report.touched_labels,
            );
        }
        self.g = g2;
        self.assignment = assignment;
        self.nbr = nbr;
        self.reach = reach;
        if report.compacted {
            // The apply already paid for a compaction; checkpoint so
            // recovery replays a short WAL. The batch itself is durable
            // and installed even if this fails (see
            // [`rbq_engine::Engine::apply_deltas`] for the contract).
            if let Some(d) = self.durability.as_mut() {
                d.checkpoint(&self.g).map_err(RouterError::from)?;
            }
        }
        Ok(report)
    }

    /// Number of shards `k`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Name of the partitioning policy in effect.
    pub fn partitioner(&self) -> &'static str {
        self.partitioner
    }

    /// The node → shard assignment routing runs against.
    pub fn assignment(&self) -> &ShardAssignment {
        &self.assignment
    }

    /// Boundary/balance statistics of the partition over the graph.
    pub fn partition_stats(&self) -> PartitionStats {
        self.assignment.boundary_stats(&self.g)
    }

    /// Lifetime statistics merged across every batch served.
    pub fn stats(&self) -> EngineStats {
        relock(&self.totals).clone()
    }

    /// The shard that owns `q` — the only shard that will evaluate it.
    ///
    /// * Reachability routes to the owner of the **source** node: under the
    ///   SCC partitioner the whole source component (and its landmarks) is
    ///   local to that shard, so the index probe stays shard-local.
    /// * Patterns route to the owner of the unique match of the
    ///   personalized node, found from its label alone (label-based shard
    ///   pruning; under the label-hash partitioner this is a pure function
    ///   of the query text).
    /// * Queries that cannot be located (out-of-range id, unknown label,
    ///   zero or ambiguous anchor matches) route to shard 0, which
    ///   reproduces exactly the error a single engine would return — the
    ///   router never answers anything itself.
    pub fn route(&self, q: &Query) -> usize {
        match q {
            Query::Reach { source, .. } => self.assignment.shard_of(*source).unwrap_or(0) as usize,
            Query::PatternSim { pattern } | Query::PatternIso { pattern } => {
                let name = pattern.label_str(pattern.personalized());
                let Some(label) = self.g.labels().get(name) else {
                    return 0;
                };
                match self.g.nodes_with_label(label) {
                    [vp] => self.assignment.shard_of(*vp).unwrap_or(0) as usize,
                    _ => 0,
                }
            }
        }
    }

    /// Answer one query by routing it to its owner shard (no
    /// aggregate-budget settlement, mirroring [`Engine::run`]).
    pub fn run(&self, q: &Query) -> QueryResult {
        let result = self.shards[self.route(q)].run(q);
        let mut totals = relock(&self.totals);
        totals.queries += 1;
        totals.total_visits += result.visits;
        result
    }

    /// Answer a batch of heterogeneous queries across the shards.
    ///
    /// Each query is routed to its owner shard; non-empty sub-batches run
    /// concurrently (one scoped thread per shard, each shard scheduling
    /// its own workers); results scatter back to input order; and the
    /// aggregate visit budget is settled once at the router in input
    /// order. Answers, visit counts, denials and charged visits are all
    /// byte-identical to a single engine running the same batch — for any
    /// shard count and any partitioner. That parity extends to the
    /// robustness knobs: the front door computes one deadline instant and
    /// one [shortest-job-first](rbq_engine::AdmissionPolicy) shed set and
    /// every shard serves under them.
    ///
    /// **Degraded mode.** A shard whose worker thread is lost (a panic
    /// that escaped the engine's per-query containment) does not take the
    /// batch down: the router rebuilds a cold replica over the shared
    /// offline structures and retries that sub-batch once. If the retry is
    /// also lost, the sub-batch settles as [`Answer::Failed`] — every
    /// other shard's answers are unaffected.
    pub fn run_batch(&self, queries: &[Query]) -> RouterReport {
        let deadline = self
            .shard_cfg
            .batch_timeout
            .map(|t: Duration| Instant::now() + t);
        let k = self.shards.len();
        // Front-door admission: one deterministic shed decision for the
        // whole batch (shard engines hold no aggregate budget).
        let shed = self.shards[0].admission_shed_for(queries, self.aggregate_visit_budget);
        let mut sub: Vec<Vec<Query>> = vec![Vec::new(); k];
        let mut origin: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut slots: Vec<Option<QueryResult>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        for (i, q) in queries.iter().enumerate() {
            if let Some(answer) = &shed[i] {
                slots[i] = Some(QueryResult {
                    answer: answer.clone(),
                    visits: 0,
                    cached: false,
                });
                continue;
            }
            let s = self.route(q);
            sub[s].push(q.clone());
            origin[s].push(i);
        }

        let mut reports: Vec<Option<BatchReport>> = Vec::new();
        reports.resize_with(k, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = sub
                .iter()
                .enumerate()
                .filter(|(_, batch)| !batch.is_empty())
                .map(|(s, batch)| {
                    (
                        s,
                        scope.spawn(move || {
                            rbq_graph::faultpoint::fire_at("router.shard", s as u64);
                            self.shards[s].run_batch_until(batch, deadline)
                        }),
                    )
                })
                .collect();
            for (s, h) in handles {
                reports[s] = match h.join() {
                    Ok(report) => Some(report),
                    Err(_) => self.retry_shard(&sub[s], deadline),
                };
            }
        });

        // Deterministic merge: scatter to input order, fold stats, settle
        // the aggregate budget once (shards ran unbudgeted).
        let mut stats = EngineStats::default();
        let mut per_shard = Vec::with_capacity(k);
        for (s, report) in reports.into_iter().enumerate() {
            match report {
                Some(report) => {
                    stats.merge(&report.stats);
                    per_shard.push(ShardReport {
                        routed: origin[s].len(),
                        stats: report.stats,
                    });
                    for (&i, r) in origin[s].iter().zip(report.results) {
                        slots[i] = Some(r);
                    }
                }
                None => {
                    // Lost twice (original shard and its replica): settle
                    // the whole sub-batch Failed, in input order.
                    stats.failed += origin[s].len();
                    for &i in &origin[s] {
                        count_unevaluated(&mut stats, queries[i].class());
                        slots[i] = Some(QueryResult {
                            answer: Answer::Failed(
                                "shard worker lost; replica retry also lost".to_string(),
                            ),
                            visits: 0,
                            cached: false,
                        });
                    }
                    per_shard.push(ShardReport {
                        routed: origin[s].len(),
                        stats: EngineStats::default(),
                    });
                }
            }
        }
        let mut shed_count = 0;
        for (i, s) in shed.iter().enumerate() {
            if s.is_some() {
                shed_count += 1;
                count_unevaluated(&mut stats, queries[i].class());
            }
        }
        let mut results: Vec<QueryResult> = slots
            .into_iter()
            .map(|r| {
                // invariant: every slot was filled above — shed, scattered
                // from a shard report, or settled Failed.
                r.expect("query answered")
            })
            .collect();
        let settlement = settle_aggregate(&mut results, self.aggregate_visit_budget);
        stats.denied = shed_count + settlement.denied;
        stats.charged_visits = settlement.charged_visits;

        relock(&self.totals).merge(&stats);
        RouterReport {
            results,
            stats,
            per_shard,
        }
    }

    /// Second (and last) chance for a lost shard: build a cold replica
    /// over the same shared structures and re-run the sub-batch under the
    /// same deadline. Answers are deterministic functions of the batch and
    /// the epoch, so a replica's answers are byte-identical to what the
    /// lost shard would have returned — only cache warmth differs.
    fn retry_shard(&self, batch: &[Query], deadline: Option<Instant>) -> Option<BatchReport> {
        let replica = Engine::with_indexes(
            self.g.clone(),
            self.shard_cfg.clone(),
            Some(self.nbr.clone()),
            Some(self.reach.clone()),
        );
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rbq_graph::faultpoint::fire("router.shard.retry");
            replica.run_batch_until(batch, deadline)
        }))
        .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{LabelHashPartitioner, SccPartitioner};
    use rbq_engine::{Answer, BudgetSpec};
    use rbq_graph::{GraphBuilder, NodeId};
    use rbq_pattern::PatternBuilder;

    fn fig1_graph() -> Arc<Graph> {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let hg = b.add_node("HG");
        let cc = b.add_node("CC");
        let cl = b.add_node("CL");
        b.add_edge(michael, hg);
        b.add_edge(michael, cc);
        b.add_edge(cc, cl);
        b.add_edge(hg, cl);
        Arc::new(b.build())
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            pattern_budget: BudgetSpec::Ratio(1.0),
            reach_alpha: 1.0,
            threads: 2,
            ..Default::default()
        }
    }

    fn pattern_query(label: &str) -> Query {
        let mut b = PatternBuilder::new();
        let u = b.add_node(label);
        b.personalized(u).output(u);
        Query::PatternSim { pattern: b.build() }
    }

    #[test]
    fn zero_shards_rejected() {
        let Err(err) = Router::new(fig1_graph(), cfg(), 0, &LabelHashPartitioner) else {
            panic!("zero shards accepted");
        };
        assert_eq!(err, RouterError::InvalidShards);
    }

    #[test]
    fn bad_config_surfaces_typed() {
        let bad = EngineConfig {
            reach_alpha: 0.0,
            ..cfg()
        };
        match Router::new(fig1_graph(), bad, 2, &LabelHashPartitioner) {
            Err(RouterError::Engine(EngineError::InvalidAlpha { .. })) => {}
            Err(other) => panic!("expected typed alpha error, got {other:?}"),
            Ok(_) => panic!("bad config accepted"),
        }
    }

    #[test]
    fn reach_routes_to_source_owner() {
        let g = fig1_graph();
        let router = Router::new(g.clone(), cfg(), 3, &SccPartitioner).unwrap();
        for v in 0..g.node_count() as u32 {
            let q = Query::Reach {
                source: NodeId(v),
                target: NodeId(0),
            };
            assert_eq!(
                router.route(&q),
                router.assignment().shard_of(NodeId(v)).unwrap() as usize
            );
        }
        // Out-of-range source falls back to shard 0.
        let q = Query::Reach {
            source: NodeId(99),
            target: NodeId(0),
        };
        assert_eq!(router.route(&q), 0);
    }

    #[test]
    fn pattern_routes_to_anchor_owner() {
        let g = fig1_graph();
        let router = Router::new(g.clone(), cfg(), 3, &SccPartitioner).unwrap();
        // "Michael" is unique → owner of node 0.
        assert_eq!(
            router.route(&pattern_query("Michael")),
            router.assignment().shard_of(NodeId(0)).unwrap() as usize
        );
        // Unknown label → shard 0, answered as the same error Engine(1)
        // would produce.
        assert_eq!(router.route(&pattern_query("NoSuchLabel")), 0);
        let r = router.run(&pattern_query("NoSuchLabel"));
        assert!(matches!(r.answer, Answer::Error(_)));
    }

    #[test]
    fn batch_matches_single_engine() {
        let g = fig1_graph();
        let queries = vec![
            Query::Reach {
                source: NodeId(0),
                target: NodeId(3),
            },
            pattern_query("Michael"),
            Query::Reach {
                source: NodeId(3),
                target: NodeId(0),
            },
            pattern_query("NoSuchLabel"),
        ];
        let engine = Engine::new(g.clone(), cfg());
        let baseline = engine.run_batch(&queries);
        for partitioner in [&LabelHashPartitioner as &dyn Partitioner, &SccPartitioner] {
            for k in [1usize, 2, 4] {
                let router = Router::new(g.clone(), cfg(), k, partitioner).unwrap();
                let report = router.run_batch(&queries);
                assert_eq!(report.per_shard.len(), k);
                assert_eq!(
                    report.per_shard.iter().map(|s| s.routed).sum::<usize>(),
                    queries.len()
                );
                for (i, (a, b)) in baseline.results.iter().zip(&report.results).enumerate() {
                    assert_eq!(a.answer, b.answer, "answer {i} diverged at k={k}");
                    assert_eq!(a.visits, b.visits, "visits {i} diverged at k={k}");
                }
                assert_eq!(report.stats.queries, baseline.stats.queries);
                assert_eq!(report.stats.errors, baseline.stats.errors);
                assert_eq!(report.stats.total_visits, baseline.stats.total_visits);
                assert_eq!(report.stats.charged_visits, baseline.stats.charged_visits);
            }
        }
    }

    #[test]
    fn empty_batch() {
        let router = Router::new(fig1_graph(), cfg(), 2, &LabelHashPartitioner).unwrap();
        let report = router.run_batch(&[]);
        assert!(report.results.is_empty());
        assert_eq!(report.stats.queries, 0);
        assert_eq!(report.per_shard.len(), 2);
    }

    #[test]
    fn lifetime_stats_accumulate() {
        let router = Router::new(fig1_graph(), cfg(), 2, &SccPartitioner).unwrap();
        let qs = [Query::Reach {
            source: NodeId(0),
            target: NodeId(1),
        }];
        router.run_batch(&qs);
        router.run_batch(&qs);
        assert_eq!(router.stats().queries, 2);
    }

    #[test]
    fn apply_deltas_matches_fresh_router() {
        let queries = vec![
            Query::Reach {
                source: NodeId(0),
                target: NodeId(3),
            },
            pattern_query("Michael"),
            pattern_query("Newcomer"),
        ];
        let mut batch = DeltaBatch::new();
        let rank = batch.add_node("Newcomer");
        batch.add_edge(NodeId(3), NodeId(4 + rank as u32));
        batch.remove_edge(NodeId(1), NodeId(3));

        for partitioner in [&LabelHashPartitioner as &dyn Partitioner, &SccPartitioner] {
            for k in [1usize, 2, 4] {
                let mut live = Router::new(fig1_graph(), cfg(), k, partitioner).unwrap();
                let report = live.apply_deltas(&batch).unwrap();
                assert_eq!(report.nodes_added, 1);
                assert_eq!(report.edges_added, 1);
                assert_eq!(report.edges_removed, 1);

                let (g2, _) = fig1_graph().apply_delta(&batch).unwrap();
                let fresh = Router::new(Arc::new(g2), cfg(), k, partitioner).unwrap();

                // Ownership re-resolved: identical routing for every query,
                // including the one anchored at the batch-added node.
                for q in &queries {
                    assert_eq!(live.route(q), fresh.route(q), "routing diverged at k={k}");
                }
                let a = live.run_batch(&queries);
                let b = fresh.run_batch(&queries);
                for (i, (x, y)) in a.results.iter().zip(&b.results).enumerate() {
                    assert_eq!(x.answer, y.answer, "answer {i} diverged at k={k}");
                    assert_eq!(x.visits, y.visits, "visits {i} diverged at k={k}");
                }
            }
        }
    }

    #[test]
    fn apply_deltas_rejects_bad_batch() {
        let mut router = Router::new(fig1_graph(), cfg(), 2, &LabelHashPartitioner).unwrap();
        let mut batch = DeltaBatch::new();
        batch.add_edge(NodeId(0), NodeId(99));
        match router.apply_deltas(&batch) {
            Err(RouterError::Delta(DeltaError::EdgeOutOfRange { .. })) => {}
            other => panic!("expected typed delta error, got {other:?}"),
        }
        // Nothing changed: the old graph still serves.
        assert_eq!(
            router.run_batch(&[pattern_query("Michael")]).results.len(),
            1
        );
    }

    #[test]
    fn expired_deadline_times_out_every_shard() {
        let g = fig1_graph();
        let queries = vec![
            Query::Reach {
                source: NodeId(0),
                target: NodeId(3),
            },
            pattern_query("Michael"),
            pattern_query("CL"),
        ];
        let zero = EngineConfig {
            batch_timeout: Some(std::time::Duration::ZERO),
            ..cfg()
        };
        for k in [1usize, 2, 4] {
            let router = Router::new(g.clone(), zero.clone(), k, &SccPartitioner).unwrap();
            let report = router.run_batch(&queries);
            for (i, r) in report.results.iter().enumerate() {
                assert_eq!(
                    r.answer,
                    Answer::TimedOut,
                    "query {i} not timed out at k={k}"
                );
            }
            assert_eq!(report.stats.timed_out, 3);
            // Still healthy afterwards: the same router serves a clean
            // single query (Router::run takes the engine timeout path,
            // but a fresh instant makes fig. 1 unreachable to expire).
            let healthy = Router::new(g.clone(), cfg(), k, &SccPartitioner).unwrap();
            assert!(healthy.run(&queries[0]).answer.is_ok());
        }
    }

    #[test]
    fn sjf_admission_matches_single_engine() {
        let g = fig1_graph();
        let sjf = EngineConfig {
            aggregate_visit_budget: Some(5),
            admission: rbq_engine::AdmissionPolicy::ShortestJobFirst,
            ..cfg()
        };
        let queries = vec![
            Query::Reach {
                source: NodeId(0),
                target: NodeId(3),
            },
            pattern_query("Michael"),
            Query::Reach {
                source: NodeId(3),
                target: NodeId(0),
            },
        ];
        let baseline = Engine::new(g.clone(), sjf.clone()).run_batch(&queries);
        assert!(
            baseline
                .results
                .iter()
                .any(|r| matches!(r.answer, Answer::Denied { .. })),
            "fixture must actually shed"
        );
        for partitioner in [&LabelHashPartitioner as &dyn Partitioner, &SccPartitioner] {
            for k in [1usize, 2, 4] {
                let router = Router::new(g.clone(), sjf.clone(), k, partitioner).unwrap();
                let report = router.run_batch(&queries);
                for (i, (a, b)) in baseline.results.iter().zip(&report.results).enumerate() {
                    assert_eq!(a.answer, b.answer, "answer {i} diverged at k={k}");
                    assert_eq!(a.visits, b.visits, "visits {i} diverged at k={k}");
                }
                assert_eq!(report.stats.queries, baseline.stats.queries);
                assert_eq!(report.stats.denied, baseline.stats.denied);
                assert_eq!(report.stats.charged_visits, baseline.stats.charged_visits);
                assert_eq!(report.stats.reach.queries, baseline.stats.reach.queries);
                assert_eq!(report.stats.sim.queries, baseline.stats.sim.queries);
            }
        }
    }

    #[test]
    fn partition_stats_cover_graph() {
        let router = Router::new(fig1_graph(), cfg(), 2, &SccPartitioner).unwrap();
        let stats = router.partition_stats();
        assert_eq!(stats.nodes_per_shard.iter().sum::<usize>(), 4);
        assert_eq!(router.partitioner(), "scc");
        assert_eq!(router.shard_count(), 2);
    }
}
