//! The differential suite pinning the tentpole invariant:
//! `Router(k) ≡ Engine(1)` — a routed, fanned-out, merged batch is
//! byte-identical to a single engine running the same batch, for every
//! query class, shard count, partitioner, and aggregate-budget setting.
//! (The `cached` flag is schedule-dependent and excluded, as everywhere.)

use proptest::prelude::*;
use rbq_engine::{Answer, BudgetSpec, Engine, EngineConfig};
use rbq_router::{LabelHashPartitioner, Partitioner, Router, SccPartitioner};
use rbq_workload::{sample_mixed_workload, youtube_like, MixedWorkloadSpec};
use std::sync::Arc;

fn cfg() -> EngineConfig {
    EngineConfig {
        pattern_budget: BudgetSpec::Units(150),
        reach_alpha: 0.1,
        threads: 2,
        ..Default::default()
    }
}

fn assert_equivalent(
    baseline: &rbq_engine::BatchReport,
    report: &rbq_router::RouterReport,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(baseline.results.len(), report.results.len());
    for (i, (a, b)) in baseline.results.iter().zip(&report.results).enumerate() {
        prop_assert_eq!(&a.answer, &b.answer, "answer {} diverged: {}", i, ctx);
        prop_assert_eq!(a.visits, b.visits, "visits {} diverged: {}", i, ctx);
    }
    prop_assert_eq!(baseline.stats.queries, report.stats.queries, "{}", ctx);
    prop_assert_eq!(baseline.stats.errors, report.stats.errors, "{}", ctx);
    prop_assert_eq!(baseline.stats.denied, report.stats.denied, "{}", ctx);
    prop_assert_eq!(
        baseline.stats.total_visits,
        report.stats.total_visits,
        "{}",
        ctx
    );
    prop_assert_eq!(
        baseline.stats.charged_visits,
        report.stats.charged_visits,
        "{}",
        ctx
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random mixed workloads on random graphs: every shard count and both
    /// partitioners agree with a single engine, with and without an
    /// aggregate budget (including which queries come back `Denied`).
    #[test]
    fn router_equals_single_engine(
        nodes in 200usize..700,
        g_seed in 0u64..1_000,
        wl_seed in 0u64..1_000,
        count in 20usize..50,
    ) {
        let g = Arc::new(youtube_like(nodes, g_seed));
        let queries = sample_mixed_workload(
            &g,
            &MixedWorkloadSpec {
                count,
                repeat_fraction: 0.3,
                ..Default::default()
            },
            wl_seed,
        );

        // Unbudgeted baseline, and a half-budget one that must deny a
        // deterministic suffix of the delivered answers.
        let baseline = Engine::new(g.clone(), cfg()).run_batch(&queries);
        let half = baseline.stats.charged_visits / 2;
        let budgeted_cfg = EngineConfig {
            aggregate_visit_budget: Some(half),
            ..cfg()
        };
        let budgeted = Engine::new(g.clone(), budgeted_cfg.clone()).run_batch(&queries);

        for partitioner in [&LabelHashPartitioner as &dyn Partitioner, &SccPartitioner] {
            for k in [1usize, 2, 3, 8] {
                let ctx = format!("k={k} partitioner={}", partitioner.name());
                let router = Router::new(g.clone(), cfg(), k, partitioner).unwrap();
                assert_equivalent(&baseline, &router.run_batch(&queries), &ctx)?;

                let router =
                    Router::new(g.clone(), budgeted_cfg.clone(), k, partitioner).unwrap();
                let report = router.run_batch(&queries);
                assert_equivalent(&budgeted, &report, &format!("{ctx} budgeted"))?;
                // The denial mask itself must match, not just the count.
                for (i, (a, b)) in budgeted.results.iter().zip(&report.results).enumerate() {
                    prop_assert_eq!(
                        matches!(a.answer, Answer::Denied { .. }),
                        matches!(b.answer, Answer::Denied { .. }),
                        "denial mask {} diverged: {}", i, ctx
                    );
                }
            }
        }
    }

    /// Warm routers keep the invariant: a second pass over the same batch
    /// (shard caches now hot) still matches a warmed single engine.
    #[test]
    fn warm_router_equals_warm_engine(
        nodes in 200usize..500,
        wl_seed in 0u64..1_000,
    ) {
        let g = Arc::new(youtube_like(nodes, wl_seed ^ 0xdead));
        let queries = sample_mixed_workload(
            &g,
            &MixedWorkloadSpec {
                count: 30,
                repeat_fraction: 0.5,
                ..Default::default()
            },
            wl_seed,
        );
        let engine = Engine::new(g.clone(), cfg());
        engine.run_batch(&queries);
        let warm_baseline = engine.run_batch(&queries);

        for k in [2usize, 4] {
            let router = Router::new(g.clone(), cfg(), k, &SccPartitioner).unwrap();
            router.run_batch(&queries);
            let warm = router.run_batch(&queries);
            assert_equivalent(&warm_baseline, &warm, &format!("warm k={k}"))?;
        }
    }
}

/// One non-property check that reach queries exercise multiple shards (the
/// invariant would be vacuous if routing collapsed everything to shard 0).
#[test]
fn workload_actually_spreads_across_shards() {
    let g = Arc::new(youtube_like(600, 11));
    let queries = sample_mixed_workload(
        &g,
        &MixedWorkloadSpec {
            count: 60,
            repeat_fraction: 0.2,
            ..Default::default()
        },
        7,
    );
    let router = Router::new(g, cfg(), 4, &SccPartitioner).unwrap();
    let report = router.run_batch(&queries);
    let busy = report.per_shard.iter().filter(|s| s.routed > 0).count();
    assert!(busy >= 2, "only {busy} shard(s) saw traffic");
}
