//! Ablation benches for the design choices DESIGN.md §6 calls out:
//! adaptive bound `b`, pick policy, hierarchy depth, landmark selection,
//! and compression. Timing side of the `experiments ablations` report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbq_bench::{ExpConfig, PatternDataset};
use rbq_core::guard::Semantics;
use rbq_core::{
    search_reduced_graph_with, NeighborIndex, PickPolicy, ReductionConfig, ResourceBudget,
};
use rbq_reach::{HierarchicalIndex, IndexParams, SelectionStrategy};
use rbq_workload::{layered_dag, PatternSpec};
use std::hint::black_box;

fn ablation_reduction(c: &mut Criterion) {
    let cfg = ExpConfig {
        snapshot_nodes: 10_000,
        ..Default::default()
    };
    let ds = PatternDataset::youtube(&cfg);
    let qs = ds.patterns(PatternSpec::new(4, 8), 3, cfg.seed);
    let budget = ds.budget_for_paper_alpha(1.6e-5);
    let mut group = c.benchmark_group("ablation_reduction");
    group.sample_size(20);
    for (name, conf) in [
        ("adaptive_b", ReductionConfig::default()),
        (
            "fixed_b2",
            ReductionConfig {
                adaptive_b: false,
                ..Default::default()
            },
        ),
        (
            "pick_fifo",
            ReductionConfig {
                pick_policy: PickPolicy::Fifo,
                ..Default::default()
            },
        ),
        (
            "pick_random",
            ReductionConfig {
                pick_policy: PickPolicy::Random,
                ..Default::default()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for q in &qs {
                    black_box(search_reduced_graph_with(
                        &ds.g,
                        &ds.idx,
                        q,
                        &budget,
                        Semantics::Simulation,
                        conf,
                    ));
                }
            })
        });
    }
    group.finish();
    let _: Option<NeighborIndex> = None;
    let _: Option<ResourceBudget> = None;
}

fn ablation_index(c: &mut Criterion) {
    let g = layered_dag(25, 60, 0.02, 15, 42);
    let mut group = c.benchmark_group("ablation_index_build");
    group.sample_size(10);
    for (name, params) in [
        ("multi_level", IndexParams::new(0.05)),
        (
            "flat",
            IndexParams {
                max_levels: 1,
                ..IndexParams::new(0.05)
            },
        ),
        (
            "coverage_sel",
            IndexParams::new(0.05).with_selection(SelectionStrategy::Coverage),
        ),
        (
            "no_equiv_merge",
            IndexParams::new(0.05).with_equivalence_merge(false),
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("build", name), &params, |b, p| {
            b.iter(|| black_box(HierarchicalIndex::build_with(&g, *p)))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_reduction, ablation_index);
criterion_main!(benches);
