//! Criterion benches for the pattern-query experiments (Fig. 8(a)-(j)):
//! per-query latency of RBSim / RBSub against MatchOpt / VF2OPT, across
//! the α sweep and the |Q| sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbq_bench::{ExpConfig, PatternDataset};
use rbq_core::{rbsim, rbsub};
use rbq_pattern::{match_opt, vf2_opt, Vf2Config};
use rbq_workload::PatternSpec;
use std::hint::black_box;

fn bench_cfg() -> ExpConfig {
    ExpConfig {
        snapshot_nodes: 10_000,
        pattern_queries: 3,
        ..Default::default()
    }
}

/// Fig. 8(a)/(c): algorithms at three α points on the Youtube substitute.
fn pattern_alpha(c: &mut Criterion) {
    let cfg = bench_cfg();
    let ds = PatternDataset::youtube(&cfg);
    let qs = ds.patterns(PatternSpec::new(4, 8), cfg.pattern_queries, cfg.seed);
    assert!(!qs.is_empty(), "no patterns extracted");
    let mut group = c.benchmark_group("pattern_alpha");
    group.sample_size(20);
    for paper_alpha in [1.1e-5, 1.6e-5, 2.0e-5] {
        let budget = ds.budget_for_paper_alpha(paper_alpha);
        group.bench_with_input(
            BenchmarkId::new("RBSim", format!("{:.1}e-5", paper_alpha * 1e5)),
            &budget,
            |b, budget| {
                b.iter(|| {
                    for q in &qs {
                        black_box(rbsim(&ds.g, &ds.idx, q, budget));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("RBSub", format!("{:.1}e-5", paper_alpha * 1e5)),
            &budget,
            |b, budget| {
                b.iter(|| {
                    for q in &qs {
                        black_box(rbsub(&ds.g, &ds.idx, q, budget));
                    }
                })
            },
        );
    }
    group.bench_function("MatchOpt", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(match_opt(q, &ds.g));
            }
        })
    });
    group.bench_function("VF2OPT", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(vf2_opt(q, &ds.g, Vf2Config::default()));
            }
        })
    });
    group.finish();
}

/// Fig. 8(e): RBSim latency across |Q| sizes.
fn pattern_qsize(c: &mut Criterion) {
    let cfg = bench_cfg();
    let ds = PatternDataset::youtube(&cfg);
    let budget = ds.budget_for_paper_alpha(1e-4);
    let mut group = c.benchmark_group("pattern_qsize");
    group.sample_size(20);
    for n in [4usize, 6, 8] {
        let qs = ds.patterns(PatternSpec::new(n, 2 * n), cfg.pattern_queries, cfg.seed);
        if qs.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("RBSim", n), &qs, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(rbsim(&ds.g, &ds.idx, q, &budget));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("MatchOpt", n), &qs, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(match_opt(q, &ds.g));
                }
            })
        });
    }
    group.finish();
}

/// Fig. 8(i): RBSim latency across synthetic graph sizes.
fn pattern_scale(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("pattern_scale");
    group.sample_size(10);
    for nodes in [50_000usize, 100_000, 200_000] {
        let ds = PatternDataset::synthetic(nodes, cfg.seed);
        let budget = rbq_core::ResourceBudget::from_ratio(&*ds.g, 3e-4);
        let qs = ds.patterns(PatternSpec::new(4, 8), 2, cfg.seed);
        if qs.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("RBSim", nodes), &qs, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(rbsim(&ds.g, &ds.idx, q, &budget));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, pattern_alpha, pattern_qsize, pattern_scale);
criterion_main!(benches);
