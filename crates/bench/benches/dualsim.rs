//! Criterion benches for the matching core: full-graph dual simulation and
//! the ball-per-center MatchOpt baseline on the 20k-node Youtube-like
//! mixed-workload substitute. These are the dual-simulation-dominated
//! queries tracked by the `experiments perf-snapshot` trajectory
//! (`BENCH_pr3.json`): the worklist rewrite of `dual_simulation` and the
//! slice-based `GraphView` land here first.

use criterion::{criterion_group, criterion_main, Criterion};
use rbq_bench::{ExpConfig, PatternDataset};
use rbq_pattern::{dual_simulation, match_opt, strong_simulation};
use rbq_workload::PatternSpec;
use std::hint::black_box;

fn bench_cfg() -> ExpConfig {
    ExpConfig {
        snapshot_nodes: 20_000,
        ..Default::default()
    }
}

fn dualsim_20k(c: &mut Criterion) {
    let cfg = bench_cfg();
    let ds = PatternDataset::youtube(&cfg);
    let qs = ds.patterns_min_nbh(PatternSpec::new(4, 8), 4, cfg.seed, 300);
    assert!(!qs.is_empty(), "no patterns extracted");
    let mut group = c.benchmark_group("dualsim_20k");
    group.sample_size(10);
    group.bench_function("dual_simulation_full", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(dual_simulation(q, &*ds.g, None));
            }
        })
    });
    group.bench_function("match_opt", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(match_opt(q, &ds.g));
            }
        })
    });
    group.bench_function("strong_simulation", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(strong_simulation(q, &ds.g));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, dualsim_20k);
criterion_main!(benches);
