//! Criterion benches for the mixed-workload engine: batch throughput
//! across thread counts, and the reduction cache's effect on repeated
//! traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbq_core::NeighborIndex;
use rbq_engine::{BudgetSpec, Engine, EngineConfig, Query};
use rbq_reach::HierarchicalIndex;
use rbq_workload::{sample_mixed_workload, youtube_like, MixedWorkloadSpec};
use std::hint::black_box;
use std::sync::Arc;

type Shared = (
    Arc<rbq_graph::Graph>,
    Arc<NeighborIndex>,
    Arc<HierarchicalIndex>,
    Vec<Query>,
);

/// Both offline indexes are pre-built and shared into every engine so the
/// timed region contains only scheduling, cache and evaluation work.
fn setup() -> Shared {
    let g = Arc::new(youtube_like(10_000, 42));
    let idx = Arc::new(NeighborIndex::build(&g));
    let reach = Arc::new(HierarchicalIndex::build(&g, 0.05));
    let queries = sample_mixed_workload(
        &g,
        &MixedWorkloadSpec {
            count: 100,
            repeat_fraction: 0.4,
            ..Default::default()
        },
        42,
    );
    (g, idx, reach, queries)
}

fn cfg(threads: usize, cache: usize) -> EngineConfig {
    EngineConfig {
        pattern_budget: BudgetSpec::Units(300),
        reach_alpha: 0.05,
        threads,
        cache_capacity: cache,
        ..Default::default()
    }
}

/// Batch throughput vs worker count (fresh cache per engine, shared
/// pre-built indexes so only scheduling is measured).
fn engine_threads(c: &mut Criterion) {
    let (g, idx, reach, queries) = setup();
    let mut group = c.benchmark_group("engine_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let engine = Engine::with_indexes(
                        g.clone(),
                        cfg(threads, 1024),
                        Some(idx.clone()),
                        Some(reach.clone()),
                    );
                    black_box(engine.run_batch(&queries))
                })
            },
        );
    }
    group.finish();
}

/// Cache effect: cold engine vs warm engine vs cache disabled, single
/// thread so the delta is the cache alone.
fn engine_cache(c: &mut Criterion) {
    let (g, idx, reach, queries) = setup();
    let mut group = c.benchmark_group("engine_cache");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let engine = Engine::with_indexes(
                g.clone(),
                cfg(1, 1024),
                Some(idx.clone()),
                Some(reach.clone()),
            );
            black_box(engine.run_batch(&queries))
        })
    });
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let engine =
                Engine::with_indexes(g.clone(), cfg(1, 0), Some(idx.clone()), Some(reach.clone()));
            black_box(engine.run_batch(&queries))
        })
    });
    let warm = Engine::with_indexes(
        g.clone(),
        cfg(1, 1024),
        Some(idx.clone()),
        Some(reach.clone()),
    );
    warm.run_batch(&queries);
    group.bench_function("warm", |b| b.iter(|| black_box(warm.run_batch(&queries))));
    group.finish();
}

criterion_group!(benches, engine_threads, engine_cache);
criterion_main!(benches);
