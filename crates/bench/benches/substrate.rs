//! Micro-benchmarks of the graph substrate: the operations every
//! experiment bottoms out in (BFS, SCC, condensation, neighborhood balls,
//! dynamic subgraph growth).

use criterion::{criterion_group, criterion_main, Criterion};
use rbq_graph::traverse::{bfs, reaches};
use rbq_graph::types::Direction;
use rbq_graph::{DynamicSubgraph, GraphView, NodeId};
use rbq_workload::youtube_like;
use std::hint::black_box;

fn substrate(c: &mut Criterion) {
    let g = youtube_like(20_000, 42);
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);

    group.bench_function("bfs_full", |b| {
        b.iter(|| black_box(bfs(&g, NodeId(0), Direction::Out)))
    });
    group.bench_function("reaches_far_pair", |b| {
        b.iter(|| black_box(reaches(&g, NodeId(0), NodeId(19_999))))
    });
    group.bench_function("tarjan_scc", |b| {
        b.iter(|| black_box(rbq_graph::scc::tarjan_scc(&g)))
    });
    group.bench_function("condense", |b| {
        b.iter(|| black_box(rbq_graph::condense::condense(&g)))
    });
    group.bench_function("ball_r2", |b| {
        let me = rbq_workload::me_node(&g).unwrap();
        b.iter(|| black_box(rbq_graph::neighborhood::ball(&g, me, 2)))
    });
    group.bench_function("dynamic_subgraph_grow_500", |b| {
        b.iter(|| {
            let mut d = DynamicSubgraph::new(&g);
            for i in 0..500u32 {
                d.add_node(NodeId(i * 7 % g.node_count() as u32));
            }
            black_box(d.size())
        })
    });
    group.finish();
}

criterion_group!(benches, substrate);
criterion_main!(benches);
