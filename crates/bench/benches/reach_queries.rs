//! Criterion benches for the reachability experiments (Fig. 8(k)-(p)):
//! per-query latency of RBReach against BFS / BFSOPT / LM, plus offline
//! index construction costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbq_bench::ExpConfig;
use rbq_reach::{bfs_query, BfsOptIndex, HierarchicalIndex, LandmarkVectors};
use rbq_workload::{sample_hard_reachability_queries, youtube_like};
use std::hint::black_box;

/// Fig. 8(k): query latency at three α points vs baselines.
fn reach_alpha(c: &mut Criterion) {
    let cfg = ExpConfig {
        snapshot_nodes: 10_000,
        ..Default::default()
    };
    let g = youtube_like(cfg.snapshot_nodes, cfg.seed);
    let queries = sample_hard_reachability_queries(&g, 50, 0.5, cfg.seed);
    let mut group = c.benchmark_group("reach_alpha");
    group.sample_size(20);
    for alpha in [0.005f64, 0.02, 0.05] {
        let idx = HierarchicalIndex::build(&g, alpha);
        group.bench_with_input(BenchmarkId::new("RBReach", alpha), &idx, |b, idx| {
            b.iter(|| {
                for &(s, t) in &queries {
                    black_box(idx.query(s, t).reachable);
                }
            })
        });
    }
    let bfsopt = BfsOptIndex::build(&g);
    group.bench_function("BFSOPT", |b| {
        b.iter(|| {
            for &(s, t) in &queries {
                black_box(bfsopt.query(s, t));
            }
        })
    });
    let lm = LandmarkVectors::build(&g, cfg.seed);
    group.bench_function("LM", |b| {
        b.iter(|| {
            for &(s, t) in &queries {
                black_box(lm.query(s, t));
            }
        })
    });
    group.sample_size(10);
    group.bench_function("BFS", |b| {
        b.iter(|| {
            for &(s, t) in &queries {
                black_box(bfs_query(&g, s, t).0);
            }
        })
    });
    group.finish();
}

/// Offline construction costs (excluded from query budgets, §3 Remarks).
fn index_build(c: &mut Criterion) {
    let g = youtube_like(10_000, 42);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("RBIndex[0.02]", |b| {
        b.iter(|| black_box(HierarchicalIndex::build(&g, 0.02)))
    });
    group.bench_function("compress", |b| {
        b.iter(|| black_box(rbq_reach::compress_for_reachability(&g)))
    });
    group.bench_function("LM_vectors", |b| {
        b.iter(|| black_box(LandmarkVectors::build(&g, 42)))
    });
    group.bench_function("NeighborIndex", |b| {
        b.iter(|| black_box(rbq_core::NeighborIndex::build(&g)))
    });
    group.finish();
}

criterion_group!(benches, reach_alpha, index_build);
criterion_main!(benches);
