//! Criterion benches for the dynamic-reduction core (`Search`/`Pick`,
//! Fig. 3): every `PickPolicy`, a spread of resource ratios α, and — the
//! PR-5 axis — scratch reuse vs fresh construction per query. The scratch
//! rows are the steady-state serving configuration (`rbq_engine` holds one
//! `ReductionScratch` per worker); the fresh rows pay the former per-query
//! setup cost and bound what reuse buys.

use criterion::{criterion_group, criterion_main, Criterion};
use rbq_bench::{ExpConfig, PatternDataset};
use rbq_core::guard::Semantics;
use rbq_core::{
    search_reduced_graph_scratch, search_reduced_graph_with, PickPolicy, ReductionConfig,
    ReductionScratch, ResourceBudget,
};
use rbq_workload::PatternSpec;
use std::hint::black_box;

fn bench_cfg() -> ExpConfig {
    ExpConfig {
        snapshot_nodes: 20_000,
        ..Default::default()
    }
}

fn reduction_20k(c: &mut Criterion) {
    let cfg = bench_cfg();
    let ds = PatternDataset::youtube(&cfg);
    let qs = ds.patterns_min_nbh(PatternSpec::new(4, 8), 4, cfg.seed, 300);
    assert!(!qs.is_empty(), "no patterns extracted");
    let mut group = c.benchmark_group("reduction_20k");
    group.sample_size(10);
    for policy in [PickPolicy::Weighted, PickPolicy::Fifo, PickPolicy::Random] {
        for alpha in [0.01f64, 0.1, 0.5] {
            let budget = ResourceBudget::from_ratio(&*ds.g, alpha);
            let config = ReductionConfig {
                pick_policy: policy,
                ..Default::default()
            };
            let mut scratch = ReductionScratch::new();
            group.bench_function(format!("search/{policy:?}/a{alpha}/scratch"), |b| {
                b.iter(|| {
                    for q in &qs {
                        let out = search_reduced_graph_scratch(
                            &ds.g,
                            &ds.idx,
                            q,
                            &budget,
                            Semantics::Simulation,
                            config,
                            &mut scratch,
                        );
                        black_box(&out.visits);
                        scratch.recycle(out.gq);
                    }
                })
            });
            group.bench_function(format!("search/{policy:?}/a{alpha}/fresh"), |b| {
                b.iter(|| {
                    for q in &qs {
                        let out = search_reduced_graph_with(
                            &ds.g,
                            &ds.idx,
                            q,
                            &budget,
                            Semantics::Simulation,
                            config,
                        );
                        black_box(&out.visits);
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, reduction_20k);
criterion_main!(benches);
