#![warn(missing_docs)]
//! # rbq-bench — experiment harness for the paper's evaluation (§6)
//!
//! Shared machinery behind the `experiments` binary and the Criterion
//! benches: dataset construction at a configurable scale, query workload
//! preparation, timing helpers, and the α-scaling rule.
//!
//! ## α scaling
//!
//! The paper's resource ratios (e.g. `α = 1.1×10⁻⁵`) are calibrated to
//! snapshots of 6M–18M size units; our default substitutes are 30–60×
//! smaller. What the algorithms actually consume is the *absolute* budget
//! `α·|G|`, so the harness keeps that invariant: it converts each paper α
//! to the budget the paper would have allowed on the real snapshot, then
//! divides by our graph's size. Both values are printed.

use rbq_core::{NeighborIndex, ResourceBudget};
use rbq_graph::{Graph, NodeId};
use rbq_pattern::ResolvedPattern;
use rbq_workload::{extract_pattern, PatternSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Size units (`|V| + |E|`) of the paper's real snapshots.
pub const PAPER_YOUTUBE_SIZE: f64 = 1_609_969.0 + 4_509_826.0;
/// See [`PAPER_YOUTUBE_SIZE`].
pub const PAPER_YAHOO_SIZE: f64 = 3_000_022.0 + 14_979_447.0;

/// Experiment-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Node count for the snapshot substitutes (paper: 1.6M / 3M).
    pub snapshot_nodes: usize,
    /// Pattern queries averaged per configuration point.
    pub pattern_queries: usize,
    /// Reachability queries per set (paper: 100).
    pub reach_queries: usize,
    /// Timing repetitions per measurement (median reported).
    pub reps: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            snapshot_nodes: 30_000,
            pattern_queries: 5,
            reach_queries: 100,
            reps: 3,
            seed: 42,
        }
    }
}

/// A dataset prepared for pattern experiments.
///
/// Graph and index are `Arc`-shared so the engine experiments can reuse
/// them without rebuilding (see [`rbq_engine::Engine::with_indexes`]).
pub struct PatternDataset {
    /// Dataset display name.
    pub name: &'static str,
    /// The graph.
    pub g: Arc<Graph>,
    /// The offline neighbor index.
    pub idx: Arc<NeighborIndex>,
    /// Size units of the paper's corresponding real snapshot (for α
    /// conversion), or `None` to use our α verbatim.
    pub paper_size: Option<f64>,
}

impl PatternDataset {
    /// Build the Youtube substitute.
    pub fn youtube(cfg: &ExpConfig) -> Self {
        let g = Arc::new(rbq_workload::youtube_like(cfg.snapshot_nodes, cfg.seed));
        let idx = Arc::new(NeighborIndex::build(&g));
        PatternDataset {
            name: "Youtube-like",
            g,
            idx,
            paper_size: Some(PAPER_YOUTUBE_SIZE),
        }
    }

    /// Build the Yahoo substitute.
    pub fn yahoo(cfg: &ExpConfig) -> Self {
        let g = Arc::new(rbq_workload::yahoo_like(cfg.snapshot_nodes, cfg.seed));
        let idx = Arc::new(NeighborIndex::build(&g));
        PatternDataset {
            name: "Yahoo-like",
            g,
            idx,
            paper_size: Some(PAPER_YAHOO_SIZE),
        }
    }

    /// Build a synthetic graph (`|E| = 2|V|`, 15 labels) as in §6.
    pub fn synthetic(nodes: usize, seed: u64) -> Self {
        let g = Arc::new(rbq_workload::uniform_random(nodes, 2 * nodes, 15, seed));
        let idx = Arc::new(NeighborIndex::build(&g));
        PatternDataset {
            name: "synthetic",
            g,
            idx,
            paper_size: None,
        }
    }

    /// Convert a paper α to a [`ResourceBudget`] on this graph, holding
    /// the absolute unit budget `α_paper × paper_size` fixed.
    pub fn budget_for_paper_alpha(&self, paper_alpha: f64) -> ResourceBudget {
        match self.paper_size {
            Some(ps) => {
                let units = (paper_alpha * ps).round().max(1.0) as usize;
                // `from_units` clamps to |G| itself.
                ResourceBudget::from_units(&*self.g, units)
            }
            None => ResourceBudget::from_ratio(&*self.g, paper_alpha.min(1.0)),
        }
    }

    /// Extract `n` resolvable patterns of the given size.
    ///
    /// Patterns are constrained to undirected diameter ≤ 3: the paper's
    /// `(n, 2n)` specs are dense (average query degree 4), which keeps
    /// diameters small; tree-shaped extractions with large `d_Q` would give
    /// the baselines quadratically larger neighborhoods than the paper's
    /// queries did.
    pub fn patterns(&self, spec: PatternSpec, n: usize, seed: u64) -> Vec<ResolvedPattern> {
        self.patterns_min_nbh(spec, n, seed, 0)
    }

    /// Like [`PatternDataset::patterns`], but keep only queries whose
    /// `d_Q`-neighborhood has at least `min_nbh` size units. The paper's
    /// personalized queries sit in neighborhoods of ~600 units (0.01% of
    /// `|G|`), which is what makes the `α|G|` budget *bind*; trivially
    /// small neighborhoods are answered exactly at any α and flatten the
    /// accuracy curves.
    pub fn patterns_min_nbh(
        &self,
        spec: PatternSpec,
        n: usize,
        seed: u64,
        min_nbh: usize,
    ) -> Vec<ResolvedPattern> {
        (0..2000u64)
            .filter_map(|s| extract_pattern(&self.g, spec, seed.wrapping_add(s)))
            .filter(|p| p.is_connected() && p.undirected_diameter() <= 3)
            .filter_map(|p| p.resolve(&self.g).ok())
            .filter(|q| q.dq() >= 1)
            .filter(|q| min_nbh == 0 || dq_neighborhood_size(&self.g, q) >= min_nbh)
            .take(n)
            .collect()
    }
}

/// Median wall time of `reps` runs of `f` (after one warmup; with
/// `reps == 1` the single run is the measurement — used for multi-second
/// baselines where a warmup would double the cost for no variance gain).
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    if reps > 1 {
        f(); // warmup
    }
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Pretty-print seconds with appropriate unit.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Geometric mean helper for speedup summaries.
///
/// An empty input is the *neutral* speedup `1.0` — returning `0.0` (as a
/// naive implementation would) renders as a bogus "0.00×" line when a
/// snapshot section has no comparable entries.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The size `|G_dQ(v_p)|` of a query's relevant neighborhood (Table 2's
/// denominator): nodes of the `d_Q`-ball plus its induced edges, counted
/// directly off the sorted ball (each edge once, from its source) — no
/// per-call hash set or induced-subgraph construction.
pub fn dq_neighborhood_size(g: &Graph, q: &ResolvedPattern) -> usize {
    let nodes: Vec<NodeId> = rbq_pattern::strongsim::ball_nodes(g, q.vp(), q.dq());
    let mut edges = 0usize;
    for &v in &nodes {
        for &w in g.out(v) {
            if nodes.binary_search(&w).is_ok() {
                edges += 1;
            }
        }
    }
    nodes.len() + edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::GraphView;

    #[test]
    fn budget_scaling_holds_absolute_units() {
        let cfg = ExpConfig {
            snapshot_nodes: 5_000,
            ..Default::default()
        };
        let ds = PatternDataset::youtube(&cfg);
        let b = ds.budget_for_paper_alpha(1.1e-5);
        // 1.1e-5 * 6.12M ≈ 67 units regardless of our graph size.
        assert!((60..=75).contains(&b.max_units), "{}", b.max_units);
    }

    #[test]
    fn patterns_are_resolvable() {
        let cfg = ExpConfig {
            snapshot_nodes: 3_000,
            ..Default::default()
        };
        let ds = PatternDataset::youtube(&cfg);
        let qs = ds.patterns(PatternSpec::new(4, 8), 3, 1);
        assert!(!qs.is_empty());
        for q in qs {
            assert!(q.dq() >= 1);
        }
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_empty_is_neutral() {
        // Regression: an empty section used to report a "0.00x" speedup.
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn geomean_singleton_is_identity() {
        assert!((geomean(&[3.5]) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn dq_neighborhood_size_matches_induced_subgraph() {
        let cfg = ExpConfig {
            snapshot_nodes: 2_000,
            ..Default::default()
        };
        let ds = PatternDataset::youtube(&cfg);
        let qs = ds.patterns(PatternSpec::new(4, 8), 3, 7);
        assert!(!qs.is_empty());
        for q in &qs {
            let nodes = rbq_pattern::strongsim::ball_nodes(ds.g.as_ref(), q.vp(), q.dq());
            let sub = rbq_graph::InducedSubgraph::new(&ds.g, nodes);
            assert_eq!(dq_neighborhood_size(&ds.g, q), sub.size());
        }
    }

    #[test]
    fn time_median_returns_positive() {
        let d = time_median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn fmt_dur_units() {
        assert!(fmt_dur(Duration::from_secs(2)).ends_with('s'));
        assert!(fmt_dur(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_micros(5)).ends_with("µs"));
    }
}
