//! Regenerate every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! cargo run --release -p rbq-bench --bin experiments -- all
//! cargo run --release -p rbq-bench --bin experiments -- fig8a fig8c table2
//! cargo run --release -p rbq-bench --bin experiments -- fig8k --nodes 20000
//! ```
//!
//! Experiment ids: `table2`, `fig8a`–`fig8p`, `engine`, `ablations`,
//! `perf-snapshot`, `all`.
//! Options: `--nodes N` (snapshot substitute size, default 30000),
//! `--queries N` (patterns per point, default 5), `--reach-queries N`
//! (default 100), `--reps N` (timing repetitions, median reported;
//! default 3 — raise on noisy machines), `--seed N`,
//! `--synthetic-scale N` (largest synthetic |V|, default 1000000),
//! `--out PATH` / `--compare PATH` (perf-snapshot JSON output and
//! optional baseline to diff against), `--demo-nodes N` (perf-snapshot
//! only: adds a large multi-shard router demo row on an N-node graph).
//!
//! Paper α values are converted to our graph sizes by holding the absolute
//! budget `α·|G|` fixed (see `rbq-bench` crate docs); every row prints
//! both the paper α and the absolute budget.

use rbq_bench::*;
use rbq_core::{
    pattern_accuracy, rbsim, rbsim_any_with, rbsim_with, rbsub_scratch, reachability_accuracy,
    PatternAnswer, PatternScratch, PickPolicy, ReductionConfig, ResourceBudget,
};
use rbq_engine::{Answer, BudgetSpec, Engine, EngineConfig, Query};
use rbq_graph::GraphView;
use rbq_pattern::{match_opt, strong_simulation, vf2_opt, ResolvedPattern, Vf2Config};
use rbq_reach::{
    bfs_query, BfsOptIndex, HierarchicalIndex, IndexParams, LandmarkVectors, SelectionStrategy,
};
use rbq_router::{Router, SccPartitioner};
use rbq_workload::{
    reachability_ground_truth, sample_hard_reachability_queries, sample_mixed_workload,
    MixedWorkloadSpec, PatternSpec,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Practical cap on VF2 search steps: dense (n,2n) patterns over
/// label-homophilous regions can admit combinatorially many embeddings;
/// the cap (~seconds of work) truncates only those pathological queries.
fn vf2_cfg() -> Vf2Config {
    Vf2Config {
        max_steps: Some(20_000_000),
        ..Default::default()
    }
}

/// An engine sharing the dataset's graph and neighbor index, with the
/// given absolute per-query budget. The cache is disabled for accuracy
/// sweeps (every evaluation should pay its own cost) — the `engine`
/// experiment measures caching separately.
fn engine_for(ds: &PatternDataset, budget: &ResourceBudget) -> Engine {
    Engine::with_indexes(
        ds.g.clone(),
        EngineConfig {
            pattern_budget: BudgetSpec::Units(budget.max_units),
            vf2: vf2_cfg(),
            cache_capacity: 0,
            ..Default::default()
        },
        Some(ds.idx.clone()),
        None,
    )
}

/// Matches of a batch's pattern answers, empty on error/denial.
fn pattern_matches(report: &rbq_engine::BatchReport) -> Vec<Vec<rbq_graph::NodeId>> {
    report
        .results
        .iter()
        .map(|r| match &r.answer {
            Answer::Pattern { matches, .. } => matches.clone(),
            _ => Vec::new(),
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::default();
    let mut synthetic_scale = 1_000_000usize;
    // Default to a non-committed name: committed BENCH_pr<N>.json records
    // are written deliberately via --out, never by omission.
    let mut out_path = String::from("bench-snapshot.json");
    let mut compare_path: Option<String> = None;
    let mut demo_nodes = 0usize;
    let mut exps: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => {
                i += 1;
                cfg.snapshot_nodes = args[i].parse().expect("--nodes N");
            }
            "--queries" => {
                i += 1;
                cfg.pattern_queries = args[i].parse().expect("--queries N");
            }
            "--reach-queries" => {
                i += 1;
                cfg.reach_queries = args[i].parse().expect("--reach-queries N");
            }
            "--reps" => {
                i += 1;
                cfg.reps = args[i].parse().expect("--reps N");
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed N");
            }
            "--synthetic-scale" => {
                i += 1;
                synthetic_scale = args[i].parse().expect("--synthetic-scale N");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--compare" => {
                i += 1;
                compare_path = Some(args[i].clone());
            }
            "--demo-nodes" => {
                i += 1;
                demo_nodes = args[i].parse().expect("--demo-nodes N");
            }
            other => exps.push(other.to_string()),
        }
        i += 1;
    }
    if exps.is_empty() {
        eprintln!("usage: experiments [options] <table2|fig8a..fig8p|ablations|perf-snapshot|all>");
        std::process::exit(2);
    }
    let all = exps.iter().any(|e| e == "all");
    let want = |id: &str| all || exps.iter().any(|e| e == id);

    let yt = |cfg: &ExpConfig| PatternDataset::youtube(cfg);
    let yh = |cfg: &ExpConfig| PatternDataset::yahoo(cfg);

    if want("table2") {
        let a = yt(&cfg);
        let b = yh(&cfg);
        table2(&cfg, &a, &b);
    }
    if want("fig8a") {
        pattern_time_vs_alpha(&cfg, &yt(&cfg), "fig8a");
    }
    if want("fig8b") {
        pattern_time_vs_alpha(&cfg, &yh(&cfg), "fig8b");
    }
    if want("fig8c") {
        pattern_accuracy_vs_alpha(&cfg, &yt(&cfg), "fig8c");
    }
    if want("fig8d") {
        pattern_accuracy_vs_alpha(&cfg, &yh(&cfg), "fig8d");
    }
    if want("fig8e") {
        pattern_time_vs_qsize(&cfg, &yt(&cfg), "fig8e");
    }
    if want("fig8f") {
        pattern_time_vs_qsize(&cfg, &yh(&cfg), "fig8f");
    }
    if want("fig8g") {
        pattern_accuracy_vs_qsize(&cfg, &yt(&cfg), "fig8g");
    }
    if want("fig8h") {
        pattern_accuracy_vs_qsize(&cfg, &yh(&cfg), "fig8h");
    }
    if want("fig8i") || want("fig8j") {
        pattern_vs_scale(&cfg, synthetic_scale);
    }
    if want("fig8k") || want("fig8m") {
        reach_vs_alpha(&cfg, &yt(&cfg), "fig8k/fig8m");
    }
    if want("fig8l") || want("fig8n") {
        reach_vs_alpha(&cfg, &yh(&cfg), "fig8l/fig8n");
    }
    if want("fig8o") || want("fig8p") {
        reach_vs_scale(&cfg, synthetic_scale);
    }
    if want("engine") {
        engine_serving(&cfg);
    }
    if want("ablations") {
        ablations(&cfg);
    }
    // Explicit-only (not part of `all`): it writes a snapshot file.
    if exps.iter().any(|e| e == "perf-snapshot") {
        perf_snapshot(&cfg, &out_path, compare_path.as_deref(), demo_nodes);
    }
}

// --------------------------------------------------------- perf-snapshot

/// The matching-core timing suite behind `BENCH_prN.json` snapshots:
/// dual-simulation-dominated queries on the Youtube-like substitute, timed
/// end to end and written as machine-readable JSON so every PR can record
/// its before/after trajectory. Run with `--compare OLD.json` to embed the
/// old run as `baseline` and report per-bench speedups.
///
/// Schema `rbq-perf-snapshot-v6` (PR 10): adds `snapshot_load_vs_build`
/// — the wall time of [`load_snapshot`] on the suite graph (the snapshot
/// is written once to a scratch directory, then loaded per rep). This is
/// a whole-graph duration, not a per-query figure; the text-format parse
/// it replaces is timed alongside and printed to stdout as context. The
/// row is the baseline that ROADMAP item 3's mmap-backed loader must
/// beat. v5 (PR 8) added `rbsim_deadline_overhead`
/// — the warm `rbsim` loop with an unreachable deadline armed on the
/// scratch, isolating the cooperative cancellation tick's cost (the
/// deadline guard must stay within ~5% of the plain `rbsim` row).
/// v4 (PR 7) added the live-update rows —
/// `delta_apply` (per-op cost of [`Engine::apply_deltas`] on an
/// edge-churn batch: overlay apply + rebuild of both indexes + epoch
/// swap) and `rbsim_postcompact` (the bounded hot path re-timed on the
/// compacted post-delta graph, which must stay within noise of the
/// pre-delta `rbsim` row). v3 (PR 6) added the mixed-workload serving
/// rows — `engine_mixed` (one engine, the pre-sharding serving path) and
/// `router_shards{1,2,4,8}` (the same batch through a [`Router`] with the
/// SCC partitioner), so router overhead is tracked per PR — plus an
/// optional `demo` record (`--demo-nodes N`) running the sharded path on a
/// large graph. v2 (PR 5) added the `rbsub` and `engine_batch` rows, and
/// the bounded rows (`rbsim`, `rbsub`, `rbsim_any`) run through a warm
/// [`PatternScratch`] — the steady-state serving configuration. The
/// compare path tolerates baselines missing rows (older schemas):
/// speedups are reported for the intersection.
///
/// Convention (ROADMAP "bench snapshots"): run with `--nodes 20000` and
/// commit the output as `BENCH_pr<N>.json`.
fn perf_snapshot(cfg: &ExpConfig, out_path: &str, compare: Option<&str>, demo_nodes: usize) {
    println!("\n== perf-snapshot: dual-simulation-dominated suite ==");
    let ds = PatternDataset::youtube(cfg);
    let qs = ds.patterns_min_nbh(PatternSpec::new(4, 8), 8, cfg.seed, 300);
    assert!(!qs.is_empty(), "no extractable patterns");
    println!(
        "graph |G| = {} ({} nodes), {} queries, {} reps",
        ds.g.size(),
        ds.g.node_count(),
        qs.len(),
        cfg.reps
    );
    let budget = ds.budget_for_paper_alpha(1.6e-5);
    let nq = qs.len() as u32;
    let mut scratch = PatternScratch::new();
    let mut ans = PatternAnswer::default();

    let mut rows: Vec<(&'static str, Duration)> = Vec::new();

    // Full-graph dual simulation: the fixpoint everything else builds on.
    rows.push((
        "dualsim_full",
        time_median(cfg.reps, || {
            for q in &qs {
                std::hint::black_box(rbq_pattern::dual_simulation(q, &*ds.g, None));
            }
        }) / nq,
    ));
    // MatchOpt: one ball-restricted dual simulation per candidate center.
    rows.push((
        "match_opt",
        time_median(cfg.reps, || {
            for q in &qs {
                std::hint::black_box(match_opt(q, &ds.g));
            }
        }) / nq,
    ));
    // Prefiltered strong simulation (the `Q(G)` exact evaluator).
    rows.push((
        "strong_simulation",
        time_median(cfg.reps, || {
            for q in &qs {
                std::hint::black_box(strong_simulation(q, &ds.g));
            }
        }) / nq,
    ));
    // The bounded pipeline: reduction + Q(G_Q), warm scratch (serving).
    rows.push((
        "rbsim",
        time_median(cfg.reps, || {
            for q in &qs {
                rbsim_with(&ds.g, &ds.idx, q, &budget, &mut scratch, &mut ans);
                std::hint::black_box(&ans);
            }
        }) / nq,
    ));
    // Same pipeline with an unreachable deadline armed: measures the
    // cooperative cancellation tick (clock read every TICK_INTERVAL
    // iterations). Must stay within ~5% of the `rbsim` row — the cost of
    // deadline-aware serving when deadlines never fire.
    {
        let far = Instant::now() + Duration::from_secs(3600);
        scratch.set_cancel(rbq_graph::CancelToken::at(far));
        rows.push((
            "rbsim_deadline_overhead",
            time_median(cfg.reps, || {
                for q in &qs {
                    rbsim_with(&ds.g, &ds.idx, q, &budget, &mut scratch, &mut ans);
                    std::hint::black_box(&ans);
                }
            }) / nq,
        ));
        scratch.set_cancel(rbq_graph::CancelToken::none());
    }
    // Bounded isomorphism: the same reduction under the degree-enriched
    // guard, then VF2 on G_Q.
    rows.push((
        "rbsub",
        time_median(cfg.reps, || {
            for q in &qs {
                rbsub_scratch(
                    &ds.g,
                    &ds.idx,
                    q,
                    &budget,
                    vf2_cfg(),
                    &mut scratch,
                    &mut ans,
                );
                std::hint::black_box(&ans);
            }
        }) / nq,
    ));
    // Anonymous matching: exercises per-query-node candidate seeding.
    rows.push((
        "rbsim_any",
        time_median(cfg.reps, || {
            for q in &qs {
                std::hint::black_box(rbsim_any_with(
                    &ds.g,
                    &ds.idx,
                    q.pattern(),
                    &budget,
                    rbq_core::AnyConfig::default(),
                    &mut scratch,
                ));
            }
        }) / nq,
    ));
    // The serving path end to end: the engine's batch scheduler (1 worker,
    // cache off) over the same simulation queries — scheduler + scratch
    // pool + canonicalization overhead on top of the bare `rbsim` row.
    {
        let engine = Engine::with_indexes(
            ds.g.clone(),
            EngineConfig {
                pattern_budget: BudgetSpec::Units(budget.max_units),
                vf2: vf2_cfg(),
                cache_capacity: 0,
                threads: 1,
                ..Default::default()
            },
            Some(ds.idx.clone()),
            None,
        );
        let batch: Vec<Query> = qs
            .iter()
            .map(|q| Query::PatternSim {
                pattern: q.pattern().clone(),
            })
            .collect();
        rows.push((
            "engine_batch",
            time_median(cfg.reps, || {
                std::hint::black_box(engine.run_batch(&batch));
            }) / nq,
        ));
    }
    // Sharded serving: one mixed workload through a single engine
    // (`engine_mixed`) and through routers at increasing shard counts.
    // Router overhead per query = `router_shardsK` − `engine_mixed`;
    // answers are byte-identical across rows (pinned by the differential
    // suite in `rbq_router`). The cache stays off so every repetition
    // measures the same work.
    {
        let workload = sample_mixed_workload(
            &ds.g,
            &MixedWorkloadSpec {
                count: 200,
                repeat_fraction: 0.3,
                ..Default::default()
            },
            cfg.seed,
        );
        let nw = workload.len() as u32;
        let mixed_cfg = EngineConfig {
            pattern_budget: BudgetSpec::Units(300),
            reach_alpha: 0.05,
            threads: 4,
            cache_capacity: 0,
            vf2: vf2_cfg(),
            ..Default::default()
        };
        let reach_idx = Arc::new(HierarchicalIndex::build(&ds.g, 0.05));
        let engine = Engine::with_indexes(
            ds.g.clone(),
            mixed_cfg.clone(),
            Some(ds.idx.clone()),
            Some(reach_idx),
        );
        rows.push((
            "engine_mixed",
            time_median(cfg.reps, || {
                std::hint::black_box(engine.run_batch(&workload));
            }) / nw,
        ));
        for (shards, name) in [
            (1usize, "router_shards1"),
            (2, "router_shards2"),
            (4, "router_shards4"),
            (8, "router_shards8"),
        ] {
            let router = Router::new(ds.g.clone(), mixed_cfg.clone(), shards, &SccPartitioner)
                .expect("router");
            rows.push((
                name,
                time_median(cfg.reps, || {
                    std::hint::black_box(router.run_batch(&workload));
                }) / nw,
            ));
        }
    }

    // Live updates: a ~0.1%-of-|E| edge-churn batch through
    // `Engine::apply_deltas` (overlay apply + rebuild of both indexes +
    // epoch swap), timed per op; then the bounded hot path re-timed on
    // the compacted post-delta graph. Removals target real edges so the
    // batch exercises both overlay directions. The batch is edge-only
    // (no node adds) so every repetition does the same amount of work.
    {
        let mut batch = rbq_graph::DeltaBatch::new();
        let n = ds.g.node_count() as u32;
        let mut state = cfg.seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let ops = (ds.g.edge_count() / 1000).max(64);
        for i in 0..ops {
            let u = rbq_graph::NodeId(next() % n);
            if i % 2 == 0 {
                batch.add_edge(u, rbq_graph::NodeId(next() % n));
            } else if let Some(&v) = ds.g.out(u).first() {
                batch.remove_edge(u, v);
            }
        }
        let nops = batch.len().max(1) as u32;
        let reach_idx = Arc::new(HierarchicalIndex::build(&ds.g, 0.05));
        let engine = Engine::with_indexes(
            ds.g.clone(),
            EngineConfig {
                pattern_budget: BudgetSpec::Units(budget.max_units),
                reach_alpha: 0.05,
                vf2: vf2_cfg(),
                ..Default::default()
            },
            Some(ds.idx.clone()),
            Some(reach_idx),
        );
        rows.push((
            "delta_apply",
            time_median(cfg.reps, || {
                engine.apply_deltas(&batch).expect("valid delta batch");
            }) / nops,
        ));
        let g2 = Arc::new(engine.graph().compact());
        let idx2 = rbq_core::NeighborIndex::build(&g2);
        let budget2 = ResourceBudget::from_units(&*g2, budget.max_units);
        let qs2: Vec<ResolvedPattern> = qs
            .iter()
            .filter_map(|q| q.pattern().resolve(&g2).ok())
            .collect();
        assert!(!qs2.is_empty(), "patterns survive the delta batch");
        rows.push((
            "rbsim_postcompact",
            time_median(cfg.reps, || {
                for q in &qs2 {
                    rbsim_with(&g2, &idx2, q, &budget2, &mut scratch, &mut ans);
                    std::hint::black_box(&ans);
                }
            }) / qs2.len() as u32,
        ));
    }

    // Durable-state snapshot load vs text-format build: how fast a
    // recovering process gets the CSR back from `snapshot.bin` compared
    // to re-parsing the `#rbq-graph` text it replaces.
    {
        let dir = std::env::temp_dir().join(format!("rbq_bench_snapshot_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create snapshot scratch dir");
        let snap_path = dir.join(rbq_graph::snapshot::SNAPSHOT_FILE);
        rbq_graph::write_snapshot(&ds.g, &snap_path, 0).expect("write bench snapshot");
        let t_load = time_median(cfg.reps, || {
            std::hint::black_box(
                rbq_graph::load_snapshot(&snap_path).expect("bench snapshot loads"),
            );
        });
        rows.push(("snapshot_load_vs_build", t_load));
        let mut text = Vec::new();
        rbq_graph::io::write_graph(&ds.g, &mut text).expect("serialize graph text");
        let t_text = time_median(cfg.reps, || {
            std::hint::black_box(rbq_graph::io::read_graph(&text[..]).expect("graph text parses"));
        });
        println!(
            "snapshot load {} vs text-format parse {} ({:.1}x)",
            fmt_dur(t_load),
            fmt_dur(t_text),
            t_text.as_secs_f64() / t_load.as_secs_f64().max(1e-12)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    for (name, d) in &rows {
        println!("{name:<20} {:>12} /query", fmt_dur(*d));
    }

    // Optional large-graph demo: the sharded path end to end on an
    // N-node graph (SCC partitioner, 4 shards), recorded in the snapshot
    // as a `demo` object — coverage that sharding works at scale, not a
    // per-PR comparison row.
    let demo = (demo_nodes > 0).then(|| {
        println!("\n-- demo: {demo_nodes}-node graph through a 4-shard scc router --");
        let g = Arc::new(rbq_workload::youtube_like(demo_nodes, cfg.seed));
        let workload = sample_mixed_workload(
            &g,
            &MixedWorkloadSpec {
                count: 400,
                repeat_fraction: 0.3,
                ..Default::default()
            },
            cfg.seed,
        );
        let demo_cfg = EngineConfig {
            pattern_budget: BudgetSpec::Units(300),
            reach_alpha: 1e-3,
            cache_capacity: 0,
            vf2: vf2_cfg(),
            ..Default::default()
        };
        let t_build = Instant::now();
        let router = Router::new(g.clone(), demo_cfg, 4, &SccPartitioner).expect("router");
        let build = t_build.elapsed();
        let pstats = router.partition_stats();
        let t = Instant::now();
        let report = router.run_batch(&workload);
        let wall = t.elapsed();
        let (bmax, bmin) = pstats.balance();
        println!(
            "|V| = {}, |E| = {}; build {} (indexes + partition), {:.2}% edges cut, balance {bmin}..{bmax} nodes",
            g.node_count(),
            g.edge_count(),
            fmt_dur(build),
            pstats.cut_fraction() * 100.0
        );
        println!(
            "{} queries in {} ({:.0} q/s), {} charged visits, {} denied",
            workload.len(),
            fmt_dur(wall),
            workload.len() as f64 / wall.as_secs_f64().max(1e-9),
            report.stats.charged_visits,
            report.stats.denied
        );
        (
            g.node_count(),
            g.edge_count(),
            workload.len(),
            build,
            wall,
            pstats.cut_fraction(),
        )
    });

    let baseline = compare.and_then(|p| match std::fs::read_to_string(p) {
        Ok(s) => Some(parse_snapshot_benches(&s)),
        Err(e) => {
            eprintln!("perf-snapshot: cannot read --compare {p}: {e}");
            None
        }
    });

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"rbq-perf-snapshot-v6\",\n");
    json.push_str(&format!("  \"nodes\": {},\n", ds.g.node_count()));
    json.push_str(&format!("  \"graph_size\": {},\n", ds.g.size()));
    json.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    json.push_str(&format!("  \"queries\": {},\n", qs.len()));
    json.push_str(&format!("  \"reps\": {},\n", cfg.reps));
    json.push_str(&format!(
        "  \"budget_units\": {},\n  \"benches\": {{\n",
        budget.max_units
    ));
    for (i, (name, d)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{name}\": {{ \"per_query_us\": {:.1} }}{comma}\n",
            d.as_secs_f64() * 1e6
        ));
    }
    json.push_str("  }");
    if let Some((nodes, edges, queries, build, wall, cut)) = &demo {
        json.push_str(",\n  \"demo\": {\n");
        json.push_str(&format!("    \"nodes\": {nodes},\n"));
        json.push_str(&format!("    \"edges\": {edges},\n"));
        json.push_str("    \"shards\": 4,\n");
        json.push_str("    \"partitioner\": \"scc\",\n");
        json.push_str(&format!("    \"queries\": {queries},\n"));
        json.push_str(&format!(
            "    \"build_ms\": {:.1},\n",
            build.as_secs_f64() * 1e3
        ));
        json.push_str(&format!(
            "    \"wall_ms\": {:.1},\n",
            wall.as_secs_f64() * 1e3
        ));
        json.push_str(&format!(
            "    \"per_query_us\": {:.1},\n",
            wall.as_secs_f64() * 1e6 / (*queries).max(1) as f64
        ));
        json.push_str(&format!("    \"cut_fraction\": {cut:.4}\n"));
        json.push_str("  }");
    }
    if let Some(base) = &baseline {
        json.push_str(",\n  \"baseline\": {\n");
        for (i, (name, us)) in base.iter().enumerate() {
            let comma = if i + 1 < base.len() { "," } else { "" };
            json.push_str(&format!(
                "    \"{name}\": {{ \"per_query_us\": {us:.1} }}{comma}\n"
            ));
        }
        json.push_str("  },\n  \"speedup_vs_baseline\": {\n");
        let speedups: Vec<(String, f64)> = rows
            .iter()
            .filter_map(|(name, d)| {
                let old = base.iter().find(|(n, _)| n == name)?.1;
                Some((name.to_string(), old / (d.as_secs_f64() * 1e6).max(1e-9)))
            })
            .collect();
        for (i, (name, s)) in speedups.iter().enumerate() {
            let comma = if i + 1 < speedups.len() { "," } else { "" };
            json.push_str(&format!("    \"{name}\": {s:.2}{comma}\n"));
            println!("{name:<20} speedup {s:.2}x");
        }
        json.push_str("  }");
        // geomean(&[]) is the neutral 1.00x, so a baseline with no
        // overlapping bench names prints an honest no-change summary.
        let gm = geomean(&speedups.iter().map(|(_, s)| *s).collect::<Vec<f64>>());
        println!("{:<20} speedup {gm:.2}x", "geomean");
    }
    json.push_str("\n}\n");
    std::fs::write(out_path, json).expect("write perf snapshot");
    println!("wrote {out_path}");
}

/// Extract `name -> per_query_us` pairs from a snapshot written by
/// [`perf_snapshot`]. The format is strictly line-based (one bench per
/// line), so no general JSON parser is needed; only the first occurrence of
/// each name is kept (the `benches` section precedes `baseline`).
fn parse_snapshot_benches(s: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    for line in s.lines() {
        let Some(rest) = line.trim().strip_prefix('"') else {
            continue;
        };
        let Some((name, tail)) = rest.split_once('"') else {
            continue;
        };
        let Some(val) = tail.split("\"per_query_us\":").nth(1) else {
            continue;
        };
        let num: String = val
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(us) = num.parse::<f64>() {
            if !out.iter().any(|(n, _)| n == name) {
                out.push((name.to_string(), us));
            }
        }
    }
    out
}

/// Mixed-workload batch serving through `rbq_engine`: thread scaling and
/// the reduction cache's effect on a repeat-heavy 200-query stream.
fn engine_serving(cfg: &ExpConfig) {
    println!("\n== engine: mixed-workload batch serving (Youtube-like) ==");
    let ds = PatternDataset::youtube(cfg);
    let workload = sample_mixed_workload(
        &ds.g,
        &MixedWorkloadSpec {
            count: 200,
            repeat_fraction: 0.3,
            ..Default::default()
        },
        cfg.seed,
    );
    // Pre-build the reach index once: the rows should compare scheduling
    // and caching, not repeated offline construction.
    let reach_idx = Arc::new(HierarchicalIndex::build(&ds.g, 0.05));
    let mk = |threads: usize, cache: usize| {
        Engine::with_indexes(
            ds.g.clone(),
            EngineConfig {
                pattern_budget: BudgetSpec::Units(300),
                reach_alpha: 0.05,
                threads,
                cache_capacity: cache,
                vf2: vf2_cfg(),
                ..Default::default()
            },
            Some(ds.idx.clone()),
            Some(reach_idx.clone()),
        )
    };
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>9} {:>12}",
        "threads", "cache", "wall", "q/s", "hit rate", "visits"
    );
    for (threads, cache) in [(1, 0), (1, 1024), (2, 1024), (4, 1024), (8, 1024)] {
        let engine = mk(threads, cache);
        let t = Instant::now();
        let report = engine.run_batch(&workload);
        let wall = t.elapsed();
        println!(
            "{:>8} {:>8} {:>10} {:>10.0} {:>8.1}% {:>12}",
            threads,
            cache,
            fmt_dur(wall),
            workload.len() as f64 / wall.as_secs_f64().max(1e-9),
            report.stats.cache_hit_rate() * 100.0,
            report.stats.charged_visits
        );
    }
    // Warm-cache rerun: the steady state of repeated template traffic.
    let engine = mk(4, 1024);
    engine.run_batch(&workload);
    let t = Instant::now();
    let report = engine.run_batch(&workload);
    let wall = t.elapsed();
    println!(
        "{:>8} {:>8} {:>10} {:>10.0} {:>8.1}% {:>12}  (warm rerun)",
        4,
        1024,
        fmt_dur(wall),
        workload.len() as f64 / wall.as_secs_f64().max(1e-9),
        report.stats.cache_hit_rate() * 100.0,
        report.stats.charged_visits
    );
    println!("(answers are input-ordered and thread-count invariant; see rbq_engine)");
}

/// Paper α sweep for Figures 8(a)-(d): 1.1..2.0 ×10⁻⁵.
fn alpha_sweep_pattern() -> Vec<f64> {
    (11..=20).map(|x| x as f64 * 1e-6).collect()
}

/// Paper |Q| sweep for Figures 8(e)-(h).
fn qsize_sweep() -> Vec<PatternSpec> {
    (4..=8).map(|n| PatternSpec::new(n, 2 * n)).collect()
}

/// Paper α sweep for Figures 8(k)-(n): 1..10 ×10⁻⁴.
fn alpha_sweep_reach() -> Vec<f64> {
    (1..=10).map(|x| x as f64 * 1e-4).collect()
}

// ---------------------------------------------------------------- table 2

fn table2(cfg: &ExpConfig, yt: &PatternDataset, yh: &PatternDataset) {
    println!("\n== Table 2: ratio of |G_Q| to |G_dQ(v_p)| (alpha x 10^-5) ==");
    println!(
        "{:<10} {:<14} {:>8} {:>8} {:>8}",
        "algorithm", "dataset", "1.1", "1.6", "2.0"
    );
    for ds in [yt, yh] {
        let qs = ds.patterns_min_nbh(PatternSpec::new(4, 8), cfg.pattern_queries, cfg.seed, 300);
        for (algo_name, is_sim) in [("RBSim", true), ("RBSub", false)] {
            let mut cells = Vec::new();
            for paper_alpha in [1.1e-5, 1.6e-5, 2.0e-5] {
                let budget = ds.budget_for_paper_alpha(paper_alpha);
                let mut ratios = Vec::new();
                for q in &qs {
                    let nbh = dq_neighborhood_size(&ds.g, q).max(1);
                    let ans = if is_sim {
                        rbsim(&ds.g, &ds.idx, q, &budget)
                    } else {
                        rbq_core::rbsub_with(&ds.g, &ds.idx, q, &budget, vf2_cfg())
                    };
                    ratios.push(ans.gq_size as f64 / nbh as f64);
                }
                let a = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
                cells.push(format!("{:.0}%", a * 100.0));
            }
            println!(
                "{:<10} {:<14} {:>8} {:>8} {:>8}",
                algo_name, ds.name, cells[0], cells[1], cells[2]
            );
        }
    }
    println!("(paper: RBSim 7-21%, RBSub 8-24%, increasing with alpha)");
}

// ------------------------------------------------- fig 8(a)/(b): time vs α

fn pattern_time_vs_alpha(cfg: &ExpConfig, ds: &PatternDataset, tag: &str) {
    println!(
        "\n== {tag}: pattern query time vs alpha ({}, |G|={}) ==",
        ds.name,
        ds.g.size()
    );
    let qs = ds.patterns_min_nbh(PatternSpec::new(4, 8), cfg.pattern_queries, cfg.seed, 300);
    eprintln!("[{tag}] {} queries", qs.len());

    // Baselines are alpha-independent and run for seconds: measure once
    // with a single repetition.
    let once = ExpConfig { reps: 1, ..*cfg };
    let t_matchopt = avg_time(&once, &qs, |q| {
        std::hint::black_box(match_opt(q, &ds.g));
    });
    let t_vf2 = avg_time(&once, &qs, |q| {
        std::hint::black_box(vf2_opt(q, &ds.g, vf2_cfg()));
    });

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "alpha(e-5)", "RBSim", "MatchOpt", "RBSub", "VF2OPT", "budget"
    );
    for paper_alpha in alpha_sweep_pattern() {
        let budget = ds.budget_for_paper_alpha(paper_alpha);
        let t_rbsim = avg_time(cfg, &qs, |q| {
            std::hint::black_box(rbsim(&ds.g, &ds.idx, q, &budget));
        });
        let t_rbsub = avg_time(cfg, &qs, |q| {
            std::hint::black_box(rbq_core::rbsub_with(&ds.g, &ds.idx, q, &budget, vf2_cfg()));
        });
        println!(
            "{:>10.1} {:>12} {:>12} {:>12} {:>12} {:>8}",
            paper_alpha * 1e5,
            fmt_dur(t_rbsim),
            fmt_dur(t_matchopt),
            fmt_dur(t_rbsub),
            fmt_dur(t_vf2),
            budget.max_units
        );
    }
    println!("(paper: RBSim ~24.4%/18.8% and RBSub ~16.7%/14.4% of baseline time)");
}

// --------------------------------------------- fig 8(c)/(d): accuracy vs α

fn pattern_accuracy_vs_alpha(cfg: &ExpConfig, ds: &PatternDataset, tag: &str) {
    println!(
        "\n== {tag}: pattern accuracy vs alpha ({}, |G|={}) ==",
        ds.name,
        ds.g.size()
    );
    let qs = ds.patterns_min_nbh(PatternSpec::new(4, 8), cfg.pattern_queries, cfg.seed, 300);
    let exact_sim: Vec<_> = qs.iter().map(|q| strong_simulation(q, &ds.g)).collect();
    let exact_iso: Vec<_> = qs
        .iter()
        .map(|q| vf2_opt(q, &ds.g, vf2_cfg()).output_matches)
        .collect();
    println!(
        "{:>10} {:>10} {:>10} {:>8}",
        "alpha(e-5)", "RBSim", "RBSub", "budget"
    );
    // The bounded evaluations run as one engine batch per α — the serving
    // path (shared indexes, work-stealing workers) rather than bare loops.
    let batch: Vec<Query> = qs
        .iter()
        .map(|q| Query::PatternSim {
            pattern: q.pattern().clone(),
        })
        .chain(qs.iter().map(|q| Query::PatternIso {
            pattern: q.pattern().clone(),
        }))
        .collect();
    for paper_alpha in alpha_sweep_pattern() {
        let budget = ds.budget_for_paper_alpha(paper_alpha);
        let engine = engine_for(ds, &budget);
        let answers = pattern_matches(&engine.run_batch(&batch));
        let (sim_ans, iso_ans) = answers.split_at(qs.len());
        let acc_sim: Vec<f64> = sim_ans
            .iter()
            .enumerate()
            .map(|(i, m)| pattern_accuracy(&exact_sim[i], m).f1)
            .collect();
        let acc_sub: Vec<f64> = iso_ans
            .iter()
            .enumerate()
            .map(|(i, m)| pattern_accuracy(&exact_iso[i], m).f1)
            .collect();
        println!(
            "{:>10.1} {:>9.1}% {:>9.1}% {:>8}",
            paper_alpha * 1e5,
            avg(&acc_sim) * 100.0,
            avg(&acc_sub) * 100.0,
            budget.max_units
        );
    }
    println!("(paper: 87-100%, exactly 100% for alpha >= 1.5e-5)");
}

// --------------------------------------------- fig 8(e)/(f): time vs |Q|

fn pattern_time_vs_qsize(cfg: &ExpConfig, ds: &PatternDataset, tag: &str) {
    println!(
        "\n== {tag}: pattern query time vs |Q| ({}, alpha=1e-4 paper) ==",
        ds.name
    );
    let budget = ds.budget_for_paper_alpha(1e-4);
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "|Q|", "RBSim", "MatchOpt", "RBSub", "VF2OPT"
    );
    for spec in qsize_sweep() {
        let qs = ds.patterns_min_nbh(spec, cfg.pattern_queries, cfg.seed, 300);
        if qs.is_empty() {
            println!("({},{}): no extractable patterns", spec.nodes, spec.edges);
            continue;
        }
        let t_rbsim = avg_time(cfg, &qs, |q| {
            std::hint::black_box(rbsim(&ds.g, &ds.idx, q, &budget));
        });
        let once = ExpConfig { reps: 1, ..*cfg };
        // Baselines cost seconds-to-minutes per query at |Q| >= (6,12)
        // (the paper's Fig. 8(f) y-axis reaches 1000s); time a 2-query
        // sample there.
        let t_qs: &[ResolvedPattern] = if spec.nodes >= 6 {
            &qs[..qs.len().min(2)]
        } else {
            &qs
        };
        let t_matchopt = avg_time(&once, t_qs, |q| {
            std::hint::black_box(match_opt(q, &ds.g));
        });
        let t_rbsub = avg_time(cfg, &qs, |q| {
            std::hint::black_box(rbq_core::rbsub_with(&ds.g, &ds.idx, q, &budget, vf2_cfg()));
        });
        let t_vf2 = avg_time(&once, t_qs, |q| {
            std::hint::black_box(vf2_opt(q, &ds.g, vf2_cfg()));
        });
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12}",
            format!("({},{})", spec.nodes, spec.edges),
            fmt_dur(t_rbsim),
            fmt_dur(t_matchopt),
            fmt_dur(t_rbsub),
            fmt_dur(t_vf2)
        );
    }
    println!("(paper: all grow with |Q|; RBSim/RBSub less sensitive than baselines)");
}

// ----------------------------------------- fig 8(g)/(h): accuracy vs |Q|

fn pattern_accuracy_vs_qsize(cfg: &ExpConfig, ds: &PatternDataset, tag: &str) {
    println!(
        "\n== {tag}: pattern accuracy vs |Q| ({}, alpha=1e-4 paper) ==",
        ds.name
    );
    let budget = ds.budget_for_paper_alpha(1e-4);
    println!("{:>8} {:>10} {:>10}", "|Q|", "RBSim", "RBSub");
    for spec in qsize_sweep() {
        let qs = ds.patterns_min_nbh(spec, cfg.pattern_queries, cfg.seed, 300);
        if qs.is_empty() {
            println!("({},{}): no extractable patterns", spec.nodes, spec.edges);
            continue;
        }
        let mut acc_sim = Vec::new();
        let mut acc_sub = Vec::new();
        for q in &qs {
            let exact = strong_simulation(q, &ds.g);
            let a = rbsim(&ds.g, &ds.idx, q, &budget);
            acc_sim.push(pattern_accuracy(&exact, &a.matches).f1);
            let exact_i = vf2_opt(q, &ds.g, vf2_cfg()).output_matches;
            let b = rbq_core::rbsub_with(&ds.g, &ds.idx, q, &budget, vf2_cfg());
            acc_sub.push(pattern_accuracy(&exact_i, &b.matches).f1);
        }
        println!(
            "{:>8} {:>9.1}% {:>9.1}%",
            format!("({},{})", spec.nodes, spec.edges),
            avg(&acc_sim) * 100.0,
            avg(&acc_sub) * 100.0
        );
    }
    println!("(paper: decreasing with |Q| but >= 86% / >= 80%; 100% up to (5,10))");
}

// --------------------------------------- fig 8(i)/(j): synthetic scaling

fn pattern_vs_scale(cfg: &ExpConfig, max_nodes: usize) {
    println!("\n== fig8i/fig8j: pattern time & accuracy vs |V| (synthetic, |E|=2|V|) ==");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "|V|", "RBSim", "MatchOpt", "RBSub", "VF2OPT", "accSim", "accSub"
    );
    let sizes: Vec<usize> = (1..=5).map(|i| i * max_nodes / 5).collect();
    for nodes in sizes {
        let ds = PatternDataset::synthetic(nodes, cfg.seed);
        // Paper: alpha = 3e-5 on graphs 10x larger; same absolute budget.
        let alpha = 3e-4;
        let budget = ResourceBudget::from_ratio(&*ds.g, alpha);
        let qs = ds.patterns(PatternSpec::new(4, 8), cfg.pattern_queries, cfg.seed);
        if qs.is_empty() {
            println!("{nodes:>10} (no extractable patterns)");
            continue;
        }
        let t_rbsim = avg_time(cfg, &qs, |q| {
            std::hint::black_box(rbsim(&ds.g, &ds.idx, q, &budget));
        });
        let once = ExpConfig { reps: 1, ..*cfg };
        let t_matchopt = avg_time(&once, &qs, |q| {
            std::hint::black_box(match_opt(q, &ds.g));
        });
        let t_rbsub = avg_time(cfg, &qs, |q| {
            std::hint::black_box(rbq_core::rbsub_with(&ds.g, &ds.idx, q, &budget, vf2_cfg()));
        });
        let t_vf2 = avg_time(&once, &qs, |q| {
            std::hint::black_box(vf2_opt(q, &ds.g, vf2_cfg()));
        });
        let mut acc_sim = Vec::new();
        let mut acc_sub = Vec::new();
        for q in &qs {
            let exact = strong_simulation(q, &ds.g);
            let a = rbsim(&ds.g, &ds.idx, q, &budget);
            acc_sim.push(pattern_accuracy(&exact, &a.matches).f1);
            let exact_i = vf2_opt(q, &ds.g, vf2_cfg()).output_matches;
            let b = rbq_core::rbsub_with(&ds.g, &ds.idx, q, &budget, vf2_cfg());
            acc_sub.push(pattern_accuracy(&exact_i, &b.matches).f1);
        }
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12} {:>8.1}% {:>8.1}%",
            nodes,
            fmt_dur(t_rbsim),
            fmt_dur(t_matchopt),
            fmt_dur(t_rbsub),
            fmt_dur(t_vf2),
            avg(&acc_sim) * 100.0,
            avg(&acc_sub) * 100.0
        );
    }
    println!("(paper: accuracy >= 97%/94%, improving with |V|; times scale mildly)");
}

// --------------------------------------- fig 8(k)-(n): reach time/accuracy

fn reach_vs_alpha(cfg: &ExpConfig, ds: &PatternDataset, tag: &str) {
    println!(
        "\n== {tag}: reachability time & accuracy vs alpha ({}, |G|={}) ==",
        ds.name,
        ds.g.size()
    );
    let queries = sample_hard_reachability_queries(&ds.g, cfg.reach_queries, 0.5, cfg.seed);
    let truth = reachability_ground_truth(&ds.g, &queries);
    let nq = queries.len().max(1) as u32;

    // Baselines (alpha-independent).
    let t_bfs = time_median(cfg.reps.min(2), || {
        for &(s, t) in &queries {
            std::hint::black_box(bfs_query(&ds.g, s, t).0);
        }
    }) / nq;
    let bfsopt = BfsOptIndex::build(&ds.g);
    let t_bfsopt = time_median(cfg.reps, || {
        for &(s, t) in &queries {
            std::hint::black_box(bfsopt.query(s, t));
        }
    }) / nq;
    let lm = LandmarkVectors::build(&ds.g, cfg.seed);
    let t_lm = time_median(cfg.reps, || {
        for &(s, t) in &queries {
            std::hint::black_box(lm.query(s, t));
        }
    }) / nq;
    let lm_ans: Vec<bool> = queries.iter().map(|&(s, t)| lm.query(s, t)).collect();
    let lm_acc = reachability_accuracy(&truth, &lm_ans).f1;

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9} {:>8}",
        "alpha(e-4)", "RBReach", "BFSOPT", "BFS", "LM", "accRB", "accLM", "budget"
    );
    for paper_alpha in alpha_sweep_reach() {
        // Hold the absolute budget fixed, like the pattern experiments.
        let units = match ds.paper_size {
            Some(ps) => ((paper_alpha * ps) as usize).min(ds.g.size() - 1),
            None => (paper_alpha * ds.g.size() as f64) as usize,
        };
        let alpha_ours = (units as f64 / ds.g.size() as f64).clamp(1e-6, 0.99);
        let idx = Arc::new(HierarchicalIndex::build(&ds.g, alpha_ours));
        let t_rb = time_median(cfg.reps, || {
            for &(s, t) in &queries {
                std::hint::black_box(idx.query(s, t).reachable);
            }
        }) / nq;
        // Accuracy answers come off the engine's batch path, sharing the
        // timing loop's index.
        let engine = Engine::with_indexes(
            ds.g.clone(),
            EngineConfig {
                reach_alpha: alpha_ours,
                ..Default::default()
            },
            None,
            Some(idx.clone()),
        );
        let batch: Vec<Query> = queries
            .iter()
            .map(|&(source, target)| Query::Reach { source, target })
            .collect();
        let rb_ans: Vec<bool> = engine
            .run_batch(&batch)
            .results
            .iter()
            .map(|r| {
                matches!(
                    r.answer,
                    Answer::Reach {
                        reachable: true,
                        ..
                    }
                )
            })
            .collect();
        let rb_acc = reachability_accuracy(&truth, &rb_ans).f1;
        println!(
            "{:>10.0} {:>12} {:>12} {:>12} {:>12} {:>8.1}% {:>8.1}% {:>8}",
            paper_alpha * 1e4,
            fmt_dur(t_rb),
            fmt_dur(t_bfsopt),
            fmt_dur(t_bfs),
            fmt_dur(t_lm),
            rb_acc * 100.0,
            lm_acc * 100.0,
            units
        );
    }
    println!("(paper: RBReach 1.6%/17.4% of BFS/BFSOPT time; accuracy >= 96%, 100% for alpha >= 5e-4; LM 69-74%)");
}

// ------------------------------------------- fig 8(o)/(p): reach scaling

fn reach_vs_scale(cfg: &ExpConfig, max_nodes: usize) {
    println!("\n== fig8o/fig8p: reachability time & accuracy vs |V| (synthetic, |E|=2|V|) ==");
    println!(
        "{:>10} {:>13} {:>13} {:>12} {:>12} {:>12} {:>9} {:>9} {:>8}",
        "|V|", "RB[2e-3]", "RB[1e-3]", "BFSOPT", "BFS", "LM", "acc2e-3", "acc1e-3", "accLM"
    );
    let sizes: Vec<usize> = (1..=5).map(|i| i * max_nodes / 5).collect();
    for nodes in sizes {
        let g = rbq_workload::uniform_random(nodes, 2 * nodes, 15, cfg.seed);
        let queries = sample_hard_reachability_queries(&g, cfg.reach_queries, 0.5, cfg.seed);
        let truth = reachability_ground_truth(&g, &queries);
        let nq = queries.len().max(1) as u32;
        let t_bfs = time_median(1, || {
            for &(s, t) in &queries {
                std::hint::black_box(bfs_query(&g, s, t).0);
            }
        }) / nq;
        let bfsopt = BfsOptIndex::build(&g);
        let t_bfsopt = time_median(cfg.reps, || {
            for &(s, t) in &queries {
                std::hint::black_box(bfsopt.query(s, t));
            }
        }) / nq;
        let lm = LandmarkVectors::build(&g, cfg.seed);
        let t_lm = time_median(cfg.reps, || {
            for &(s, t) in &queries {
                std::hint::black_box(lm.query(s, t));
            }
        }) / nq;
        let lm_ans: Vec<bool> = queries.iter().map(|&(s, t)| lm.query(s, t)).collect();
        let lm_acc = reachability_accuracy(&truth, &lm_ans).f1;

        let mut cells: Vec<(Duration, f64)> = Vec::new();
        for alpha in [2e-3, 1e-3] {
            let idx = HierarchicalIndex::build(&g, alpha);
            let t_rb = time_median(cfg.reps, || {
                for &(s, t) in &queries {
                    std::hint::black_box(idx.query(s, t).reachable);
                }
            }) / nq;
            let ans: Vec<bool> = queries
                .iter()
                .map(|&(s, t)| idx.query(s, t).reachable)
                .collect();
            cells.push((t_rb, reachability_accuracy(&truth, &ans).f1));
        }
        println!(
            "{:>10} {:>13} {:>13} {:>12} {:>12} {:>12} {:>8.1}% {:>8.1}% {:>7.1}%",
            nodes,
            fmt_dur(cells[0].0),
            fmt_dur(cells[1].0),
            fmt_dur(t_bfsopt),
            fmt_dur(t_bfs),
            fmt_dur(t_lm),
            cells[0].1 * 100.0,
            cells[1].1 * 100.0,
            lm_acc * 100.0
        );
    }
    println!("(paper: RBReach 58.8x/5.2x faster than BFS/BFSOPT; accuracy >= 97%/94%, improving with |V|)");
}

// ------------------------------------------------------------- ablations

fn ablations(cfg: &ExpConfig) {
    println!("\n== ablations (DESIGN.md §6) ==");
    let ds = PatternDataset::youtube(cfg);
    let qs = ds.patterns_min_nbh(PatternSpec::new(4, 8), cfg.pattern_queries, cfg.seed, 300);
    let budget = ds.budget_for_paper_alpha(1.6e-5);

    // (1) adaptive bound b vs fixed.
    println!("\n-- ablation_bound_b: adaptive restart vs fixed b (RBSim accuracy) --");
    for (name, conf) in [
        ("adaptive (paper)", ReductionConfig::default()),
        (
            "fixed b=2",
            ReductionConfig {
                adaptive_b: false,
                ..Default::default()
            },
        ),
        (
            "fixed b=8",
            ReductionConfig {
                initial_b: 8,
                adaptive_b: false,
                ..Default::default()
            },
        ),
    ] {
        let mut accs = Vec::new();
        for q in &qs {
            let exact = strong_simulation(q, &ds.g);
            let red = rbq_core::search_reduced_graph_with(
                &ds.g,
                &ds.idx,
                q,
                &budget,
                rbq_core::guard::Semantics::Simulation,
                conf,
            );
            let m = rbq_pattern::strong_simulation_on_view(q, &red.gq);
            accs.push(pattern_accuracy(&exact, &m).f1);
        }
        println!("{name:<18} accuracy {:>6.1}%", avg(&accs) * 100.0);
    }

    // (2) pick policy.
    println!("\n-- ablation_pick_policy: weighted vs FIFO vs random (RBSim accuracy) --");
    for (name, policy) in [
        ("weighted (paper)", PickPolicy::Weighted),
        ("fifo", PickPolicy::Fifo),
        ("random", PickPolicy::Random),
    ] {
        let conf = ReductionConfig {
            pick_policy: policy,
            ..Default::default()
        };
        let mut accs = Vec::new();
        for q in &qs {
            let exact = strong_simulation(q, &ds.g);
            let red = rbq_core::search_reduced_graph_with(
                &ds.g,
                &ds.idx,
                q,
                &budget,
                rbq_core::guard::Semantics::Simulation,
                conf,
            );
            let m = rbq_pattern::strong_simulation_on_view(q, &red.gq);
            accs.push(pattern_accuracy(&exact, &m).f1);
        }
        println!("{name:<18} accuracy {:>6.1}%", avg(&accs) * 100.0);
    }

    // (3) hierarchy vs flat, (4) landmark selection, (5) compression.
    let g = rbq_workload::layered_dag(40, 80, 0.015, 15, cfg.seed);
    let queries = sample_hard_reachability_queries(&g, cfg.reach_queries, 0.6, cfg.seed);
    let truth = reachability_ground_truth(&g, &queries);
    let acc_of = |params: IndexParams| {
        let idx = HierarchicalIndex::build_with(&g, params);
        let got: Vec<bool> = queries
            .iter()
            .map(|&(s, t)| idx.query(s, t).reachable)
            .collect();
        reachability_accuracy(&truth, &got).f1
    };
    println!("\n-- ablation_hierarchy: multi-level vs flat index (RBReach accuracy, hard DAG) --");
    println!(
        "multi-level        accuracy {:>6.1}%",
        acc_of(IndexParams::new(0.05)) * 100.0
    );
    println!(
        "flat (1 level)     accuracy {:>6.1}%",
        acc_of(IndexParams {
            max_levels: 1,
            ..IndexParams::new(0.05)
        }) * 100.0
    );

    println!("\n-- ablation_landmark_select: selection strategy (RBReach accuracy, hard DAG) --");
    for (name, s) in [
        ("deg*rank (paper)", SelectionStrategy::DegreeRank),
        ("coverage", SelectionStrategy::Coverage),
        ("degree-only", SelectionStrategy::DegreeOnly),
        ("random", SelectionStrategy::Random(7)),
    ] {
        println!(
            "{name:<18} accuracy {:>6.1}%",
            acc_of(IndexParams::new(0.05).with_selection(s)) * 100.0
        );
    }

    println!("\n-- ablation_compress: equivalence merge on/off (index size, Youtube-like) --");
    for (name, merge) in [("scc+equivalence", true), ("scc only", false)] {
        let idx = HierarchicalIndex::build_with(
            &ds.g,
            IndexParams::new(0.01).with_equivalence_merge(merge),
        );
        println!(
            "{name:<18} dag nodes {:>8}, landmarks {:>6}, levels {}",
            idx.compressed.dag.node_count(),
            idx.num_landmarks(),
            idx.levels()
        );
    }
}

// ------------------------------------------------------------- utilities

fn avg(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Average per-query median time of `f` over the query set.
fn avg_time<F: FnMut(&ResolvedPattern)>(
    cfg: &ExpConfig,
    qs: &[ResolvedPattern],
    mut f: F,
) -> Duration {
    if qs.is_empty() {
        return Duration::ZERO;
    }
    let total = time_median(cfg.reps, || {
        for q in qs {
            f(q);
        }
    });
    total / qs.len() as u32
}
