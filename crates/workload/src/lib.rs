#![warn(missing_docs)]
//! # rbq-workload — datasets and query workloads for the evaluation
//!
//! The paper evaluates on two real snapshots — **Youtube** (1.6M nodes,
//! 4.5M edges) and **Yahoo** web (3M nodes, 15M edges) — plus synthetic
//! graphs `|V| = 2M..10M, |E| = 2|V|` over a 15-label alphabet (§6). The
//! real snapshots are not redistributable, so [`generate`] provides
//! statistically matched substitutes (see `DESIGN.md` §3, "Substitutions"):
//! preferential-attachment digraphs with the same edge/node ratios and
//! label alphabet, scaled by a size parameter.
//!
//! [`queries`] mirrors the paper's query generators: patterns controlled by
//! `(|V_p|, |E_p|)` with labels drawn from the data graph and a designated
//! personalized node (every generated graph gives node 0 the unique label
//! `"ME"`), and reachability query sets sampled as ordered node pairs.
//!
//! [`mixed`] samples heterogeneous [`rbq_engine::Query`] streams (with
//! tunable repetition) for engine batch serving.

pub mod generate;
pub mod mixed;
pub mod queries;

pub use generate::{
    layered_dag, me_node, power_law, power_law_full, power_law_with, social_groups, uniform_random,
    yahoo_like, youtube_like,
};
pub use mixed::{sample_mixed_workload, MixedWorkloadSpec};
pub use queries::{
    extract_pattern, reachability_ground_truth, sample_hard_reachability_queries,
    sample_reachability_queries, PatternSpec,
};
