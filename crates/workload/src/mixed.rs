//! Mixed engine workloads: a seeded stream of heterogeneous queries
//! (reachability, simulation, isomorphism) with tunable repetition, the
//! traffic shape [`rbq_engine::Engine::run_batch`] is built for.
//!
//! Repetition matters: personalized-search traffic re-issues the same
//! query templates constantly, which is exactly what the engine's
//! canonical-signature reduction cache exploits. `repeat_fraction`
//! controls how much of the pattern share re-uses an earlier pattern.

use crate::generate::me_node;
use crate::queries::{extract_pattern, sample_reachability_queries, PatternSpec};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rbq_engine::Query;
use rbq_graph::Graph;

/// Shape of a mixed workload.
#[derive(Debug, Clone, Copy)]
pub struct MixedWorkloadSpec {
    /// Total queries to sample.
    pub count: usize,
    /// Fraction of reachability queries, `[0, 1]`.
    pub reach_fraction: f64,
    /// Fraction *of the pattern share* answered under isomorphism
    /// semantics (the rest run simulation), `[0, 1]`.
    pub iso_fraction: f64,
    /// Fraction of pattern queries that repeat an earlier pattern of the
    /// workload verbatim, `[0, 1)` — the cache-hit driver.
    pub repeat_fraction: f64,
    /// Size of freshly extracted patterns.
    pub spec: PatternSpec,
    /// Reachable share of the reachability queries (see
    /// [`sample_reachability_queries`]).
    pub positive_fraction: f64,
}

impl Default for MixedWorkloadSpec {
    fn default() -> Self {
        MixedWorkloadSpec {
            count: 100,
            reach_fraction: 0.4,
            iso_fraction: 0.3,
            repeat_fraction: 0.3,
            spec: PatternSpec::new(4, 8),
            positive_fraction: 0.5,
        }
    }
}

/// Sample a shuffled mixed workload over `g`.
///
/// Deterministic in `(g, spec, seed)`. Pattern extraction needs the
/// graph's `"ME"` anchor; when it is absent, or extraction keeps failing,
/// the pattern share degrades to additional reachability queries rather
/// than erroring — the returned workload always has `spec.count` queries
/// (unless the graph is empty, which yields an empty workload).
pub fn sample_mixed_workload(g: &Graph, spec: &MixedWorkloadSpec, seed: u64) -> Vec<Query> {
    assert!((0.0..=1.0).contains(&spec.reach_fraction));
    assert!((0.0..=1.0).contains(&spec.iso_fraction));
    assert!((0.0..=1.0).contains(&spec.repeat_fraction));
    if g.node_count() == 0 || spec.count == 0 {
        return Vec::new();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6d69_7865_642d_7131);
    let want_reach = (spec.count as f64 * spec.reach_fraction).round() as usize;
    let want_pattern = spec.count - want_reach.min(spec.count);

    // Pattern pool: fresh extractions, reused for the repeat share.
    let mut pool: Vec<rbq_pattern::Pattern> = Vec::new();
    let mut patterns: Vec<Query> = Vec::new();
    if me_node(g).is_some() {
        let mut extract_seed = seed;
        let mut failures = 0usize;
        while patterns.len() < want_pattern && failures < want_pattern * 20 + 200 {
            let repeat = !pool.is_empty() && rng.gen_bool(spec.repeat_fraction);
            let pattern = if repeat {
                pool.choose(&mut rng).cloned()
            } else {
                extract_seed = extract_seed.wrapping_add(1);
                let p = extract_pattern(g, spec.spec, extract_seed);
                if let Some(p) = &p {
                    pool.push(p.clone());
                }
                p
            };
            match pattern {
                Some(pattern) => {
                    let iso = rng.gen_bool(spec.iso_fraction);
                    patterns.push(if iso {
                        Query::PatternIso { pattern }
                    } else {
                        Query::PatternSim { pattern }
                    });
                }
                None => failures += 1,
            }
        }
    }

    // Reachability share plus whatever the pattern share couldn't fill.
    let reach_count = spec.count - patterns.len();
    let mut out: Vec<Query> =
        sample_reachability_queries(g, reach_count, spec.positive_fraction, seed)
            .into_iter()
            .map(|(source, target)| Query::Reach { source, target })
            .collect();
    out.append(&mut patterns);
    out.shuffle(&mut rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{uniform_random, youtube_like};
    use rbq_engine::QueryClass;

    #[test]
    fn mix_has_requested_size_and_all_classes() {
        let g = youtube_like(2_000, 3);
        let spec = MixedWorkloadSpec {
            count: 60,
            ..Default::default()
        };
        let w = sample_mixed_workload(&g, &spec, 7);
        assert_eq!(w.len(), 60);
        let count = |c: QueryClass| w.iter().filter(|q| q.class() == c).count();
        assert!(count(QueryClass::Reach) >= 10);
        assert!(count(QueryClass::Sim) >= 5);
        assert!(count(QueryClass::Iso) >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = youtube_like(1_000, 5);
        let spec = MixedWorkloadSpec {
            count: 30,
            ..Default::default()
        };
        let a = sample_mixed_workload(&g, &spec, 11);
        let b = sample_mixed_workload(&g, &spec, 11);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_line().unwrap(), y.to_line().unwrap());
        }
    }

    #[test]
    fn repeats_present_for_cache_hits() {
        let g = youtube_like(2_000, 3);
        let spec = MixedWorkloadSpec {
            count: 80,
            reach_fraction: 0.2,
            repeat_fraction: 0.5,
            ..Default::default()
        };
        let w = sample_mixed_workload(&g, &spec, 13);
        let mut lines: Vec<String> = w
            .iter()
            .filter(|q| q.class() != QueryClass::Reach)
            .map(|q| q.to_line().unwrap())
            .collect();
        let total = lines.len();
        lines.sort_unstable();
        lines.dedup();
        assert!(
            lines.len() < total,
            "expected repeated patterns ({total} distinct)"
        );
    }

    #[test]
    fn no_me_node_degrades_to_reachability() {
        // uniform_random labels node 0 "ME"? Strip by relabeling.
        let g0 = uniform_random(50, 100, 5, 1);
        let mut b = rbq_graph::GraphBuilder::new();
        for _ in g0.nodes() {
            b.add_node("X");
        }
        for (u, v) in g0.edges() {
            b.add_edge(u, v);
        }
        let g = b.build();
        let w = sample_mixed_workload(&g, &MixedWorkloadSpec::default(), 3);
        assert_eq!(w.len(), 100);
        assert!(w.iter().all(|q| q.class() == QueryClass::Reach));
    }

    #[test]
    fn empty_graph_empty_workload() {
        let g = rbq_graph::GraphBuilder::new().build();
        assert!(sample_mixed_workload(&g, &MixedWorkloadSpec::default(), 0).is_empty());
    }
}
