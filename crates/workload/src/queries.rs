//! Query generators (§6 "Query generator").
//!
//! * **Patterns** controlled by `(|V_p|, |E_p|)`, labels drawn from the
//!   data graph, personalized node = the graph's unique `"ME"` node,
//!   random output node. Patterns are *extracted* from the data graph
//!   around the personalized node, so subgraph-isomorphism queries are
//!   satisfiable by construction (the paper draws labels "from those
//!   datasets"; planting additionally pins a witness).
//! * **Reachability query sets**: ordered node pairs sampled from the
//!   graph, optionally balanced between reachable and unreachable pairs so
//!   accuracy numbers are informative.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rbq_graph::traverse::bfs;
use rbq_graph::types::Direction;
use rbq_graph::{Graph, NodeId};
use rbq_pattern::{Pattern, PatternBuilder};
use rustc_hash::{FxHashMap, FxHashSet};

/// Size specification `(|V_p|, |E_p|)` for generated patterns — the paper
/// sweeps (4,8) to (8,16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternSpec {
    /// Number of query nodes.
    pub nodes: usize,
    /// Number of query edges.
    pub edges: usize,
}

impl PatternSpec {
    /// The paper's notation `|Q| = (nodes, edges)`.
    pub fn new(nodes: usize, edges: usize) -> Self {
        assert!(nodes >= 1);
        PatternSpec { nodes, edges }
    }
}

/// Extract a connected pattern of roughly `spec` size around the graph's
/// personalized node (node 0, labeled `"ME"`).
///
/// Strategy: a random undirected exploration from node 0 picks
/// `spec.nodes` distinct data nodes (always including node 0); the pattern
/// copies their labels and the data edges among them (up to `spec.edges`,
/// preferring a connected skeleton). The output node is the picked node
/// farthest from node 0. Returns `None` when the neighborhood is too small
/// to supply `spec.nodes` nodes.
pub fn extract_pattern(g: &Graph, spec: PatternSpec, seed: u64) -> Option<Pattern> {
    let me = crate::generate::me_node(g)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Random connected exploration.
    let mut picked: Vec<NodeId> = vec![me];
    let mut picked_set: FxHashSet<NodeId> = FxHashSet::default();
    picked_set.insert(me);
    let mut frontier: Vec<NodeId> = neighbors_undirected(g, me)
        .filter(|v| !picked_set.contains(v))
        .collect();
    frontier.sort_unstable();
    frontier.dedup();
    while picked.len() < spec.nodes {
        if frontier.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..frontier.len());
        let v = frontier.swap_remove(i);
        if !picked_set.insert(v) {
            continue;
        }
        picked.push(v);
        for w in neighbors_undirected(g, v) {
            if !picked_set.contains(&w) {
                frontier.push(w);
            }
        }
    }

    // Distances from node 0 within the picked set, for the output choice.
    let depth = bfs_depths_within(g, me, &picked_set);

    // Collect data edges among picked nodes.
    let mut inner_edges: Vec<(NodeId, NodeId)> = Vec::new();
    for &u in &picked {
        for &w in g.out(u) {
            if picked_set.contains(&w) {
                inner_edges.push((u, w));
            }
        }
    }
    if inner_edges.is_empty() && spec.nodes > 1 {
        return None;
    }

    // Keep a connected skeleton first (undirected spanning structure via
    // union-find), then fill with random extra edges up to spec.edges.
    let index_of: FxHashMap<NodeId, usize> =
        picked.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut uf: Vec<usize> = (0..picked.len()).collect();
    fn find(uf: &mut Vec<usize>, x: usize) -> usize {
        if uf[x] != x {
            let r = find(uf, uf[x]);
            uf[x] = r;
        }
        uf[x]
    }
    inner_edges.shuffle(&mut rng);
    let mut chosen: Vec<(NodeId, NodeId)> = Vec::new();
    let mut extra: Vec<(NodeId, NodeId)> = Vec::new();
    for &(u, w) in &inner_edges {
        let (a, b) = (index_of[&u], index_of[&w]);
        let (ra, rb) = (find(&mut uf, a), find(&mut uf, b));
        if ra != rb {
            uf[ra] = rb;
            chosen.push((u, w));
        } else {
            extra.push((u, w));
        }
    }
    for e in extra {
        if chosen.len() >= spec.edges {
            break;
        }
        chosen.push(e);
    }

    // If the picked nodes aren't connected by directed-data edges (possible
    // when exploration used reverse edges), the skeleton has several
    // components; patterns must be weakly connected to be useful.
    // Verify connectivity over the chosen edges.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); picked.len()];
    for &(u, w) in &chosen {
        let (a, b) = (index_of[&u], index_of[&w]);
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut seen = vec![false; picked.len()];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut cnt = 1;
    while let Some(x) = stack.pop() {
        for &y in &adj[x] {
            if !seen[y] {
                seen[y] = true;
                cnt += 1;
                stack.push(y);
            }
        }
    }
    if cnt != picked.len() {
        return None;
    }

    // Build the pattern.
    let mut pb = PatternBuilder::new();
    let mut pnode = Vec::with_capacity(picked.len());
    for &v in &picked {
        pnode.push(pb.add_node(g.node_label_str(v)));
    }
    for &(u, w) in &chosen {
        pb.add_edge(pnode[index_of[&u]], pnode[index_of[&w]]);
    }
    let output_data_node = *picked
        .iter()
        .max_by_key(|v| depth.get(v).copied().unwrap_or(0))
        .expect("picked nonempty");
    pb.personalized(pnode[0]);
    pb.output(pnode[index_of[&output_data_node]]);
    Some(pb.build())
}

fn neighbors_undirected<'a>(g: &'a Graph, v: NodeId) -> impl Iterator<Item = NodeId> + 'a {
    g.out(v).iter().chain(g.inn(v)).copied()
}

fn bfs_depths_within(
    g: &Graph,
    start: NodeId,
    within: &FxHashSet<NodeId>,
) -> FxHashMap<NodeId, usize> {
    let mut depth: FxHashMap<NodeId, usize> = FxHashMap::default();
    depth.insert(start, 0);
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        let d = depth[&v];
        for w in neighbors_undirected(g, v) {
            if within.contains(&w) && !depth.contains_key(&w) {
                depth.insert(w, d + 1);
                queue.push_back(w);
            }
        }
    }
    depth
}

/// Sample `count` ordered reachability query pairs. `positive_fraction`
/// (in `[0, 1]`) of them are guaranteed reachable (sampled along BFS
/// trees); the rest are uniform random pairs (usually unreachable in
/// sparse graphs).
pub fn sample_reachability_queries(
    g: &Graph,
    count: usize,
    positive_fraction: f64,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    assert!((0.0..=1.0).contains(&positive_fraction));
    let n = g.node_count();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    if n == 0 {
        return queries;
    }
    let want_pos = (count as f64 * positive_fraction).round() as usize;
    let mut attempts = 0usize;
    while queries.len() < want_pos && attempts < count * 20 {
        attempts += 1;
        let s = NodeId(rng.gen_range(0..n as u32));
        let (reached, _) = bfs(g, s, Direction::Out);
        if reached.len() < 2 {
            continue;
        }
        let t = reached[rng.gen_range(1..reached.len())];
        queries.push((s, t));
    }
    while queries.len() < count {
        let s = NodeId(rng.gen_range(0..n as u32));
        let t = NodeId(rng.gen_range(0..n as u32));
        queries.push((s, t));
    }
    queries.shuffle(&mut rng);
    queries
}

/// Sample `count` *hard* reachability queries: positive pairs must span
/// distinct SCCs (so the answer cannot be read off the compression alone)
/// and, when possible, lie several hops apart. Negatives are uniform
/// random unreachable-leaning pairs. This is the workload that separates
/// bounded algorithms by accuracy — same-SCC positives are answered by
/// every compression-based method for free.
pub fn sample_hard_reachability_queries(
    g: &Graph,
    count: usize,
    positive_fraction: f64,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    assert!((0.0..=1.0).contains(&positive_fraction));
    let n = g.node_count();
    let mut rng = ChaCha8Rng::seed_from_u64(seed + 0x5eed);
    let mut queries = Vec::with_capacity(count);
    if n == 0 {
        return queries;
    }
    let scc = rbq_graph::scc::tarjan_scc(g);
    let want_pos = (count as f64 * positive_fraction).round() as usize;
    let mut attempts = 0usize;
    while queries.len() < want_pos && attempts < count * 50 {
        attempts += 1;
        let s = NodeId(rng.gen_range(0..n as u32));
        let (reached, _) = bfs(g, s, Direction::Out);
        // Prefer far-away, cross-SCC targets: scan from the back of the
        // BFS order (deepest first).
        let target = reached.iter().rev().find(|&&t| t != s && !scc.same(s, t));
        if let Some(&t) = target {
            queries.push((s, t));
        }
    }
    while queries.len() < count {
        let s = NodeId(rng.gen_range(0..n as u32));
        let t = NodeId(rng.gen_range(0..n as u32));
        if !scc.same(s, t) || n <= 2 {
            queries.push((s, t));
        }
    }
    queries.shuffle(&mut rng);
    queries
}

/// Exact boolean answers for a reachability query set (BFS per query) —
/// the ground truth against which bounded algorithms are scored.
pub fn reachability_ground_truth(g: &Graph, queries: &[(NodeId, NodeId)]) -> Vec<bool> {
    queries
        .iter()
        .map(|&(s, t)| rbq_graph::traverse::reaches(g, s, t).0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{social_groups, uniform_random, youtube_like};
    use rbq_pattern::Vf2Config;

    #[test]
    fn extracted_pattern_has_requested_nodes() {
        let g = youtube_like(2000, 3);
        let q = extract_pattern(&g, PatternSpec::new(4, 8), 1).expect("pattern");
        assert_eq!(q.node_count(), 4);
        assert!(q.edge_count() >= 3, "at least a skeleton");
        assert!(q.edge_count() <= 8);
        assert!(q.is_connected());
        assert_eq!(q.label_str(q.personalized()), "ME");
    }

    #[test]
    fn extracted_pattern_resolves_and_matches() {
        let g = youtube_like(2000, 3);
        for seed in 0..5u64 {
            let Some(q) = extract_pattern(&g, PatternSpec::new(4, 6), seed) else {
                continue;
            };
            let r = q.resolve(&g).expect("resolves");
            assert_eq!(Some(r.vp()), crate::generate::me_node(&g));
            // Planted: subgraph isomorphism must find at least one match.
            let out = rbq_pattern::vf2_all_output_matches(&r, &g, Vf2Config::default());
            assert!(
                !out.output_matches.is_empty(),
                "planted pattern has no match (seed {seed})"
            );
        }
    }

    #[test]
    fn pattern_on_social_groups() {
        let g = social_groups(5, 12, 40, 2);
        let q = extract_pattern(&g, PatternSpec::new(5, 10), 3);
        if let Some(q) = q {
            assert!(q.is_connected());
            assert!(q.resolve(&g).is_ok());
        }
    }

    #[test]
    fn too_large_spec_returns_none() {
        let g = uniform_random(3, 2, 5, 1);
        assert!(extract_pattern(&g, PatternSpec::new(10, 20), 0).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = youtube_like(1000, 5);
        let a = extract_pattern(&g, PatternSpec::new(5, 10), 9);
        let b = extract_pattern(&g, PatternSpec::new(5, 10), 9);
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!(x.node_count(), y.node_count());
                assert_eq!(x.edges(), y.edges());
            }
            (None, None) => {}
            _ => panic!("nondeterministic extraction"),
        }
    }

    #[test]
    fn reachability_queries_have_positive_mix() {
        let g = youtube_like(1000, 4);
        let qs = sample_reachability_queries(&g, 60, 0.5, 11);
        assert_eq!(qs.len(), 60);
        let truth = reachability_ground_truth(&g, &qs);
        let pos = truth.iter().filter(|&&b| b).count();
        assert!(pos >= 20, "expected ~30 positives, got {pos}");
    }

    #[test]
    fn zero_positive_fraction_is_all_random() {
        let g = uniform_random(500, 400, 15, 13);
        let qs = sample_reachability_queries(&g, 40, 0.0, 13);
        assert_eq!(qs.len(), 40);
    }

    #[test]
    fn ground_truth_matches_bfs() {
        let g = uniform_random(200, 400, 15, 17);
        let qs = sample_reachability_queries(&g, 20, 0.5, 17);
        let truth = reachability_ground_truth(&g, &qs);
        for ((s, t), expect) in qs.iter().zip(&truth) {
            assert_eq!(rbq_graph::traverse::reaches(&g, *s, *t).0, *expect);
        }
    }
}
