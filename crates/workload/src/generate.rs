//! Synthetic graph generators mirroring the paper's datasets (§6).
//!
//! Every generator gives node 0 the unique label `"ME"` — the personalized
//! user issuing pattern queries — and draws the remaining labels from an
//! alphabet `Σ = {L0, …, L(k−1)}` (the paper uses `|Σ| = 15`).

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rbq_graph::{Graph, GraphBuilder, NodeId};

/// The paper's synthetic label alphabet size.
pub const DEFAULT_LABELS: usize = 15;

/// Add `n` nodes with random alphabet labels, placing the unique `"ME"`
/// node at `me_index`. In preferential-attachment graphs early nodes grow
/// into hubs, so placing the personalized user late keeps its neighborhood
/// `G_dQ(v_p)` a small fraction of `G` — matching the paper's observation
/// that `|G_dQ(v_p)|` is up to 0.01% of `|G|` (§4).
fn add_labeled_nodes(
    b: &mut GraphBuilder,
    n: usize,
    num_labels: usize,
    me_index: usize,
    rng: &mut ChaCha8Rng,
) {
    debug_assert!(n >= 1 && me_index < n);
    let dist = Uniform::new(0, num_labels.max(1));
    for i in 0..n {
        if i == me_index {
            b.add_node("ME");
        } else {
            let l = dist.sample(rng);
            b.add_node(&format!("L{l}"));
        }
    }
}

/// The unique personalized node (label `"ME"`) of a generated graph.
pub fn me_node(g: &Graph) -> Option<NodeId> {
    let me = g.labels().get("ME")?;
    g.nodes_with_label(me).first().copied()
}

/// Uniform random digraph (Erdős–Rényi-style): `nodes` nodes, `edges`
/// directed edges with endpoints drawn uniformly (self-loops excluded,
/// duplicates deduplicated by the builder).
///
/// This is the paper's synthetic generator: `|E| = 2|V|` over 15 labels.
pub fn uniform_random(nodes: usize, edges: usize, num_labels: usize, seed: u64) -> Graph {
    assert!(nodes >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(nodes, edges);
    add_labeled_nodes(&mut b, nodes, num_labels, 0, &mut rng);
    if nodes >= 2 {
        let dist = Uniform::new(0, nodes as u32);
        for _ in 0..edges {
            let u = dist.sample(&mut rng);
            let mut v = dist.sample(&mut rng);
            if u == v {
                v = (v + 1) % nodes as u32;
            }
            b.add_edge(NodeId(u), NodeId(v));
        }
    }
    b.build()
}

/// Preferential-attachment digraph with default orientation mix (15%
/// back-edges). See [`power_law_with`].
pub fn power_law(nodes: usize, m: usize, num_labels: usize, seed: u64) -> Graph {
    power_law_with(nodes, m, num_labels, 0.15, seed)
}

/// Preferential-attachment (Barabási–Albert-style) digraph: each new node
/// attaches `m` edges to endpoints sampled proportionally to degree.
/// Produces the heavy-tailed degree distribution of social and web graphs.
///
/// `back_fraction` controls edge orientation: each attachment points from
/// the new node to the sampled (older) endpoint with probability
/// `1 − back_fraction`, and backwards otherwise. Small values yield the
/// mostly-acyclic reach structure of real web snapshots (whose condensation
/// retains most nodes); `0.5` degenerates into one giant SCC.
pub fn power_law_with(
    nodes: usize,
    m: usize,
    num_labels: usize,
    back_fraction: f64,
    seed: u64,
) -> Graph {
    power_law_full(nodes, m, num_labels, back_fraction, 0.7, seed)
}

/// [`power_law_with`] plus a label-homophily knob.
///
/// `homophily ∈ [0, 1]`: with this probability, a new node copies the
/// label of its first attachment target instead of drawing a fresh one.
/// Real content/social graphs are label-assortative (a video's
/// recommendations share its category), which is what gives pattern
/// queries large candidate neighborhoods — the regime where the paper's
/// resource bound binds. `0.0` reproduces independent random labels.
pub fn power_law_full(
    nodes: usize,
    m: usize,
    num_labels: usize,
    back_fraction: f64,
    homophily: f64,
    seed: u64,
) -> Graph {
    assert!(nodes >= 1);
    assert!((0.0..=1.0).contains(&homophily));
    let m = m.max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // ---- Pass 1: topology (endpoint pool = degree-proportional). ----
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(nodes * m);
    let mut first_target: Vec<u32> = (0..nodes as u32).collect();
    let mut pool: Vec<u32> = Vec::with_capacity(2 * nodes * m);
    let seed_core = m.min(nodes.saturating_sub(1)).max(1);
    for i in 0..seed_core.min(nodes - 1) {
        let (u, v) = (i as u32, (i + 1) as u32);
        edges.push((u, v));
        first_target[v as usize] = u;
        pool.push(u);
        pool.push(v);
    }
    for u in (seed_core + 1)..nodes {
        let u = u as u32;
        let mut first = true;
        for _ in 0..m {
            let t = if pool.is_empty() {
                0u32
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if t == u {
                continue;
            }
            if first {
                first_target[u as usize] = t;
                first = false;
            }
            if rng.gen_bool(back_fraction) {
                edges.push((t, u));
            } else {
                edges.push((u, t));
            }
            pool.push(u);
            pool.push(t);
        }
    }

    // ---- Pass 2: labels with homophily, ME at a late non-hub index. ----
    let me_index = if nodes == 1 { 0 } else { 2 * nodes / 3 };
    let dist = Uniform::new(0, num_labels.max(1));
    let mut labels: Vec<usize> = vec![0; nodes];
    for i in 0..nodes {
        let copy = i > seed_core
            && homophily > 0.0
            && rng.gen_bool(homophily)
            && (first_target[i] as usize) < i;
        labels[i] = if copy {
            labels[first_target[i] as usize]
        } else {
            dist.sample(&mut rng)
        };
    }

    let mut b = GraphBuilder::with_capacity(nodes, edges.len());
    for (i, &l) in labels.iter().enumerate() {
        if i == me_index {
            b.add_node("ME");
        } else {
            b.add_node(&format!("L{l}"));
        }
    }
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

/// Youtube-like substitute: power-law digraph with the snapshot's
/// edge/node ratio (≈ 2.8) and the 15-label alphabet.
///
/// `nodes` scales the snapshot (the real one has 1,609,969 nodes); the
/// default evaluation uses 30k–100k for tractable baselines.
pub fn youtube_like(nodes: usize, seed: u64) -> Graph {
    power_law_with(nodes, 3, DEFAULT_LABELS, 0.05, seed)
}

/// Yahoo-web-like substitute: denser power-law digraph (edge/node ≈ 5,
/// the real snapshot's ratio), same alphabet. The density contrast with
/// [`youtube_like`] drives the paper's density-dependent observations.
pub fn yahoo_like(nodes: usize, seed: u64) -> Graph {
    power_law_with(nodes, 5, DEFAULT_LABELS, 0.05, seed)
}

/// A Fig. 1-style social graph: `groups` labeled communities of
/// `group_size` members each, with the personalized user (node 0) linked
/// into a few of them and sparse inter-community edges.
///
/// Communities are labeled `G0, G1, …`; the personalized node keeps label
/// `"ME"`. Good for localized-pattern demos where group labels play the
/// roles of HG/CC/CL.
pub fn social_groups(groups: usize, group_size: usize, inter_edges: usize, seed: u64) -> Graph {
    assert!(groups >= 1 && group_size >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    b.add_node("ME");
    let mut members: Vec<Vec<NodeId>> = Vec::with_capacity(groups);
    for gidx in 0..groups {
        let label = format!("G{gidx}");
        let mut grp = Vec::with_capacity(group_size);
        for _ in 0..group_size {
            grp.push(b.add_node(&label));
        }
        members.push(grp);
    }
    // The user joins every group: edges ME -> a few members of each.
    for grp in &members {
        let k = (grp.len() / 3).max(1);
        for &m in grp.iter().take(k) {
            b.add_edge(NodeId(0), m);
        }
    }
    // Intra-group chains (so groups are connected).
    for grp in &members {
        for w in grp.windows(2) {
            b.add_edge(w[0], w[1]);
        }
    }
    // Sparse random inter-group edges.
    for _ in 0..inter_edges {
        let ga = rng.gen_range(0..groups);
        let gb = rng.gen_range(0..groups);
        let a = members[ga][rng.gen_range(0..group_size)];
        let c = members[gb][rng.gen_range(0..group_size)];
        if a != c {
            b.add_edge(a, c);
        }
    }
    b.build()
}

/// Random layered DAG: `layers × width` nodes; each node links to each node
/// of the next layer with probability `p`. Always acyclic — the natural
/// stress shape for the reachability index.
pub fn layered_dag(layers: usize, width: usize, p: f64, num_labels: usize, seed: u64) -> Graph {
    assert!(layers >= 1 && width >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = layers * width;
    let mut b = GraphBuilder::with_capacity(n, (n as f64 * width as f64 * p) as usize);
    add_labeled_nodes(&mut b, n, num_labels, 0, &mut rng);
    for l in 0..layers.saturating_sub(1) {
        for i in 0..width {
            let u = (l * width + i) as u32;
            let mut out = 0;
            for j in 0..width {
                if rng.gen_bool(p) {
                    b.add_edge(NodeId(u), NodeId(((l + 1) * width + j) as u32));
                    out += 1;
                }
            }
            if out == 0 {
                // Keep layers connected.
                let j = rng.gen_range(0..width);
                b.add_edge(NodeId(u), NodeId(((l + 1) * width + j) as u32));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::stats::degree_stats;

    #[test]
    fn uniform_has_requested_shape() {
        let g = uniform_random(1000, 2000, 15, 42);
        assert_eq!(g.node_count(), 1000);
        // Dedup may shave a few duplicates.
        assert!(g.edge_count() > 1900 && g.edge_count() <= 2000);
        assert_eq!(g.node_label_str(NodeId(0)), "ME");
    }

    #[test]
    fn uniform_deterministic() {
        let a = uniform_random(500, 1000, 15, 7);
        let b = uniform_random(500, 1000, 15, 7);
        assert_eq!(a.edge_count(), b.edge_count());
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
    }

    #[test]
    fn power_law_has_hubs() {
        let g = power_law(2000, 3, 15, 1);
        let stats = degree_stats(&g);
        // Heavy tail: max degree far above average.
        assert!(
            stats.max_degree as f64 > stats.avg_degree * 5.0,
            "max {} avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn youtube_yahoo_density_contrast() {
        let yt = youtube_like(3000, 2);
        let yh = yahoo_like(3000, 2);
        let d_yt = yt.edge_count() as f64 / yt.node_count() as f64;
        let d_yh = yh.edge_count() as f64 / yh.node_count() as f64;
        assert!(d_yh > d_yt * 1.4, "yahoo {d_yh} vs youtube {d_yt}");
        assert!(d_yt > 2.0 && d_yt < 3.5);
        assert!(d_yh > 4.0 && d_yh < 5.5);
    }

    #[test]
    fn labels_use_alphabet() {
        let g = uniform_random(200, 400, 15, 3);
        // ME + at most 15 synthetic labels.
        assert!(g.labels().len() <= 16);
    }

    #[test]
    fn social_groups_connects_user() {
        let g = social_groups(4, 10, 20, 5);
        assert_eq!(g.node_count(), 41);
        assert!(g.deg_out(NodeId(0)) >= 4, "user linked into each group");
        assert_eq!(g.node_label_str(NodeId(0)), "ME");
        assert!(g.labels().get("G3").is_some());
    }

    #[test]
    fn layered_dag_is_acyclic() {
        let g = layered_dag(10, 20, 0.1, 15, 11);
        assert!(rbq_graph::topo::is_acyclic(&g));
        assert_eq!(g.node_count(), 200);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn single_node_graphs() {
        let g = uniform_random(1, 0, 15, 0);
        assert_eq!(g.node_count(), 1);
        let g = power_law(1, 3, 15, 0);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn me_label_unique() {
        for g in [
            uniform_random(300, 600, 15, 9),
            power_law(300, 3, 15, 9),
            social_groups(3, 20, 10, 9),
        ] {
            let me = g.labels().get("ME").unwrap();
            assert_eq!(g.nodes_with_label(me).len(), 1);
        }
    }
}
