//! Typed engine errors.
//!
//! Everything the engine can reject is enumerated here instead of being a
//! `String`: a router (or any other front end on the far side of a process
//! or shard boundary) can match on the variant, wrap it losslessly, and
//! still render the same human-readable message via [`std::fmt::Display`].

use std::fmt;

/// Errors parsing or serializing the versioned query/answer line formats
/// (see [`crate::wire`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryParseError {
    /// Empty input line.
    EmptyLine,
    /// Unknown leading query-kind token.
    UnknownKind(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field failed to parse.
    BadField {
        /// What the field was.
        what: &'static str,
        /// The offending token (empty when absent).
        token: String,
    },
    /// Extra tokens after a complete line.
    TrailingTokens(String),
    /// A pattern label was empty.
    EmptyLabel,
    /// A pattern edge was not `U-V`.
    BadEdge(String),
    /// A pattern edge referenced a node index out of range.
    EdgeOutOfRange(String),
    /// Personalized/output index out of range.
    AnchorOutOfRange {
        /// Personalized index.
        up: usize,
        /// Output index.
        uo: usize,
        /// Number of pattern nodes.
        len: usize,
    },
    /// A label cannot round-trip the line format (whitespace or comma).
    UnserializableLabel(String),
    /// Unknown leading answer-kind token.
    UnknownAnswerKind(String),
    /// A file header declared a wire version this build does not speak.
    UnsupportedVersion(String),
    /// A file-level error, tagged with its 1-based line number.
    AtLine(usize, Box<QueryParseError>),
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryParseError::EmptyLine => write!(f, "empty query line"),
            QueryParseError::UnknownKind(k) => {
                write!(f, "unknown query kind {k:?} (want r|s|i)")
            }
            QueryParseError::MissingField(what) => write!(f, "missing {what}"),
            QueryParseError::BadField { what, token } => write!(f, "bad {what} {token:?}"),
            QueryParseError::TrailingTokens(line) => {
                write!(f, "trailing tokens on line {line:?}")
            }
            QueryParseError::EmptyLabel => write!(f, "empty pattern label"),
            QueryParseError::BadEdge(e) => write!(f, "bad edge {e:?}, expected U-V"),
            QueryParseError::EdgeOutOfRange(e) => {
                write!(f, "edge {e:?} references missing node")
            }
            QueryParseError::AnchorOutOfRange { up, uo, len } => write!(
                f,
                "personalized/output index out of range ({up}/{uo} of {len})"
            ),
            QueryParseError::UnserializableLabel(l) => {
                write!(f, "label {l:?} does not round-trip the line format")
            }
            QueryParseError::UnknownAnswerKind(k) => {
                write!(
                    f,
                    "unknown answer kind {k:?} (want reach|pattern|denied|error|timedout|failed)"
                )
            }
            QueryParseError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v:?} (this build speaks v1-v2)"
                )
            }
            QueryParseError::AtLine(n, e) => write!(f, "line {n}: {e}"),
        }
    }
}

impl std::error::Error for QueryParseError {}

/// Top-level engine error: configuration problems plus lossless wrappers
/// for the lower layers, so shard errors cross the router boundary typed.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A resource ratio lies outside `(0, 1]`.
    InvalidAlpha {
        /// Which knob (`"pattern alpha"`, `"reach alpha"`).
        what: &'static str,
        /// The rejected value.
        got: f64,
    },
    /// The visit coefficient is not positive and finite.
    InvalidVisitCoefficient(f64),
    /// An explicit thread count of zero (use auto, or give `>= 1`).
    InvalidThreads,
    /// A query line failed to parse or serialize.
    Parse(QueryParseError),
    /// A pattern failed to resolve against the graph.
    Resolve(rbq_pattern::ResolveError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidAlpha { what, got } => {
                write!(f, "{what} must lie in (0, 1], got {got}")
            }
            EngineError::InvalidVisitCoefficient(c) => {
                write!(f, "visit coefficient must be positive, got {c}")
            }
            EngineError::InvalidThreads => {
                write!(f, "thread count must be >= 1 (omit for auto)")
            }
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Resolve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Resolve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryParseError> for EngineError {
    fn from(e: QueryParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<rbq_pattern::ResolveError> for EngineError {
    fn from(e: rbq_pattern::ResolveError) -> Self {
        EngineError::Resolve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_messages() {
        // Front ends grep for these substrings; keep them stable.
        assert!(QueryParseError::UnknownKind("x".into())
            .to_string()
            .contains("unknown query kind"));
        assert!(EngineError::InvalidAlpha {
            what: "pattern alpha",
            got: 0.0
        }
        .to_string()
        .contains("must lie in (0, 1]"));
    }

    #[test]
    fn wrapping_is_lossless() {
        let inner = QueryParseError::MissingField("source id");
        let outer: EngineError = inner.clone().into();
        assert_eq!(outer, EngineError::Parse(inner));
        let e: &dyn std::error::Error = &outer;
        assert!(e.source().is_some());
    }

    #[test]
    fn at_line_prefixes() {
        let e = QueryParseError::AtLine(7, Box::new(QueryParseError::EmptyLabel));
        assert_eq!(e.to_string(), "line 7: empty pattern label");
    }
}
