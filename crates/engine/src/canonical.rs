//! Canonical pattern signatures for the reduction cache.
//!
//! Two patterns that are isomorphic *as anchored queries* — same label
//! multiset, same edge structure, and corresponding personalized/output
//! nodes — denote the same dynamic reduction, so their `G_Q` answers are
//! interchangeable. The cache therefore keys on a canonical relabeling:
//! nodes are ordered by a Weisfeiler–Leman-style refinement of
//! `(label, out-degree, in-degree, is-u_p, is-u_o)`, and residual symmetry
//! groups are broken by exhaustively picking the lexicographically smallest
//! encoding (bounded by [`PERM_CAP`] candidate orderings; above the cap we
//! fall back to the refined order with input-order tie-breaks, which is
//! still deterministic — isomorphic twins then merely miss the cache).
//!
//! Crucially the engine also *evaluates* the canonical form: the
//! resource-bounded heuristics are sensitive to node order, so running the
//! canonical pattern guarantees a cache hit returns byte-identical answers
//! to the cold path for every query that maps to the same signature.

use rbq_pattern::{Pattern, PatternBuilder};

/// Cap on candidate orderings explored when breaking refinement ties.
const PERM_CAP: usize = 5_040;

/// Rounds of neighborhood refinement. Two suffice for the ≤ 8-node
/// patterns of the paper's workloads; more only lengthens the keys.
const REFINE_ROUNDS: usize = 2;

/// The canonical relabeling of `p` plus its signature encoding.
///
/// The returned pattern is `p` with nodes permuted into canonical order
/// (personalized/output designations follow the permutation); the string
/// is a full structural encoding, so equal signatures imply equal
/// canonical patterns — no hash collisions to reason about.
pub fn canonical_pattern(p: &Pattern) -> (Pattern, String) {
    let order = canonical_order(p);
    let sig = encode(p, &order);
    let mut inv = vec![0usize; order.len()];
    for (new, &old) in order.iter().enumerate() {
        inv[old] = new;
    }
    let mut b = PatternBuilder::new();
    let mut ids = Vec::with_capacity(order.len());
    for &old in &order {
        ids.push(b.add_node(p.label_str(rbq_pattern::PNode::new(old))));
    }
    for &(u, v) in p.edges() {
        b.add_edge(ids[inv[u.index()]], ids[inv[v.index()]]);
    }
    b.personalized(ids[inv[p.personalized().index()]]);
    b.output(ids[inv[p.output().index()]]);
    (b.build(), sig)
}

/// Canonical node order: position `new` holds original index `order[new]`.
fn canonical_order(p: &Pattern) -> Vec<usize> {
    let n = p.node_count();
    let keys = refined_keys(p);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));

    // Group boundaries of equal refinement keys.
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    for i in 1..=n {
        if i == n || keys[order[i]] != keys[order[start]] {
            groups.push((start, i));
            start = i;
        }
    }
    let perms: usize = groups
        .iter()
        .map(|&(s, e)| factorial_capped(e - s))
        .try_fold(1usize, |acc, f| {
            let p = acc.checked_mul(f)?;
            (p <= PERM_CAP).then_some(p)
        })
        .unwrap_or(PERM_CAP + 1);
    if perms > PERM_CAP || perms <= 1 {
        return order; // symmetric beyond the cap, or no ties at all
    }

    // Exhaust within-group permutations, keeping the smallest encoding.
    let mut best = order.clone();
    let mut best_enc = encode(p, &best);
    let mut cur = order;
    permute_groups(p, &groups, 0, &mut cur, &mut best, &mut best_enc);
    best
}

fn permute_groups(
    p: &Pattern,
    groups: &[(usize, usize)],
    gi: usize,
    cur: &mut Vec<usize>,
    best: &mut Vec<usize>,
    best_enc: &mut String,
) {
    match groups.get(gi) {
        None => {
            let enc = encode(p, cur);
            if enc < *best_enc {
                *best_enc = enc;
                best.copy_from_slice(cur);
            }
        }
        Some(&(s, e)) if e - s <= 1 => permute_groups(p, groups, gi + 1, cur, best, best_enc),
        Some(&(s, e)) => {
            // Heap's algorithm over cur[s..e], recursing per arrangement.
            struct HeapCtx<'a> {
                p: &'a Pattern,
                groups: &'a [(usize, usize)],
                gi: usize,
                s: usize,
            }
            fn heap(
                ctx: &HeapCtx<'_>,
                cur: &mut Vec<usize>,
                k: usize,
                best: &mut Vec<usize>,
                best_enc: &mut String,
            ) {
                if k == 1 {
                    permute_groups(ctx.p, ctx.groups, ctx.gi + 1, cur, best, best_enc);
                    return;
                }
                for i in 0..k {
                    heap(ctx, cur, k - 1, best, best_enc);
                    if k.is_multiple_of(2) {
                        cur.swap(ctx.s + i, ctx.s + k - 1);
                    } else {
                        cur.swap(ctx.s, ctx.s + k - 1);
                    }
                }
            }
            let ctx = HeapCtx { p, groups, gi, s };
            heap(&ctx, cur, e - s, best, best_enc);
        }
    }
}

fn factorial_capped(k: usize) -> usize {
    (1..=k)
        .try_fold(1usize, |acc, i| {
            let p = acc.checked_mul(i)?;
            (p <= PERM_CAP).then_some(p)
        })
        .unwrap_or(PERM_CAP + 1)
}

/// Per-node refinement keys: seeded with local invariants, then iterated
/// with sorted neighbor-key multisets.
fn refined_keys(p: &Pattern) -> Vec<String> {
    let n = p.node_count();
    let mut keys: Vec<String> = (0..n)
        .map(|i| {
            let u = rbq_pattern::PNode::new(i);
            format!(
                "{}#{}#{}#{}#{}",
                p.label_str(u),
                p.out(u).len(),
                p.inn(u).len(),
                (u == p.personalized()) as u8,
                (u == p.output()) as u8
            )
        })
        .collect();
    for _ in 0..REFINE_ROUNDS {
        let next: Vec<String> = (0..n)
            .map(|i| {
                let u = rbq_pattern::PNode::new(i);
                let mut outs: Vec<&str> =
                    p.out(u).iter().map(|w| keys[w.index()].as_str()).collect();
                let mut ins: Vec<&str> =
                    p.inn(u).iter().map(|w| keys[w.index()].as_str()).collect();
                outs.sort_unstable();
                ins.sort_unstable();
                format!("{}|>{}|<{}", keys[i], outs.join(";"), ins.join(";"))
            })
            .collect();
        keys = next;
    }
    keys
}

/// Structural encoding of `p` under the node order `order` (position
/// `new` ← original `order[new]`): labels, sorted edges, `u_p`, `u_o`.
///
/// Labels are length-prefixed so the encoding is injective even when a
/// label itself contains the joining delimiter (labels are arbitrary
/// strings — `"A,B"` must not collide with the two labels `"A"`, `"B"`).
fn encode(p: &Pattern, order: &[usize]) -> String {
    let n = order.len();
    let mut inv = vec![0usize; n];
    for (new, &old) in order.iter().enumerate() {
        inv[old] = new;
    }
    let labels: Vec<String> = order
        .iter()
        .map(|&old| {
            let l = p.label_str(rbq_pattern::PNode::new(old));
            format!("{}:{}", l.len(), l)
        })
        .collect();
    let mut edges: Vec<(usize, usize)> = p
        .edges()
        .iter()
        .map(|&(u, v)| (inv[u.index()], inv[v.index()]))
        .collect();
    edges.sort_unstable();
    let edge_str: Vec<String> = edges.iter().map(|&(u, v)| format!("{u}-{v}")).collect();
    format!(
        "L:{}|E:{}|p:{}|o:{}",
        labels.join(","),
        edge_str.join(","),
        inv[p.personalized().index()],
        inv[p.output().index()]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(labels: &[&str], up: usize, uo: usize) -> Pattern {
        let mut b = PatternBuilder::new();
        let ids: Vec<_> = labels.iter().map(|l| b.add_node(l)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        b.personalized(ids[up]).output(ids[uo]);
        b.build()
    }

    #[test]
    fn idempotent() {
        let p = rbq_pattern::pattern::fig1_pattern();
        let (c1, s1) = canonical_pattern(&p);
        let (_, s2) = canonical_pattern(&c1);
        assert_eq!(s1, s2);
    }

    #[test]
    fn isomorphic_reorderings_share_signature() {
        // Same anchored query, nodes listed in two different orders.
        let mut b = PatternBuilder::new();
        let me = b.add_node("ME");
        let x = b.add_node("X");
        let y = b.add_node("Y");
        b.add_edge(me, x).add_edge(x, y);
        b.personalized(me).output(y);
        let p1 = b.build();

        let mut b = PatternBuilder::new();
        let y = b.add_node("Y");
        let me = b.add_node("ME");
        let x = b.add_node("X");
        b.add_edge(x, y).add_edge(me, x);
        b.personalized(me).output(y);
        let p2 = b.build();

        assert_eq!(canonical_pattern(&p1).1, canonical_pattern(&p2).1);
    }

    #[test]
    fn symmetric_siblings_canonicalize() {
        // ME -> A, ME -> A with output on one arm: the two A nodes are a
        // refinement tie broken by the permutation search.
        let build = |flip: bool| {
            let mut b = PatternBuilder::new();
            let me = b.add_node("ME");
            let a1 = b.add_node("A");
            let a2 = b.add_node("A");
            b.add_edge(me, a1).add_edge(me, a2);
            b.personalized(me).output(if flip { a2 } else { a1 });
            b.build()
        };
        assert_eq!(
            canonical_pattern(&build(false)).1,
            canonical_pattern(&build(true)).1
        );
    }

    #[test]
    fn different_anchors_differ() {
        let p1 = chain(&["ME", "A", "B"], 0, 2);
        let p2 = chain(&["ME", "A", "B"], 0, 1);
        assert_ne!(canonical_pattern(&p1).1, canonical_pattern(&p2).1);
    }

    #[test]
    fn different_edges_differ() {
        let mut b = PatternBuilder::new();
        let me = b.add_node("ME");
        let a = b.add_node("A");
        b.add_edge(me, a).personalized(me).output(a);
        let fwd = b.build();
        let mut b = PatternBuilder::new();
        let me = b.add_node("ME");
        let a = b.add_node("A");
        b.add_edge(a, me).personalized(me).output(a);
        let bwd = b.build();
        assert_ne!(canonical_pattern(&fwd).1, canonical_pattern(&bwd).1);
    }

    #[test]
    fn delimiter_labels_do_not_collide() {
        // "A,B" as one label vs "A" and "B" as two: a naive join would
        // encode both as "A,B"; the length prefix keeps them distinct.
        let mut b = PatternBuilder::new();
        let me = b.add_node("ME");
        let ab = b.add_node("A,B");
        b.add_edge(me, ab).personalized(me).output(ab);
        let joined = b.build();
        let mut b = PatternBuilder::new();
        let me = b.add_node("ME");
        let a = b.add_node("A");
        b.add_node("B");
        b.add_edge(me, a).personalized(me).output(a);
        let split = b.build();
        assert_ne!(canonical_pattern(&joined).1, canonical_pattern(&split).1);
    }

    #[test]
    fn canonical_preserves_structure() {
        let p = rbq_pattern::pattern::fig1_pattern();
        let (c, _) = canonical_pattern(&p);
        assert_eq!(c.node_count(), p.node_count());
        assert_eq!(c.edge_count(), p.edge_count());
        assert_eq!(c.label_str(c.personalized()), "Michael");
        assert_eq!(c.label_str(c.output()), "CL");
        assert_eq!(c.undirected_diameter(), p.undirected_diameter());
    }
}
