//! The engine: epoch-snapshotted shared structures, per-query evaluation,
//! and the work-stealing batch scheduler.

use crate::cache::{CacheKey, CachedAnswer, ReductionCache};
use crate::canonical::canonical_pattern;
use crate::durability::{
    ApplyError, Durability, DurabilityConfig, DurabilityError, RecoveryReport,
};
use crate::error::EngineError;
use crate::{Answer, Query, QueryClass, QueryResult};
use rbq_core::guard::Semantics;
use rbq_core::{
    rbsim_with, rbsub_scratch, NeighborIndex, PatternAnswer, PatternScratch, ResourceBudget,
};
use rbq_graph::{CancelPanic, CancelToken, DeltaBatch, DeltaReport, Graph, NodeId};
use rbq_pattern::{Pattern, Vf2Config};
use rbq_reach::HierarchicalIndex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// How the per-query pattern budget is specified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetSpec {
    /// Resource ratio `α ∈ (0, 1]` of the graph size.
    Ratio(f64),
    /// Absolute unit count `α·|G|` (size-independent, as in the paper's
    /// cross-dataset comparisons).
    Units(usize),
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Per-query size budget for pattern queries.
    pub pattern_budget: BudgetSpec,
    /// Optional visit coefficient `c`: per-query visit cap `α·c·|G|`.
    pub visit_coefficient: Option<f64>,
    /// Resource ratio for the lazily built reachability index, `(0, 1]`.
    pub reach_alpha: f64,
    /// Worker threads for [`Engine::run_batch`]; 0 = available parallelism.
    pub threads: usize,
    /// Reduction-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Aggregate visit budget per batch: the total canonical visit cost the
    /// engine will *deliver*; queries beyond it are answered
    /// [`Answer::Denied`], settled deterministically in input order.
    pub aggregate_visit_budget: Option<usize>,
    /// VF2 knobs for isomorphism queries.
    pub vf2: Vf2Config,
    /// Per-batch deadline, measured from batch entry. Queries that have not
    /// started when it expires — and queries whose kernels hit a cooperative
    /// cancellation point after it — settle as [`Answer::TimedOut`].
    pub batch_timeout: Option<Duration>,
    /// How queries are admitted against the aggregate visit budget.
    pub admission: AdmissionPolicy,
}

/// How a batch's queries are admitted against the aggregate visit budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Evaluate everything; settle delivered answers against the aggregate
    /// budget in input order (the historical behavior).
    #[default]
    InputOrder,
    /// Shed *before* evaluation: rank queries by a deterministic cost
    /// estimate (ties broken by input index), greedily admit the cheapest
    /// within the aggregate budget, and answer the rest [`Answer::Denied`]
    /// without evaluating them — overload degrades answers-per-budget
    /// predictably instead of timing out arbitrarily. No-op without an
    /// aggregate budget.
    ShortestJobFirst,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            pattern_budget: BudgetSpec::Ratio(0.01),
            visit_coefficient: None,
            reach_alpha: 0.05,
            threads: 0,
            cache_capacity: 1024,
            aggregate_visit_budget: None,
            vf2: Vf2Config::default(),
            batch_timeout: None,
            admission: AdmissionPolicy::InputOrder,
        }
    }
}

impl EngineConfig {
    /// Validate ranges. The typed error renders the same message the old
    /// `Result<_, String>` API produced, so CLI output is unchanged.
    pub fn validate(&self) -> Result<(), EngineError> {
        if let BudgetSpec::Ratio(a) = self.pattern_budget {
            if !(a.is_finite() && a > 0.0 && a <= 1.0) {
                return Err(EngineError::InvalidAlpha {
                    what: "pattern alpha",
                    got: a,
                });
            }
        }
        if !(self.reach_alpha.is_finite() && self.reach_alpha > 0.0 && self.reach_alpha <= 1.0) {
            return Err(EngineError::InvalidAlpha {
                what: "reach alpha",
                got: self.reach_alpha,
            });
        }
        if let Some(c) = self.visit_coefficient {
            if !(c.is_finite() && c > 0.0) {
                return Err(EngineError::InvalidVisitCoefficient(c));
            }
        }
        Ok(())
    }

    /// Start building a configuration. Prefer this over struct-literal
    /// construction: the builder validates every knob at
    /// [`EngineConfigBuilder::build`] instead of panicking later inside
    /// [`Engine::new`].
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            cfg: EngineConfig::default(),
            explicit_zero_threads: false,
        }
    }
}

/// Builder for [`EngineConfig`] — the supported way for front ends to
/// assemble a configuration. Setters record intent; [`build`] validates
/// everything at once (`α ∈ (0, 1]`, positive visit coefficient, explicit
/// thread counts ≥ 1) and returns a typed [`EngineError`] on violation.
///
/// [`build`]: EngineConfigBuilder::build
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
    explicit_zero_threads: bool,
}

impl EngineConfigBuilder {
    /// Per-query pattern budget as a resource ratio `α ∈ (0, 1]`.
    pub fn pattern_alpha(mut self, alpha: f64) -> Self {
        self.cfg.pattern_budget = BudgetSpec::Ratio(alpha);
        self
    }

    /// Per-query pattern budget as an absolute unit count.
    pub fn pattern_units(mut self, units: usize) -> Self {
        self.cfg.pattern_budget = BudgetSpec::Units(units);
        self
    }

    /// Visit coefficient `c` (per-query visit cap `α·c·|G|`).
    pub fn visit_coefficient(mut self, c: f64) -> Self {
        self.cfg.visit_coefficient = Some(c);
        self
    }

    /// Resource ratio for the reachability index, `(0, 1]`.
    pub fn reach_alpha(mut self, alpha: f64) -> Self {
        self.cfg.reach_alpha = alpha;
        self
    }

    /// Explicit worker thread count, ≥ 1 (an explicit 0 is rejected at
    /// [`build`]; see [`EngineConfigBuilder::auto_threads`] for the
    /// default).
    ///
    /// [`build`]: EngineConfigBuilder::build
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self.explicit_zero_threads = threads == 0;
        self
    }

    /// Use the machine's available parallelism (the default).
    pub fn auto_threads(mut self) -> Self {
        self.cfg.threads = 0;
        self.explicit_zero_threads = false;
        self
    }

    /// Reduction-cache capacity in entries; 0 disables caching.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cfg.cache_capacity = entries;
        self
    }

    /// Aggregate visit budget per batch (None = unlimited).
    pub fn aggregate_visit_budget(mut self, budget: Option<usize>) -> Self {
        self.cfg.aggregate_visit_budget = budget;
        self
    }

    /// VF2 knobs for isomorphism queries.
    pub fn vf2(mut self, vf2: Vf2Config) -> Self {
        self.cfg.vf2 = vf2;
        self
    }

    /// Per-batch deadline (None = no deadline).
    pub fn batch_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.cfg.batch_timeout = timeout;
        self
    }

    /// Admission policy against the aggregate visit budget.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.cfg.admission = policy;
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> Result<EngineConfig, EngineError> {
        if self.explicit_zero_threads {
            return Err(EngineError::InvalidThreads);
        }
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Per-class accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Queries of this class evaluated (including cache hits).
    pub queries: usize,
    /// Canonical visit cost accumulated.
    pub visits: usize,
    /// Wall time spent evaluating (cache hits count their ~zero lookup).
    pub latency: Duration,
}

impl ClassStats {
    /// Mean per-query latency, zero when no queries ran.
    pub fn mean_latency(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.latency / self.queries as u32
        }
    }

    fn merge(&mut self, other: &ClassStats) {
        self.queries += other.queries;
        self.visits += other.visits;
        self.latency += other.latency;
    }
}

/// Batch / lifetime engine statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total queries processed.
    pub queries: usize,
    /// Reachability class.
    pub reach: ClassStats,
    /// Strong-simulation class.
    pub sim: ClassStats,
    /// Subgraph-isomorphism class.
    pub iso: ClassStats,
    /// Answers served from the reduction cache.
    pub cache_hits: usize,
    /// Pattern evaluations that missed the cache.
    pub cache_misses: usize,
    /// Malformed queries answered [`Answer::Error`].
    pub errors: usize,
    /// Queries denied at aggregate-budget settlement or shed by admission
    /// control.
    pub denied: usize,
    /// Queries settled [`Answer::TimedOut`] by a batch deadline.
    pub timed_out: usize,
    /// Queries whose evaluation panicked and was contained
    /// ([`Answer::Failed`]).
    pub failed: usize,
    /// Visit cost charged against the aggregate budget (delivered answers
    /// only — never exceeds the configured aggregate budget).
    pub charged_visits: usize,
    /// Canonical visit cost of every answered query, delivered or denied.
    pub total_visits: usize,
}

impl EngineStats {
    /// Cache hit rate over pattern queries, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let n = self.cache_hits + self.cache_misses;
        if n == 0 {
            0.0
        } else {
            self.cache_hits as f64 / n as f64
        }
    }

    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &EngineStats) {
        self.queries += other.queries;
        self.reach.merge(&other.reach);
        self.sim.merge(&other.sim);
        self.iso.merge(&other.iso);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.errors += other.errors;
        self.denied += other.denied;
        self.timed_out += other.timed_out;
        self.failed += other.failed;
        self.charged_visits += other.charged_visits;
        self.total_visits += other.total_visits;
    }

    fn class_mut(&mut self, class: QueryClass) -> &mut ClassStats {
        match class {
            QueryClass::Reach => &mut self.reach,
            QueryClass::Sim => &mut self.sim,
            QueryClass::Iso => &mut self.iso,
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "queries {} (reach {}, sim {}, iso {}); errors {}, denied {}, timed out {}, failed {}",
            self.queries,
            self.reach.queries,
            self.sim.queries,
            self.iso.queries,
            self.errors,
            self.denied,
            self.timed_out,
            self.failed
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses ({:.1}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "visits: {} charged, {} total",
            self.charged_visits, self.total_visits
        )?;
        write!(
            f,
            "mean latency: reach {:?}, sim {:?}, iso {:?}",
            self.reach.mean_latency(),
            self.sim.mean_latency(),
            self.iso.mean_latency()
        )
    }
}

/// Result of [`Engine::run_batch`]: input-order answers plus the batch's
/// statistics.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One result per input query, in input order.
    pub results: Vec<QueryResult>,
    /// Statistics for this batch alone.
    pub stats: EngineStats,
}

/// One evaluated query before settlement: result, class, wall latency.
type Evaluated = (QueryResult, QueryClass, Duration);

/// One immutable serving snapshot: the graph, its generation, and the
/// lazily built indexes over exactly that graph.
///
/// Queries pin an `Arc<Epoch>` once at entry and evaluate entirely against
/// it, so a concurrent [`Engine::apply_deltas`] can swap in a successor
/// epoch without ever invalidating structures a running query holds: the
/// old epoch stays alive until its last in-flight query drops the `Arc`.
/// The generation is the cache-correctness token — it is part of every
/// [`CacheKey`], so answers computed on one epoch are unreachable from any
/// later one.
struct Epoch {
    g: Arc<Graph>,
    generation: u64,
    nbr: OnceLock<Arc<NeighborIndex>>,
    reach: OnceLock<Arc<HierarchicalIndex>>,
}

impl Epoch {
    fn new(g: Arc<Graph>, generation: u64) -> Self {
        Epoch {
            g,
            generation,
            nbr: OnceLock::new(),
            reach: OnceLock::new(),
        }
    }

    /// This epoch's neighbor index, building it on first use.
    fn neighbor_index(&self) -> Arc<NeighborIndex> {
        self.nbr
            .get_or_init(|| Arc::new(NeighborIndex::build(&self.g)))
            .clone()
    }

    /// This epoch's reachability index, building it on first use.
    fn reach_index(&self, alpha: f64) -> Arc<HierarchicalIndex> {
        self.reach
            .get_or_init(|| Arc::new(HierarchicalIndex::build(&self.g, alpha)))
            .clone()
    }
}

/// A mixed-workload query engine over a live-updatable graph.
///
/// The engine serves from an [`Epoch`]: an immutable snapshot holding the
/// graph, the pattern [`NeighborIndex`] (§4.1) and the reachability
/// [`HierarchicalIndex`] (§5.1), each built lazily on the first query of
/// its class and reused by every subsequent query — the "once for all
/// queries" amortization the paper's offline/online split calls for (§3,
/// Remarks). [`Engine::apply_deltas`] applies a [`DeltaBatch`], rebuilds
/// whichever indexes the old epoch had materialized, and swaps the new
/// epoch in behind a short write lock; queries already running keep their
/// pinned old epoch and drain untouched.
pub struct Engine {
    cfg: EngineConfig,
    epoch: RwLock<Arc<Epoch>>,
    cache: Mutex<ReductionCache>,
    totals: Mutex<EngineStats>,
    /// Durable-state handle (WAL appender + snapshot directory), present
    /// when durability is enabled. Held across the append inside
    /// [`Engine::apply_deltas`] so concurrent appliers serialize on the
    /// log.
    durability: Mutex<Option<Durability>>,
    /// Warm per-worker evaluation scratches. Each batch worker checks one
    /// out for its whole run (no contention on the hot path) and returns
    /// it afterwards, so steady-state serving reuses warm buffers across
    /// batches instead of allocating per query.
    scratches: Mutex<Vec<WorkerScratch>>,
}

/// One worker's reusable evaluation state: the pattern scratch plus the
/// recycled answer buffer.
#[derive(Default)]
struct WorkerScratch {
    pattern: PatternScratch,
    answer: PatternAnswer,
}

impl Engine {
    /// An engine over `g` with `cfg`.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`EngineConfig::validate`]; front ends should
    /// validate first and exit gracefully.
    pub fn new(g: Arc<Graph>, cfg: EngineConfig) -> Self {
        if let Err(e) = cfg.validate() {
            // invariant: documented `# Panics` contract of `Engine::new`;
            // front ends validate the config and exit gracefully before
            // constructing an engine.
            panic!("invalid engine config: {e}");
        }
        let cache = Mutex::new(ReductionCache::new(cfg.cache_capacity));
        Engine {
            epoch: RwLock::new(Arc::new(Epoch::new(g, 0))),
            cfg,
            cache,
            totals: Mutex::new(EngineStats::default()),
            scratches: Mutex::new(Vec::new()),
            durability: Mutex::new(None),
        }
    }

    /// Pin the current epoch. Everything a query touches comes from this
    /// one snapshot, so a mid-query [`Engine::apply_deltas`] cannot mix
    /// old-graph and new-graph state inside a single evaluation.
    fn pin(&self) -> Arc<Epoch> {
        relock_read(&self.epoch).clone()
    }

    /// Check out a warm worker scratch (or a fresh one when the pool is
    /// dry — first use, or more workers than ever before).
    fn take_scratch(&self) -> WorkerScratch {
        relock(&self.scratches).pop().unwrap_or_default()
    }

    /// Return a worker scratch to the pool, keeping its warm buffers.
    /// Callers never return a scratch an unwind passed through — a caught
    /// panic discards the scratch and pools a fresh one instead.
    fn put_scratch(&self, s: WorkerScratch) {
        relock(&self.scratches).push(s);
    }

    /// Like [`Engine::new`], but seeding pre-built indexes so callers that
    /// already paid for offline construction (benches, the router, the
    /// experiments harness) share them instead of rebuilding.
    pub fn with_indexes(
        g: Arc<Graph>,
        cfg: EngineConfig,
        neighbor: Option<Arc<NeighborIndex>>,
        reach: Option<Arc<HierarchicalIndex>>,
    ) -> Self {
        let e = Engine::new(g, cfg);
        {
            let ep = relock_read(&e.epoch);
            if let Some(n) = neighbor {
                let _ = ep.nbr.set(n);
            }
            if let Some(r) = reach {
                let _ = ep.reach.set(r);
            }
        }
        e
    }

    /// The engine's current graph snapshot.
    pub fn graph(&self) -> Arc<Graph> {
        self.pin().g.clone()
    }

    /// The current graph generation: 0 at construction, +1 per installed
    /// delta batch. Part of every cache key.
    pub fn generation(&self) -> u64 {
        self.pin().generation
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The current epoch's neighbor index, building it on first use.
    pub fn neighbor_index(&self) -> Arc<NeighborIndex> {
        self.pin().neighbor_index()
    }

    /// The current epoch's reachability index, building it on first use.
    pub fn reach_index(&self) -> Arc<HierarchicalIndex> {
        self.pin().reach_index(self.cfg.reach_alpha)
    }

    /// The per-query pattern budget derived from the configuration and the
    /// current graph snapshot.
    pub fn pattern_budget(&self) -> ResourceBudget {
        self.pattern_budget_on(&self.pin().g)
    }

    fn pattern_budget_on(&self, g: &Graph) -> ResourceBudget {
        let mut b = match self.cfg.pattern_budget {
            BudgetSpec::Ratio(a) => ResourceBudget::from_ratio(g, a),
            // `from_units` clamps to |G| itself (α ∈ (0, 1] invariant).
            BudgetSpec::Units(u) => ResourceBudget::from_units(g, u),
        };
        if let Some(c) = self.cfg.visit_coefficient {
            b = b.with_visit_coefficient(c);
        }
        b
    }

    /// Apply a delta batch: materialize the post-delta graph (CSR overlay,
    /// compacting past the churn threshold), rebuild whichever indexes the
    /// current epoch had built — off the serving path, on scoped worker
    /// threads — then swap the new epoch in and evict cache entries whose
    /// labels the delta touched.
    ///
    /// Queries running concurrently finish on the epoch they pinned at
    /// entry; queries arriving after the swap see the new graph and a new
    /// generation, so no post-mutation lookup can surface a pre-mutation
    /// cached answer.
    ///
    /// When durability is enabled ([`Engine::enable_durability`]), the
    /// batch is appended to the WAL **and fsynced before the epoch swap**:
    /// an append failure returns [`ApplyError::Durability`] with nothing
    /// installed (the old epoch keeps serving), so no query ever observes
    /// state that would not survive a crash. When the apply compacts (the
    /// graph crate's churn threshold), the compacted graph is written as a
    /// new snapshot and the log is rotated. A checkpoint failure also
    /// surfaces as [`ApplyError::Durability`], but with the batch already
    /// durable *and* installed — serving is consistent and recovery is
    /// unaffected (the WAL still holds every batch); the caller may keep
    /// serving and retry the checkpoint via a later compacting batch.
    pub fn apply_deltas(&self, batch: &DeltaBatch) -> Result<DeltaReport, ApplyError> {
        let ep = self.pin();
        let (g2, report) = ep.g.apply_delta(batch)?;
        let g2 = Arc::new(g2);
        // Durability barrier, before any index build or swap: hold the
        // handle across the append so concurrent appliers serialize on
        // the log in the same order their epochs install.
        {
            let mut slot = relock(&self.durability);
            if let Some(d) = slot.as_mut() {
                d.append(batch)?;
            }
        }
        // Rebuild only what the old epoch had paid for; indexes never
        // queried stay lazy in the new epoch too.
        let rebuild_nbr = ep.nbr.get().is_some();
        let rebuild_reach = ep.reach.get().is_some();
        let (nbr, reach) = std::thread::scope(|s| {
            let hn = rebuild_nbr.then(|| s.spawn(|| Arc::new(NeighborIndex::build(&g2))));
            let hr = rebuild_reach
                .then(|| s.spawn(|| Arc::new(HierarchicalIndex::build(&g2, self.cfg.reach_alpha))));
            // A panicked rebuild worker degrades to lazy rebuild: the new
            // epoch's `OnceLock` slot simply stays unset, and the next
            // query that needs the index builds it inside the per-query
            // panic containment (a deterministic failure settles as
            // `Answer::Failed`, never an abort). The delta itself already
            // applied, so the swap must still happen.
            (
                hn.and_then(|h| h.join().ok()),
                hr.and_then(|h| h.join().ok()),
            )
        });
        self.install_graph(g2.clone(), nbr, reach, &report.touched_labels);
        if report.compacted {
            // The apply already paid for a full compaction; fold it into a
            // snapshot and rotate the log so recovery replays a short WAL.
            let mut slot = relock(&self.durability);
            if let Some(d) = slot.as_mut() {
                d.checkpoint(&g2)?;
            }
        }
        Ok(report)
    }

    /// Enable durability: initialize `cfg.dir` with a snapshot of the
    /// *current* graph and a fresh WAL, then persist every subsequent
    /// [`Engine::apply_deltas`] batch. Replaces any previous contents of
    /// the directory (to resume an existing directory instead, use
    /// [`Engine::recover`]).
    pub fn enable_durability(&self, cfg: &DurabilityConfig) -> Result<(), DurabilityError> {
        let d = Durability::create(&cfg.dir, &self.pin().g)?;
        *relock(&self.durability) = Some(d);
        Ok(())
    }

    /// Whether durability is currently enabled.
    pub fn durability_enabled(&self) -> bool {
        relock(&self.durability).is_some()
    }

    /// Recover an engine from a durability directory: load the snapshot,
    /// replay the WAL's valid prefix (skipping records the snapshot
    /// already covers, truncating a torn tail, quarantining corruption —
    /// see [`crate::durability`]), and serve the result with durability
    /// enabled for further ingest.
    pub fn recover(
        dir: &std::path::Path,
        cfg: EngineConfig,
    ) -> Result<(Engine, RecoveryReport), DurabilityError> {
        let (g, d, report) = Durability::recover(dir)?;
        let engine = Engine::new(Arc::new(g), cfg);
        *relock(&engine.durability) = Some(d);
        Ok((engine, report))
    }

    /// Install a pre-built successor graph (and any pre-built indexes) as
    /// the next epoch, bumping the generation and eagerly evicting cache
    /// entries whose labels intersect `touched_labels` (sorted strings).
    ///
    /// This is the router's entry point: it applies one delta and builds
    /// each index once, then installs the shared result into every shard
    /// engine instead of paying k rebuilds via [`Engine::apply_deltas`].
    pub fn install_graph(
        &self,
        g: Arc<Graph>,
        neighbor: Option<Arc<NeighborIndex>>,
        reach: Option<Arc<HierarchicalIndex>>,
        touched_labels: &[String],
    ) {
        {
            let mut slot = relock_write(&self.epoch);
            let next = Epoch::new(g, slot.generation + 1);
            if let Some(n) = neighbor {
                let _ = next.nbr.set(n);
            }
            if let Some(r) = reach {
                let _ = next.reach.set(r);
            }
            *slot = Arc::new(next);
        }
        // Outside the epoch lock: eviction is reclamation, not correctness
        // (the generation bump already orphaned every old entry).
        relock(&self.cache).evict_touching(touched_labels);
    }

    /// Lifetime statistics across every batch and single query served.
    pub fn stats(&self) -> EngineStats {
        relock(&self.totals).clone()
    }

    /// Current reduction-cache entry count.
    pub fn cache_len(&self) -> usize {
        relock(&self.cache).len()
    }

    /// Answer one query (no aggregate-budget settlement). The configured
    /// [`EngineConfig::batch_timeout`], if any, applies to this single
    /// query.
    pub fn run(&self, q: &Query) -> QueryResult {
        let deadline = self.cfg.batch_timeout.map(|t| Instant::now() + t);
        let ep = self.pin();
        let mut scratch = self.take_scratch();
        let (result, class, latency) = self.run_one(&ep, q, &mut scratch, deadline, 0);
        self.put_scratch(scratch);
        let mut totals = relock(&self.totals);
        record(&mut totals, &result, class, latency);
        totals.charged_visits += if result.answer.is_ok() {
            result.visits
        } else {
            0
        };
        result
    }

    /// Answer a batch of heterogeneous queries.
    ///
    /// The whole batch evaluates on one pinned epoch — a concurrent
    /// [`Engine::apply_deltas`] affects only later batches. Queries are
    /// claimed from a shared atomic cursor by `cfg.threads` scoped workers
    /// (work-stealing in the sense that fast workers drain more of the
    /// batch); answers come back in input order and are identical for any
    /// thread count. When an aggregate visit budget is configured,
    /// delivered answers are settled against it in input order and the
    /// remainder are [`Answer::Denied`].
    pub fn run_batch(&self, queries: &[Query]) -> BatchReport {
        let deadline = self.cfg.batch_timeout.map(|t| Instant::now() + t);
        self.run_batch_until(queries, deadline)
    }

    /// [`Engine::run_batch`] against an explicit absolute deadline (None =
    /// none), overriding [`EngineConfig::batch_timeout`]. The router uses
    /// this to give every shard of one batch the *same* deadline instant.
    pub fn run_batch_until(&self, queries: &[Query], deadline: Option<Instant>) -> BatchReport {
        let ep = self.pin();
        let n = queries.len();
        let threads = self.effective_threads(n);
        let shed = self.admission_shed(&ep, queries);
        let mut results: Vec<Option<Evaluated>> = Vec::new();
        results.resize_with(n, || None);
        for (i, s) in shed.iter().enumerate() {
            if let Some(answer) = s {
                results[i] = Some((
                    QueryResult {
                        answer: answer.clone(),
                        visits: 0,
                        cached: false,
                    },
                    queries[i].class(),
                    Duration::ZERO,
                ));
            }
        }

        if threads <= 1 {
            let mut scratch = self.take_scratch();
            for (i, q) in queries.iter().enumerate() {
                if results[i].is_none() {
                    results[i] = Some(self.run_one(&ep, q, &mut scratch, deadline, i as u64));
                }
            }
            self.put_scratch(scratch);
        } else {
            let cursor = AtomicUsize::new(0);
            let mut shards: Vec<Vec<(usize, Evaluated)>> = Vec::with_capacity(threads);
            let shed = &shed;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let cursor = &cursor;
                        let ep = &ep;
                        scope.spawn(move || {
                            // One warm scratch per worker for the whole
                            // batch: no cross-thread contention on the
                            // evaluation hot path.
                            let mut scratch = self.take_scratch();
                            let mut out = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                if shed[i].is_some() {
                                    continue;
                                }
                                out.push((
                                    i,
                                    self.run_one(ep, &queries[i], &mut scratch, deadline, i as u64),
                                ));
                            }
                            self.put_scratch(scratch);
                            out
                        })
                    })
                    .collect();
                for h in handles {
                    // A worker that panicked outside the per-query
                    // containment (a bug, or an injected scheduler fault)
                    // loses only its claimed queries: their slots settle as
                    // Failed below instead of aborting the batch.
                    if let Ok(shard) = h.join() {
                        shards.push(shard);
                    }
                }
            });
            for shard in shards {
                for (i, r) in shard {
                    results[i] = Some(r);
                }
            }
        }

        let mut stats = EngineStats::default();
        let mut final_results = Vec::with_capacity(n);
        for (i, slot) in results.into_iter().enumerate() {
            let (result, class, latency) = slot.unwrap_or_else(|| {
                (
                    QueryResult {
                        answer: Answer::Failed("batch worker lost before evaluation".to_string()),
                        visits: 0,
                        cached: false,
                    },
                    queries[i].class(),
                    Duration::ZERO,
                )
            });
            record(&mut stats, &result, class, latency);
            final_results.push(result);
        }
        stats.denied += shed.iter().filter(|s| s.is_some()).count();
        let settlement = settle_aggregate(&mut final_results, self.cfg.aggregate_visit_budget);
        stats.denied += settlement.denied;
        stats.charged_visits += settlement.charged_visits;
        relock(&self.totals).merge(&stats);
        BatchReport {
            results: final_results,
            stats,
        }
    }

    /// The admission decision [`Engine::run_batch`] would make for
    /// `queries` under an explicit aggregate `budget` (None admits
    /// everything, as does an [`AdmissionPolicy::InputOrder`]
    /// configuration). Pure and deterministic; public so a router holding
    /// the budget at the front door sheds byte-identically to a single
    /// budgeted engine.
    pub fn admission_shed_for(
        &self,
        queries: &[Query],
        budget: Option<usize>,
    ) -> Vec<Option<Answer>> {
        let ep = self.pin();
        self.admission_shed_with(&ep, queries, budget)
    }

    /// Admission control: decide, per query, whether it is shed before
    /// evaluation (`Some(Denied)`) or admitted (`None`). Deterministic —
    /// a pure function of the batch, the configuration, and the epoch's
    /// graph, independent of thread count.
    fn admission_shed(&self, ep: &Epoch, queries: &[Query]) -> Vec<Option<Answer>> {
        self.admission_shed_with(ep, queries, self.cfg.aggregate_visit_budget)
    }

    fn admission_shed_with(
        &self,
        ep: &Epoch,
        queries: &[Query],
        budget: Option<usize>,
    ) -> Vec<Option<Answer>> {
        let mut shed: Vec<Option<Answer>> = vec![None; queries.len()];
        let (AdmissionPolicy::ShortestJobFirst, Some(budget)) = (self.cfg.admission, budget) else {
            return shed;
        };
        let estimates: Vec<usize> = queries
            .iter()
            .map(|q| estimate_cost(q, &ep.g, &self.pattern_budget_on(&ep.g)))
            .collect();
        // Shortest job first, ties broken by input index: both the order
        // and the greedy admission below are deterministic.
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_by_key(|&i| (estimates[i], i));
        let mut remaining = budget;
        for i in order {
            if estimates[i] <= remaining {
                remaining -= estimates[i];
            } else {
                shed[i] = Some(Answer::Denied {
                    needed: estimates[i],
                    remaining,
                });
            }
        }
        shed
    }

    fn effective_threads(&self, n: usize) -> usize {
        let t = if self.cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.cfg.threads
        };
        t.max(1).min(n.max(1))
    }

    /// Evaluate one query under panic containment. `index` is the query's
    /// batch position (a fault-injection coordinate). A deadline already
    /// expired at entry settles as [`Answer::TimedOut`] without evaluating
    /// — so fully-expired batches are deterministic at any thread count. A
    /// kernel unwind is caught here: a [`CancelPanic`] (cooperative
    /// deadline expiry) becomes `TimedOut`, anything else becomes
    /// [`Answer::Failed`]; either way the scratch an unwind passed through
    /// is discarded, so the pool never recycles torn buffers.
    // rbq-lint: hot
    fn run_one(
        &self,
        ep: &Epoch,
        q: &Query,
        scratch: &mut WorkerScratch,
        deadline: Option<Instant>,
        index: u64,
    ) -> Evaluated {
        let start = Instant::now();
        let token = match deadline {
            Some(d) => CancelToken::at(d),
            None => CancelToken::none(),
        };
        if token.is_expired() {
            return (
                QueryResult {
                    answer: Answer::TimedOut,
                    visits: 0,
                    cached: false,
                },
                q.class(),
                start.elapsed(),
            );
        }
        // AssertUnwindSafe: on Err every structure the closure touched
        // mutably (the scratch) is discarded below, and the shared locks it
        // takes recover from poisoning — no broken invariant survives.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rbq_graph::faultpoint::fire_at("engine.run_one", index);
            match q {
                Query::Reach { source, target } => self.run_reach(ep, *source, *target),
                Query::PatternSim { pattern } => {
                    self.run_pattern(ep, pattern, Semantics::Simulation, scratch, token)
                }
                Query::PatternIso { pattern } => {
                    self.run_pattern(ep, pattern, Semantics::Isomorphism, scratch, token)
                }
            }
        }));
        let result = match outcome {
            Ok(r) => r,
            Err(payload) => {
                *scratch = WorkerScratch::default();
                let answer = if payload.downcast_ref::<CancelPanic>().is_some() {
                    Answer::TimedOut
                } else {
                    Answer::Failed(panic_message(payload.as_ref()))
                };
                QueryResult {
                    answer,
                    visits: 0,
                    cached: false,
                }
            }
        };
        (result, q.class(), start.elapsed())
    }

    fn run_reach(&self, ep: &Epoch, s: NodeId, t: NodeId) -> QueryResult {
        let n = ep.g.node_count();
        if s.index() >= n || t.index() >= n {
            return QueryResult {
                answer: Answer::Error(format!("node id out of range ({} or {} >= {n})", s.0, t.0)),
                visits: 0,
                cached: false,
            };
        }
        let idx = ep.reach_index(self.cfg.reach_alpha);
        let a = idx.query(s, t);
        QueryResult {
            answer: Answer::Reach {
                reachable: a.reachable,
                certified: a.certified,
            },
            visits: a.visits,
            cached: false,
        }
    }

    fn run_pattern(
        &self,
        ep: &Epoch,
        pattern: &Pattern,
        sem: Semantics,
        scratch: &mut WorkerScratch,
        cancel: CancelToken,
    ) -> QueryResult {
        // Evaluate the canonical relabeling: isomorphic queries then run the
        // byte-identical computation, so cache hits equal cold answers.
        let (canon, signature) = canonical_pattern(pattern);
        let resolved = match canon.resolve(&ep.g) {
            Ok(r) => r,
            Err(e) => {
                return QueryResult {
                    answer: Answer::Error(e.to_string()),
                    visits: 0,
                    cached: false,
                }
            }
        };
        let budget = self.pattern_budget_on(&ep.g);
        let key = CacheKey {
            signature,
            vp: resolved.vp().0,
            semantics: match sem {
                Semantics::Simulation => 0,
                Semantics::Isomorphism => 1,
            },
            max_units: budget.max_units,
            visit_cap: budget.visit_cap,
            generation: ep.generation,
        };
        if let Some(hit) = relock(&self.cache).get(&key) {
            return QueryResult {
                answer: hit.answer,
                visits: hit.visits,
                cached: true,
            };
        }
        let idx = ep.neighbor_index();
        let WorkerScratch {
            pattern: ps,
            answer: ans,
        } = scratch;
        // Arm the deadline on every kernel this evaluation can enter; the
        // unarmed default makes each tick a single branch.
        ps.set_cancel(cancel);
        match sem {
            Semantics::Simulation => rbsim_with(&ep.g, &idx, &resolved, &budget, ps, ans),
            Semantics::Isomorphism => {
                let vf2 = Vf2Config {
                    cancel,
                    ..self.cfg.vf2
                };
                rbsub_scratch(&ep.g, &idx, &resolved, &budget, vf2, ps, ans)
            }
        };
        let answer = Answer::Pattern {
            matches: ans.matches.clone(),
            gq_size: ans.gq_size,
            gq_nodes: ans.gq_nodes,
            hit_budget: ans.hit_budget,
        };
        let visits = ans.visits.total();
        // The eviction signal for delta ingest: which label strings this
        // pattern mentions (sorted, deduplicated). Cold path only.
        let mut labels: Vec<String> = canon
            .nodes()
            .map(|u| canon.label_str(u).to_string())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        relock(&self.cache).insert(
            key,
            CachedAnswer {
                answer: answer.clone(),
                visits,
                labels,
            },
        );
        QueryResult {
            answer,
            visits,
            cached: false,
        }
    }
}

/// Outcome of aggregate-budget settlement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregateSettlement {
    /// Delivered answers converted to [`Answer::Denied`].
    pub denied: usize,
    /// Visit cost charged for the answers that were delivered.
    pub charged_visits: usize,
}

/// Settle a batch's delivered answers against an aggregate visit budget,
/// in input order (deterministic regardless of evaluation scheduling).
///
/// Each delivered (non-error, non-denied) answer is considered in order:
/// if its canonical visit cost fits the remaining budget it is charged,
/// otherwise it is replaced by [`Answer::Denied`] recording what it needed
/// and what remained. With `budget = None` everything is delivered and the
/// full cost charged. This is the single settlement routine shared by
/// [`Engine::run_batch`] and the sharded router, so a batch settles
/// identically whether it ran on one engine or was fanned out and merged.
pub fn settle_aggregate(results: &mut [QueryResult], budget: Option<usize>) -> AggregateSettlement {
    let mut out = AggregateSettlement::default();
    let mut remaining = budget;
    for result in results {
        if !result.answer.is_ok() {
            continue;
        }
        match remaining.as_mut() {
            Some(rem) if result.visits > *rem => {
                out.denied += 1;
                result.answer = Answer::Denied {
                    needed: result.visits,
                    remaining: *rem,
                };
            }
            other => {
                if let Some(rem) = other {
                    *rem -= result.visits;
                }
                out.charged_visits += result.visits;
            }
        }
    }
    out
}

/// Lock a mutex, recovering the guard if a past panic poisoned it. Every
/// structure the engine guards this way (cache, stats, scratch pool) keeps
/// its own invariants across a panic — the poison flag adds no safety.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Read-lock an `RwLock`, recovering the guard if a past panic poisoned
/// it. The engine's only `RwLock` guards the epoch `Arc` swap, which is
/// consistent under any poison history.
fn relock_read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-lock an `RwLock`, recovering from poisoning (see [`relock_read`]).
fn relock_write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Render a caught panic payload as a message for [`Answer::Failed`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministic pre-evaluation cost estimate in canonical visit units, for
/// [`AdmissionPolicy::ShortestJobFirst`]. Reachability answers from the
/// hierarchical index in a handful of probes; a pattern's reduction charges
/// at most its budget, approached in proportion to how much structure the
/// pattern can drag in (nodes × mean degree of the data graph).
fn estimate_cost(q: &Query, g: &Graph, budget: &ResourceBudget) -> usize {
    match q {
        Query::Reach { .. } => 2,
        Query::PatternSim { pattern } | Query::PatternIso { pattern } => {
            let mean_degree = if g.node_count() == 0 {
                0
            } else {
                g.edge_count().div_ceil(g.node_count())
            };
            budget
                .max_units
                .min(pattern.node_count() * (1 + 2 * mean_degree))
                .max(1)
        }
    }
}

fn record(stats: &mut EngineStats, result: &QueryResult, class: QueryClass, latency: Duration) {
    stats.queries += 1;
    let c = stats.class_mut(class);
    c.queries += 1;
    c.latency += latency;
    match &result.answer {
        Answer::Error(_) => stats.errors += 1,
        Answer::TimedOut => stats.timed_out += 1,
        Answer::Failed(_) => stats.failed += 1,
        // Shed before evaluation: counted as a query, but it did no visits
        // and never consulted the cache. (Settlement-time denials are
        // recorded before settlement converts them, so they never reach
        // this arm.)
        Answer::Denied { .. } => {}
        _ => {
            c.visits += result.visits;
            stats.total_visits += result.visits;
            if class != QueryClass::Reach {
                if result.cached {
                    stats.cache_hits += 1;
                } else {
                    stats.cache_misses += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::GraphBuilder;
    use rbq_pattern::pattern::fig1_pattern;

    fn fig1_graph() -> Arc<Graph> {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let hg = b.add_node("HG");
        let cc = b.add_node("CC");
        let cl = b.add_node("CL");
        b.add_edge(michael, hg);
        b.add_edge(michael, cc);
        b.add_edge(cc, cl);
        b.add_edge(hg, cl);
        Arc::new(b.build())
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            pattern_budget: BudgetSpec::Ratio(1.0),
            reach_alpha: 1.0,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn mixed_batch_answers_all_classes() {
        let g = fig1_graph();
        let engine = Engine::new(g, cfg());
        let queries = vec![
            Query::Reach {
                source: NodeId(0),
                target: NodeId(3),
            },
            Query::PatternSim {
                pattern: fig1_pattern(),
            },
            Query::PatternIso {
                pattern: fig1_pattern(),
            },
            Query::Reach {
                source: NodeId(3),
                target: NodeId(0),
            },
        ];
        let report = engine.run_batch(&queries);
        assert_eq!(report.results.len(), 4);
        assert_eq!(
            report.results[0].answer,
            Answer::Reach {
                reachable: true,
                certified: true
            }
        );
        match &report.results[1].answer {
            Answer::Pattern { matches, .. } => assert_eq!(matches, &[NodeId(3)]),
            other => panic!("expected pattern answer, got {other:?}"),
        }
        match &report.results[2].answer {
            Answer::Pattern { matches, .. } => assert_eq!(matches, &[NodeId(3)]),
            other => panic!("expected pattern answer, got {other:?}"),
        }
        assert!(matches!(
            report.results[3].answer,
            Answer::Reach {
                reachable: false,
                ..
            }
        ));
        assert_eq!(report.stats.queries, 4);
        assert_eq!(report.stats.reach.queries, 2);
        assert_eq!(report.stats.sim.queries, 1);
        assert_eq!(report.stats.iso.queries, 1);
    }

    #[test]
    fn repeat_queries_hit_cache() {
        let g = fig1_graph();
        let engine = Engine::new(
            g,
            EngineConfig {
                threads: 1,
                ..cfg()
            },
        );
        let q = Query::PatternSim {
            pattern: fig1_pattern(),
        };
        let first = engine.run(&q);
        let second = engine.run(&q);
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(first.answer, second.answer);
        assert_eq!(first.visits, second.visits);
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn out_of_range_reach_is_an_error_not_a_panic() {
        let g = fig1_graph();
        let engine = Engine::new(g, cfg());
        let r = engine.run(&Query::Reach {
            source: NodeId(0),
            target: NodeId(999),
        });
        assert!(matches!(r.answer, Answer::Error(_)));
        assert_eq!(engine.stats().errors, 1);
    }

    #[test]
    fn unknown_label_is_an_error() {
        let g = fig1_graph();
        let engine = Engine::new(g, cfg());
        let mut b = rbq_pattern::PatternBuilder::new();
        let x = b.add_node("NoSuchLabel");
        b.personalized(x).output(x);
        let r = engine.run(&Query::PatternSim { pattern: b.build() });
        assert!(matches!(r.answer, Answer::Error(_)));
    }

    #[test]
    fn aggregate_budget_denies_tail_in_input_order() {
        let g = fig1_graph();
        let mut c = cfg();
        c.threads = 1;
        let probe = Engine::new(g.clone(), c.clone());
        let q = Query::PatternSim {
            pattern: fig1_pattern(),
        };
        let per_query = probe.run(&q).visits;
        assert!(per_query > 0);

        c.aggregate_visit_budget = Some(per_query); // room for exactly one
        c.cache_capacity = 0; // keep both queries full-cost
        let engine = Engine::new(g, c);
        let report = engine.run_batch(&[q.clone(), q]);
        assert!(report.results[0].answer.is_ok());
        assert!(matches!(report.results[1].answer, Answer::Denied { .. }));
        assert_eq!(report.stats.denied, 1);
        assert!(report.stats.charged_visits <= per_query);
    }

    #[test]
    fn lifetime_stats_accumulate_across_batches() {
        let g = fig1_graph();
        let engine = Engine::new(g, cfg());
        let qs = [Query::Reach {
            source: NodeId(0),
            target: NodeId(1),
        }];
        engine.run_batch(&qs);
        engine.run_batch(&qs);
        assert_eq!(engine.stats().queries, 2);
    }

    #[test]
    fn empty_batch() {
        let g = fig1_graph();
        let engine = Engine::new(g, cfg());
        let report = engine.run_batch(&[]);
        assert!(report.results.is_empty());
        assert_eq!(report.stats.queries, 0);
    }

    #[test]
    fn builder_validates_at_build() {
        let cfg = EngineConfig::builder()
            .pattern_alpha(0.5)
            .reach_alpha(0.2)
            .threads(3)
            .cache_capacity(16)
            .build()
            .unwrap();
        assert_eq!(cfg.pattern_budget, BudgetSpec::Ratio(0.5));
        assert_eq!(cfg.threads, 3);

        assert!(matches!(
            EngineConfig::builder().pattern_alpha(2.0).build(),
            Err(EngineError::InvalidAlpha {
                what: "pattern alpha",
                ..
            })
        ));
        assert!(matches!(
            EngineConfig::builder().threads(0).build(),
            Err(EngineError::InvalidThreads)
        ));
        assert!(EngineConfig::builder().auto_threads().build().is_ok());
        assert!(matches!(
            EngineConfig::builder().visit_coefficient(-1.0).build(),
            Err(EngineError::InvalidVisitCoefficient(_))
        ));
    }

    #[test]
    fn settle_aggregate_matches_inline_settlement() {
        let mk = |visits| QueryResult {
            answer: Answer::Reach {
                reachable: true,
                certified: true,
            },
            visits,
            cached: false,
        };
        let mut rs = vec![
            mk(4),
            QueryResult {
                answer: Answer::Error("x".into()),
                visits: 0,
                cached: false,
            },
            mk(5),
            mk(1),
        ];
        let s = settle_aggregate(&mut rs, Some(6));
        assert_eq!(s.denied, 1);
        assert_eq!(s.charged_visits, 5);
        assert!(rs[0].answer.is_ok());
        assert!(matches!(rs[1].answer, Answer::Error(_)));
        assert_eq!(
            rs[2].answer,
            Answer::Denied {
                needed: 5,
                remaining: 2
            }
        );
        assert!(rs[3].answer.is_ok());

        let mut unlimited = vec![mk(7), mk(9)];
        let s = settle_aggregate(&mut unlimited, None);
        assert_eq!((s.denied, s.charged_visits), (0, 16));
    }

    #[test]
    fn config_validation_catches_bad_alpha() {
        assert!(EngineConfig {
            pattern_budget: BudgetSpec::Ratio(0.0),
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EngineConfig {
            reach_alpha: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EngineConfig::default().validate().is_ok());
    }

    #[test]
    fn apply_deltas_swaps_graph_and_answers_change() {
        let g = fig1_graph();
        let engine = Engine::new(
            g,
            EngineConfig {
                threads: 1,
                ..cfg()
            },
        );
        let q = Query::PatternSim {
            pattern: fig1_pattern(),
        };
        let before = engine.run(&q);
        match &before.answer {
            Answer::Pattern { matches, .. } => assert_eq!(matches, &[NodeId(3)]),
            other => panic!("expected pattern answer, got {other:?}"),
        }
        assert_eq!(engine.generation(), 0);

        // Sever CL from both its supporters: the fig. 1 match disappears.
        let mut batch = DeltaBatch::new();
        batch.remove_edge(NodeId(2), NodeId(3));
        batch.remove_edge(NodeId(1), NodeId(3));
        let report = engine.apply_deltas(&batch).unwrap();
        assert_eq!(report.edges_removed, 2);
        assert_eq!(engine.generation(), 1);
        assert_eq!(engine.graph().edge_count(), 2);

        let after = engine.run(&q);
        assert!(!after.cached, "post-mutation lookup must not hit");
        match &after.answer {
            Answer::Pattern { matches, .. } => assert!(matches.is_empty()),
            other => panic!("expected pattern answer, got {other:?}"),
        }

        // And the mutated engine answers exactly like a fresh rebuild.
        let rebuilt = {
            let (g2, _) = fig1_graph().apply_delta(&batch).unwrap();
            Engine::new(
                Arc::new(g2),
                EngineConfig {
                    threads: 1,
                    ..cfg()
                },
            )
        };
        let fresh = rebuilt.run(&q);
        assert_eq!(after.answer, fresh.answer);
        assert_eq!(after.visits, fresh.visits);
    }

    #[test]
    fn post_mutation_lookup_never_serves_pre_mutation_answer() {
        // The adversarial case for the label heuristic: a delta whose
        // touched labels are DISJOINT from the pattern's, so eager
        // eviction keeps the stale entry in the map. The generation stamp
        // must still make it unreachable.
        let g = fig1_graph();
        let engine = Engine::new(
            g,
            EngineConfig {
                threads: 1,
                ..cfg()
            },
        );
        let q = Query::PatternSim {
            pattern: fig1_pattern(),
        };
        let first = engine.run(&q);
        assert!(!first.cached);
        assert_eq!(engine.cache_len(), 1);

        let mut batch = DeltaBatch::new();
        let x = batch.add_node("Zebra");
        let y = batch.add_node("Zebra");
        batch.add_edge(NodeId(4 + x as u32), NodeId(4 + y as u32));
        let report = engine.apply_deltas(&batch).unwrap();
        assert_eq!(report.touched_labels, vec!["Zebra".to_string()]);
        // Disjoint labels: the stale entry survives eviction...
        assert_eq!(engine.cache_len(), 1);

        // ...but is unreachable: the lookup misses and recomputes on the
        // new graph, then both generations coexist keyed apart.
        let second = engine.run(&q);
        assert!(!second.cached, "stale pre-mutation entry must not serve");
        assert_eq!(engine.cache_len(), 2);
        assert_eq!(first.answer, second.answer); // answer unaffected here
        let third = engine.run(&q);
        assert!(third.cached, "new-generation entry is hittable");
    }

    #[test]
    fn apply_deltas_evicts_touching_entries() {
        let g = fig1_graph();
        let engine = Engine::new(
            g,
            EngineConfig {
                threads: 1,
                ..cfg()
            },
        );
        let q = Query::PatternSim {
            pattern: fig1_pattern(),
        };
        engine.run(&q);
        assert_eq!(engine.cache_len(), 1);

        // Touches "CL" (an endpoint label of the removed edge), which the
        // fig. 1 pattern mentions: the entry is reclaimed eagerly.
        let mut batch = DeltaBatch::new();
        batch.remove_edge(NodeId(2), NodeId(3));
        engine.apply_deltas(&batch).unwrap();
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn apply_deltas_rebuilds_only_built_indexes() {
        let g = fig1_graph();
        let engine = Engine::new(g, cfg());
        // Touch only the pattern side: the reach index stays lazy.
        engine.run(&Query::PatternSim {
            pattern: fig1_pattern(),
        });
        let mut batch = DeltaBatch::new();
        batch.add_node("New");
        engine.apply_deltas(&batch).unwrap();
        let ep = engine.pin();
        assert!(ep.nbr.get().is_some(), "built index carried forward");
        assert!(ep.reach.get().is_none(), "unbuilt index stays lazy");
        // And reach queries still work (building on demand post-swap).
        let r = engine.run(&Query::Reach {
            source: NodeId(0),
            target: NodeId(3),
        });
        assert!(matches!(
            r.answer,
            Answer::Reach {
                reachable: true,
                ..
            }
        ));
    }

    #[test]
    fn delta_error_leaves_engine_untouched() {
        let g = fig1_graph();
        let engine = Engine::new(g, cfg());
        let mut batch = DeltaBatch::new();
        batch.add_edge(NodeId(0), NodeId(99));
        assert!(engine.apply_deltas(&batch).is_err());
        assert_eq!(engine.generation(), 0);
        assert_eq!(engine.graph().edge_count(), 4);
    }

    fn mixed_queries() -> Vec<Query> {
        vec![
            Query::Reach {
                source: NodeId(0),
                target: NodeId(3),
            },
            Query::PatternSim {
                pattern: fig1_pattern(),
            },
            Query::PatternIso {
                pattern: fig1_pattern(),
            },
            Query::Reach {
                source: NodeId(3),
                target: NodeId(0),
            },
        ]
    }

    #[test]
    fn expired_deadline_times_out_whole_batch_at_any_thread_count() {
        let g = fig1_graph();
        for threads in [1usize, 2, 4] {
            let engine = Engine::new(
                g.clone(),
                EngineConfig {
                    batch_timeout: Some(Duration::ZERO),
                    threads,
                    ..cfg()
                },
            );
            let report = engine.run_batch(&mixed_queries());
            for (i, r) in report.results.iter().enumerate() {
                assert_eq!(
                    r.answer,
                    Answer::TimedOut,
                    "query {i} not timed out at {threads} threads"
                );
                assert_eq!(r.visits, 0, "timed-out query {i} charged visits");
            }
            assert_eq!(report.stats.timed_out, 4);
            assert_eq!(report.stats.charged_visits, 0);
            // The engine is still healthy: a fresh deadline-free batch on
            // the same instance answers normally.
            let clean = engine.run_batch_until(&mixed_queries(), None);
            assert!(clean.results[0].answer.is_ok());
            assert!(clean.results[1].answer.is_ok());
        }
    }

    #[test]
    fn unreachable_deadline_leaves_answers_identical() {
        let g = fig1_graph();
        let plain = Engine::new(g.clone(), cfg());
        let with_deadline = Engine::new(
            g,
            EngineConfig {
                batch_timeout: Some(Duration::from_secs(3600)),
                ..cfg()
            },
        );
        let qs = mixed_queries();
        let a = plain.run_batch(&qs);
        let b = with_deadline.run_batch(&qs);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.answer, y.answer);
            assert_eq!(x.visits, y.visits);
        }
        assert_eq!(b.stats.timed_out, 0);
    }

    #[test]
    fn timed_out_answers_round_trip_the_wire() {
        let g = fig1_graph();
        let engine = Engine::new(
            g,
            EngineConfig {
                batch_timeout: Some(Duration::ZERO),
                threads: 1,
                ..cfg()
            },
        );
        let report = engine.run_batch(&mixed_queries());
        let mut buf = Vec::new();
        let answers: Vec<Answer> = report.results.iter().map(|r| r.answer.clone()).collect();
        crate::wire::write_answer_file(&mut buf, &answers).unwrap();
        let parsed = crate::wire::parse_answer_file(&String::from_utf8(buf).unwrap()).unwrap();
        assert_eq!(parsed.answers, answers);
    }

    #[test]
    fn sjf_admission_sheds_expensive_queries_without_evaluating() {
        let g = fig1_graph();
        let engine = Engine::new(
            g,
            EngineConfig {
                aggregate_visit_budget: Some(10),
                admission: AdmissionPolicy::ShortestJobFirst,
                threads: 1,
                ..cfg()
            },
        );
        // Reach estimates at 2 each; a ratio-1.0 pattern estimates at the
        // full per-query budget (|G| = 8 units here), so the pattern is
        // shed and both reach queries are admitted.
        let qs = vec![
            Query::Reach {
                source: NodeId(0),
                target: NodeId(3),
            },
            Query::PatternSim {
                pattern: fig1_pattern(),
            },
            Query::Reach {
                source: NodeId(3),
                target: NodeId(0),
            },
        ];
        let report = engine.run_batch(&qs);
        assert!(report.results[0].answer.is_ok());
        match report.results[1].answer {
            Answer::Denied { needed, .. } => assert!(needed > 0),
            ref other => panic!("expected shed pattern, got {other:?}"),
        }
        assert_eq!(report.results[1].visits, 0, "shed query must not run");
        assert!(report.results[2].answer.is_ok());
        assert_eq!(report.stats.denied, 1);
    }

    #[test]
    fn sjf_without_aggregate_budget_is_a_no_op() {
        let g = fig1_graph();
        let sjf = Engine::new(
            g.clone(),
            EngineConfig {
                admission: AdmissionPolicy::ShortestJobFirst,
                ..cfg()
            },
        );
        let plain = Engine::new(g, cfg());
        let qs = mixed_queries();
        let a = sjf.run_batch(&qs);
        let b = plain.run_batch(&qs);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.answer, y.answer);
        }
        assert_eq!(a.stats.denied, 0);
    }

    #[test]
    fn sjf_shed_set_is_thread_count_invariant() {
        let g = fig1_graph();
        let mut baseline: Option<Vec<bool>> = None;
        for threads in [1usize, 2, 4] {
            let engine = Engine::new(
                g.clone(),
                EngineConfig {
                    aggregate_visit_budget: Some(10),
                    admission: AdmissionPolicy::ShortestJobFirst,
                    threads,
                    ..cfg()
                },
            );
            let report = engine.run_batch(&mixed_queries());
            let shed: Vec<bool> = report
                .results
                .iter()
                .map(|r| matches!(r.answer, Answer::Denied { .. }))
                .collect();
            match &baseline {
                None => baseline = Some(shed),
                Some(b) => assert_eq!(b, &shed, "shed set diverges at {threads} threads"),
            }
        }
    }
}
