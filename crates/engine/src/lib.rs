#![warn(missing_docs)]
//! # rbq-engine — a concurrent mixed-workload query engine
//!
//! The paper answers one query at a time within an `α`-bounded budget;
//! serving *traffic* needs an engine that amortizes the offline structures
//! across a stream of heterogeneous queries. This crate provides it:
//!
//! * a unified [`Query`] enum (reachability / simulation / isomorphism)
//!   and [`Answer`] type, with a one-line text serialization for query
//!   files;
//! * an [`Engine`] owning `Arc`-shared immutable structures — the graph,
//!   the [`rbq_core::NeighborIndex`] (§4.1), and the
//!   [`rbq_reach::HierarchicalIndex`] (§5.1) — each built lazily on the
//!   first query of its class;
//! * per-query **and** aggregate [`rbq_core::ResourceBudget`] accounting:
//!   every pattern query runs under the configured `α` budget, and an
//!   optional batch-level aggregate visit budget is settled
//!   deterministically in input order (excess answers come back
//!   [`Answer::Denied`]);
//! * a bounded LRU **reduction cache** ([`cache`]) keyed by canonical
//!   pattern signature ([`canonical`]) and graph generation, so repeated
//!   or isomorphic queries reuse their `G_Q` answer byte-for-byte and no
//!   post-mutation lookup can surface a pre-mutation answer;
//! * **live updates** ([`Engine::apply_deltas`]): a
//!   [`rbq_graph::DeltaBatch`] swaps in a new epoch — graph plus rebuilt
//!   indexes — while in-flight queries drain on the old one, with a
//!   versioned `#rbq-deltas` wire format ([`wire::parse_delta_file`]);
//! * a work-stealing batch scheduler ([`Engine::run_batch`]):
//!   `std::thread::scope` workers claim queries off a shared atomic
//!   cursor, answers return in input order and are identical for any
//!   thread count, and [`EngineStats`] reports visits, cache hit rate and
//!   per-class latency.

pub mod cache;
pub mod canonical;
pub mod durability;
pub mod engine;
pub mod error;
pub mod query;
pub mod wire;

pub use cache::{CacheKey, CachedAnswer, ReductionCache};
pub use canonical::canonical_pattern;
pub use durability::{ApplyError, Durability, DurabilityConfig, DurabilityError, RecoveryReport};
pub use engine::{
    settle_aggregate, AdmissionPolicy, AggregateSettlement, BatchReport, BudgetSpec, ClassStats,
    Engine, EngineConfig, EngineConfigBuilder, EngineStats,
};
pub use error::{EngineError, QueryParseError};
pub use query::{Answer, Query, QueryClass, QueryResult};
pub use rbq_graph::faultpoint;
pub use wire::{
    WireWriteError, ANSWER_FILE_HEADER, DELTA_FILE_HEADER, MIN_WIRE_VERSION, QUERY_FILE_HEADER,
    WIRE_VERSION,
};
