//! The versioned wire format: query files and answer lines.
//!
//! Queries and answers cross process boundaries — batch files on disk
//! today, router ↔ shard payloads tomorrow — so both directions are
//! versioned:
//!
//! * **Query files** start with the header `#rbq-queries v2`, followed by
//!   one [`Query::to_line`] per line (blank lines and `#` comments
//!   ignored). Headerless files are accepted as v1 for backward
//!   compatibility, with [`QueryFile::headerless`] set so front ends can
//!   warn; a header declaring a version this build does not speak is an
//!   error, not a silent misparse.
//! * **Answer files** start with `#rbq-answers v2`, followed by one
//!   [`answer_to_line`] per line. The answer line format is the
//!   router↔shard payload: every [`Answer`] variant round-trips exactly
//!   (pinned by proptests), except that newlines inside error messages are
//!   flattened to spaces (the format is line-oriented).
//!
//! **v2** adds the `timedout` and `failed` answer kinds (deadline expiry
//! and contained evaluation panics). This build reads v1 and v2 — v1 never
//! emitted either kind, so every v1 file is also a valid v2 file — and
//! writes v2.

use crate::error::QueryParseError;
use crate::{Answer, Query};
use rbq_graph::{DeltaBatch, DeltaOp, NodeId};
use std::io::Write;

/// The wire version this build writes (it reads both this and v1).
pub const WIRE_VERSION: u32 = 2;
/// The oldest wire version this build still reads.
pub const MIN_WIRE_VERSION: u32 = 1;
/// First line of a versioned query file.
pub const QUERY_FILE_HEADER: &str = "#rbq-queries v2";
/// First line of a versioned answer file.
pub const ANSWER_FILE_HEADER: &str = "#rbq-answers v2";
/// First line of a versioned delta file.
pub const DELTA_FILE_HEADER: &str = "#rbq-deltas v2";

/// A parsed query file.
#[derive(Debug, Clone)]
pub struct QueryFile {
    /// The queries, in file order.
    pub queries: Vec<Query>,
    /// Declared wire version (1 when headerless).
    pub version: u32,
    /// Whether the file lacked the `#rbq-queries` header (legacy format,
    /// treated as v1 — front ends should warn).
    pub headerless: bool,
}

/// Parse the version token of a `#rbq-<kind> v<N>` header line.
fn parse_header_version(line: &str, kind: &str) -> Result<u32, QueryParseError> {
    let rest = line
        .strip_prefix(&format!("#rbq-{kind}"))
        // invariant: both callers dispatch on `line.starts_with` the same
        // prefix immediately before calling, so the strip cannot fail.
        .expect("caller checked prefix")
        .trim();
    let v: u32 = rest
        .strip_prefix('v')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| QueryParseError::UnsupportedVersion(rest.to_owned()))?;
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&v) {
        return Err(QueryParseError::UnsupportedVersion(rest.to_owned()));
    }
    Ok(v)
}

/// Parse a whole query file (see [`QUERY_FILE_HEADER`]).
///
/// Errors carry their 1-based line number via
/// [`QueryParseError::AtLine`].
pub fn parse_query_file(text: &str) -> Result<QueryFile, QueryParseError> {
    let mut queries = Vec::new();
    let mut version = None;
    let mut headerless = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            if line.starts_with("#rbq-queries") {
                if version.is_some() || !queries.is_empty() {
                    // A header anywhere but the top is a stray comment.
                    continue;
                }
                version = Some(
                    parse_header_version(line, "queries")
                        .map_err(|e| QueryParseError::AtLine(i + 1, Box::new(e)))?,
                );
            }
            continue;
        }
        if version.is_none() && queries.is_empty() {
            headerless = true;
        }
        queries.push(
            Query::parse_line(line).map_err(|e| QueryParseError::AtLine(i + 1, Box::new(e)))?,
        );
    }
    Ok(QueryFile {
        queries,
        version: version.unwrap_or(MIN_WIRE_VERSION),
        headerless: headerless && version.is_none(),
    })
}

/// Write a versioned query file: header plus one line per query.
pub fn write_query_file<W: Write>(w: &mut W, queries: &[Query]) -> Result<(), WireWriteError> {
    writeln!(w, "{QUERY_FILE_HEADER}")?;
    for q in queries {
        writeln!(w, "{}", q.to_line()?)?;
    }
    Ok(())
}

/// Serialize one [`Answer`] to its versioned one-line form:
///
/// ```text
/// reach <0|1 reachable> <0|1 certified>
/// pattern <gq_size> <gq_nodes> <0|1 hit_budget> <m0,m1,...|->
/// denied <needed> <remaining>
/// error <message...>
/// timedout
/// failed <message...>
/// ```
///
/// (`timedout` and `failed` are v2 additions.) Infallible (unlike
/// queries, answers contain no free-form labels); newlines in error and
/// failure messages are flattened to spaces.
pub fn answer_to_line(a: &Answer) -> String {
    match a {
        Answer::Reach {
            reachable,
            certified,
        } => format!("reach {} {}", *reachable as u8, *certified as u8),
        Answer::Pattern {
            matches,
            gq_size,
            gq_nodes,
            hit_budget,
        } => {
            let ms = if matches.is_empty() {
                "-".to_owned()
            } else {
                matches
                    .iter()
                    .map(|v| v.0.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!("pattern {gq_size} {gq_nodes} {} {ms}", *hit_budget as u8)
        }
        Answer::Denied { needed, remaining } => format!("denied {needed} {remaining}"),
        Answer::Error(msg) => format!("error {}", msg.replace(['\n', '\r'], " ")),
        Answer::TimedOut => "timedout".to_owned(),
        Answer::Failed(msg) => format!("failed {}", msg.replace(['\n', '\r'], " ")),
    }
}

/// Parse one answer line written by [`answer_to_line`].
pub fn answer_from_line(line: &str) -> Result<Answer, QueryParseError> {
    let line = line.trim_end_matches(['\n', '\r']);
    let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
    let mut fields = rest.split_whitespace();
    let mut next = |what: &'static str| -> Result<&str, QueryParseError> {
        fields.next().ok_or(QueryParseError::MissingField(what))
    };
    let parse_bool = |what: &'static str, tok: &str| -> Result<bool, QueryParseError> {
        match tok {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => Err(QueryParseError::BadField {
                what,
                token: tok.to_owned(),
            }),
        }
    };
    let parse_num = |what: &'static str, tok: &str| -> Result<usize, QueryParseError> {
        tok.parse().map_err(|_| QueryParseError::BadField {
            what,
            token: tok.to_owned(),
        })
    };
    match kind {
        "" => Err(QueryParseError::EmptyLine),
        "reach" => {
            let reachable = parse_bool("reachable flag", next("reachable flag")?)?;
            let certified = parse_bool("certified flag", next("certified flag")?)?;
            if fields.next().is_some() {
                return Err(QueryParseError::TrailingTokens(line.to_owned()));
            }
            Ok(Answer::Reach {
                reachable,
                certified,
            })
        }
        "pattern" => {
            let gq_size = parse_num("gq size", next("gq size")?)?;
            let gq_nodes = parse_num("gq nodes", next("gq nodes")?)?;
            let hit_budget = parse_bool("budget flag", next("budget flag")?)?;
            let ms = next("match list")?;
            if fields.next().is_some() {
                return Err(QueryParseError::TrailingTokens(line.to_owned()));
            }
            let mut matches = Vec::new();
            if ms != "-" {
                for tok in ms.split(',') {
                    let id: u32 = tok.parse().map_err(|_| QueryParseError::BadField {
                        what: "match id",
                        token: tok.to_owned(),
                    })?;
                    matches.push(NodeId(id));
                }
            }
            Ok(Answer::Pattern {
                matches,
                gq_size,
                gq_nodes,
                hit_budget,
            })
        }
        "denied" => {
            let needed = parse_num("needed visits", next("needed visits")?)?;
            let remaining = parse_num("remaining budget", next("remaining budget")?)?;
            if fields.next().is_some() {
                return Err(QueryParseError::TrailingTokens(line.to_owned()));
            }
            Ok(Answer::Denied { needed, remaining })
        }
        "error" => Ok(Answer::Error(rest.to_owned())),
        "timedout" => {
            if fields.next().is_some() {
                return Err(QueryParseError::TrailingTokens(line.to_owned()));
            }
            Ok(Answer::TimedOut)
        }
        "failed" => Ok(Answer::Failed(rest.to_owned())),
        other => Err(QueryParseError::UnknownAnswerKind(other.to_owned())),
    }
}

/// A parsed answer file.
#[derive(Debug, Clone)]
pub struct AnswerFile {
    /// The answers, in file order.
    pub answers: Vec<Answer>,
    /// Declared wire version (1 when headerless).
    pub version: u32,
    /// Whether the file lacked the `#rbq-answers` header.
    pub headerless: bool,
}

/// Parse a whole answer file (see [`ANSWER_FILE_HEADER`]).
pub fn parse_answer_file(text: &str) -> Result<AnswerFile, QueryParseError> {
    let mut answers = Vec::new();
    let mut version = None;
    let mut headerless = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            if line.starts_with("#rbq-answers") && version.is_none() && answers.is_empty() {
                version = Some(
                    parse_header_version(line, "answers")
                        .map_err(|e| QueryParseError::AtLine(i + 1, Box::new(e)))?,
                );
            }
            continue;
        }
        if version.is_none() && answers.is_empty() {
            headerless = true;
        }
        answers
            .push(answer_from_line(line).map_err(|e| QueryParseError::AtLine(i + 1, Box::new(e)))?);
    }
    Ok(AnswerFile {
        answers,
        version: version.unwrap_or(MIN_WIRE_VERSION),
        headerless: headerless && version.is_none(),
    })
}

/// Write a versioned answer file: header plus one line per answer.
pub fn write_answer_file<W: Write>(w: &mut W, answers: &[Answer]) -> Result<(), WireWriteError> {
    writeln!(w, "{ANSWER_FILE_HEADER}")?;
    for a in answers {
        writeln!(w, "{}", answer_to_line(a))?;
    }
    Ok(())
}

/// A parsed delta file.
#[derive(Debug, Clone)]
pub struct DeltaFile {
    /// The recorded update batch, in file order.
    pub batch: DeltaBatch,
    /// Declared wire version (1 when headerless).
    pub version: u32,
    /// Whether the file lacked the `#rbq-deltas` header.
    pub headerless: bool,
}

/// Serialize one [`DeltaOp`] to its versioned one-line form:
///
/// ```text
/// an <label>
/// ae <u> <v>
/// re <u> <v>
/// ```
///
/// Node ids in `ae`/`re` lines may point past the current graph into the
/// batch's own `an` additions, exactly like the in-memory API. Labels are
/// single whitespace-free tokens (the format is line- and token-oriented);
/// a label that cannot round-trip is a typed error.
pub fn delta_op_to_line(op: &DeltaOp) -> Result<String, QueryParseError> {
    Ok(match op {
        DeltaOp::AddNode(label) => {
            if label.is_empty() || label.chars().any(char::is_whitespace) {
                return Err(QueryParseError::UnserializableLabel(label.clone()));
            }
            format!("an {label}")
        }
        DeltaOp::AddEdge(u, v) => format!("ae {} {}", u.0, v.0),
        DeltaOp::RemoveEdge(u, v) => format!("re {} {}", u.0, v.0),
    })
}

/// Parse one delta line written by [`delta_op_to_line`].
pub fn delta_op_from_line(line: &str) -> Result<DeltaOp, QueryParseError> {
    let line = line.trim();
    let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
    let mut fields = rest.split_whitespace();
    let mut next = |what: &'static str| -> Result<&str, QueryParseError> {
        fields.next().ok_or(QueryParseError::MissingField(what))
    };
    let parse_id = |what: &'static str, tok: &str| -> Result<NodeId, QueryParseError> {
        tok.parse::<u32>()
            .map(NodeId)
            .map_err(|_| QueryParseError::BadField {
                what,
                token: tok.to_owned(),
            })
    };
    match kind {
        "" => Err(QueryParseError::EmptyLine),
        "an" => {
            let label = next("node label")?.to_owned();
            if fields.next().is_some() {
                return Err(QueryParseError::TrailingTokens(line.to_owned()));
            }
            Ok(DeltaOp::AddNode(label))
        }
        "ae" | "re" => {
            let u = parse_id("source id", next("source id")?)?;
            let v = parse_id("target id", next("target id")?)?;
            if fields.next().is_some() {
                return Err(QueryParseError::TrailingTokens(line.to_owned()));
            }
            Ok(if kind == "ae" {
                DeltaOp::AddEdge(u, v)
            } else {
                DeltaOp::RemoveEdge(u, v)
            })
        }
        other => Err(QueryParseError::UnknownKind(other.to_owned())),
    }
}

/// Parse a whole delta file (see [`DELTA_FILE_HEADER`]).
///
/// Errors carry their 1-based line number via
/// [`QueryParseError::AtLine`].
pub fn parse_delta_file(text: &str) -> Result<DeltaFile, QueryParseError> {
    let mut batch = DeltaBatch::new();
    let mut version = None;
    let mut headerless = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            if line.starts_with("#rbq-deltas") && version.is_none() && batch.is_empty() {
                version = Some(
                    parse_header_version(line, "deltas")
                        .map_err(|e| QueryParseError::AtLine(i + 1, Box::new(e)))?,
                );
            }
            continue;
        }
        if version.is_none() && batch.is_empty() {
            headerless = true;
        }
        let op =
            delta_op_from_line(line).map_err(|e| QueryParseError::AtLine(i + 1, Box::new(e)))?;
        match op {
            DeltaOp::AddNode(label) => {
                batch.add_node(&label);
            }
            DeltaOp::AddEdge(u, v) => batch.add_edge(u, v),
            DeltaOp::RemoveEdge(u, v) => batch.remove_edge(u, v),
        }
    }
    Ok(DeltaFile {
        batch,
        version: version.unwrap_or(MIN_WIRE_VERSION),
        headerless: headerless && version.is_none(),
    })
}

/// Write a versioned delta file: header plus one line per operation.
pub fn write_delta_file<W: Write>(w: &mut W, batch: &DeltaBatch) -> Result<(), WireWriteError> {
    writeln!(w, "{DELTA_FILE_HEADER}")?;
    for op in batch.ops() {
        writeln!(w, "{}", delta_op_to_line(op)?)?;
    }
    Ok(())
}

/// Errors writing a wire file: a query that cannot round-trip, or I/O.
#[derive(Debug)]
pub enum WireWriteError {
    /// The payload cannot be serialized (see
    /// [`QueryParseError::UnserializableLabel`]).
    Format(QueryParseError),
    /// The underlying writer failed.
    Io(std::io::Error),
}

impl std::fmt::Display for WireWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireWriteError::Format(e) => write!(f, "{e}"),
            WireWriteError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireWriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireWriteError::Format(e) => Some(e),
            WireWriteError::Io(e) => Some(e),
        }
    }
}

impl From<QueryParseError> for WireWriteError {
    fn from(e: QueryParseError) -> Self {
        WireWriteError::Format(e)
    }
}

impl From<std::io::Error> for WireWriteError {
    fn from(e: std::io::Error) -> Self {
        WireWriteError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_pattern::pattern::fig1_pattern;

    fn answers() -> Vec<Answer> {
        vec![
            Answer::Reach {
                reachable: true,
                certified: true,
            },
            Answer::Reach {
                reachable: false,
                certified: false,
            },
            Answer::Pattern {
                matches: vec![NodeId(3), NodeId(9)],
                gq_size: 14,
                gq_nodes: 6,
                hit_budget: true,
            },
            Answer::Pattern {
                matches: vec![],
                gq_size: 0,
                gq_nodes: 0,
                hit_budget: false,
            },
            Answer::Denied {
                needed: 120,
                remaining: 7,
            },
            Answer::Error("node id out of range (9 or 10 >= 4)".into()),
            Answer::TimedOut,
            Answer::Failed("kernel panicked: index out of bounds".into()),
        ]
    }

    #[test]
    fn answer_lines_round_trip() {
        for a in answers() {
            let line = answer_to_line(&a);
            let back = answer_from_line(&line).expect(&line);
            assert_eq!(a, back, "line {line:?}");
        }
    }

    #[test]
    fn answer_file_round_trips() {
        let aa = answers();
        let mut buf = Vec::new();
        write_answer_file(&mut buf, &aa).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with(ANSWER_FILE_HEADER));
        let parsed = parse_answer_file(&text).unwrap();
        assert_eq!(parsed.answers, aa);
        assert_eq!(parsed.version, WIRE_VERSION);
        assert!(!parsed.headerless);
    }

    #[test]
    fn query_file_round_trips_with_header() {
        let qs = vec![
            Query::Reach {
                source: NodeId(7),
                target: NodeId(42),
            },
            Query::PatternSim {
                pattern: fig1_pattern(),
            },
        ];
        let mut buf = Vec::new();
        write_query_file(&mut buf, &qs).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with(QUERY_FILE_HEADER));
        let parsed = parse_query_file(&text).unwrap();
        assert_eq!(parsed.queries.len(), 2);
        assert!(!parsed.headerless);
        assert_eq!(
            parsed.queries[0].to_line().unwrap(),
            qs[0].to_line().unwrap()
        );
        assert_eq!(
            parsed.queries[1].to_line().unwrap(),
            qs[1].to_line().unwrap()
        );
    }

    #[test]
    fn headerless_query_file_accepted_as_v1() {
        let parsed = parse_query_file("# legacy comment\nr 0 1\n").unwrap();
        assert_eq!(parsed.queries.len(), 1);
        assert_eq!(parsed.version, MIN_WIRE_VERSION);
        assert!(parsed.headerless);
    }

    #[test]
    fn v1_header_still_accepted() {
        let parsed = parse_query_file("#rbq-queries v1\nr 0 1\n").unwrap();
        assert_eq!(parsed.queries.len(), 1);
        assert_eq!(parsed.version, 1);
        assert!(!parsed.headerless);
        let parsed = parse_answer_file("#rbq-answers v1\nreach 1 0\n").unwrap();
        assert_eq!(parsed.version, 1);
    }

    #[test]
    fn future_version_rejected() {
        // rbq-lint: allow(wire-version, "rejection test: a future v3 header must error")
        let err = parse_query_file("#rbq-queries v3\nr 0 1\n").unwrap_err();
        assert!(
            matches!(&err, QueryParseError::AtLine(1, e)
                if matches!(**e, QueryParseError::UnsupportedVersion(_))),
            "{err}"
        );
        // rbq-lint: allow(wire-version, "rejection test: a future v9 header must error")
        assert!(parse_answer_file("#rbq-answers v9\n").is_err());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_query_file("#rbq-queries v1\nr 0 1\nx bogus\n").unwrap_err();
        assert!(matches!(err, QueryParseError::AtLine(3, _)), "{err}");
    }

    #[test]
    fn error_message_newlines_flattened() {
        let a = Answer::Error("two\nlines".into());
        let line = answer_to_line(&a);
        assert_eq!(
            answer_from_line(&line).unwrap(),
            Answer::Error("two lines".into())
        );
    }

    #[test]
    fn delta_file_round_trips() {
        let mut batch = DeltaBatch::new();
        let rank = batch.add_node("Newcomer");
        batch.add_edge(NodeId(0), NodeId(4 + rank as u32));
        batch.remove_edge(NodeId(1), NodeId(3));
        let mut buf = Vec::new();
        write_delta_file(&mut buf, &batch).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with(DELTA_FILE_HEADER));
        let parsed = parse_delta_file(&text).unwrap();
        assert_eq!(parsed.batch, batch);
        assert_eq!(parsed.version, WIRE_VERSION);
        assert!(!parsed.headerless);
    }

    #[test]
    fn headerless_delta_file_accepted_as_v1() {
        let parsed = parse_delta_file("ae 0 1\nre 2 3\n").unwrap();
        assert_eq!(parsed.batch.len(), 2);
        assert!(parsed.headerless);
        // rbq-lint: allow(wire-version, "rejection test: a future v9 header must error")
        assert!(parse_delta_file("#rbq-deltas v9\n").is_err());
    }

    #[test]
    fn malformed_delta_lines_rejected() {
        for bad in [
            "",
            "an",
            "an two words",
            "ae 0",
            "ae x 1",
            "re 0 1 2",
            "zz 0 1",
        ] {
            assert!(delta_op_from_line(bad).is_err(), "accepted {bad:?}");
        }
        let err = parse_delta_file("#rbq-deltas v1\nan A\nae bogus 1\n").unwrap_err();
        assert!(matches!(err, QueryParseError::AtLine(3, _)), "{err}");
        // A whitespace label cannot round-trip the line format.
        let mut batch = DeltaBatch::new();
        batch.add_node("two words");
        let mut buf = Vec::new();
        assert!(matches!(
            write_delta_file(&mut buf, &batch),
            Err(WireWriteError::Format(
                QueryParseError::UnserializableLabel(_)
            ))
        ));
    }

    #[test]
    fn malformed_answer_lines_rejected() {
        for bad in [
            "",
            "reach 1",
            "reach 2 0",
            "reach 1 0 extra",
            "pattern 3 2 1",
            "pattern 3 2 1 a,b",
            "denied 5",
            "timedout extra",
            "bogus 1 2",
        ] {
            assert!(answer_from_line(bad).is_err(), "accepted {bad:?}");
        }
    }
}
