//! A bounded LRU cache of reduction answers keyed by canonical pattern
//! signature.
//!
//! Repeated or isomorphic pattern queries dominate personalized-search
//! traffic (the same templates re-anchored over and over); since the
//! engine's structures are immutable, a `G_Q` answer computed once is
//! valid forever. Entries key on the canonical signature *plus* everything
//! else that determines the answer: the resolved personalized match, the
//! matching semantics, and the exact per-query budget.

use crate::Answer;
use rustc_hash::FxHashMap;

/// Everything that determines a cached pattern answer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical pattern signature (see [`crate::canonical`]).
    pub signature: String,
    /// The personalized match `v_p` the pattern resolved to.
    pub vp: u32,
    /// Matching semantics discriminant (0 = simulation, 1 = isomorphism).
    pub semantics: u8,
    /// Per-query size budget `⌊α|G|⌋`.
    pub max_units: usize,
    /// Per-query visit cap, if configured.
    pub visit_cap: Option<usize>,
}

/// A cached answer plus the canonical visit cost of computing it.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// The answer served on a hit, byte-identical to the cold path.
    pub answer: Answer,
    /// Data units the cold evaluation visited — re-charged on hits so
    /// budget accounting is schedule-independent.
    pub visits: usize,
}

/// Bounded LRU map. Eviction scans for the least-recently-used entry —
/// O(capacity), which is fine for the few-hundred-entry caches the engine
/// runs with and keeps the structure a single flat map.
#[derive(Debug)]
pub struct ReductionCache {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    map: FxHashMap<CacheKey, (u64, CachedAnswer)>,
}

impl ReductionCache {
    /// A cache holding at most `capacity` entries; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        ReductionCache {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            map: FxHashMap::default(),
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedAnswer> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((stamp, entry)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(entry.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `value`, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: CacheKey, value: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(evict) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&evict);
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sig: &str) -> CacheKey {
        CacheKey {
            signature: sig.to_string(),
            vp: 0,
            semantics: 0,
            max_units: 10,
            visit_cap: None,
        }
    }

    fn ans(n: usize) -> CachedAnswer {
        CachedAnswer {
            answer: Answer::Pattern {
                matches: Vec::new(),
                gq_size: n,
                gq_nodes: n,
                hit_budget: false,
            },
            visits: n,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut c = ReductionCache::new(4);
        assert!(c.get(&key("a")).is_none());
        c.insert(key("a"), ans(3));
        let got = c.get(&key("a")).expect("hit");
        assert_eq!(got.visits, 3);
        assert_eq!(c.counters(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ReductionCache::new(2);
        c.insert(key("a"), ans(1));
        c.insert(key("b"), ans(2));
        let _ = c.get(&key("a")); // refresh a; b is now LRU
        c.insert(key("c"), ans(3));
        assert!(c.get(&key("b")).is_none(), "b should have been evicted");
        assert!(c.get(&key("a")).is_some());
        assert!(c.get(&key("c")).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ReductionCache::new(0);
        c.insert(key("a"), ans(1));
        assert!(c.get(&key("a")).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn budget_distinguishes_keys() {
        let mut c = ReductionCache::new(4);
        c.insert(key("a"), ans(1));
        let mut other = key("a");
        other.max_units = 99;
        assert!(c.get(&other).is_none());
    }

    #[test]
    fn reinsert_same_key_keeps_len() {
        let mut c = ReductionCache::new(2);
        c.insert(key("a"), ans(1));
        c.insert(key("a"), ans(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key("a")).unwrap().visits, 2);
    }
}
