//! A bounded LRU cache of reduction answers keyed by canonical pattern
//! signature — generation-stamped so live updates can never serve a
//! pre-mutation answer.
//!
//! Repeated or isomorphic pattern queries dominate personalized-search
//! traffic (the same templates re-anchored over and over); a `G_Q` answer
//! computed once is valid for as long as the graph does not change.
//! Entries key on the canonical signature *plus* everything else that
//! determines the answer: the resolved personalized match, the matching
//! semantics, the exact per-query budget — and, since delta ingest landed,
//! the **graph generation**. Every applied [`rbq_graph::DeltaBatch`] bumps
//! the engine's generation, so a lookup after a mutation carries a key no
//! pre-mutation insert can collide with: stale answers are unreachable by
//! construction, not by convention.
//!
//! On top of the generation stamp, [`ReductionCache::evict_touching`]
//! eagerly removes entries whose pattern mentions any label the delta
//! touched — those are *known* garbage, so they should not occupy LRU
//! capacity waiting to age out. Entries over disjoint labels are left to
//! ordinary LRU aging: they can never be served again (old generation),
//! and re-keying them to the new generation would be unsound — an edge
//! between two unrelated-labeled nodes can still change ball membership
//! and `r`-neighborhood contents for a pattern that mentions neither
//! endpoint label, so label-disjointness does not imply answer invariance.

use crate::Answer;
use rustc_hash::FxHashMap;

/// Everything that determines a cached pattern answer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical pattern signature (see [`crate::canonical`]).
    pub signature: String,
    /// The personalized match `v_p` the pattern resolved to.
    pub vp: u32,
    /// Matching semantics discriminant (0 = simulation, 1 = isomorphism).
    pub semantics: u8,
    /// Per-query size budget `⌊α|G|⌋`.
    pub max_units: usize,
    /// Per-query visit cap, if configured.
    pub visit_cap: Option<usize>,
    /// Graph generation the answer was computed at. Bumped by every
    /// applied delta batch, making pre-mutation entries unreachable.
    pub generation: u64,
}

/// A cached answer plus the canonical visit cost of computing it.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// The answer served on a hit, byte-identical to the cold path.
    pub answer: Answer,
    /// Data units the cold evaluation visited — re-charged on hits so
    /// budget accounting is schedule-independent.
    pub visits: usize,
    /// Label **strings** the pattern mentions, sorted and deduplicated —
    /// the eviction signal matched against a delta's touched labels.
    /// Strings rather than interned ids: a delta can introduce a label the
    /// pre-mutation graph never interned, and a cached "no such label"
    /// answer for it must still be evictable.
    pub labels: Vec<String>,
}

/// Bounded LRU map. Eviction scans for the least-recently-used entry —
/// O(capacity), which is fine for the few-hundred-entry caches the engine
/// runs with and keeps the structure a single flat map.
#[derive(Debug)]
pub struct ReductionCache {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    map: FxHashMap<CacheKey, (u64, CachedAnswer)>,
}

impl ReductionCache {
    /// A cache holding at most `capacity` entries; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        ReductionCache {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            map: FxHashMap::default(),
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedAnswer> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((stamp, entry)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(entry.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `value`, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: CacheKey, value: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(evict) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&evict);
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Remove every entry whose label set intersects `touched` (both
    /// sorted, deduplicated). Called on each applied delta batch with the
    /// delta's touched labels; returns the number of entries evicted.
    pub fn evict_touching(&mut self, touched: &[String]) -> usize {
        if touched.is_empty() || self.map.is_empty() {
            return 0;
        }
        let before = self.map.len();
        self.map
            .retain(|_, (_, entry)| !sorted_intersects(&entry.labels, touched));
        before - self.map.len()
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Whether two sorted, deduplicated string slices share an element.
fn sorted_intersects(a: &[String], b: &[String]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sig: &str) -> CacheKey {
        CacheKey {
            signature: sig.to_string(),
            vp: 0,
            semantics: 0,
            max_units: 10,
            visit_cap: None,
            generation: 0,
        }
    }

    fn ans(n: usize) -> CachedAnswer {
        ans_labeled(n, &[])
    }

    fn ans_labeled(n: usize, labels: &[&str]) -> CachedAnswer {
        CachedAnswer {
            answer: Answer::Pattern {
                matches: Vec::new(),
                gq_size: n,
                gq_nodes: n,
                hit_budget: false,
            },
            visits: n,
            labels: labels.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut c = ReductionCache::new(4);
        assert!(c.get(&key("a")).is_none());
        c.insert(key("a"), ans(3));
        let got = c.get(&key("a")).expect("hit");
        assert_eq!(got.visits, 3);
        assert_eq!(c.counters(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ReductionCache::new(2);
        c.insert(key("a"), ans(1));
        c.insert(key("b"), ans(2));
        let _ = c.get(&key("a")); // refresh a; b is now LRU
        c.insert(key("c"), ans(3));
        assert!(c.get(&key("b")).is_none(), "b should have been evicted");
        assert!(c.get(&key("a")).is_some());
        assert!(c.get(&key("c")).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ReductionCache::new(0);
        c.insert(key("a"), ans(1));
        assert!(c.get(&key("a")).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn budget_distinguishes_keys() {
        let mut c = ReductionCache::new(4);
        c.insert(key("a"), ans(1));
        let mut other = key("a");
        other.max_units = 99;
        assert!(c.get(&other).is_none());
    }

    #[test]
    fn generation_distinguishes_keys() {
        // The satellite guarantee at the cache layer: an entry inserted at
        // generation 0 is invisible to a generation-1 lookup of the
        // otherwise-identical key.
        let mut c = ReductionCache::new(4);
        c.insert(key("a"), ans(1));
        let mut bumped = key("a");
        bumped.generation = 1;
        assert!(c.get(&bumped).is_none());
        assert!(c.get(&key("a")).is_some(), "old generation still keyed");
    }

    #[test]
    fn evict_touching_removes_intersections_only() {
        let mut c = ReductionCache::new(8);
        c.insert(key("a"), ans_labeled(1, &["A", "B"]));
        c.insert(key("b"), ans_labeled(2, &["C"]));
        c.insert(key("c"), ans_labeled(3, &["B", "D"]));
        let evicted = c.evict_touching(&["B".to_string(), "Z".to_string()]);
        assert_eq!(evicted, 2);
        assert!(c.get(&key("a")).is_none());
        assert!(c.get(&key("c")).is_none());
        assert!(c.get(&key("b")).is_some(), "disjoint entry kept");
        let none = c.evict_touching(&[]);
        assert_eq!(none, 0);
    }

    #[test]
    fn reinsert_same_key_keeps_len() {
        let mut c = ReductionCache::new(2);
        c.insert(key("a"), ans(1));
        c.insert(key("a"), ans(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key("a")).unwrap().visits, 2);
    }
}
