//! Durable serving state: snapshot checkpoints plus a write-ahead log.
//!
//! A durability directory holds exactly two artifacts:
//!
//! | file           | format                        | role                         |
//! |----------------|-------------------------------|------------------------------|
//! | `snapshot.bin` | [`rbq_graph::snapshot`] `v1`  | checkpoint of the CSR graph  |
//! | `wal.log`      | [`rbq_graph::wal`] `v1`       | delta batches since checkpoint |
//!
//! The contract [`crate::Engine::apply_deltas`] upholds when durability is
//! enabled: a batch is appended to the WAL **and fsynced before the epoch
//! swap**, so no query can ever observe state that would not survive a
//! crash. When an apply triggers the compaction heuristic (the graph
//! crate's churn threshold), the compacted graph is written as a new
//! snapshot and the log is rotated — both atomically, and in an order
//! (snapshot first, rotate second) that is crash-safe at every
//! intermediate point because recovery skips WAL records the snapshot
//! already covers.
//!
//! Recovery ([`Durability::recover`], surfaced as `Engine::recover`) is:
//! load snapshot → replay the WAL's valid prefix → serve. A torn tail or
//! corrupt record stops the replay at the last trustworthy batch; the
//! surviving prefix serves and the damaged suffix is quarantined by an
//! immediate re-checkpoint.

use rbq_graph::delta::{DeltaBatch, DeltaError};
use rbq_graph::snapshot::{load_snapshot, write_snapshot, SnapshotError, SNAPSHOT_FILE};
use rbq_graph::wal::{replay, WalError, WalWriter, WAL_FILE};
use rbq_graph::Graph;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Where (and that) an engine should persist its serving state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding `snapshot.bin` and `wal.log`. Created if absent.
    pub dir: PathBuf,
}

impl DurabilityConfig {
    /// Durability rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig { dir: dir.into() }
    }
}

/// Typed failure of any durability operation.
#[derive(Debug)]
pub enum DurabilityError {
    /// Snapshot write or load failed.
    Snapshot(SnapshotError),
    /// WAL create, append, fsync, or replay failed.
    Wal(WalError),
    /// Directory creation or other filesystem bookkeeping failed.
    Io(io::Error),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Snapshot(e) => write!(f, "{e}"),
            DurabilityError::Wal(e) => write!(f, "{e}"),
            DurabilityError::Io(e) => write!(f, "durability i/o error: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Snapshot(e) => Some(e),
            DurabilityError::Wal(e) => Some(e),
            DurabilityError::Io(e) => Some(e),
        }
    }
}

impl From<SnapshotError> for DurabilityError {
    fn from(e: SnapshotError) -> Self {
        DurabilityError::Snapshot(e)
    }
}

impl From<WalError> for DurabilityError {
    fn from(e: WalError) -> Self {
        DurabilityError::Wal(e)
    }
}

impl From<io::Error> for DurabilityError {
    fn from(e: io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

/// Failure of a durable [`crate::Engine::apply_deltas`]: either the batch
/// itself was malformed, or persisting it failed. In both cases nothing
/// was installed — the engine keeps serving the pre-batch epoch.
///
/// One exception is documented on [`crate::Engine::apply_deltas`]: a
/// checkpoint failure *after* a successful append surfaces here even
/// though the batch is durable and installed.
#[derive(Debug)]
pub enum ApplyError {
    /// The batch was rejected by the graph layer (e.g. an out-of-range
    /// edge); nothing was written or installed.
    Delta(DeltaError),
    /// Persisting failed; see [`DurabilityError`].
    Durability(DurabilityError),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::Delta(e) => write!(f, "{e}"),
            ApplyError::Durability(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ApplyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApplyError::Delta(e) => Some(e),
            ApplyError::Durability(e) => Some(e),
        }
    }
}

impl From<DeltaError> for ApplyError {
    fn from(e: DeltaError) -> Self {
        ApplyError::Delta(e)
    }
}

impl From<DurabilityError> for ApplyError {
    fn from(e: DurabilityError) -> Self {
        ApplyError::Durability(e)
    }
}

/// What a recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL sequence number the loaded snapshot covered.
    pub snapshot_seq: u64,
    /// WAL batches applied on top of the snapshot.
    pub replayed: usize,
    /// WAL batches skipped because the snapshot already covered them
    /// (a crash between checkpoint and log rotation leaves such records).
    pub skipped: usize,
    /// Whether the WAL ended mid-record (crash during an append).
    pub torn_tail: bool,
    /// WAL records quarantined: CRC/structure corruption plus any record
    /// the graph layer rejected on replay. Everything after the first
    /// such record is dropped and the directory is re-checkpointed.
    pub quarantined: usize,
    /// Sequence number of the last batch the recovered state includes.
    pub last_seq: u64,
    /// Node count of the recovered graph.
    pub nodes: usize,
    /// Edge count of the recovered graph.
    pub edges: usize,
}

/// Live durability state for one engine: the directory plus the open WAL
/// appender. Constructed by [`Durability::create`] (fresh directory) or
/// [`Durability::recover`] (existing one).
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    wal: WalWriter,
}

impl Durability {
    /// Initialize `dir` with a snapshot of `g` (sequence 0) and a fresh,
    /// empty WAL whose first append is sequence 1. Replaces any previous
    /// contents atomically.
    pub fn create(dir: &Path, g: &Graph) -> Result<Durability, DurabilityError> {
        std::fs::create_dir_all(dir)?;
        write_snapshot(g, &dir.join(SNAPSHOT_FILE), 0)?;
        let wal = WalWriter::create(&dir.join(WAL_FILE), 1)?;
        Ok(Durability {
            dir: dir.to_path_buf(),
            wal,
        })
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append `batch` to the WAL and fsync. Returns the durable sequence
    /// number. On error the writer is poisoned (see
    /// [`rbq_graph::wal::WalWriter::append`]) and the caller must not
    /// install the batch.
    pub fn append(&mut self, batch: &DeltaBatch) -> Result<u64, DurabilityError> {
        Ok(self.wal.append(batch)?)
    }

    /// Checkpoint: write `g` as the new snapshot covering everything
    /// appended so far, then rotate in a fresh WAL.
    ///
    /// Both steps are atomic file replacements, and their order makes any
    /// crash point safe: after the snapshot lands but before the rotation,
    /// recovery loads the new snapshot and *skips* the old WAL's
    /// now-covered records by sequence number.
    pub fn checkpoint(&mut self, g: &Graph) -> Result<(), DurabilityError> {
        let covered = self.wal.next_seq().saturating_sub(1);
        write_snapshot(g, &self.dir.join(SNAPSHOT_FILE), covered)?;
        self.wal = WalWriter::create(&self.dir.join(WAL_FILE), covered + 1)?;
        Ok(())
    }

    /// Recover the serving state from `dir`: load the snapshot, replay the
    /// WAL's valid prefix on top of it, and return the graph, a live
    /// [`Durability`] ready for further appends, and a report.
    ///
    /// Damage tolerated (prefix keeps serving, suffix quarantined by a
    /// re-checkpoint): a torn WAL tail, a corrupt WAL record, a missing
    /// WAL file. Damage that fails recovery (typed, never a panic): a
    /// missing or corrupt snapshot, a WAL with the wrong magic.
    pub fn recover(dir: &Path) -> Result<(Graph, Durability, RecoveryReport), DurabilityError> {
        let (mut g, meta) = load_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let wal_path = dir.join(WAL_FILE);
        let wal_replay = match replay(&wal_path) {
            Ok(r) => Some(r),
            // A missing WAL is the crash-between-checkpoint-and-rotation
            // shape (or manual cleanup): the snapshot alone is the state.
            Err(WalError::Io(e)) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        let (batches, torn_tail, mut quarantined) = match &wal_replay {
            Some(r) => (r.batches.as_slice(), r.torn_tail, r.quarantined),
            None => (&[][..], false, 0),
        };
        let mut replayed = 0usize;
        let mut skipped = 0usize;
        let mut last_seq = meta.seq;
        for (seq, batch) in batches {
            if *seq <= meta.seq {
                skipped += 1;
                continue;
            }
            match g.apply_delta(batch) {
                Ok((g2, _)) => {
                    g = g2;
                    replayed += 1;
                    last_seq = *seq;
                }
                Err(_) => {
                    // A CRC-valid record the graph layer rejects means the
                    // log and snapshot disagree; trust the applied prefix
                    // and quarantine the rest.
                    quarantined += 1;
                    break;
                }
            }
        }
        let mut d = Durability {
            dir: dir.to_path_buf(),
            wal: match &wal_replay {
                Some(r) if !r.torn_tail && r.quarantined == 0 && quarantined == 0 => {
                    WalWriter::open_after_replay(&wal_path, r, last_seq + 1)?
                }
                // Damaged or missing log: a fresh one is installed by the
                // checkpoint below (or here, for the missing-WAL case).
                _ => WalWriter::create(&wal_path, last_seq + 1)?,
            },
        };
        if torn_tail || quarantined > 0 {
            // Quarantine the damaged suffix: everything recovered is
            // folded into a new snapshot so the next crash replays none
            // of the untrusted bytes.
            d.checkpoint(&g)?;
        }
        let report = RecoveryReport {
            snapshot_seq: meta.seq,
            replayed,
            skipped,
            torn_tail,
            quarantined,
            last_seq,
            nodes: g.node_count(),
            edges: g.edge_count(),
        };
        Ok((g, d, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::builder::graph_from_edges;
    use rbq_graph::NodeId;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rbq_dur_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn base() -> Graph {
        graph_from_edges(&["A", "B", "C"], &[(0, 1), (1, 2)])
    }

    fn batch_add(u: u32, v: u32) -> DeltaBatch {
        let mut b = DeltaBatch::new();
        b.add_edge(NodeId(u), NodeId(v));
        b
    }

    #[test]
    fn create_append_recover_roundtrip() {
        let dir = tmpdir("roundtrip");
        let g = base();
        let mut d = Durability::create(&dir, &g).unwrap();
        assert_eq!(d.append(&batch_add(2, 0)).unwrap(), 1);
        assert_eq!(d.append(&batch_add(0, 2)).unwrap(), 2);
        drop(d);
        let (g2, _d2, report) = Durability::recover(&dir).unwrap();
        assert_eq!(report.replayed, 2);
        assert_eq!(report.last_seq, 2);
        assert!(!report.torn_tail);
        assert_eq!(report.quarantined, 0);
        assert_eq!(g2.edge_count(), 4);
        assert!(g2.edge(NodeId(2), NodeId(0)));
        assert!(g2.edge(NodeId(0), NodeId(2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_continues_sequence_numbers() {
        let dir = tmpdir("seq");
        let mut d = Durability::create(&dir, &base()).unwrap();
        d.append(&batch_add(2, 0)).unwrap();
        drop(d);
        let (_g, mut d2, report) = Durability::recover(&dir).unwrap();
        assert_eq!(report.last_seq, 1);
        assert_eq!(d2.append(&batch_add(0, 2)).unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_then_recover_skips_covered_records() {
        let dir = tmpdir("ckpt");
        let g = base();
        let mut d = Durability::create(&dir, &g).unwrap();
        d.append(&batch_add(2, 0)).unwrap();
        let (g1, _) = g.apply_delta(&batch_add(2, 0)).unwrap();
        d.checkpoint(&g1).unwrap();
        d.append(&batch_add(0, 2)).unwrap();
        drop(d);
        let (g2, _d2, report) = Durability::recover(&dir).unwrap();
        assert_eq!(report.snapshot_seq, 1);
        assert_eq!(report.replayed, 1);
        assert_eq!(report.last_seq, 2);
        assert_eq!(g2.edge_count(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_checkpoint_and_rotation_is_safe() {
        // Simulate: snapshot written at seq 2, but the old WAL (records
        // 1..=2) survives un-rotated. Recovery must skip both records.
        let dir = tmpdir("unrotated");
        let g = base();
        let mut d = Durability::create(&dir, &g).unwrap();
        d.append(&batch_add(2, 0)).unwrap();
        d.append(&batch_add(0, 2)).unwrap();
        let g2 = {
            let (a, _) = g.apply_delta(&batch_add(2, 0)).unwrap();
            let (b, _) = a.apply_delta(&batch_add(0, 2)).unwrap();
            b
        };
        // Write the checkpoint snapshot by hand, skipping the rotation.
        write_snapshot(&g2, &dir.join(SNAPSHOT_FILE), 2).unwrap();
        drop(d);
        let (g3, _d, report) = Durability::recover(&dir).unwrap();
        assert_eq!(report.snapshot_seq, 2);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.replayed, 0);
        assert_eq!(g3.edge_count(), g2.edge_count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovers_prefix_and_requarantines() {
        let dir = tmpdir("torn");
        let mut d = Durability::create(&dir, &base()).unwrap();
        d.append(&batch_add(2, 0)).unwrap();
        drop(d);
        // Crash mid-append: garbage half-record at the tail.
        let wal_path = dir.join(WAL_FILE);
        let mut raw = std::fs::read(&wal_path).unwrap();
        raw.extend_from_slice(&[42, 0, 0, 0, 1]);
        std::fs::write(&wal_path, &raw).unwrap();
        let (g2, _d2, report) = Durability::recover(&dir).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.replayed, 1);
        assert!(g2.edge(NodeId(2), NodeId(0)));
        // The re-checkpoint quarantined the damage: a second recovery is
        // clean and serves the same state.
        let (g3, _d3, report2) = Durability::recover(&dir).unwrap();
        assert!(!report2.torn_tail);
        assert_eq!(report2.quarantined, 0);
        assert_eq!(report2.snapshot_seq, 1);
        assert_eq!(g3.edge_count(), g2.edge_count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_wal_serves_snapshot_alone() {
        let dir = tmpdir("nowal");
        let mut d = Durability::create(&dir, &base()).unwrap();
        d.append(&batch_add(2, 0)).unwrap();
        drop(d);
        std::fs::remove_file(dir.join(WAL_FILE)).unwrap();
        let (g2, mut d2, report) = Durability::recover(&dir).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(report.last_seq, 0);
        assert_eq!(g2.edge_count(), 2);
        // Appends continue from the snapshot's sequence.
        assert_eq!(d2.append(&batch_add(2, 0)).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_snapshot_is_typed_error() {
        let dir = tmpdir("nosnap");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Durability::recover(&dir),
            Err(DurabilityError::Snapshot(SnapshotError::Io(_)))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
