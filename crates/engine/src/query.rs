//! The unified query and answer types served by the engine.

use crate::error::QueryParseError;
use rbq_graph::NodeId;
use rbq_pattern::{Pattern, PatternBuilder};
use std::fmt;

/// One query of the mixed workload: reachability or an anchored pattern
/// under either matching semantics.
#[derive(Debug, Clone)]
pub enum Query {
    /// `source → target?` (RBReach).
    Reach {
        /// Source node.
        source: NodeId,
        /// Target node.
        target: NodeId,
    },
    /// Strong-simulation pattern matching (RBSim).
    PatternSim {
        /// The anchored pattern.
        pattern: Pattern,
    },
    /// Subgraph-isomorphism pattern matching (RBSub).
    PatternIso {
        /// The anchored pattern.
        pattern: Pattern,
    },
}

/// Query class, for routing and per-class statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Reachability.
    Reach,
    /// Strong simulation.
    Sim,
    /// Subgraph isomorphism.
    Iso,
}

impl Query {
    /// The class this query belongs to.
    pub fn class(&self) -> QueryClass {
        match self {
            Query::Reach { .. } => QueryClass::Reach,
            Query::PatternSim { .. } => QueryClass::Sim,
            Query::PatternIso { .. } => QueryClass::Iso,
        }
    }

    /// Serialize to the one-line text format of `rbq batch` query files:
    ///
    /// ```text
    /// r <src> <dst>
    /// s <up> <uo> <label0,label1,...> <u0>-<v0>,<u1>-<v1>,...
    /// i <up> <uo> <labels> <edges>
    /// ```
    ///
    /// Pattern labels must not contain whitespace or commas (the generated
    /// workloads' labels never do); [`Query::to_line`] returns an error for
    /// labels that would not round-trip.
    pub fn to_line(&self) -> Result<String, QueryParseError> {
        match self {
            Query::Reach { source, target } => Ok(format!("r {} {}", source.0, target.0)),
            Query::PatternSim { pattern } => pattern_line('s', pattern),
            Query::PatternIso { pattern } => pattern_line('i', pattern),
        }
    }

    /// Parse one non-empty, non-comment line of the query-file format.
    pub fn parse_line(line: &str) -> Result<Query, QueryParseError> {
        let mut parts = line.split_whitespace();
        let kind = parts.next().ok_or(QueryParseError::EmptyLine)?;
        match kind {
            "r" => {
                let s: u32 = parse_field(parts.next(), "source id")?;
                let t: u32 = parse_field(parts.next(), "target id")?;
                if parts.next().is_some() {
                    return Err(QueryParseError::TrailingTokens(line.to_owned()));
                }
                Ok(Query::Reach {
                    source: NodeId(s),
                    target: NodeId(t),
                })
            }
            "s" | "i" => {
                let up: usize = parse_field(parts.next(), "personalized index")?;
                let uo: usize = parse_field(parts.next(), "output index")?;
                let labels = parts
                    .next()
                    .ok_or(QueryParseError::MissingField("label list"))?;
                let edges = parts.next().unwrap_or("");
                if parts.next().is_some() {
                    return Err(QueryParseError::TrailingTokens(line.to_owned()));
                }
                let pattern = parse_pattern(up, uo, labels, edges)?;
                Ok(if kind == "s" {
                    Query::PatternSim { pattern }
                } else {
                    Query::PatternIso { pattern }
                })
            }
            other => Err(QueryParseError::UnknownKind(other.to_owned())),
        }
    }
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    what: &'static str,
) -> Result<T, QueryParseError> {
    field
        .ok_or(QueryParseError::MissingField(what))?
        .parse()
        .map_err(|_| QueryParseError::BadField {
            what,
            token: field.unwrap_or("").to_owned(),
        })
}

fn pattern_line(kind: char, p: &Pattern) -> Result<String, QueryParseError> {
    let mut labels = Vec::with_capacity(p.node_count());
    for u in p.nodes() {
        let l = p.label_str(u);
        if l.is_empty() || l.contains(',') || l.chars().any(char::is_whitespace) {
            return Err(QueryParseError::UnserializableLabel(l.to_owned()));
        }
        labels.push(l.to_owned());
    }
    let edges: Vec<String> = p
        .edges()
        .iter()
        .map(|&(u, v)| format!("{}-{}", u.0, v.0))
        .collect();
    Ok(format!(
        "{kind} {} {} {} {}",
        p.personalized().0,
        p.output().0,
        labels.join(","),
        if edges.is_empty() {
            "-".to_string()
        } else {
            edges.join(",")
        }
    ))
}

fn parse_pattern(
    up: usize,
    uo: usize,
    labels: &str,
    edges: &str,
) -> Result<Pattern, QueryParseError> {
    let mut b = PatternBuilder::new();
    let mut ids = Vec::new();
    for l in labels.split(',') {
        if l.is_empty() {
            return Err(QueryParseError::EmptyLabel);
        }
        ids.push(b.add_node(l));
    }
    if up >= ids.len() || uo >= ids.len() {
        return Err(QueryParseError::AnchorOutOfRange {
            up,
            uo,
            len: ids.len(),
        });
    }
    if !(edges.is_empty() || edges == "-") {
        for e in edges.split(',') {
            let (u, v) = e
                .split_once('-')
                .ok_or_else(|| QueryParseError::BadEdge(e.to_owned()))?;
            let u: usize = u
                .parse()
                .map_err(|_| QueryParseError::BadEdge(e.to_owned()))?;
            let v: usize = v
                .parse()
                .map_err(|_| QueryParseError::BadEdge(e.to_owned()))?;
            if u >= ids.len() || v >= ids.len() {
                return Err(QueryParseError::EdgeOutOfRange(e.to_owned()));
            }
            b.add_edge(ids[u], ids[v]);
        }
    }
    b.personalized(ids[up]).output(ids[uo]);
    Ok(b.build())
}

/// The engine's answer to one [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// Reachability verdict. `reachable = true` is always certified
    /// (Theorem 4); `false` may be a false negative below α = 1.
    Reach {
        /// The (approximate) verdict.
        reachable: bool,
        /// Whether the verdict was certified exact.
        certified: bool,
    },
    /// Pattern answer `Q(G_Q)`: matches of the output node.
    Pattern {
        /// Sorted matches of the output node.
        matches: Vec<NodeId>,
        /// Size `|G_Q|` actually fetched.
        gq_size: usize,
        /// Nodes in `G_Q`.
        gq_nodes: usize,
        /// Whether reduction stopped on the size budget.
        hit_budget: bool,
    },
    /// The batch's aggregate visit budget could not cover this query; the
    /// answer was withheld at settlement (input-order, so deterministic).
    Denied {
        /// Visits this query would have charged.
        needed: usize,
        /// Aggregate budget remaining when it was considered.
        remaining: usize,
    },
    /// The query was malformed for this graph (unknown label, id out of
    /// range, ambiguous anchor, …).
    Error(String),
    /// The batch deadline expired before (or while) this query evaluated.
    /// Settled deterministically: a query whose evaluation never started
    /// before the deadline is timed out regardless of thread count.
    TimedOut,
    /// Evaluation panicked and was contained; the rest of the batch is
    /// unaffected. Carries the panic message when one was available.
    Failed(String),
}

impl Answer {
    /// Whether this is a delivered (non-denied, non-error) answer.
    pub fn is_ok(&self) -> bool {
        matches!(self, Answer::Reach { .. } | Answer::Pattern { .. })
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Reach {
                reachable,
                certified,
            } => write!(
                f,
                "reach={reachable}{}",
                if *certified { " (certified)" } else { "" }
            ),
            Answer::Pattern {
                matches, gq_size, ..
            } => write!(f, "{} matches, |G_Q|={gq_size}", matches.len()),
            Answer::Denied { needed, remaining } => {
                write!(
                    f,
                    "denied (needed {needed}, aggregate remaining {remaining})"
                )
            }
            Answer::Error(e) => write!(f, "error: {e}"),
            Answer::TimedOut => write!(f, "timed out (batch deadline)"),
            Answer::Failed(e) => write!(f, "failed: {e}"),
        }
    }
}

/// One answered query: the answer plus schedule-independent accounting.
///
/// `answer` and `visits` are deterministic functions of the batch input —
/// identical across thread counts and cache states. `cached` reports
/// whether *this* run served the answer from the reduction cache, which
/// does depend on scheduling; comparisons between runs should ignore it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The answer.
    pub answer: Answer,
    /// Canonical visit cost charged against budgets.
    pub visits: usize,
    /// Whether the reduction cache served this answer.
    pub cached: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_pattern::pattern::fig1_pattern;

    #[test]
    fn reach_round_trip() {
        let q = Query::Reach {
            source: NodeId(7),
            target: NodeId(42),
        };
        let line = q.to_line().unwrap();
        assert_eq!(line, "r 7 42");
        match Query::parse_line(&line).unwrap() {
            Query::Reach { source, target } => {
                assert_eq!((source, target), (NodeId(7), NodeId(42)));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn pattern_round_trip() {
        for ctor in [
            |p| Query::PatternSim { pattern: p },
            |p| Query::PatternIso { pattern: p },
        ] {
            let q = ctor(fig1_pattern());
            let line = q.to_line().unwrap();
            let back = Query::parse_line(&line).unwrap();
            let (p1, p2) = match (&q, &back) {
                (Query::PatternSim { pattern: a }, Query::PatternSim { pattern: b })
                | (Query::PatternIso { pattern: a }, Query::PatternIso { pattern: b }) => (a, b),
                _ => panic!("class changed in round trip"),
            };
            assert_eq!(p1.node_count(), p2.node_count());
            assert_eq!(p1.edges(), p2.edges());
            assert_eq!(p1.personalized(), p2.personalized());
            assert_eq!(p1.output(), p2.output());
            for u in p1.nodes() {
                assert_eq!(p1.label_str(u), p2.label_str(u));
            }
        }
    }

    #[test]
    fn edgeless_pattern_round_trips() {
        let mut b = PatternBuilder::new();
        let me = b.add_node("ME");
        b.personalized(me).output(me);
        let q = Query::PatternSim { pattern: b.build() };
        let line = q.to_line().unwrap();
        assert!(Query::parse_line(&line).is_ok());
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "",
            "x 1 2",
            "r 1",
            "r 1 2 3",
            "s 0 0",
            "s 0 5 ME,A 0-1",
            "s 0 1 ME,A 0-9",
            "s 0 1 ME,A 0+1",
            "r a b",
        ] {
            assert!(Query::parse_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn comma_label_refused_on_write() {
        let mut b = PatternBuilder::new();
        let me = b.add_node("a,b");
        b.personalized(me).output(me);
        let q = Query::PatternSim { pattern: b.build() };
        assert!(q.to_line().is_err());
    }
}
