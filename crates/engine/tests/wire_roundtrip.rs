//! Property tests pinning the v1 wire format: arbitrary queries and
//! answers survive a serialize → parse round trip, both line-by-line and
//! through whole versioned files.

use proptest::prelude::*;
use rbq_engine::wire::{
    answer_from_line, answer_to_line, parse_answer_file, parse_query_file, write_answer_file,
    write_query_file,
};
use rbq_engine::{Answer, Query};
use rbq_graph::NodeId;
use rbq_pattern::PatternBuilder;

/// Labels the line format can carry: non-empty, no whitespace, no commas.
fn label_strategy() -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:-";
    prop::collection::vec(0usize..ALPHABET.len(), 1..9)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i] as char).collect())
}

/// Printable-ASCII error messages with no leading/trailing whitespace
/// (file parsing trims each line) and no newlines (the writer flattens
/// them).
fn message_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0x20u8..0x7f, 0..40)
        .prop_map(|bytes| String::from_utf8(bytes).unwrap().trim().to_owned())
}

/// All the raw material for a pattern query; indices are taken modulo the
/// label count so every draw is valid.
fn pattern_query_strategy() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec(label_strategy(), 1..6),
        prop::collection::vec((0usize..8, 0usize..8), 0..10),
        (0usize..8, 0usize..8),
        prop::bool::ANY,
    )
        .prop_map(|(labels, raw_edges, (up, uo), sim)| {
            let mut b = PatternBuilder::new();
            let ids: Vec<_> = labels.iter().map(|l| b.add_node(l)).collect();
            for (u, v) in raw_edges {
                b.add_edge(ids[u % ids.len()], ids[v % ids.len()]);
            }
            b.personalized(ids[up % ids.len()]);
            b.output(ids[uo % ids.len()]);
            let pattern = b.build();
            if sim {
                Query::PatternSim { pattern }
            } else {
                Query::PatternIso { pattern }
            }
        })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (
        0u8..3,
        (0u32..2_000_000, 0u32..2_000_000),
        pattern_query_strategy(),
    )
        .prop_map(|(kind, (s, t), pattern)| match kind {
            0 => Query::Reach {
                source: NodeId(s),
                target: NodeId(t),
            },
            _ => pattern,
        })
}

fn answer_strategy() -> impl Strategy<Value = Answer> {
    (
        0u8..4,
        (prop::bool::ANY, prop::bool::ANY),
        (
            prop::collection::vec(0u32..2_000_000, 0..8),
            0usize..1_000_000_000,
            0usize..1_000_000_000,
        ),
        message_strategy(),
    )
        .prop_map(|(kind, (flag_a, flag_b), (ms, x, y), msg)| match kind {
            0 => Answer::Reach {
                reachable: flag_a,
                certified: flag_b,
            },
            1 => Answer::Pattern {
                matches: ms.into_iter().map(NodeId).collect(),
                gq_size: x,
                gq_nodes: y,
                hit_budget: flag_a,
            },
            2 => Answer::Denied {
                needed: x,
                remaining: y,
            },
            _ => Answer::Error(msg),
        })
}

/// Structural pattern equality (Pattern itself has no PartialEq).
fn assert_query_eq(a: &Query, b: &Query) -> Result<(), TestCaseError> {
    match (a, b) {
        (
            Query::Reach {
                source: s1,
                target: t1,
            },
            Query::Reach {
                source: s2,
                target: t2,
            },
        ) => prop_assert_eq!((s1, t1), (s2, t2)),
        (Query::PatternSim { pattern: p1 }, Query::PatternSim { pattern: p2 })
        | (Query::PatternIso { pattern: p1 }, Query::PatternIso { pattern: p2 }) => {
            prop_assert_eq!(p1.node_count(), p2.node_count());
            prop_assert_eq!(p1.edges(), p2.edges());
            prop_assert_eq!(p1.personalized(), p2.personalized());
            prop_assert_eq!(p1.output(), p2.output());
            for u in p1.nodes() {
                prop_assert_eq!(p1.label_str(u), p2.label_str(u));
            }
        }
        _ => prop_assert!(false, "query class changed in round trip"),
    }
    Ok(())
}

proptest! {
    #[test]
    fn query_lines_round_trip(q in query_strategy()) {
        let line = q.to_line().unwrap();
        let back = Query::parse_line(&line).unwrap();
        assert_query_eq(&q, &back)?;
        // Serialization is canonical: a second trip is byte-identical.
        prop_assert_eq!(line, back.to_line().unwrap());
    }

    #[test]
    fn answer_lines_round_trip(a in answer_strategy()) {
        let line = answer_to_line(&a);
        let back = answer_from_line(&line).unwrap();
        prop_assert_eq!(&a, &back);
        prop_assert_eq!(line, answer_to_line(&back));
    }

    #[test]
    fn query_files_round_trip(qs in prop::collection::vec(query_strategy(), 0..12)) {
        let mut buf = Vec::new();
        write_query_file(&mut buf, &qs).unwrap();
        let parsed = parse_query_file(std::str::from_utf8(&buf).unwrap()).unwrap();
        prop_assert_eq!(parsed.queries.len(), qs.len());
        prop_assert!(!parsed.headerless);
        for (a, b) in qs.iter().zip(&parsed.queries) {
            assert_query_eq(a, b)?;
        }
    }

    #[test]
    fn answer_files_round_trip(aa in prop::collection::vec(answer_strategy(), 0..12)) {
        let mut buf = Vec::new();
        write_answer_file(&mut buf, &aa).unwrap();
        let parsed = parse_answer_file(std::str::from_utf8(&buf).unwrap()).unwrap();
        prop_assert_eq!(parsed.answers, aa);
    }
}
