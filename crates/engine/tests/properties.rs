//! Engine-level properties: batch answers are schedule-independent, the
//! aggregate budget is a hard invariant, and the reduction cache is
//! transparent (hits are byte-identical to cold evaluations).

use rbq_engine::{Answer, BudgetSpec, Engine, EngineConfig, Query, QueryClass};
use rbq_workload::{sample_mixed_workload, MixedWorkloadSpec};
use std::sync::Arc;

fn test_graph() -> Arc<rbq_graph::Graph> {
    Arc::new(rbq_workload::youtube_like(2_000, 5))
}

fn test_workload(g: &rbq_graph::Graph, count: usize, seed: u64) -> Vec<Query> {
    sample_mixed_workload(
        g,
        &MixedWorkloadSpec {
            count,
            repeat_fraction: 0.4,
            ..Default::default()
        },
        seed,
    )
}

fn cfg() -> EngineConfig {
    EngineConfig {
        pattern_budget: BudgetSpec::Units(200),
        reach_alpha: 0.1,
        ..Default::default()
    }
}

/// Batch answers and charged visits are identical for 1, 2 and 8 worker
/// threads (the `cached` flag is scheduling-dependent and excluded).
#[test]
fn batch_answers_are_thread_count_invariant() {
    let g = test_graph();
    let queries = test_workload(&g, 60, 9);
    let run = |threads: usize| {
        let engine = Engine::new(g.clone(), EngineConfig { threads, ..cfg() });
        engine.run_batch(&queries)
    };
    let baseline = run(1);
    for threads in [2usize, 8] {
        let report = run(threads);
        assert_eq!(baseline.results.len(), report.results.len());
        for (i, (a, b)) in baseline.results.iter().zip(&report.results).enumerate() {
            assert_eq!(
                a.answer, b.answer,
                "answer {i} diverged at {threads} threads"
            );
            assert_eq!(
                a.visits, b.visits,
                "visits {i} diverged at {threads} threads"
            );
        }
        assert_eq!(
            baseline.stats.charged_visits, report.stats.charged_visits,
            "charged visits diverged at {threads} threads"
        );
        assert_eq!(baseline.stats.denied, report.stats.denied);
    }
}

/// With an aggregate visit budget, the charged visits never exceed it —
/// for any thread count — and denial is deterministic.
#[test]
fn aggregate_visits_never_exceed_aggregate_budget() {
    let g = test_graph();
    let queries = test_workload(&g, 50, 17);

    // Measure the unconstrained cost, then grant half of it.
    let probe = Engine::new(g.clone(), cfg());
    let full = probe.run_batch(&queries).stats.charged_visits;
    assert!(full > 0);
    let aggregate = full / 2;

    let mut denied_pattern: Option<Vec<bool>> = None;
    for threads in [1usize, 2, 8] {
        let engine = Engine::new(
            g.clone(),
            EngineConfig {
                threads,
                aggregate_visit_budget: Some(aggregate),
                ..cfg()
            },
        );
        let report = engine.run_batch(&queries);
        assert!(
            report.stats.charged_visits <= aggregate,
            "{} charged > {} budget at {} threads",
            report.stats.charged_visits,
            aggregate,
            threads
        );
        let delivered_sum: usize = report
            .results
            .iter()
            .filter(|r| r.answer.is_ok())
            .map(|r| r.visits)
            .sum();
        assert_eq!(delivered_sum, report.stats.charged_visits);
        assert!(report.stats.denied > 0, "half budget should deny something");
        let mask: Vec<bool> = report
            .results
            .iter()
            .map(|r| matches!(r.answer, Answer::Denied { .. }))
            .collect();
        match &denied_pattern {
            None => denied_pattern = Some(mask),
            Some(prev) => assert_eq!(prev, &mask, "denial set diverged at {threads} threads"),
        }
    }
}

/// Cache hits are byte-identical to cold-path answers: a warm engine's
/// results equal those of a cache-disabled engine on the same stream.
#[test]
fn cache_hit_answers_are_byte_identical_to_cold_path() {
    let g = test_graph();
    let queries = test_workload(&g, 60, 23);

    let cold = Engine::new(
        g.clone(),
        EngineConfig {
            cache_capacity: 0,
            threads: 1,
            ..cfg()
        },
    );
    let warm = Engine::new(
        g.clone(),
        EngineConfig {
            threads: 1,
            ..cfg()
        },
    );

    // Warm the cache with one pass, then compare the second pass (all
    // repeats now hit) against the cacheless engine.
    warm.run_batch(&queries);
    let warm_report = warm.run_batch(&queries);
    let cold_report = cold.run_batch(&queries);

    let pattern_queries = queries
        .iter()
        .filter(|q| q.class() != QueryClass::Reach)
        .count();
    assert!(pattern_queries > 0);
    assert_eq!(
        warm_report.stats.cache_hits, pattern_queries,
        "second pass should be all hits"
    );
    for (i, (w, c)) in warm_report
        .results
        .iter()
        .zip(&cold_report.results)
        .enumerate()
    {
        assert_eq!(
            w.answer, c.answer,
            "cached answer {i} diverged from cold path"
        );
        assert_eq!(
            w.visits, c.visits,
            "cached visits {i} diverged from cold path"
        );
    }
}

/// Every delivered pattern answer respects the per-query size budget.
#[test]
fn per_query_budgets_respected() {
    let g = test_graph();
    let queries = test_workload(&g, 60, 31);
    let engine = Engine::new(g, cfg());
    let budget = engine.pattern_budget();
    let report = engine.run_batch(&queries);
    let mut pattern_answers = 0usize;
    for r in &report.results {
        if let Answer::Pattern { gq_size, .. } = &r.answer {
            pattern_answers += 1;
            assert!(
                *gq_size <= budget.max_units,
                "|G_Q| = {gq_size} exceeds budget {}",
                budget.max_units
            );
        }
    }
    assert!(pattern_answers > 0);
}

/// Isomorphic reorderings of the same pattern share a cache entry and an
/// answer (the canonical-signature guarantee, end to end).
#[test]
fn isomorphic_queries_share_cache_and_answer() {
    let g = test_graph();
    let base = match test_workload(&g, 40, 41).into_iter().find_map(|q| match q {
        Query::PatternSim { pattern } => Some(pattern),
        _ => None,
    }) {
        Some(p) => p,
        None => return, // workload happened to have no sim queries
    };
    // Rebuild the pattern with nodes listed in reverse order.
    let n = base.node_count();
    let mut b = rbq_pattern::PatternBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|i| b.add_node(base.label_str(rbq_pattern::PNode::new(n - 1 - i))))
        .collect();
    let relabel = |u: rbq_pattern::PNode| ids[n - 1 - u.index()];
    for &(u, v) in base.edges() {
        b.add_edge(relabel(u), relabel(v));
    }
    b.personalized(relabel(base.personalized()));
    b.output(relabel(base.output()));
    let twin = b.build();

    let engine = Engine::new(
        g,
        EngineConfig {
            threads: 1,
            ..cfg()
        },
    );
    let first = engine.run(&Query::PatternSim { pattern: base });
    let second = engine.run(&Query::PatternSim { pattern: twin });
    assert!(!first.cached);
    assert!(second.cached, "isomorphic twin should hit the cache");
    assert_eq!(first.answer, second.answer);
    assert_eq!(engine.cache_len(), 1);
}
