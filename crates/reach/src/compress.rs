//! Query-preserving compression for reachability (§5 "Preprocessing",
//! after Fan et al. SIGMOD 2012 [12]).
//!
//! Two reachability-preserving reductions, applied in sequence:
//!
//! 1. **SCC condensation** — mutually reachable nodes collapse to one
//!    (delegated to [`rbq_graph::condense`]);
//! 2. **Equivalence merge** — distinct DAG nodes with *identical* parent
//!    sets and *identical* child sets are merged. Identical neighborhoods
//!    imply reachability-equivalence w.r.t. all other nodes, and in a DAG
//!    two such nodes can never reach each other (a connecting path through a
//!    shared child set would close a cycle), so queries remain answerable:
//!    `s → t` holds iff their representatives are distinct and connected,
//!    or `s, t` share an SCC.
//!
//! The merge runs to a fixpoint: merging can make previously distinct
//! neighborhoods identical, so passes repeat until no change.

use rbq_graph::condense::condense;
use rbq_graph::traverse::reaches;
use rbq_graph::{Graph, GraphBuilder, GraphView, NodeId};
use rustc_hash::FxHashMap;

/// A reachability-preserving compressed form of a graph.
#[derive(Debug, Clone)]
pub struct CompressedGraph {
    /// The compressed DAG.
    pub dag: Graph,
    /// `scc[v]` — SCC id of original node `v` (ids are reverse-topological).
    scc: Vec<u32>,
    /// `rep[c]` — compressed-DAG node representing SCC `c`.
    rep: Vec<u32>,
}

impl CompressedGraph {
    /// The compressed node representing original node `v`.
    #[inline]
    pub fn map(&self, v: NodeId) -> NodeId {
        NodeId(self.rep[self.scc[v.index()] as usize])
    }

    /// Whether two original nodes share an SCC (mutually reachable).
    #[inline]
    pub fn same_scc(&self, u: NodeId, v: NodeId) -> bool {
        self.scc[u.index()] == self.scc[v.index()]
    }

    /// Answer `s → t` on the original graph via the compressed DAG.
    ///
    /// Exact: the compression is query-preserving. Cost is a BFS on the
    /// (smaller) DAG.
    pub fn query(&self, s: NodeId, t: NodeId) -> bool {
        if s == t || self.same_scc(s, t) {
            return true;
        }
        let cs = self.map(s);
        let ct = self.map(t);
        if cs == ct {
            // Same representative but different SCCs: merged by the
            // equivalence step, which only merges mutually *unreachable*
            // DAG nodes.
            return false;
        }
        reaches(&self.dag, cs, ct).0
    }

    /// Compression ratio `|dag| / |original|` in nodes+edges units.
    pub fn ratio(&self, original: &Graph) -> f64 {
        self.dag.size() as f64 / original.size().max(1) as f64
    }
}

/// SCC condensation only, without the equivalence merge — the ablation
/// baseline for the merge step (and the cheaper preprocessing variant).
pub fn condense_only(g: &Graph) -> CompressedGraph {
    let cond = condense(g);
    let scc: Vec<u32> = (0..g.node_count())
        .map(|i| cond.partition.component_of(NodeId::new(i)))
        .collect();
    let rep: Vec<u32> = (0..cond.dag.node_count() as u32).collect();
    CompressedGraph {
        dag: cond.dag,
        scc,
        rep,
    }
}

/// Compress `g` for reachability: condense SCCs, then merge
/// neighborhood-identical DAG nodes to a fixpoint.
pub fn compress_for_reachability(g: &Graph) -> CompressedGraph {
    let cond = condense(g);
    let scc: Vec<u32> = (0..g.node_count())
        .map(|i| cond.partition.component_of(NodeId::new(i)))
        .collect();

    // Iterative equivalence merge on the condensed DAG.
    let mut dag = cond.dag;
    // rep chain: representative of each SCC in the *current* dag.
    let mut rep: Vec<u32> = (0..dag.node_count() as u32).collect();

    loop {
        let n = dag.node_count();
        // Signature: (sorted out list, sorted in list). CSR lists are
        // already sorted. Group by signature.
        let mut groups: FxHashMap<(Vec<NodeId>, Vec<NodeId>), Vec<NodeId>> = FxHashMap::default();
        for v in dag.nodes() {
            let key = (dag.out(v).to_vec(), dag.inn(v).to_vec());
            groups.entry(key).or_default().push(v);
        }
        if groups.len() == n {
            break; // no two nodes share a signature
        }
        // Build merged graph: leader = smallest member of each group.
        let mut leader: Vec<u32> = (0..n as u32).collect();
        for members in groups.values() {
            let lead = members[0]; // members pushed in ascending id order
            for &m in members {
                leader[m.index()] = lead.0;
            }
        }
        // Re-number leaders densely.
        let mut dense: FxHashMap<u32, u32> = FxHashMap::default();
        let mut b = GraphBuilder::with_capacity(groups.len(), dag.edge_count());
        for v in dag.nodes() {
            if leader[v.index()] == v.0 {
                let new_id = b.add_node(dag.node_label_str(v));
                dense.insert(v.0, new_id.0);
            }
        }
        for (u, v) in dag.edges() {
            let lu = dense[&leader[u.index()]];
            let lv = dense[&leader[v.index()]];
            if lu != lv {
                b.add_edge(NodeId(lu), NodeId(lv));
            }
        }
        let new_dag = b.build();
        // Compose the representative mapping.
        for r in rep.iter_mut() {
            *r = dense[&leader[*r as usize]];
        }
        dag = new_dag;
    }

    CompressedGraph { dag, scc, rep }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::builder::graph_from_edges;

    #[test]
    fn scc_collapse_preserved() {
        // cycle {0,1,2} -> 3
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = compress_for_reachability(&g);
        assert!(c.query(NodeId(0), NodeId(2))); // same SCC
        assert!(c.query(NodeId(1), NodeId(3)));
        assert!(!c.query(NodeId(3), NodeId(0)));
    }

    #[test]
    fn sibling_merge_does_not_fake_reachability() {
        // 0 -> {1, 2} -> 3: nodes 1 and 2 have identical in/out sets and
        // merge, but 1 must not "reach" 2.
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let c = compress_for_reachability(&g);
        assert!(c.dag.node_count() < 4, "siblings should merge");
        assert!(!c.query(NodeId(1), NodeId(2)));
        assert!(!c.query(NodeId(2), NodeId(1)));
        assert!(c.query(NodeId(0), NodeId(3)));
        assert!(c.query(NodeId(1), NodeId(3)));
        assert!(c.query(NodeId(0), NodeId(2)));
    }

    #[test]
    fn compression_is_exact_on_random_like_graph() {
        // Exhaustively verify query preservation on a structured graph.
        let g = graph_from_edges(
            &["A"; 10],
            &[
                (0, 1),
                (1, 2),
                (2, 0), // cycle
                (2, 3),
                (3, 4),
                (3, 5), // fan
                (4, 6),
                (5, 6), // merge
                (7, 8), // detached chain
                (8, 7), // detached cycle
                (6, 9),
            ],
        );
        let c = compress_for_reachability(&g);
        for s in 0..10u32 {
            for t in 0..10u32 {
                let exact = reaches(&g, NodeId(s), NodeId(t)).0;
                assert_eq!(c.query(NodeId(s), NodeId(t)), exact, "mismatch on {s}->{t}");
            }
        }
    }

    #[test]
    fn dag_is_smaller_or_equal() {
        let g = graph_from_edges(
            &["A"; 6],
            &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 4), (4, 3), (3, 5)],
        );
        let c = compress_for_reachability(&g);
        assert!(c.dag.size() <= g.size());
        assert!(c.ratio(&g) <= 1.0);
    }

    #[test]
    fn multi_pass_merge_converges() {
        // Two parallel chains 0->1->3, 0->2->3: after merging 1,2 the merged
        // node's neighborhoods stay distinct from others; fixpoint reached.
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let c = compress_for_reachability(&g);
        // 4 nodes -> 3 (0, {1,2}, 3).
        assert_eq!(c.dag.node_count(), 3);
        for s in 0..4u32 {
            for t in 0..4u32 {
                assert_eq!(
                    c.query(NodeId(s), NodeId(t)),
                    reaches(&g, NodeId(s), NodeId(t)).0
                );
            }
        }
    }

    #[test]
    fn cascading_merge() {
        // Diamond-of-diamonds: merging inner siblings can enable a second
        // merge round. 0->{1,2}->3->{4,5}->6.
        let g = graph_from_edges(
            &["A"; 7],
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        );
        let c = compress_for_reachability(&g);
        assert_eq!(c.dag.node_count(), 5);
        for s in 0..7u32 {
            for t in 0..7u32 {
                assert_eq!(
                    c.query(NodeId(s), NodeId(t)),
                    reaches(&g, NodeId(s), NodeId(t)).0
                );
            }
        }
    }

    #[test]
    fn isolated_nodes_merge_safely() {
        let g = graph_from_edges(&["A"; 3], &[]);
        let c = compress_for_reachability(&g);
        // All three isolated nodes share (empty, empty) signatures.
        assert_eq!(c.dag.node_count(), 1);
        assert!(!c.query(NodeId(0), NodeId(1)));
        assert!(c.query(NodeId(1), NodeId(1)));
    }

    #[test]
    fn self_query_always_true() {
        let g = graph_from_edges(&["A"; 2], &[(0, 1)]);
        let c = compress_for_reachability(&g);
        assert!(c.query(NodeId(0), NodeId(0)));
        assert!(c.query(NodeId(1), NodeId(1)));
    }
}
