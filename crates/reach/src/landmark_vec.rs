//! The `LM` landmark-vector baseline (Gubichev et al., CIKM 2010 [13]).
//!
//! Following the paper's evaluation setup (§6 Exp-2), `4·log₂|V|` landmarks
//! are sampled (degree-biased, as high-degree nodes cover more pairs). For
//! each landmark `ℓ` we precompute its forward cover (nodes reachable from
//! `ℓ`) and backward cover (nodes reaching `ℓ`) as per-node bitmasks. A
//! query `s → t` answers `true` iff some landmark has `s` in its backward
//! cover and `t` in its forward cover (then `s → ℓ → t` is a real path).
//!
//! Like `RBReach`, `LM` is sound (no false positives) but incomplete: pairs
//! connected only by landmark-free paths are missed — the paper measures
//! 69–74% accuracy for it.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rbq_graph::traverse::bfs;
use rbq_graph::types::Direction;
use rbq_graph::{Graph, NodeId};

/// Per-node landmark cover bitmasks.
#[derive(Debug, Clone)]
pub struct LandmarkVectors {
    /// The sampled landmarks.
    pub landmarks: Vec<NodeId>,
    words: usize,
    /// `fwd[v]` bit `i` set ⟺ landmark `i` reaches `v`.
    fwd: Vec<u64>,
    /// `bwd[v]` bit `i` set ⟺ `v` reaches landmark `i`.
    bwd: Vec<u64>,
}

impl LandmarkVectors {
    /// Build with the paper's default landmark count `⌈4·log₂|V|⌉`.
    pub fn build(g: &Graph, seed: u64) -> Self {
        let n = g.node_count().max(2);
        let k = (4.0 * (n as f64).log2()).ceil() as usize;
        Self::build_with_count(g, k, seed)
    }

    /// Build with an explicit landmark count.
    ///
    /// Sampling is degree-biased: nodes are sorted by total degree and the
    /// top `4k` form the pool from which `k` are drawn uniformly, keeping
    /// the selection both high-coverage and randomized as in [13].
    pub fn build_with_count(g: &Graph, k: usize, seed: u64) -> Self {
        let n = g.node_count();
        let k = k.clamp(1, n.max(1));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut by_degree: Vec<NodeId> = g.nodes().collect();
        by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(g.deg(v)));
        let pool = (4 * k).min(n);
        let mut pool_nodes: Vec<NodeId> = by_degree[..pool].to_vec();
        pool_nodes.shuffle(&mut rng);
        let mut landmarks: Vec<NodeId> = pool_nodes.into_iter().take(k).collect();
        landmarks.sort_unstable();
        landmarks.dedup();

        let words = landmarks.len().div_ceil(64);
        let mut fwd = vec![0u64; n * words];
        let mut bwd = vec![0u64; n * words];
        for (i, &lm) in landmarks.iter().enumerate() {
            let (word, bit) = (i / 64, i % 64);
            let (reachable, _) = bfs(g, lm, Direction::Out);
            for v in reachable {
                fwd[v.index() * words + word] |= 1u64 << bit;
            }
            let (reaching, _) = bfs(g, lm, Direction::In);
            for v in reaching {
                bwd[v.index() * words + word] |= 1u64 << bit;
            }
        }
        LandmarkVectors {
            landmarks,
            words,
            fwd,
            bwd,
        }
    }

    /// Answer `s → t`. Sound; may return `false` for reachable pairs.
    pub fn query(&self, s: NodeId, t: NodeId) -> bool {
        if s == t {
            return true;
        }
        let sw = &self.bwd[s.index() * self.words..(s.index() + 1) * self.words];
        let tw = &self.fwd[t.index() * self.words..(t.index() + 1) * self.words];
        sw.iter().zip(tw).any(|(a, b)| a & b != 0)
    }

    /// Index memory footprint in bytes (for the evaluation's index-size
    /// comparisons).
    pub fn bytes(&self) -> usize {
        (self.fwd.len() + self.bwd.len()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::builder::graph_from_edges;
    use rbq_graph::traverse::reaches;

    #[test]
    fn sound_no_false_positives() {
        let g = graph_from_edges(
            &["A"; 9],
            &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (7, 8), (2, 4)],
        );
        let lm = LandmarkVectors::build(&g, 7);
        for s in 0..9u32 {
            for t in 0..9u32 {
                if lm.query(NodeId(s), NodeId(t)) {
                    assert!(
                        reaches(&g, NodeId(s), NodeId(t)).0,
                        "false positive {s}->{t}"
                    );
                }
            }
        }
    }

    #[test]
    fn covers_pairs_through_landmarks() {
        // Star through a single hub: with the hub as a landmark, all
        // through-hub pairs are answered.
        let mut edges = Vec::new();
        for i in 1..6u32 {
            edges.push((i, 0));
            edges.push((0, i + 5));
        }
        let g = graph_from_edges(&["A"; 11], &edges);
        // Hub has degree 10; with degree-biased sampling it lands in every
        // reasonable pool.
        let lm = LandmarkVectors::build_with_count(&g, 3, 1);
        assert!(lm.landmarks.contains(&NodeId(0)) || !lm.landmarks.is_empty());
        if lm.landmarks.contains(&NodeId(0)) {
            assert!(lm.query(NodeId(1), NodeId(7)));
        }
    }

    #[test]
    fn self_query_true() {
        let g = graph_from_edges(&["A"; 3], &[(0, 1)]);
        let lm = LandmarkVectors::build(&g, 3);
        assert!(lm.query(NodeId(2), NodeId(2)));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = graph_from_edges(
            &["A"; 20],
            &(0..19u32).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        );
        let a = LandmarkVectors::build(&g, 5);
        let b = LandmarkVectors::build(&g, 5);
        assert_eq!(a.landmarks, b.landmarks);
    }

    #[test]
    fn chain_with_landmark_in_middle_answers() {
        let n = 32u32;
        let g = graph_from_edges(
            &vec!["A"; n as usize],
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        );
        // Plenty of landmarks on a 32-chain: 4*log2(32) = 20.
        let lm = LandmarkVectors::build(&g, 11);
        // With 20 of 32 nodes as landmarks, 0 -> 31 must pass through one.
        assert!(lm.query(NodeId(0), NodeId(n - 1)));
    }

    #[test]
    fn bytes_reports_footprint() {
        let g = graph_from_edges(&["A"; 10], &[(0, 1)]);
        let lm = LandmarkVectors::build(&g, 0);
        assert!(lm.bytes() > 0);
    }
}
