//! Parallel batch evaluation of reachability query sets.
//!
//! The paper notes its techniques "can be readily adapted to the
//! distributed settings" (§1, Related work); the simplest instantiation is
//! shared-memory parallelism: the index is immutable after construction,
//! so a query batch partitions across threads with no synchronization
//! beyond the scoped join.

use crate::hierarchy::HierarchicalIndex;
use rbq_graph::NodeId;
use std::fmt;

/// A worker thread of [`try_batch_query`] panicked.
///
/// The batch itself is not lost: every other worker is still joined, and
/// the caller can fall back to sequential evaluation (what [`batch_query`]
/// does) or surface the failure typed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelError {
    /// Zero-based index of the panicked chunk.
    pub chunk: usize,
    /// The panic message, when the payload was a string.
    pub message: Option<String>,
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.message {
            Some(m) => write!(f, "reach query worker {} panicked: {m}", self.chunk),
            None => write!(f, "reach query worker {} panicked", self.chunk),
        }
    }
}

impl std::error::Error for ParallelError {}

/// Answer a batch of queries with `threads` worker threads.
///
/// Answers are returned in input order and are identical to sequential
/// evaluation (the index is read-only). `threads == 0` or `1` runs
/// sequentially. A panicked worker does **not** abort the process: the
/// whole batch is recomputed sequentially in the caller's thread, so a
/// transient failure yields correct answers and a deterministic one
/// resurfaces as an ordinary catchable panic in the caller.
pub fn batch_query(
    idx: &HierarchicalIndex,
    queries: &[(NodeId, NodeId)],
    threads: usize,
) -> Vec<bool> {
    match try_batch_query(idx, queries, threads) {
        Ok(r) => r,
        Err(_) => queries
            .iter()
            .map(|&(s, t)| idx.query(s, t).reachable)
            .collect(),
    }
}

/// [`batch_query`] with typed worker-failure propagation: a panicked worker
/// yields `Err(ParallelError)` after every other worker has been joined,
/// instead of re-panicking in the caller.
pub fn try_batch_query(
    idx: &HierarchicalIndex,
    queries: &[(NodeId, NodeId)],
    threads: usize,
) -> Result<Vec<bool>, ParallelError> {
    let threads = threads.max(1).min(queries.len().max(1));
    if threads <= 1 || queries.len() < 2 {
        return Ok(queries
            .iter()
            .map(|&(s, t)| idx.query(s, t).reachable)
            .collect());
    }
    let chunk = queries.len().div_ceil(threads);
    let mut results: Vec<Vec<bool>> = Vec::with_capacity(threads);
    let mut failed: Option<ParallelError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .enumerate()
            .map(|(ci, qs)| {
                scope.spawn(move || {
                    rbq_graph::faultpoint::fire_at("reach.parallel", ci as u64);
                    qs.iter()
                        .map(|&(s, t)| idx.query(s, t).reachable)
                        .collect::<Vec<bool>>()
                })
            })
            .collect();
        for (ci, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results.push(r),
                Err(payload) => {
                    // First failure wins; keep joining so no worker leaks.
                    if failed.is_none() {
                        let message = payload
                            .downcast_ref::<&'static str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned());
                        failed = Some(ParallelError { chunk: ci, message });
                    }
                }
            }
        }
    });
    match failed {
        Some(e) => Err(e),
        None => Ok(results.concat()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::builder::graph_from_edges;

    fn setup() -> (HierarchicalIndex, Vec<(NodeId, NodeId)>) {
        let n = 200u32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend((0..n / 2).map(|i| (i, i + n / 2)));
        let g = graph_from_edges(&vec!["A"; n as usize], &edges);
        let idx = HierarchicalIndex::build(&g, 0.2);
        let queries: Vec<(NodeId, NodeId)> = (0..n)
            .map(|i| (NodeId(i), NodeId((i * 7 + 13) % n)))
            .collect();
        (idx, queries)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (idx, queries) = setup();
        let seq = batch_query(&idx, &queries, 1);
        for threads in [2usize, 4, 7] {
            let par = batch_query(&idx, &queries, threads);
            assert_eq!(seq, par, "answers diverge at {threads} threads");
        }
    }

    #[test]
    fn empty_batch() {
        let (idx, _) = setup();
        assert!(batch_query(&idx, &[], 4).is_empty());
    }

    #[test]
    fn single_query_batch() {
        let (idx, queries) = setup();
        let one = &queries[..1];
        assert_eq!(batch_query(&idx, one, 8).len(), 1);
    }

    #[test]
    fn try_batch_matches_batch() {
        let (idx, queries) = setup();
        let plain = batch_query(&idx, &queries, 4);
        let typed = try_batch_query(&idx, &queries, 4).expect("no worker fault");
        assert_eq!(plain, typed);
    }

    #[test]
    fn more_threads_than_queries() {
        let (idx, queries) = setup();
        let few = &queries[..3];
        let seq = batch_query(&idx, few, 1);
        let par = batch_query(&idx, few, 64);
        assert_eq!(seq, par);
    }
}
