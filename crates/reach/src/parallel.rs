//! Parallel batch evaluation of reachability query sets.
//!
//! The paper notes its techniques "can be readily adapted to the
//! distributed settings" (§1, Related work); the simplest instantiation is
//! shared-memory parallelism: the index is immutable after construction,
//! so a query batch partitions across threads with no synchronization
//! beyond the scoped join.

use crate::hierarchy::HierarchicalIndex;
use rbq_graph::NodeId;

/// Answer a batch of queries with `threads` worker threads.
///
/// Answers are returned in input order and are identical to sequential
/// evaluation (the index is read-only). `threads == 0` or `1` runs
/// sequentially.
pub fn batch_query(
    idx: &HierarchicalIndex,
    queries: &[(NodeId, NodeId)],
    threads: usize,
) -> Vec<bool> {
    let threads = threads.max(1).min(queries.len().max(1));
    if threads <= 1 || queries.len() < 2 {
        return queries
            .iter()
            .map(|&(s, t)| idx.query(s, t).reachable)
            .collect();
    }
    let chunk = queries.len().div_ceil(threads);
    let mut results: Vec<Vec<bool>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| {
                scope.spawn(move || {
                    qs.iter()
                        .map(|&(s, t)| idx.query(s, t).reachable)
                        .collect::<Vec<bool>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("query worker panicked"));
        }
    });
    results.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::builder::graph_from_edges;

    fn setup() -> (HierarchicalIndex, Vec<(NodeId, NodeId)>) {
        let n = 200u32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend((0..n / 2).map(|i| (i, i + n / 2)));
        let g = graph_from_edges(&vec!["A"; n as usize], &edges);
        let idx = HierarchicalIndex::build(&g, 0.2);
        let queries: Vec<(NodeId, NodeId)> = (0..n)
            .map(|i| (NodeId(i), NodeId((i * 7 + 13) % n)))
            .collect();
        (idx, queries)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (idx, queries) = setup();
        let seq = batch_query(&idx, &queries, 1);
        for threads in [2usize, 4, 7] {
            let par = batch_query(&idx, &queries, threads);
            assert_eq!(seq, par, "answers diverge at {threads} threads");
        }
    }

    #[test]
    fn empty_batch() {
        let (idx, _) = setup();
        assert!(batch_query(&idx, &[], 4).is_empty());
    }

    #[test]
    fn single_query_batch() {
        let (idx, queries) = setup();
        let one = &queries[..1];
        assert_eq!(batch_query(&idx, one, 8).len(), 1);
    }

    #[test]
    fn more_threads_than_queries() {
        let (idx, queries) = setup();
        let few = &queries[..3];
        let seq = batch_query(&idx, few, 1);
        let par = batch_query(&idx, few, 64);
        assert_eq!(seq, par);
    }
}
