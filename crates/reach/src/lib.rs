#![warn(missing_docs)]
//! # rbq-reach — resource-bounded reachability (§5)
//!
//! Reachability queries are *non-localized*: deciding whether `v_p` reaches
//! `v_o` may require visiting the whole graph, and Theorem 2 shows no
//! traversal algorithm can be 100% accurate while visiting at most an
//! `α`-fraction of `G` (α < 1). This crate implements the paper's response
//! (Theorem 4): an algorithm that
//!
//! 1. visits at most `α·|G|` data using an index of size `≤ α·|G|`,
//! 2. answers in `O(α·|G|)` time, and
//! 3. returns `true` **only if** the answer is truly `true` (100% true
//!    positives, no false positives).
//!
//! Components:
//!
//! * [`compress`] — query-preserving compression (Fan et al. SIGMOD'12
//!   [12]): SCC condensation followed by a reachability-equivalence merge;
//! * [`hierarchy`] — the hierarchical landmark index `RBIndex` (§5.1) and
//!   the roll-up / drill-down query procedure `RBReach` (§5.2);
//! * [`bfs`] — the `BFS` and `BFSOPT` baselines of §6;
//! * [`landmark_vec`] — the `LM` landmark-vector baseline (Gubichev et al.
//!   [13]) with `4·log|V|` sampled landmarks.

pub mod bfs;
pub mod compress;
pub mod hierarchy;
pub mod landmark_dist;
pub mod landmark_vec;
pub mod parallel;

pub use bfs::{bfs_opt_query, bfs_query, bounded_reach, BfsOptIndex};
pub use compress::{compress_for_reachability, condense_only, CompressedGraph};
pub use hierarchy::{HierarchicalIndex, IndexParams, IndexStats, ReachAnswer, SelectionStrategy};
pub use landmark_dist::LandmarkDistances;
pub use landmark_vec::LandmarkVectors;
pub use parallel::{batch_query, try_batch_query, ParallelError};
