//! Landmark-based shortest-path **distance estimation** — the full scope
//! of Gubichev et al. [13], whose reachability projection is the paper's
//! `LM` baseline.
//!
//! For each landmark `ℓ`, store BFS distances `d(·, ℓ)` and `d(ℓ, ·)`. For
//! a query `(s, t)`:
//!
//! * `min_ℓ d(s, ℓ) + d(ℓ, t)` is an **upper bound** on `d(s, t)`
//!   (triangle inequality along a concrete path through `ℓ`);
//! * the estimate is exact whenever some shortest `s→t` path passes
//!   through a landmark.
//!
//! This module is an extension beyond the paper's experiments; it shares
//! the landmark machinery and gives the reachability `LM` baseline its
//! natural distance-query sibling.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rbq_graph::distance::{distances, INF};
use rbq_graph::types::Direction;
use rbq_graph::{Graph, NodeId};

/// Landmark distance tables.
#[derive(Debug, Clone)]
pub struct LandmarkDistances {
    /// The chosen landmarks.
    pub landmarks: Vec<NodeId>,
    /// `to_lm[i][v]` — BFS distance from `v` to landmark `i` (`INF` if
    /// unreachable).
    to_lm: Vec<Vec<u32>>,
    /// `from_lm[i][v]` — BFS distance from landmark `i` to `v`.
    from_lm: Vec<Vec<u32>>,
}

impl LandmarkDistances {
    /// Build with `k` degree-biased, seeded-random landmarks (as in [13]).
    pub fn build(g: &Graph, k: usize, seed: u64) -> Self {
        let n = g.node_count();
        let k = k.clamp(1, n.max(1));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut by_degree: Vec<NodeId> = g.nodes().collect();
        by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(g.deg(v)));
        let pool = (4 * k).min(n);
        let mut pool_nodes = by_degree[..pool].to_vec();
        pool_nodes.shuffle(&mut rng);
        let mut landmarks: Vec<NodeId> = pool_nodes.into_iter().take(k).collect();
        landmarks.sort_unstable();
        landmarks.dedup();

        let to_lm = landmarks
            .iter()
            .map(|&lm| distances(g, lm, Direction::In))
            .collect();
        let from_lm = landmarks
            .iter()
            .map(|&lm| distances(g, lm, Direction::Out))
            .collect();
        LandmarkDistances {
            landmarks,
            to_lm,
            from_lm,
        }
    }

    /// Upper-bound estimate of `d(s, t)`: the best landmark detour, or
    /// `None` when no landmark connects the pair.
    pub fn estimate(&self, s: NodeId, t: NodeId) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        let mut best: Option<u32> = None;
        for i in 0..self.landmarks.len() {
            let a = self.to_lm[i][s.index()];
            let b = self.from_lm[i][t.index()];
            if a != INF && b != INF {
                let d = a + b;
                best = Some(best.map_or(d, |x: u32| x.min(d)));
            }
        }
        best
    }

    /// The reachability projection: `true` iff some landmark connects the
    /// pair (exactly the `LM` baseline semantics).
    pub fn reachable(&self, s: NodeId, t: NodeId) -> bool {
        self.estimate(s, t).is_some()
    }

    /// Index memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        (self.to_lm.len() + self.from_lm.len())
            * self.to_lm.first().map_or(0, |v| v.len())
            * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::builder::graph_from_edges;
    use rbq_graph::distance::shortest_path;

    fn chain(n: u32) -> Graph {
        graph_from_edges(
            &vec!["A"; n as usize],
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn estimate_is_upper_bound() {
        let g = chain(20);
        let ld = LandmarkDistances::build(&g, 5, 7);
        for s in 0..20u32 {
            for t in 0..20u32 {
                if let Some(est) = ld.estimate(NodeId(s), NodeId(t)) {
                    let exact =
                        shortest_path(&g, NodeId(s), NodeId(t)).map(|p| (p.len() - 1) as u32);
                    let exact = exact.expect("estimate implies reachable");
                    assert!(est >= exact, "estimate {est} < exact {exact} for {s}->{t}");
                }
            }
        }
    }

    #[test]
    fn exact_through_landmark() {
        // Force the only landmark to be the middle of a path: estimates
        // through it are exact for pairs straddling it.
        let g = chain(9);
        let ld = LandmarkDistances::build(&g, 9, 1); // all nodes landmarks
        for s in 0..9u32 {
            for t in s..9u32 {
                assert_eq!(ld.estimate(NodeId(s), NodeId(t)), Some(t - s));
            }
        }
    }

    #[test]
    fn unreachable_pairs_none() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (2, 3)]);
        let ld = LandmarkDistances::build(&g, 4, 3);
        assert_eq!(ld.estimate(NodeId(0), NodeId(3)), None);
        assert!(!ld.reachable(NodeId(0), NodeId(3)));
        assert!(ld.reachable(NodeId(0), NodeId(1)));
    }

    #[test]
    fn self_distance_zero() {
        let g = chain(5);
        let ld = LandmarkDistances::build(&g, 2, 5);
        assert_eq!(ld.estimate(NodeId(3), NodeId(3)), Some(0));
    }

    #[test]
    fn reachability_projection_matches_lm_semantics() {
        let g = chain(30);
        let ld = LandmarkDistances::build(&g, 8, 11);
        let lm = crate::landmark_vec::LandmarkVectors::build_with_count(&g, 8, 11);
        // Same seed & pool logic -> same landmarks -> same reachability
        // answers.
        assert_eq!(ld.landmarks, lm.landmarks);
        for s in (0..30u32).step_by(3) {
            for t in (0..30u32).step_by(4) {
                assert_eq!(
                    ld.reachable(NodeId(s), NodeId(t)),
                    lm.query(NodeId(s), NodeId(t)),
                    "{s}->{t}"
                );
            }
        }
    }

    #[test]
    fn bytes_accounts_tables() {
        let g = chain(10);
        let ld = LandmarkDistances::build(&g, 3, 1);
        assert_eq!(ld.bytes(), 2 * ld.landmarks.len() * 10 * 4);
    }
}
