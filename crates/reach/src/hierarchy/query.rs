//! `RBReach` (Fig. 7): resource-bounded reachability over the hierarchical
//! index.
//!
//! Bidirectional certified search: `s.Active` holds landmarks provably
//! reachable *from* `s`; `t.Active` holds landmarks provably reaching `t`.
//! Both start from the endpoints' first-hit labels `v.E` and grow by
//! rolling up / drilling down index edges whose direction *composes* with
//! the side's certification (s-side follows `ℓ → ℓ'` edges, t-side follows
//! `ℓ' → ℓ`), plus first-hit hop labels. Candidates are ranked by the
//! weight `p(v)/(c(v)+1)` — remaining cover size over remaining subtree
//! size — and pruned by the topological-range guard of Lemma 5(2). The
//! moment a landmark appears in both sets, `s → ℓ → t` is certified and
//! `true` is returned; the search never visits more than `⌊α|G|⌋` data and
//! never returns a false positive (Theorem 4).

use super::build::HierarchicalIndex;
use super::LmId;
use rbq_graph::NodeId;
use rustc_hash::FxHashSet;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Answer of a resource-bounded reachability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachAnswer {
    /// The (approximate) answer. `true` is always correct; `false` may be a
    /// false negative (Theorem 2 makes that unavoidable).
    pub reachable: bool,
    /// Data units visited while answering.
    pub visits: usize,
    /// Whether `true` was certified (always, when returned) — present for
    /// symmetry in reporting.
    pub certified: bool,
}

/// Max-heap entry ordered by weight.
struct Cand {
    weight: f64,
    lm: LmId,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight && self.lm == other.lm
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.weight
            .partial_cmp(&other.weight)
            .unwrap_or(Ordering::Equal)
            .then(self.lm.cmp(&other.lm))
    }
}

impl HierarchicalIndex {
    /// Answer `s → t?` on the original graph within the `α|G|` visit cap.
    pub fn query(&self, s: NodeId, t: NodeId) -> ReachAnswer {
        let mut visits = 0usize;
        if s == t || self.compressed.same_scc(s, t) {
            return ReachAnswer {
                reachable: true,
                visits,
                certified: true,
            };
        }
        let cs = self.compressed.map(s);
        let ct = self.compressed.map(t);
        if cs == ct {
            // Equivalence-merged distinct SCCs never reach each other.
            return ReachAnswer {
                reachable: false,
                visits,
                certified: true,
            };
        }
        if self.landmarks.is_empty() {
            return ReachAnswer {
                reachable: false,
                visits,
                certified: false,
            };
        }
        let cap = self.visit_cap.max(1);
        let s_rank = self.ranks[cs.index()];
        let t_rank = self.ranks[ct.index()];
        // Necessary condition on a DAG: ranks strictly decrease along edges.
        if s_rank <= t_rank {
            return ReachAnswer {
                reachable: false,
                visits,
                certified: false,
            };
        }

        // Guard of Lemma 5(2): a useful landmark ℓ (s → ℓ → t) must have
        // t_rank < rank(ℓ) < s_rank; prune subtrees whose range cannot
        // straddle. The endpoint landmarks themselves sit *on* the window
        // boundary (rank == s_rank / t_rank) yet are exactly where the two
        // frontiers must meet when an endpoint is a landmark — exempt them,
        // or adjacent landmark pairs are never certified.
        let s_lm = self.lm_of_node.get(&cs).copied();
        let t_lm = self.lm_of_node.get(&ct).copied();
        let useful_range = |lm: LmId| {
            let r = self.landmarks[lm as usize].range;
            r.1 > t_rank && r.0 < s_rank
        };
        let useful_self = |lm: LmId| {
            if Some(lm) == s_lm || Some(lm) == t_lm {
                return true;
            }
            let r = self.landmarks[lm as usize].rank;
            r > t_rank && r < s_rank
        };

        let mut s_active: FxHashSet<LmId> = FxHashSet::default();
        let mut t_active: FxHashSet<LmId> = FxHashSet::default();
        let mut s_heap: BinaryHeap<Cand> = BinaryHeap::new();
        let mut t_heap: BinaryHeap<Cand> = BinaryHeap::new();

        // Seed: landmarks certified directly by the endpoint labels (or the
        // endpoint being a landmark itself).
        let s_seed: Vec<LmId> = match self.lm_of_node.get(&cs) {
            Some(&i) => vec![i],
            None => self.fwd_labels[cs.index()].clone(),
        };
        let t_seed: Vec<LmId> = match self.lm_of_node.get(&ct) {
            Some(&i) => vec![i],
            None => self.bwd_labels[ct.index()].clone(),
        };
        for &i in &s_seed {
            visits += 1;
            s_active.insert(i);
        }
        for &i in &t_seed {
            visits += 1;
            // A landmark certified by both endpoints answers the query; the
            // rank guard below is irrelevant here (certification is always
            // correct regardless of usefulness pruning).
            if s_active.contains(&i) {
                return ReachAnswer {
                    reachable: true,
                    visits,
                    certified: true,
                };
            }
            t_active.insert(i);
        }
        // Seed the expansion heaps.
        for &i in &s_seed {
            self.push_neighbors(i, true, &s_active, &mut s_heap, &useful_range, &useful_self);
        }
        for &i in &t_seed {
            self.push_neighbors(
                i,
                false,
                &t_active,
                &mut t_heap,
                &useful_range,
                &useful_self,
            );
        }

        // Alternate expansion (Fig. 7 lines 6-12), bounded by the visit cap.
        while visits < cap && (!s_heap.is_empty() || !t_heap.is_empty()) {
            if self.expand_side(
                &mut s_heap,
                &mut s_active,
                &t_active,
                true,
                &mut visits,
                &useful_range,
                &useful_self,
            ) {
                return ReachAnswer {
                    reachable: true,
                    visits,
                    certified: true,
                };
            }
            if visits >= cap {
                break;
            }
            if self.expand_side(
                &mut t_heap,
                &mut t_active,
                &s_active,
                false,
                &mut visits,
                &useful_range,
                &useful_self,
            ) {
                return ReachAnswer {
                    reachable: true,
                    visits,
                    certified: true,
                };
            }
        }

        ReachAnswer {
            reachable: false,
            visits,
            certified: false,
        }
    }

    /// Pop the best candidate for one side, certify it, and push its
    /// expansion frontier. Returns `true` when the certified landmark is
    /// already in the other side's active set (query answered).
    #[allow(clippy::too_many_arguments)]
    fn expand_side(
        &self,
        heap: &mut BinaryHeap<Cand>,
        active: &mut FxHashSet<LmId>,
        other: &FxHashSet<LmId>,
        fwd: bool,
        visits: &mut usize,
        useful_range: &impl Fn(LmId) -> bool,
        useful_self: &impl Fn(LmId) -> bool,
    ) -> bool {
        loop {
            let Some(c) = heap.pop() else { return false };
            if active.contains(&c.lm) {
                continue; // lazy deletion
            }
            *visits += 1;
            active.insert(c.lm);
            if other.contains(&c.lm) {
                return true;
            }
            self.push_neighbors(c.lm, fwd, active, heap, useful_range, useful_self);
            return false;
        }
    }

    /// Push expansion candidates from landmark `lm` for one side.
    ///
    /// s-side (`fwd = true`): targets `ℓ'` with `lm → ℓ'` certified — a
    /// child with `parent_reaches_child` (drill down), a parent reached by
    /// this child (roll up), or a forward hop label. t-side mirrors.
    fn push_neighbors(
        &self,
        lm: LmId,
        fwd: bool,
        active: &FxHashSet<LmId>,
        heap: &mut BinaryHeap<Cand>,
        useful_range: &impl Fn(LmId) -> bool,
        useful_self: &impl Fn(LmId) -> bool,
    ) {
        let rec = &self.landmarks[lm as usize];
        let consider = |target: LmId, heap: &mut BinaryHeap<Cand>| {
            if active.contains(&target) {
                return;
            }
            // Subtree guard: the weight is -inf (skip) when neither the
            // landmark itself nor its subtree can be useful.
            if !useful_self(target) && !useful_range(target) {
                return;
            }
            heap.push(Cand {
                weight: self.pick_weight(target, active),
                lm: target,
            });
        };
        // Tree edges.
        if let Some(p) = rec.parent {
            // Edge direction: parent_reaches_child == true means parent→lm.
            // s-side composes when lm→parent, i.e. flag false; t-side when
            // parent→lm, i.e. flag true.
            if rec.parent_reaches_child != fwd {
                consider(p, heap);
            }
        }
        for &ch in &rec.children {
            let flag = self.landmarks[ch as usize].parent_reaches_child;
            // Child edge direction: flag true means lm (parent) → child.
            if flag == fwd {
                consider(ch, heap);
            }
        }
        // First-hit hops (certified by construction).
        let hops = if fwd { &rec.hop_fwd } else { &rec.hop_bwd };
        for &h in hops {
            consider(h, heap);
        }
    }

    /// The paper's weight `w(v) = p(v)/(c(v)+1)`: remaining cover size over
    /// remaining subtree size, where "remaining" subtracts already-visited
    /// children (§5.2 "Drill down or roll up").
    fn pick_weight(&self, lm: LmId, active: &FxHashSet<LmId>) -> f64 {
        let rec = &self.landmarks[lm as usize];
        let mut cost = rec.subtree_size as f64;
        let mut potential = rec.cs as f64;
        for &ch in &rec.children {
            if active.contains(&ch) {
                cost -= self.landmarks[ch as usize].subtree_size as f64;
                potential -= self.landmarks[ch as usize].cs as f64;
            }
        }
        potential.max(0.0) / (cost.max(0.0) + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::builder::graph_from_edges;
    use rbq_graph::traverse::reaches;
    use rbq_graph::Graph;

    fn layered_dag(layers: usize, width: usize) -> Graph {
        let n = layers * width;
        let labels = vec!["A"; n];
        let mut edges = Vec::new();
        for l in 0..layers - 1 {
            for i in 0..width {
                for j in 0..width {
                    if (i + j) % 2 == 0 || i == j {
                        edges.push(((l * width + i) as u32, ((l + 1) * width + j) as u32));
                    }
                }
            }
        }
        graph_from_edges(&labels, &edges)
    }

    /// Exhaustive soundness: `true` answers must be truly reachable.
    #[test]
    fn never_false_positive() {
        let g = layered_dag(5, 5);
        for alpha in [0.05, 0.15, 0.4] {
            let idx = HierarchicalIndex::build(&g, alpha);
            for s in 0..g.node_count() as u32 {
                for t in 0..g.node_count() as u32 {
                    let ans = idx.query(NodeId(s), NodeId(t));
                    if ans.reachable {
                        assert!(
                            reaches(&g, NodeId(s), NodeId(t)).0,
                            "false positive {s}->{t} at alpha={alpha}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn high_accuracy_with_generous_alpha() {
        let g = layered_dag(6, 4);
        let idx = HierarchicalIndex::build(&g, 0.4);
        let mut correct = 0usize;
        let mut total = 0usize;
        for s in 0..g.node_count() as u32 {
            for t in 0..g.node_count() as u32 {
                let exact = reaches(&g, NodeId(s), NodeId(t)).0;
                let got = idx.query(NodeId(s), NodeId(t)).reachable;
                total += 1;
                if exact == got {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc >= 0.95, "accuracy {acc} too low");
    }

    #[test]
    fn visit_cap_respected() {
        let g = layered_dag(8, 6);
        let idx = HierarchicalIndex::build(&g, 0.1);
        let cap = idx.visit_cap();
        for s in 0..g.node_count() as u32 {
            let ans = idx.query(NodeId(s), NodeId((s + 17) % g.node_count() as u32));
            assert!(
                ans.visits <= cap + 2,
                "visits {} exceed cap {cap}",
                ans.visits
            );
        }
    }

    #[test]
    fn self_and_scc_queries() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 0), (1, 2), (2, 3)]);
        let idx = HierarchicalIndex::build(&g, 0.5);
        assert!(idx.query(NodeId(2), NodeId(2)).reachable);
        assert!(idx.query(NodeId(0), NodeId(1)).reachable); // same SCC
        assert!(idx.query(NodeId(1), NodeId(0)).reachable);
    }

    #[test]
    fn rank_guard_rejects_impossible_direction() {
        // Chain 0 -> 1 -> 2: query 2 -> 0 must fail fast on rank.
        let g = graph_from_edges(&["A"; 3], &[(0, 1), (1, 2)]);
        let idx = HierarchicalIndex::build(&g, 0.9);
        let ans = idx.query(NodeId(2), NodeId(0));
        assert!(!ans.reachable);
        assert_eq!(ans.visits, 0, "rank guard should answer without visits");
    }

    #[test]
    fn long_chain_certified_through_landmarks() {
        let n = 64u32;
        let g = graph_from_edges(
            &vec!["A"; n as usize],
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        );
        let idx = HierarchicalIndex::build(&g, 0.5);
        assert!(idx.num_landmarks() > 0);
        let ans = idx.query(NodeId(0), NodeId(n - 1));
        assert!(ans.reachable, "chain end-to-end should certify");
    }

    #[test]
    fn disconnected_pair_answers_false() {
        let g = graph_from_edges(&["A"; 6], &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let idx = HierarchicalIndex::build(&g, 0.6);
        assert!(!idx.query(NodeId(0), NodeId(5)).reachable);
        assert!(!idx.query(NodeId(3), NodeId(2)).reachable);
    }

    #[test]
    fn example7_style_bidirectional_meet() {
        // Michael -> cc1 -> ... -> cl16 -> Eric style chain with fan-outs:
        // both sides should meet at a mid landmark.
        let mut edges = Vec::new();
        // spine 0..12
        for i in 0..12u32 {
            edges.push((i, i + 1));
        }
        // decorations to give mid nodes high cover
        for i in 2..10u32 {
            edges.push((100 + i, i)); // extra parents
            edges.push((i, 200 + i)); // extra children... ids adjusted below
        }
        // normalize ids: relabel 100+i -> 13+(i-2), 200+i -> 21+(i-2)
        let mut es = Vec::new();
        for (u, v) in edges {
            let f = |x: u32| -> u32 {
                if x < 100 {
                    x
                } else if x < 200 {
                    13 + (x - 102)
                } else {
                    21 + (x - 202)
                }
            };
            es.push((f(u), f(v)));
        }
        let g = graph_from_edges(&vec!["A"; 29], &es);
        let idx = HierarchicalIndex::build(&g, 0.4);
        let ans = idx.query(NodeId(0), NodeId(12));
        assert!(ans.reachable);
        assert!(ans.visits <= idx.visit_cap() + 2);
    }
}
