//! The hierarchical landmark index (`RBIndex`, §5.1) and its
//! resource-bounded query procedure (`RBReach`, §5.2).
//!
//! ## Structure
//!
//! After query-preserving compression reduces `G` to a DAG, `RBIndex`
//! selects `⌊α|G|/2⌋` landmarks greedily by `deg·rank` (high topological
//! rank × high degree ≈ covers many connected pairs), organizes them into a
//! forest of at most `⌊log_a |G|⌋+1` levels (`a = ⌊2/α⌋`) by repeatedly
//! promoting the best landmarks of each level's *landmark graph* (nodes =
//! landmarks, edges = reachability), and annotates every landmark with:
//!
//! * its **cover size** `v.cs` (≈ ancestors × descendants — how many
//!   connected pairs it covers),
//! * its **topological range** `v.R = [r1, r2]` over the subtree (the
//!   pruning guard of Lemma 5(2)),
//! * the **direction** of each tree edge (whether parent reaches child or
//!   vice versa — the paper's `<0/1, ·, ·>` labels).
//!
//! Every graph node also carries label sets `v.E`: the *first-hit*
//! landmarks reachable from / reaching `v` along landmark-free paths.
//!
//! ## Querying
//!
//! `RBReach` runs a bidirectional, weight-ordered search over the index
//! only: `s.Active` grows landmarks certified reachable *from* `s`,
//! `t.Active` grows landmarks certified to reach `t`; any intersection
//! proves `s → t` (Lemma 5(1)). Expansion rolls up / drills down tree edges
//! and follows first-hit hop labels, ranked by `p(v)/(c(v)+1)` where `p` is
//! the remaining cover size and `c` the remaining subtree size. The search
//! visits at most `α|G|` data and never reports a false positive
//! (Theorem 4).

pub mod build;
pub mod query;

pub use build::{HierarchicalIndex, IndexParams, IndexStats, SelectionStrategy};
pub use query::ReachAnswer;

use rbq_graph::NodeId;

/// Dense landmark identifier within an index.
pub(crate) type LmId = u32;

/// A landmark: a DAG node promoted into the index forest.
#[derive(Debug, Clone)]
pub(crate) struct Landmark {
    /// The DAG node this landmark stands for.
    pub node: NodeId,
    /// Forest level (leaves = 1).
    pub level: u32,
    /// Parent landmark in the forest, if any.
    pub parent: Option<LmId>,
    /// Direction of the edge to the parent: `true` if the parent reaches
    /// this landmark in the DAG, `false` if this landmark reaches the
    /// parent. (Exactly one holds: the DAG is acyclic.)
    pub parent_reaches_child: bool,
    /// Child landmarks in the forest.
    pub children: Vec<LmId>,
    /// Cover-size estimate `v.cs` (ancestors × descendants, saturating).
    pub cs: u64,
    /// Topological rank of `node` in the DAG.
    pub rank: u32,
    /// Topological range `[r1, r2]` over the forest subtree rooted here.
    pub range: (u32, u32),
    /// Number of landmarks in the subtree rooted here (cost `c(v)`).
    pub subtree_size: u32,
    /// First-hit landmark hops: landmarks reachable from this landmark via
    /// landmark-free paths (forward), and reaching it (backward).
    pub hop_fwd: Vec<LmId>,
    /// See [`Landmark::hop_fwd`].
    pub hop_bwd: Vec<LmId>,
}
