//! `RBIndex` (Fig. 6): constructing the hierarchical landmark index.

use super::{Landmark, LmId};
use crate::compress::{compress_for_reachability, CompressedGraph};
use rbq_graph::topo::topological_ranks;
use rbq_graph::{Graph, GraphView, NodeId};
use rustc_hash::{FxHashMap, FxHashSet};

/// How level-1 landmarks are chosen — the paper's greedy heuristic plus
/// alternatives for the ablation study (DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// The paper's `v.d × v.r` greedy (§5.1) — degree times topological
    /// rank, with neighbor removal for spread.
    DegreeRank,
    /// Cover-size greedy: `anc(v) × desc(v)` estimates — the quantity the
    /// paper's heuristic approximates, computed directly.
    Coverage,
    /// Degree only (no rank term).
    DegreeOnly,
    /// Uniform random (seeded) — the ablation floor.
    Random(u64),
}

/// Tunables for index construction.
#[derive(Debug, Clone, Copy)]
pub struct IndexParams {
    /// Resource ratio `α ∈ (0, 1]`: the index holds `⌊α|G|/2⌋` landmarks
    /// and queries visit at most `⌊α|G|⌋` data. At `α = 1` every DAG node
    /// is a landmark and RBReach is exact (≡ BFS).
    pub alpha: f64,
    /// Cap on per-node label set `|v.E|` (the paper bounds it by
    /// `α|G|/2`; a practical cap keeps degenerate DAGs in check).
    pub max_labels_per_node: usize,
    /// Hard cap on forest levels (the analytic bound is
    /// `⌊log_a |G|⌋ + 1`, `a = ⌊2/α⌋`).
    pub max_levels: u32,
    /// Landmark selection strategy (default: the paper's [`SelectionStrategy::DegreeRank`]).
    pub selection: SelectionStrategy,
    /// Whether preprocessing runs the reachability-equivalence merge after
    /// SCC condensation (on by default; off = the `ablation_compress`
    /// baseline).
    pub merge_equivalence: bool,
}

impl IndexParams {
    /// Defaults for a given `α`.
    pub fn new(alpha: f64) -> Self {
        IndexParams {
            alpha,
            max_labels_per_node: 512,
            max_levels: 48,
            selection: SelectionStrategy::DegreeRank,
            merge_equivalence: true,
        }
    }

    /// Override the landmark selection strategy.
    pub fn with_selection(mut self, s: SelectionStrategy) -> Self {
        self.selection = s;
        self
    }

    /// Toggle the equivalence-merge preprocessing step.
    pub fn with_equivalence_merge(mut self, on: bool) -> Self {
        self.merge_equivalence = on;
        self
    }
}

/// The hierarchical landmark index of §5.1, bound to a compressed graph.
#[derive(Debug, Clone)]
pub struct HierarchicalIndex {
    /// The query-preserving compression of the indexed graph.
    pub compressed: CompressedGraph,
    pub(crate) landmarks: Vec<Landmark>,
    pub(crate) lm_of_node: FxHashMap<NodeId, LmId>,
    /// Per DAG node: first-hit landmarks reachable from it (`v.E`, flag 1).
    pub(crate) fwd_labels: Vec<Vec<LmId>>,
    /// Per DAG node: first-hit landmarks reaching it (`v.E`, flag 0).
    pub(crate) bwd_labels: Vec<Vec<LmId>>,
    /// Topological rank of each DAG node.
    pub(crate) ranks: Vec<u32>,
    /// The resource ratio the index was built for.
    pub alpha: f64,
    /// Query visit cap `⌊α|G|⌋` (in units of the *original* graph).
    pub(crate) visit_cap: usize,
    /// Forest roots.
    pub(crate) roots: Vec<LmId>,
}

impl HierarchicalIndex {
    /// Build with defaults for `alpha`.
    pub fn build(g: &Graph, alpha: f64) -> Self {
        Self::build_with(g, IndexParams::new(alpha))
    }

    /// Build with explicit parameters (Fig. 6's `RBIndex`).
    pub fn build_with(g: &Graph, params: IndexParams) -> Self {
        assert!(
            params.alpha.is_finite() && params.alpha > 0.0 && params.alpha <= 1.0,
            "alpha must lie in (0, 1]"
        );
        let compressed = if params.merge_equivalence {
            compress_for_reachability(g)
        } else {
            crate::compress::condense_only(g)
        };
        let dag = &compressed.dag;
        let n = dag.node_count();
        let ranks = if n > 0 {
            topological_ranks(dag)
        } else {
            Vec::new()
        };

        let g_size = g.size();
        let visit_cap = (params.alpha * g_size as f64).floor() as usize;
        // At α = 1 every DAG node becomes a landmark: with first-hit hop
        // labels then covering every DAG edge, the bidirectional search is
        // complete and RBReach degenerates to exact reachability (the α = 1
        // end of Theorem 2's accuracy/resource trade-off).
        let k1 = if params.alpha >= 1.0 {
            n
        } else {
            ((params.alpha * g_size as f64) / 2.0).floor() as usize
        };
        let k1 = k1.min(n);
        // Spreading parameter: the paper's `a = ⌊2/α⌋` makes the k1
        // selections sweep exactly |G| nodes; compression can leave the DAG
        // far smaller than |G|, so rescale to sweep the DAG instead
        // (`k1 · a ≈ |V_dag|`) — same intent, no degenerate single-landmark
        // indexes on heavily compressed graphs.
        let a = n.checked_div(k1).unwrap_or(1).max(1);

        // ---- Cover-size estimates (§5.1 `v.cs`), also usable as a
        // selection key. ----
        let (desc_est, anc_est) = coverage_estimates(dag);

        // ---- Level-1 landmark selection. ----
        // The greedy's neighbor-removal spread would skip nodes when every
        // node is wanted, so the k1 = n case short-circuits it.
        let lm_nodes = if k1 >= n {
            dag.nodes().collect()
        } else {
            greedy_select(dag, &ranks, k1, a, params.selection, &desc_est, &anc_est)
        };
        let k1 = lm_nodes.len();
        let mut lm_of_node: FxHashMap<NodeId, LmId> = FxHashMap::default();
        for (i, &v) in lm_nodes.iter().enumerate() {
            lm_of_node.insert(v, i as LmId);
        }

        // ---- Landmark reachability bitsets via one reverse-topo DP. ----
        let words = k1.div_ceil(64);
        let lm_reach = landmark_reach_bitsets(dag, &lm_nodes, &lm_of_node, words);

        // ---- First-hit label sets (`v.E`) in both directions. ----
        let fwd_labels = first_hit_labels(dag, &lm_of_node, params.max_labels_per_node, true);
        let bwd_labels = first_hit_labels(dag, &lm_of_node, params.max_labels_per_node, false);

        // ---- Initialize landmark records. ----
        let mut landmarks: Vec<Landmark> = lm_nodes
            .iter()
            .map(|&v| Landmark {
                node: v,
                level: 1,
                parent: None,
                parent_reaches_child: false,
                children: Vec::new(),
                cs: desc_est[v.index()].saturating_mul(anc_est[v.index()]),
                rank: ranks[v.index()],
                range: (0, 0),
                subtree_size: 1,
                hop_fwd: fwd_labels[v.index()].clone(),
                hop_bwd: bwd_labels[v.index()].clone(),
            })
            .collect();

        // ---- Multi-level promotion (Fig. 6 lines 5-9). ----
        let mut unparented: Vec<LmId> = Vec::new();
        let mut cur: Vec<LmId> = (0..k1 as LmId).collect();
        let mut level = 2u32;
        while cur.len() > 1 && level <= params.max_levels {
            // |G_{l-1}|: landmark-graph size (nodes + reachability edges).
            let cur_set: FxHashSet<LmId> = cur.iter().copied().collect();
            let mut edge_cnt = 0usize;
            for &i in &cur {
                edge_cnt += cur
                    .iter()
                    .filter(|&&j| j != i && bit(&lm_reach, words, i, j))
                    .count();
            }
            let lm_graph_size = cur.len() + edge_cnt;
            let k = ((params.alpha * lm_graph_size as f64) / 2.0).floor() as usize;
            let k = k.min(cur.len() - 1);
            if k == 0 {
                break;
            }

            // Rank and degree within the landmark graph.
            let (l_ranks, l_degs) = landmark_graph_stats(&cur, &lm_reach, words);

            // Greedy selection on the landmark graph, spreading across it.
            let a_l = (cur.len() / k).max(1);
            let selected = greedy_select_landmarks(&cur, &l_ranks, &l_degs, k, a_l, |i, j| {
                bit(&lm_reach, words, i, j) || bit(&lm_reach, words, j, i)
            });
            let selected_set: FxHashSet<LmId> = selected.iter().copied().collect();

            // Assign parents: every unselected current landmark attaches to
            // a connected selected landmark (first in selection order).
            for &w in &cur {
                if selected_set.contains(&w) {
                    continue;
                }
                let mut attached = false;
                for &v in &selected {
                    if bit(&lm_reach, words, v, w) {
                        landmarks[w as usize].parent = Some(v);
                        landmarks[w as usize].parent_reaches_child = true;
                        landmarks[v as usize].children.push(w);
                        attached = true;
                        break;
                    }
                    if bit(&lm_reach, words, w, v) {
                        landmarks[w as usize].parent = Some(v);
                        landmarks[w as usize].parent_reaches_child = false;
                        landmarks[v as usize].children.push(w);
                        attached = true;
                        break;
                    }
                }
                if !attached {
                    unparented.push(w);
                }
            }
            for &v in &selected {
                landmarks[v as usize].level = level;
            }
            let _ = cur_set;
            cur = selected;
            level += 1;
        }

        let mut roots: Vec<LmId> = cur;
        roots.extend(unparented);
        roots.sort_unstable();
        roots.dedup();

        // ---- Subtree sizes and topological ranges (DFS from roots). ----
        compute_subtrees(&mut landmarks, &roots);

        HierarchicalIndex {
            compressed,
            landmarks,
            lm_of_node,
            fwd_labels,
            bwd_labels,
            ranks,
            alpha: params.alpha,
            visit_cap,
            roots,
        }
    }

    /// Number of landmarks in the index.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Number of forest levels.
    pub fn levels(&self) -> u32 {
        self.landmarks.iter().map(|l| l.level).max().unwrap_or(0)
    }

    /// Index size in nodes+edges units: landmarks plus tree edges. The
    /// paper's Theorem 4 bound (`≤ α|G|`).
    pub fn index_size(&self) -> usize {
        let edges = self.landmarks.iter().filter(|l| l.parent.is_some()).count();
        self.landmarks.len() + edges
    }

    /// Total label entries (`Σ|v.E|` plus hop labels) — auxiliary storage
    /// reported alongside the forest size.
    pub fn label_entries(&self) -> usize {
        let per_node: usize = self
            .fwd_labels
            .iter()
            .chain(self.bwd_labels.iter())
            .map(Vec::len)
            .sum();
        let hops: usize = self
            .landmarks
            .iter()
            .map(|l| l.hop_fwd.len() + l.hop_bwd.len())
            .sum();
        per_node + hops
    }

    /// The query-time visit cap `⌊α|G|⌋`.
    pub fn visit_cap(&self) -> usize {
        self.visit_cap
    }

    /// The DAG nodes serving as landmarks, in landmark-id order.
    pub fn landmark_nodes(&self) -> Vec<NodeId> {
        self.landmarks.iter().map(|l| l.node).collect()
    }

    /// The forest roots (landmark ids), for diagnostics.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Structural report of the index, for experiment logs and diagnostics.
    pub fn stats(&self) -> IndexStats {
        let levels = self.levels();
        let mut per_level = vec![0usize; levels as usize];
        for lm in &self.landmarks {
            per_level[(lm.level - 1) as usize] += 1;
        }
        IndexStats {
            landmarks: self.landmarks.len(),
            levels,
            landmarks_per_level: per_level,
            roots: self.roots.len(),
            tree_edges: self.landmarks.iter().filter(|l| l.parent.is_some()).count(),
            label_entries: self.label_entries(),
            dag_nodes: self.compressed.dag.node_count(),
            dag_edges: self.compressed.dag.edge_count(),
            visit_cap: self.visit_cap,
        }
    }
}

/// Structural summary of a [`HierarchicalIndex`] (see
/// [`HierarchicalIndex::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Total landmarks.
    pub landmarks: usize,
    /// Forest levels.
    pub levels: u32,
    /// Landmarks at each level (index 0 = level 1).
    pub landmarks_per_level: Vec<usize>,
    /// Forest roots.
    pub roots: usize,
    /// Parent edges in the forest.
    pub tree_edges: usize,
    /// Total label entries (`Σ|v.E|` + hop lists).
    pub label_entries: usize,
    /// Compressed DAG node count.
    pub dag_nodes: usize,
    /// Compressed DAG edge count.
    pub dag_edges: usize,
    /// Query-time visit cap `⌊α|G|⌋`.
    pub visit_cap: usize,
}

/// Greedy landmark selection over the DAG: order nodes by the selection
/// key descending; when a node is picked, it and up to `a` of its
/// (undirected) neighbors leave the candidate pool, spreading landmarks
/// across the graph (§5.1 "Landmark selection").
fn greedy_select(
    dag: &Graph,
    ranks: &[u32],
    k: usize,
    a: usize,
    strategy: SelectionStrategy,
    desc_est: &[u64],
    anc_est: &[u64],
) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = dag.nodes().collect();
    match strategy {
        SelectionStrategy::DegreeRank => order.sort_unstable_by_key(|&v| {
            std::cmp::Reverse((dag.deg(v) as u64) * (ranks[v.index()] as u64 + 1))
        }),
        SelectionStrategy::Coverage => order.sort_unstable_by_key(|&v| {
            std::cmp::Reverse(desc_est[v.index()].saturating_mul(anc_est[v.index()]))
        }),
        SelectionStrategy::DegreeOnly => {
            order.sort_unstable_by_key(|&v| std::cmp::Reverse(dag.deg(v)))
        }
        SelectionStrategy::Random(seed) => {
            // Deterministic pseudo-shuffle without an RNG dependency here:
            // sort by a splitmix-style hash of (seed, node id).
            order.sort_unstable_by_key(|&v| {
                let mut x = seed ^ (v.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                x
            })
        }
    }
    let mut removed = vec![false; dag.node_count()];
    let mut picked = Vec::with_capacity(k);
    for v in order {
        if picked.len() >= k {
            break;
        }
        if removed[v.index()] {
            continue;
        }
        picked.push(v);
        removed[v.index()] = true;
        let mut quota = a;
        for &w in dag.out(v).iter().chain(dag.inn(v)) {
            if quota == 0 {
                break;
            }
            if !removed[w.index()] {
                removed[w.index()] = true;
                quota -= 1;
            }
        }
    }
    picked
}

/// Greedy selection over a landmark graph given rank/degree maps.
fn greedy_select_landmarks(
    cur: &[LmId],
    l_ranks: &FxHashMap<LmId, u32>,
    l_degs: &FxHashMap<LmId, u32>,
    k: usize,
    a: usize,
    adjacent: impl Fn(LmId, LmId) -> bool,
) -> Vec<LmId> {
    let mut order: Vec<LmId> = cur.to_vec();
    order.sort_unstable_by_key(|&i| {
        std::cmp::Reverse((l_degs[&i] as u64) * (l_ranks[&i] as u64 + 1))
    });
    let mut removed: FxHashSet<LmId> = FxHashSet::default();
    let mut picked = Vec::with_capacity(k);
    for i in order {
        if picked.len() >= k {
            break;
        }
        if removed.contains(&i) {
            continue;
        }
        picked.push(i);
        removed.insert(i);
        let mut quota = a;
        for &j in cur {
            if quota == 0 {
                break;
            }
            if j != i && !removed.contains(&j) && adjacent(i, j) {
                removed.insert(j);
                quota -= 1;
            }
        }
    }
    picked
}

/// Rank and degree of each current landmark *within the landmark graph*
/// (nodes = `cur`, edges = reachability).
fn landmark_graph_stats(
    cur: &[LmId],
    lm_reach: &[u64],
    words: usize,
) -> (FxHashMap<LmId, u32>, FxHashMap<LmId, u32>) {
    // Degree = adjacency count either direction; rank = longest out-path.
    let mut degs: FxHashMap<LmId, u32> = FxHashMap::default();
    for &i in cur {
        let d = cur
            .iter()
            .filter(|&&j| j != i && (bit(lm_reach, words, i, j) || bit(lm_reach, words, j, i)))
            .count() as u32;
        degs.insert(i, d);
    }
    // The landmark graph is transitively closed, so the longest path from i
    // equals the number of landmarks i reaches... not quite (it is the
    // longest chain). Chain length in a transitive DAG = longest path; we
    // approximate rank by out-reach count, which orders identically for
    // chains and is monotone for the greedy heuristic.
    let mut ranks: FxHashMap<LmId, u32> = FxHashMap::default();
    for &i in cur {
        let r = cur
            .iter()
            .filter(|&&j| j != i && bit(lm_reach, words, i, j))
            .count() as u32;
        ranks.insert(i, r);
    }
    (ranks, degs)
}

/// `lm_reach[i]` bit `j` set ⟺ landmark `i` reaches landmark `j` in the
/// DAG (i ≠ j). Reverse-topological DP over per-node bitsets, chunked by
/// 512 landmarks so big graphs need `O(|V| · 64B)` scratch instead of
/// `O(|V| · k/8)` bytes.
fn landmark_reach_bitsets(
    dag: &Graph,
    lm_nodes: &[NodeId],
    lm_of_node: &FxHashMap<NodeId, LmId>,
    words: usize,
) -> Vec<u64> {
    const CHUNK_BITS: usize = 512;
    const CHUNK_WORDS: usize = CHUNK_BITS / 64;
    let n = dag.node_count();
    let k = lm_nodes.len();
    if words == 0 || k == 0 {
        return Vec::new();
    }
    // invariant: `dag` is the SCC condensation built upstream in this
    // module, which is acyclic by construction.
    let order = rbq_graph::topo::topological_order(dag).expect("compressed graph is a DAG");
    let mut lm_reach = vec![0u64; k * words];
    let mut node_reach = Vec::new();
    let mut row = [0u64; CHUNK_WORDS];

    for chunk_start in (0..k).step_by(CHUNK_BITS) {
        let chunk_end = (chunk_start + CHUNK_BITS).min(k);
        let cw = (chunk_end - chunk_start).div_ceil(64);
        node_reach.clear();
        node_reach.resize(n * cw, 0u64);
        for &v in order.iter().rev() {
            row[..cw].fill(0);
            for &c in dag.out(v) {
                let base = c.index() * cw;
                for (w, r) in row[..cw].iter_mut().enumerate() {
                    *r |= node_reach[base + w];
                }
                if let Some(&j) = lm_of_node.get(&c) {
                    let j = j as usize;
                    if (chunk_start..chunk_end).contains(&j) {
                        let off = j - chunk_start;
                        row[off / 64] |= 1u64 << (off % 64);
                    }
                }
            }
            node_reach[v.index() * cw..(v.index() + 1) * cw].copy_from_slice(&row[..cw]);
        }
        // Scatter this chunk into the landmark-indexed matrix.
        let word_base = chunk_start / 64;
        for (i, &v) in lm_nodes.iter().enumerate() {
            for w in 0..cw {
                lm_reach[i * words + word_base + w] = node_reach[v.index() * cw + w];
            }
        }
    }
    lm_reach
}

#[inline]
fn bit(lm_reach: &[u64], words: usize, i: LmId, j: LmId) -> bool {
    lm_reach[i as usize * words + (j / 64) as usize] >> (j % 64) & 1 == 1
}

/// Saturating descendant/ancestor count estimates (the paper leaves the
/// cover-size computation unspecified; exact counting costs a BFS per
/// landmark, so we use the standard DAG DP overestimate, which only steers
/// the search heuristic).
fn coverage_estimates(dag: &Graph) -> (Vec<u64>, Vec<u64>) {
    let n = dag.node_count();
    let mut desc = vec![1u64; n];
    let mut anc = vec![1u64; n];
    if n == 0 {
        return (desc, anc);
    }
    // invariant: `dag` is the SCC condensation, acyclic by construction.
    let order = rbq_graph::topo::topological_order(dag).expect("DAG");
    for &v in order.iter().rev() {
        let mut d = 1u64;
        for &c in dag.out(v) {
            d = d.saturating_add(desc[c.index()]);
        }
        desc[v.index()] = d;
    }
    for &v in &order {
        let mut x = 1u64;
        for &p in dag.inn(v) {
            x = x.saturating_add(anc[p.index()]);
        }
        anc[v.index()] = x;
    }
    (desc, anc)
}

/// First-hit landmark labels: for each node `v`, the landmarks reachable
/// from `v` (forward) or reaching `v` (backward) along paths containing no
/// intermediate landmark — the paper's `v.E` triples, with the refinement
/// that landmarks of any level count (strictly more recall, still sound).
fn first_hit_labels(
    dag: &Graph,
    lm_of_node: &FxHashMap<NodeId, LmId>,
    cap: usize,
    forward: bool,
) -> Vec<Vec<LmId>> {
    let n = dag.node_count();
    let mut labels: Vec<Vec<LmId>> = vec![Vec::new(); n];
    if n == 0 {
        return labels;
    }
    // invariant: `dag` is the SCC condensation, acyclic by construction.
    let order = rbq_graph::topo::topological_order(dag).expect("DAG");
    let iter: Box<dyn Iterator<Item = &NodeId>> = if forward {
        Box::new(order.iter().rev())
    } else {
        Box::new(order.iter())
    };
    for &v in iter {
        let mut acc: Vec<LmId> = Vec::new();
        let neigh = if forward { dag.out(v) } else { dag.inn(v) };
        for &c in neigh {
            if let Some(&j) = lm_of_node.get(&c) {
                acc.push(j);
            } else {
                acc.extend_from_slice(&labels[c.index()]);
            }
        }
        acc.sort_unstable();
        acc.dedup();
        acc.truncate(cap);
        labels[v.index()] = acc;
    }
    labels
}

/// Fill `subtree_size` and topological `range` by an iterative post-order
/// walk from the forest roots.
fn compute_subtrees(landmarks: &mut [Landmark], roots: &[LmId]) {
    for &root in roots {
        // Iterative post-order.
        let mut stack: Vec<(LmId, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let children = landmarks[v as usize].children.clone();
            if *i < children.len() {
                let c = children[*i];
                *i += 1;
                stack.push((c, 0));
            } else {
                let mut size = 1u32;
                let mut lo = landmarks[v as usize].rank;
                let mut hi = landmarks[v as usize].rank;
                for &c in &children {
                    size += landmarks[c as usize].subtree_size;
                    lo = lo.min(landmarks[c as usize].range.0);
                    hi = hi.max(landmarks[c as usize].range.1);
                }
                landmarks[v as usize].subtree_size = size;
                landmarks[v as usize].range = (lo, hi);
                stack.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::builder::graph_from_edges;

    fn layered_dag(layers: usize, width: usize) -> Graph {
        // Fully connected consecutive layers.
        let n = layers * width;
        let labels = vec!["A"; n];
        let mut edges = Vec::new();
        for l in 0..layers - 1 {
            for i in 0..width {
                for j in 0..width {
                    edges.push(((l * width + i) as u32, ((l + 1) * width + j) as u32));
                }
            }
        }
        graph_from_edges(&labels, &edges)
    }

    #[test]
    fn index_size_within_alpha_bound() {
        let g = layered_dag(6, 8);
        for alpha in [0.05, 0.1, 0.25] {
            let idx = HierarchicalIndex::build(&g, alpha);
            let bound = (alpha * g.size() as f64) as usize;
            assert!(
                idx.index_size() <= bound.max(1),
                "alpha={alpha}: size {} > bound {bound}",
                idx.index_size()
            );
            assert!(idx.num_landmarks() <= bound / 2 + 1);
        }
    }

    #[test]
    fn landmarks_have_valid_tree_structure() {
        let g = layered_dag(5, 6);
        let idx = HierarchicalIndex::build(&g, 0.3);
        // Every non-root has a parent; parents list them as children.
        let root_set: FxHashSet<LmId> = idx.roots.iter().copied().collect();
        for (i, lm) in idx.landmarks.iter().enumerate() {
            match lm.parent {
                Some(p) => {
                    assert!(idx.landmarks[p as usize].children.contains(&(i as LmId)));
                    assert!(
                        idx.landmarks[p as usize].level > lm.level,
                        "parent level must exceed child level"
                    );
                }
                None => assert!(root_set.contains(&(i as LmId)), "orphan {i}"),
            }
        }
    }

    #[test]
    fn tree_edge_directions_reflect_reachability() {
        let g = layered_dag(5, 6);
        let idx = HierarchicalIndex::build(&g, 0.3);
        for lm in &idx.landmarks {
            if let Some(p) = lm.parent {
                let pn = idx.landmarks[p as usize].node;
                let reachable = rbq_graph::traverse::reaches(&idx.compressed.dag, pn, lm.node).0;
                let reverse = rbq_graph::traverse::reaches(&idx.compressed.dag, lm.node, pn).0;
                if lm.parent_reaches_child {
                    assert!(reachable, "flag says parent reaches child");
                } else {
                    assert!(reverse, "flag says child reaches parent");
                }
            }
        }
    }

    #[test]
    fn subtree_sizes_consistent() {
        let g = layered_dag(4, 8);
        let idx = HierarchicalIndex::build(&g, 0.4);
        let total_in_roots: u32 = idx
            .roots
            .iter()
            .map(|&r| idx.landmarks[r as usize].subtree_size)
            .sum();
        assert_eq!(total_in_roots as usize, idx.num_landmarks());
        for lm in &idx.landmarks {
            let child_sum: u32 = lm
                .children
                .iter()
                .map(|&c| idx.landmarks[c as usize].subtree_size)
                .sum();
            assert_eq!(lm.subtree_size, child_sum + 1);
        }
    }

    #[test]
    fn ranges_cover_subtree_ranks() {
        let g = layered_dag(5, 4);
        let idx = HierarchicalIndex::build(&g, 0.4);
        for lm in &idx.landmarks {
            assert!(lm.range.0 <= lm.rank && lm.rank <= lm.range.1);
            for &c in &lm.children {
                let cr = &idx.landmarks[c as usize];
                assert!(lm.range.0 <= cr.range.0);
                assert!(lm.range.1 >= cr.range.1);
            }
        }
    }

    #[test]
    fn first_hit_labels_are_sound() {
        let g = layered_dag(4, 4);
        let idx = HierarchicalIndex::build(&g, 0.3);
        // Every forward label of node v must be reachable from v.
        for v in idx.compressed.dag.nodes() {
            for &j in &idx.fwd_labels[v.index()] {
                let lm_node = idx.landmarks[j as usize].node;
                assert!(
                    rbq_graph::traverse::reaches(&idx.compressed.dag, v, lm_node).0,
                    "label {j} not reachable from {v:?}"
                );
            }
            for &j in &idx.bwd_labels[v.index()] {
                let lm_node = idx.landmarks[j as usize].node;
                assert!(rbq_graph::traverse::reaches(&idx.compressed.dag, lm_node, v).0);
            }
        }
    }

    #[test]
    fn hop_labels_are_sound() {
        let g = layered_dag(5, 4);
        let idx = HierarchicalIndex::build(&g, 0.4);
        for (i, lm) in idx.landmarks.iter().enumerate() {
            for &j in &lm.hop_fwd {
                assert_ne!(i as LmId, j);
                let to = idx.landmarks[j as usize].node;
                assert!(rbq_graph::traverse::reaches(&idx.compressed.dag, lm.node, to).0);
            }
        }
    }

    #[test]
    fn empty_graph_builds_empty_index() {
        let g = graph_from_edges(&[], &[]);
        let idx = HierarchicalIndex::build(&g, 0.5);
        assert_eq!(idx.num_landmarks(), 0);
        assert_eq!(idx.levels(), 0);
    }

    #[test]
    fn tiny_alpha_yields_no_landmarks() {
        let g = graph_from_edges(&["A"; 4], &[(0, 1), (1, 2), (2, 3)]);
        let idx = HierarchicalIndex::build(&g, 0.05); // α|G|/2 < 1
        assert_eq!(idx.num_landmarks(), 0);
    }

    #[test]
    fn multi_level_promotion_happens_with_large_alpha() {
        let g = layered_dag(8, 8);
        let idx = HierarchicalIndex::build(&g, 0.5);
        assert!(
            idx.levels() >= 2,
            "expected promotion, got {} levels over {} landmarks",
            idx.levels(),
            idx.num_landmarks()
        );
    }

    #[test]
    fn stats_report_consistent() {
        let g = layered_dag(6, 8);
        let idx = HierarchicalIndex::build(&g, 0.3);
        let st = idx.stats();
        assert_eq!(st.landmarks, idx.num_landmarks());
        assert_eq!(st.levels, idx.levels());
        assert_eq!(st.landmarks_per_level.iter().sum::<usize>(), st.landmarks);
        assert_eq!(st.landmarks, st.tree_edges + st.roots);
        assert_eq!(st.dag_nodes, idx.compressed.dag.node_count());
        assert_eq!(st.visit_cap, idx.visit_cap());
    }

    #[test]
    fn alpha_one_marks_every_dag_node() {
        let g = layered_dag(4, 4);
        let idx = HierarchicalIndex::build(&g, 1.0);
        assert_eq!(idx.num_landmarks(), idx.compressed.dag.node_count());
    }

    #[test]
    fn alpha_one_is_exact_on_sparse_graph() {
        // Sparse enough that α|G|/2 < |V_dag| — the old selection would
        // leave landmark-free paths and miss reachable pairs.
        let g = graph_from_edges(&["A"; 6], &[(0, 1), (1, 2), (3, 4)]);
        let idx = HierarchicalIndex::build(&g, 1.0);
        for s in 0..6u32 {
            for t in 0..6u32 {
                let (s, t) = (NodeId(s), NodeId(t));
                let exact = rbq_graph::traverse::reaches(&g, s, t).0;
                assert_eq!(idx.query(s, t).reachable, exact, "{s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn deterministic_build() {
        let g = layered_dag(5, 5);
        let a = HierarchicalIndex::build(&g, 0.3);
        let b = HierarchicalIndex::build(&g, 0.3);
        assert_eq!(a.num_landmarks(), b.num_landmarks());
        for (x, y) in a.landmarks.iter().zip(&b.landmarks) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.parent, y.parent);
        }
    }
}
