//! Reachability baselines: `BFS` and `BFSOPT` (§6 Exp-2).
//!
//! * `BFS` — plain breadth-first search on `G` (exact, unbounded visits);
//! * `BFSOPT` — compress `G` once (query-preserving, [12]) and run BFS on
//!   the compressed DAG for each query (exact, fewer visits).

use crate::compress::{compress_for_reachability, CompressedGraph};
use rbq_graph::traverse::{reaches, VisitStats};
use rbq_graph::{Graph, NodeId};

/// Plain BFS reachability: the paper's `BFS` baseline.
pub fn bfs_query(g: &Graph, s: NodeId, t: NodeId) -> (bool, VisitStats) {
    reaches(g, s, t)
}

/// The once-for-all compressed index behind `BFSOPT`.
#[derive(Debug, Clone)]
pub struct BfsOptIndex {
    /// The compressed graph.
    pub compressed: CompressedGraph,
}

impl BfsOptIndex {
    /// Build by compressing `g` (offline, once for all queries).
    pub fn build(g: &Graph) -> Self {
        BfsOptIndex {
            compressed: compress_for_reachability(g),
        }
    }

    /// Answer a query with BFS over the compressed DAG. Exact.
    pub fn query(&self, s: NodeId, t: NodeId) -> bool {
        self.compressed.query(s, t)
    }
}

/// One-shot `BFSOPT`: compress then query. Prefer building [`BfsOptIndex`]
/// once when answering many queries.
pub fn bfs_opt_query(g: &Graph, s: NodeId, t: NodeId) -> bool {
    BfsOptIndex::build(g).query(s, t)
}

/// Budget-limited bidirectional BFS **without any index** — the strawman
/// Theorem 2 rules out: it visits at most `budget` data units and answers
/// `false` when the budget runs out before meeting. Sound (true ⇒ truly
/// reachable) but its recall collapses on long paths, which is exactly why
/// the paper builds the hierarchical index instead. Used as an extra
/// ablation baseline against `RBReach` at equal budgets.
pub fn bounded_reach(g: &Graph, s: NodeId, t: NodeId, budget: usize) -> (bool, VisitStats) {
    use rbq_graph::types::Direction;
    use rustc_hash::FxHashSet;
    let mut stats = VisitStats::default();
    if s == t {
        return (true, stats);
    }
    let mut fwd_seen: FxHashSet<NodeId> = FxHashSet::default();
    let mut bwd_seen: FxHashSet<NodeId> = FxHashSet::default();
    let mut fwd = vec![s];
    let mut bwd = vec![t];
    fwd_seen.insert(s);
    bwd_seen.insert(t);
    while !fwd.is_empty() && !bwd.is_empty() {
        let forward = fwd.len() <= bwd.len();
        let (frontier, seen, other, dir) = if forward {
            (&mut fwd, &mut fwd_seen, &bwd_seen, Direction::Out)
        } else {
            (&mut bwd, &mut bwd_seen, &fwd_seen, Direction::In)
        };
        let mut next = Vec::new();
        for &v in frontier.iter() {
            stats.nodes += 1;
            for &w in g.adj(v, dir) {
                stats.edges += 1;
                if other.contains(&w) {
                    return (true, stats);
                }
                if seen.insert(w) {
                    next.push(w);
                }
                if stats.total() >= budget {
                    return (false, stats);
                }
            }
        }
        *frontier = next;
    }
    (false, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::builder::graph_from_edges;

    #[test]
    fn bfs_and_bfsopt_agree() {
        let g = graph_from_edges(
            &["A"; 8],
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (5, 6),
                (6, 5),
                (4, 7),
            ],
        );
        let idx = BfsOptIndex::build(&g);
        for s in 0..8u32 {
            for t in 0..8u32 {
                let exact = bfs_query(&g, NodeId(s), NodeId(t)).0;
                assert_eq!(idx.query(NodeId(s), NodeId(t)), exact, "{s}->{t}");
                assert_eq!(bfs_opt_query(&g, NodeId(s), NodeId(t)), exact);
            }
        }
    }

    #[test]
    fn bounded_reach_sound_and_budgeted() {
        let n = 60u32;
        let labels = vec!["A"; n as usize];
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = graph_from_edges(&labels, &edges);
        // Big budget: finds the far pair.
        let (ok, stats) = bounded_reach(&g, NodeId(0), NodeId(n - 1), 10_000);
        assert!(ok);
        assert!(stats.total() <= 10_000);
        // Tiny budget: must give up (false negative), never a false
        // positive, and must respect the budget.
        let (ok, stats) = bounded_reach(&g, NodeId(0), NodeId(n - 1), 10);
        assert!(!ok);
        assert!(
            stats.total() <= 11,
            "visits {} exceed budget",
            stats.total()
        );
        // Unreachable stays false at any budget.
        assert!(!bounded_reach(&g, NodeId(n - 1), NodeId(0), 10_000).0);
        // Trivial cases.
        assert!(bounded_reach(&g, NodeId(5), NodeId(5), 1).0);
    }

    #[test]
    fn bfsopt_visits_smaller_graph() {
        // A long cycle compresses to one node.
        let n = 50u32;
        let labels = vec!["A"; n as usize];
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = graph_from_edges(&labels, &edges);
        let idx = BfsOptIndex::build(&g);
        assert_eq!(idx.compressed.dag.node_count(), 1);
        assert!(idx.query(NodeId(3), NodeId(42)));
    }
}
