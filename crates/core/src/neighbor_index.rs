//! The once-for-all offline auxiliary structure of §4.1.
//!
//! For each node `v`, the paper precomputes (Example 3): the degree `d(v)`
//! and the set `S_l` of `(label, occurrence-count)` pairs over the
//! neighborhood `N(v)`. We refine `S_l` by direction (separate child and
//! parent label counts) — a strict superset of the paper's structure that
//! lets the guarded condition `C(v, u)` check parents and children exactly,
//! as its definition demands, still in `O(1)`-ish hashed lookups.
//!
//! The index is computed by one linear traversal of `G` and its cost is
//! *offline*: it is excluded from the online `α·c·|G|` visiting budget
//! (§3 "Remarks").

use rbq_graph::{Graph, Label, NodeId};
use rustc_hash::FxHashMap;

/// Per-node neighbor-label summary, split by direction.
#[derive(Debug, Clone, Default)]
pub struct NodeSummary {
    /// `(label, count)` over children (out-neighbors), sorted by label.
    pub out_labels: Vec<(Label, u32)>,
    /// `(label, count)` over parents (in-neighbors), sorted by label.
    pub in_labels: Vec<(Label, u32)>,
    /// Total degree `d(v)`.
    pub degree: u32,
}

impl NodeSummary {
    fn count_in(list: &[(Label, u32)], l: Label) -> u32 {
        match list.binary_search_by_key(&l, |&(x, _)| x) {
            Ok(i) => list[i].1,
            Err(_) => 0,
        }
    }

    /// Occurrences of label `l` among children.
    pub fn out_count(&self, l: Label) -> u32 {
        Self::count_in(&self.out_labels, l)
    }

    /// Occurrences of label `l` among parents.
    pub fn in_count(&self, l: Label) -> u32 {
        Self::count_in(&self.in_labels, l)
    }

    /// Pooled count over `N(v)` — the paper's original `S_l` view.
    pub fn pooled_count(&self, l: Label) -> u32 {
        self.out_count(l) + self.in_count(l)
    }
}

/// The offline index: one [`NodeSummary`] per node.
///
/// Construction is `O(|V| + |E|)`; lookups never touch the graph.
#[derive(Debug, Clone)]
pub struct NeighborIndex {
    summaries: Vec<NodeSummary>,
}

impl NeighborIndex {
    /// Build the index by a single linear traversal of `g`.
    pub fn build(g: &Graph) -> Self {
        let mut summaries = Vec::with_capacity(g.node_count());
        let mut counts: FxHashMap<Label, u32> = FxHashMap::default();
        for v in g.nodes() {
            counts.clear();
            for &w in g.out(v) {
                *counts.entry(g.node_label(w)).or_insert(0) += 1;
            }
            let mut out_labels: Vec<(Label, u32)> = counts.iter().map(|(&l, &c)| (l, c)).collect();
            out_labels.sort_unstable_by_key(|&(l, _)| l);

            counts.clear();
            for &w in g.inn(v) {
                *counts.entry(g.node_label(w)).or_insert(0) += 1;
            }
            let mut in_labels: Vec<(Label, u32)> = counts.iter().map(|(&l, &c)| (l, c)).collect();
            in_labels.sort_unstable_by_key(|&(l, _)| l);

            summaries.push(NodeSummary {
                out_labels,
                in_labels,
                degree: g.deg(v) as u32,
            });
        }
        NeighborIndex { summaries }
    }

    /// The summary for node `v`.
    #[inline]
    pub fn summary(&self, v: NodeId) -> &NodeSummary {
        &self.summaries[v.index()]
    }

    /// Degree `d(v)` without touching the graph.
    #[inline]
    pub fn degree(&self, v: NodeId) -> u32 {
        self.summaries[v.index()].degree
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.summaries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.summaries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::GraphBuilder;

    /// Example 3's shape: Michael with 96 HG children, 3 CC children.
    #[test]
    fn example3_counts() {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let mut hgs = Vec::new();
        for _ in 0..96 {
            hgs.push(b.add_node("HG"));
        }
        let ccs: Vec<_> = (0..3).map(|_| b.add_node("CC")).collect();
        for &h in &hgs {
            b.add_edge(michael, h);
        }
        for &c in &ccs {
            b.add_edge(michael, c);
        }
        let g = b.build();
        let idx = NeighborIndex::build(&g);
        let hg = g.labels().get("HG").unwrap();
        let cc = g.labels().get("CC").unwrap();
        let s = idx.summary(michael);
        assert_eq!(s.out_count(hg), 96);
        assert_eq!(s.out_count(cc), 3);
        assert_eq!(s.pooled_count(hg), 96);
        assert_eq!(idx.degree(michael), 99);
    }

    #[test]
    fn direction_split() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("X");
        let p = b.add_node("P");
        let c = b.add_node("C");
        b.add_edge(p, x); // parent labeled P
        b.add_edge(x, c); // child labeled C
        let g = b.build();
        let idx = NeighborIndex::build(&g);
        let lp = g.labels().get("P").unwrap();
        let lc = g.labels().get("C").unwrap();
        let s = idx.summary(x);
        assert_eq!(s.in_count(lp), 1);
        assert_eq!(s.out_count(lp), 0);
        assert_eq!(s.out_count(lc), 1);
        assert_eq!(s.in_count(lc), 0);
        assert_eq!(s.pooled_count(lp), 1);
        assert_eq!(idx.degree(x), 2);
    }

    #[test]
    fn missing_label_counts_zero() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("X");
        let g = b.build();
        let idx = NeighborIndex::build(&g);
        assert_eq!(idx.summary(x).out_count(Label(7)), 0);
        assert_eq!(idx.summary(x).in_count(Label(7)), 0);
        assert_eq!(idx.degree(x), 0);
    }

    #[test]
    fn len_matches_graph() {
        let mut b = GraphBuilder::new();
        b.add_node("A");
        b.add_node("B");
        let g = b.build();
        let idx = NeighborIndex::build(&g);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn self_loop_counts_both_directions() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("A");
        b.add_edge(x, x);
        let g = b.build();
        let idx = NeighborIndex::build(&g);
        let la = g.labels().get("A").unwrap();
        let s = idx.summary(x);
        assert_eq!(s.out_count(la), 1);
        assert_eq!(s.in_count(la), 1);
        assert_eq!(s.pooled_count(la), 2);
    }
}
