//! Query-answer accuracy: precision, recall, and F-measure (§3).
//!
//! For pattern queries the exact answer `Q(G)` and the approximate answer
//! `Y = Q(G_Q)` are node sets; for reachability, answers over a query *set*
//! are boolean vectors and "correct" counts true positives plus true
//! negatives.

use rbq_graph::NodeId;
use rustc_hash::FxHashSet;

/// Precision / recall / F-measure triple. All components lie in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// `|Y ∩ Q(G)| / |Y|`.
    pub precision: f64,
    /// `|Y ∩ Q(G)| / |Q(G)|`.
    pub recall: f64,
    /// Harmonic mean `2pr/(p+r)` — the paper's `accuracy(Q, G, Y)`.
    pub f1: f64,
}

impl Accuracy {
    /// The all-correct instance.
    pub const PERFECT: Accuracy = Accuracy {
        precision: 1.0,
        recall: 1.0,
        f1: 1.0,
    };

    fn from_pr(precision: f64, recall: f64) -> Self {
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Accuracy {
            precision,
            recall,
            f1,
        }
    }
}

/// Accuracy of an approximate pattern answer `got` against the exact answer
/// `expected` (§3, "Graph patterns").
///
/// Edge cases follow the paper: both empty → accuracy 1; exact empty but
/// approximate not → judged by precision alone (0); approximate empty but
/// exact not → judged by recall alone (0).
///
/// ```
/// use rbq_core::pattern_accuracy;
/// use rbq_graph::NodeId;
/// let exact = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
/// let approx = [NodeId(1), NodeId(2)];
/// let acc = pattern_accuracy(&exact, &approx);
/// assert_eq!(acc.precision, 1.0);
/// assert_eq!(acc.recall, 0.5);
/// assert!((acc.f1 - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn pattern_accuracy(expected: &[NodeId], got: &[NodeId]) -> Accuracy {
    match (expected.is_empty(), got.is_empty()) {
        (true, true) => return Accuracy::PERFECT,
        (true, false) => {
            // No true matches; every returned one is wrong.
            return Accuracy {
                precision: 0.0,
                recall: 1.0,
                f1: 0.0,
            };
        }
        (false, true) => {
            return Accuracy {
                precision: 1.0,
                recall: 0.0,
                f1: 0.0,
            };
        }
        (false, false) => {}
    }
    let exp: FxHashSet<NodeId> = expected.iter().copied().collect();
    let got_set: FxHashSet<NodeId> = got.iter().copied().collect();
    let inter = got_set.iter().filter(|v| exp.contains(v)).count() as f64;
    let precision = inter / got_set.len() as f64;
    let recall = inter / exp.len() as f64;
    Accuracy::from_pr(precision, recall)
}

/// Accuracy of a batch of reachability answers (§3, "Reachability
/// queries"): correct answers are true positives plus true negatives.
///
/// Since resource-bounded reachability algorithms answer *every* query (with
/// `true` or `false`), the returned-answer count equals the query count and
/// precision = recall = fraction-correct, exactly as the paper's definitions
/// reduce to.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn reachability_accuracy(expected: &[bool], got: &[bool]) -> Accuracy {
    assert_eq!(expected.len(), got.len(), "answer vector length mismatch");
    if expected.is_empty() {
        return Accuracy::PERFECT;
    }
    let correct = expected.iter().zip(got).filter(|(e, g)| e == g).count() as f64;
    let frac = correct / expected.len() as f64;
    Accuracy::from_pr(frac, frac)
}

/// Confusion counts for reachability batches, for detailed reporting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Confusion {
    /// Answered true, truly true.
    pub tp: usize,
    /// Answered false, truly false.
    pub tn: usize,
    /// Answered true, truly false.
    pub fp: usize,
    /// Answered false, truly true.
    pub fn_: usize,
}

/// Tally a confusion matrix for boolean answer vectors.
pub fn confusion(expected: &[bool], got: &[bool]) -> Confusion {
    assert_eq!(expected.len(), got.len());
    let mut c = Confusion::default();
    for (&e, &g) in expected.iter().zip(got) {
        match (e, g) {
            (true, true) => c.tp += 1,
            (false, false) => c.tn += 1,
            (false, true) => c.fp += 1,
            (true, false) => c.fn_ += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn perfect_match() {
        let a = pattern_accuracy(&n(&[1, 2, 3]), &n(&[3, 2, 1]));
        assert_eq!(a, Accuracy::PERFECT);
    }

    #[test]
    fn both_empty_is_perfect() {
        assert_eq!(pattern_accuracy(&[], &[]), Accuracy::PERFECT);
    }

    #[test]
    fn spurious_answers_zero_accuracy() {
        let a = pattern_accuracy(&[], &n(&[1]));
        assert_eq!(a.precision, 0.0);
        assert_eq!(a.f1, 0.0);
    }

    #[test]
    fn missing_answers_zero_accuracy() {
        let a = pattern_accuracy(&n(&[1]), &[]);
        assert_eq!(a.recall, 0.0);
        assert_eq!(a.f1, 0.0);
    }

    #[test]
    fn half_precision() {
        // got = {1, 9}; expected = {1, 2}.
        let a = pattern_accuracy(&n(&[1, 2]), &n(&[1, 9]));
        assert!((a.precision - 0.5).abs() < 1e-12);
        assert!((a.recall - 0.5).abs() < 1e-12);
        assert!((a.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        // expected {1,2,3,4}, got {1,2} -> p=1, r=0.5, f1=2/3.
        let a = pattern_accuracy(&n(&[1, 2, 3, 4]), &n(&[1, 2]));
        assert!((a.precision - 1.0).abs() < 1e-12);
        assert!((a.recall - 0.5).abs() < 1e-12);
        assert!((a.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_in_answers_deduplicated() {
        let a = pattern_accuracy(&n(&[1]), &n(&[1, 1, 1]));
        assert_eq!(a, Accuracy::PERFECT);
    }

    #[test]
    fn reach_all_correct() {
        let a = reachability_accuracy(&[true, false, true], &[true, false, true]);
        assert_eq!(a, Accuracy::PERFECT);
    }

    #[test]
    fn reach_fraction_correct() {
        let a = reachability_accuracy(&[true, true, false, false], &[true, false, false, true]);
        assert!((a.f1 - 0.5).abs() < 1e-12);
        assert!((a.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reach_empty_is_perfect() {
        assert_eq!(reachability_accuracy(&[], &[]), Accuracy::PERFECT);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn reach_length_mismatch_panics() {
        let _ = reachability_accuracy(&[true], &[]);
    }

    #[test]
    fn confusion_counts() {
        let c = confusion(&[true, true, false, false], &[true, false, true, false]);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                tn: 1,
                fp: 1,
                fn_: 1
            }
        );
    }
}
