#![warn(missing_docs)]
//! # rbq-core — resource-bounded query answering
//!
//! The primary contribution of *"Querying Big Graphs within Bounded
//! Resources"* (Fan, Wang & Wu, SIGMOD 2014): answer a query `Q` over a big
//! graph `G` by **dynamic reduction** — extract a query-specific fraction
//! `G_Q` with `|G_Q| ≤ α·|G|` while visiting a bounded amount of data, then
//! evaluate `Q(G_Q)` as an approximate (often exact) answer.
//!
//! * [`budget`] — the resource ratio `α`, the visiting coefficient `c`, and
//!   budget/visit accounting;
//! * [`neighbor_index`] — the once-for-all offline auxiliary structure
//!   (per-node degrees and neighbor-label summaries `S_l`, §4.1);
//! * [`guard`] — the guarded conditions `C(v, u)`, dynamic costs `c(v, u)`
//!   and potentials `p(v, u)` for both simulation (§4.1) and subgraph
//!   isomorphism (§4.2) semantics;
//! * [`reduction`] — the `Search`/`Pick` procedures of Fig. 3, generic over
//!   the matching semantics;
//! * [`rbsim`] — **RBSim**: resource-bounded strong simulation (Theorem 3);
//! * [`rbsub`] — **RBSub**: resource-bounded subgraph isomorphism;
//! * [`accuracy`] — the precision / recall / F-measure accuracy metrics of
//!   §3, for pattern answers and reachability query sets.

pub mod accuracy;
pub mod analysis;
pub mod budget;
pub mod guard;
pub mod neighbor_index;
pub mod parallel;
pub mod rbsim;
pub mod rbsim_any;
pub mod rbsub;
pub mod reduction;

pub use accuracy::{confusion, pattern_accuracy, reachability_accuracy, Accuracy, Confusion};
pub use analysis::{eta_profile, min_alpha_for_eta, EtaPoint, ProfiledAlgorithm};
pub use budget::{ResourceBudget, VisitAccount};
pub use neighbor_index::NeighborIndex;
pub use parallel::{
    batch_pattern_queries, try_batch_pattern_queries, BatchAlgorithm, ParallelError,
};
pub use rbsim::{rbsim, rbsim_with, PatternScratch};
pub use rbsim_any::{rbsim_any, rbsim_any_with, AnyAnswer, AnyConfig};
pub use rbsub::{rbsub, rbsub_scratch, rbsub_with};
pub use reduction::{
    search_reduced_graph, search_reduced_graph_scratch, search_reduced_graph_with, PatternAnswer,
    PickPolicy, ReductionConfig, ReductionOutcome, ReductionScratch,
};
