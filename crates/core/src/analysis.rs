//! Empirical accuracy-ratio analysis — the paper's second open topic (§7):
//! *"find, given a resource ratio α, the maximum accuracy ratio η that such
//! algorithms can guarantee."*
//!
//! The theoretical question is open; this module provides the empirical
//! counterpart: sweep a query workload across a grid of α values and
//! report, per α, the accuracy distribution (minimum = the strongest `η`
//! the workload witnesses, mean, and a low quantile). Used to chart
//! accuracy/resource trade-off curves (`examples/eta_curve.rs`).

use crate::accuracy::pattern_accuracy;
use crate::budget::ResourceBudget;
use crate::neighbor_index::NeighborIndex;
use crate::rbsim::rbsim;
use crate::rbsub::rbsub;
use rbq_graph::Graph;
use rbq_pattern::{match_opt, vf2_opt, ResolvedPattern, Vf2Config};

/// Which algorithm the profile evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfiledAlgorithm {
    /// RBSim against the strong-simulation exact answer.
    RbSim,
    /// RBSub against the subgraph-isomorphism exact answer.
    RbSub,
}

/// One row of an η profile: the accuracy distribution at a given α.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtaPoint {
    /// The resource ratio.
    pub alpha: f64,
    /// Absolute budget `⌊α·|G|⌋` used.
    pub budget_units: usize,
    /// Minimum accuracy over the workload — the empirical `η` guarantee.
    pub eta_min: f64,
    /// Mean accuracy.
    pub mean: f64,
    /// 10th-percentile accuracy.
    pub p10: f64,
    /// Fraction of queries answered exactly.
    pub exact_fraction: f64,
}

/// Compute the empirical η profile of `algo` over `queries` for each α in
/// `alphas`.
///
/// Exact answers are computed once per query with the unbounded baseline
/// (`MatchOpt` / `VF2OPT`); each α point then runs the bounded algorithm
/// per query and aggregates F-measure accuracies.
pub fn eta_profile(
    g: &Graph,
    idx: &NeighborIndex,
    queries: &[ResolvedPattern],
    alphas: &[f64],
    algo: ProfiledAlgorithm,
) -> Vec<EtaPoint> {
    assert!(!queries.is_empty(), "eta_profile needs at least one query");
    let exact: Vec<Vec<rbq_graph::NodeId>> = queries
        .iter()
        .map(|q| match algo {
            ProfiledAlgorithm::RbSim => match_opt(q, g),
            ProfiledAlgorithm::RbSub => vf2_opt(q, g, Vf2Config::default()).output_matches,
        })
        .collect();

    alphas
        .iter()
        .map(|&alpha| {
            let budget = ResourceBudget::from_ratio(g, alpha);
            let mut accs: Vec<f64> = queries
                .iter()
                .zip(&exact)
                .map(|(q, ex)| {
                    let got = match algo {
                        ProfiledAlgorithm::RbSim => rbsim(g, idx, q, &budget).matches,
                        ProfiledAlgorithm::RbSub => rbsub(g, idx, q, &budget).matches,
                    };
                    pattern_accuracy(ex, &got).f1
                })
                .collect();
            accs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let n = accs.len();
            EtaPoint {
                alpha,
                budget_units: budget.max_units,
                eta_min: accs[0],
                mean: accs.iter().sum::<f64>() / n as f64,
                p10: accs[(n - 1) / 10],
                exact_fraction: accs.iter().filter(|&&a| a == 1.0).count() as f64 / n as f64,
            }
        })
        .collect()
}

/// The smallest α in `profile` whose minimum accuracy reaches `eta`, if
/// any — an empirical answer to "what resources buy accuracy η?".
pub fn min_alpha_for_eta(profile: &[EtaPoint], eta: f64) -> Option<f64> {
    profile
        .iter()
        .filter(|p| p.eta_min >= eta)
        .map(|p| p.alpha)
        .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_workload::{extract_pattern, yahoo_like, PatternSpec};

    fn setup() -> (Graph, NeighborIndex, Vec<ResolvedPattern>) {
        // Small graph: these tests exercise aggregation logic, not scale
        // (the bench harness covers scale).
        let g = yahoo_like(800, 9);
        let idx = NeighborIndex::build(&g);
        let queries: Vec<ResolvedPattern> = (0..200u64)
            .filter_map(|s| extract_pattern(&g, PatternSpec::new(4, 8), s))
            .filter_map(|p| p.resolve(&g).ok())
            .take(3)
            .collect();
        (g, idx, queries)
    }

    #[test]
    fn profile_is_monotone_at_extremes() {
        let (g, idx, queries) = setup();
        if queries.is_empty() {
            return;
        }
        let profile = eta_profile(
            &g,
            &idx,
            &queries,
            &[0.0005, 0.01, 1.0],
            ProfiledAlgorithm::RbSim,
        );
        assert_eq!(profile.len(), 3);
        // Full budget is exact on every query.
        let full = profile.last().unwrap();
        assert_eq!(full.eta_min, 1.0);
        assert_eq!(full.exact_fraction, 1.0);
        // Accuracy at full budget >= at the smallest.
        assert!(full.mean >= profile[0].mean - 1e-12);
    }

    #[test]
    fn eta_point_fields_consistent() {
        let (g, idx, queries) = setup();
        if queries.is_empty() {
            return;
        }
        let profile = eta_profile(&g, &idx, &queries, &[0.05], ProfiledAlgorithm::RbSim);
        let p = &profile[0];
        assert!(p.eta_min <= p.p10 + 1e-12);
        assert!(p.p10 <= 1.0 && p.eta_min >= 0.0);
        assert!(p.mean >= p.eta_min && p.mean <= 1.0);
        assert!(p.budget_units > 0);
    }

    #[test]
    fn min_alpha_for_eta_picks_smallest() {
        let pts = vec![
            EtaPoint {
                alpha: 0.001,
                budget_units: 10,
                eta_min: 0.5,
                mean: 0.8,
                p10: 0.6,
                exact_fraction: 0.2,
            },
            EtaPoint {
                alpha: 0.01,
                budget_units: 100,
                eta_min: 0.9,
                mean: 0.95,
                p10: 0.92,
                exact_fraction: 0.7,
            },
            EtaPoint {
                alpha: 0.1,
                budget_units: 1000,
                eta_min: 1.0,
                mean: 1.0,
                p10: 1.0,
                exact_fraction: 1.0,
            },
        ];
        assert_eq!(min_alpha_for_eta(&pts, 0.9), Some(0.01));
        assert_eq!(min_alpha_for_eta(&pts, 1.0), Some(0.1));
        assert_eq!(min_alpha_for_eta(&pts, 0.4), Some(0.001));
        let too_high = min_alpha_for_eta(&pts[..2], 1.0);
        assert_eq!(too_high, None);
    }

    #[test]
    fn rbsub_profile_works() {
        let (g, idx, queries) = setup();
        if queries.is_empty() {
            return;
        }
        let profile = eta_profile(&g, &idx, &queries, &[1.0], ProfiledAlgorithm::RbSub);
        assert_eq!(profile[0].eta_min, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_workload_panics() {
        let g = yahoo_like(100, 1);
        let idx = NeighborIndex::build(&g);
        let _ = eta_profile(&g, &idx, &[], &[0.1], ProfiledAlgorithm::RbSim);
    }
}
