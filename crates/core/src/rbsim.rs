//! **RBSim** — resource-bounded strong simulation (§4.1, Fig. 3).
//!
//! Given a simulation query `Q`, a graph `G`, and a resource ratio `α`,
//! RBSim fetches a subgraph `G_Q` of `G_dQ(v_p)` with `|G_Q| ≤ α·|G|` via
//! [`crate::reduction::search_reduced_graph`], then evaluates strong
//! simulation on `G_Q` and returns the output node's matches — the
//! approximate answer `Q(G_Q)` of Theorem 3.

use crate::budget::ResourceBudget;
use crate::guard::Semantics;
use crate::neighbor_index::NeighborIndex;
use crate::reduction::{
    search_reduced_graph_scratch, PatternAnswer, ReductionConfig, ReductionScratch,
};
use rbq_graph::{Graph, GraphView};
use rbq_pattern::{strong_simulation_on_view_with, ResolvedPattern, StrongSimScratch};

/// Reusable state for a full bounded pattern evaluation: the reduction's
/// [`ReductionScratch`] plus the evaluation's
/// [`rbq_pattern::StrongSimScratch`]. One per serving worker; with warm
/// buffers a repeat [`rbsim_with`] call performs **zero** heap allocations
/// (pinned by the `alloc_free` integration test).
#[derive(Debug, Default)]
pub struct PatternScratch {
    /// `Search`/`Pick` state.
    pub reduction: ReductionScratch,
    /// `Q(G_Q)` evaluation state.
    pub eval: StrongSimScratch,
}

impl PatternScratch {
    /// Fresh scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or clear) the deadline for every subsequent evaluation through
    /// this scratch — forwarded to the reduction's `Search`/`Pick` loop and
    /// the strong-simulation evaluation (ball BFS + dual-sim fixpoint).
    /// VF2's deadline travels separately in [`rbq_pattern::Vf2Config`].
    pub fn set_cancel(&mut self, token: rbq_graph::CancelToken) {
        self.reduction.set_cancel(token);
        self.eval.set_cancel(token);
    }
}

/// Run RBSim: dynamic reduction followed by strong simulation on `G_Q`.
///
/// The `idx` is the once-for-all offline structure ([`NeighborIndex`]);
/// building it is *not* charged against the online budget (§3 "Remarks").
pub fn rbsim(
    g: &Graph,
    idx: &NeighborIndex,
    q: &ResolvedPattern,
    budget: &ResourceBudget,
) -> PatternAnswer {
    let mut scratch = PatternScratch::new();
    let mut out = PatternAnswer::default();
    rbsim_with(g, idx, q, budget, &mut scratch, &mut out);
    out
}

/// [`rbsim`] through a reusable [`PatternScratch`], writing the answer into
/// `out` (its `matches` buffer is recycled). Identical answers to the
/// one-shot entry point; allocation-free once the scratch is warm.
pub fn rbsim_with(
    g: &Graph,
    idx: &NeighborIndex,
    q: &ResolvedPattern,
    budget: &ResourceBudget,
    scratch: &mut PatternScratch,
    out: &mut PatternAnswer,
) {
    let red = search_reduced_graph_scratch(
        g,
        idx,
        q,
        budget,
        Semantics::Simulation,
        ReductionConfig::default(),
        &mut scratch.reduction,
    );
    strong_simulation_on_view_with(q, &red.gq, &mut scratch.eval, &mut out.matches);
    out.gq_size = red.gq.size();
    out.gq_nodes = red.gq.num_nodes();
    out.visits = red.visits;
    out.hit_budget = red.hit_budget;
    out.final_b = red.final_b;
    out.rounds = red.rounds;
    scratch.reduction.recycle(red.gq);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::pattern_accuracy;
    use rbq_graph::{GraphBuilder, NodeId};
    use rbq_pattern::match_opt;
    use rbq_pattern::pattern::fig1_pattern;

    fn example_graph(m: usize, n: usize) -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let mut hgs = Vec::new();
        for _ in 0..m {
            hgs.push(b.add_node("HG"));
        }
        let cc1 = b.add_node("CC");
        let cc2 = b.add_node("CC");
        let cc3 = b.add_node("CC");
        let mut cls = Vec::new();
        for _ in 0..n {
            cls.push(b.add_node("CL"));
        }
        for &h in &hgs {
            b.add_edge(michael, h);
        }
        b.add_edge(michael, cc1);
        b.add_edge(michael, cc3);
        b.add_edge(cc2, cls[0]);
        let cln_1 = cls[n - 2];
        let cln = cls[n - 1];
        b.add_edge(cc1, cln_1);
        b.add_edge(cc1, cln);
        b.add_edge(cc3, cln);
        let hgm = hgs[m - 1];
        b.add_edge(hgm, cln_1);
        b.add_edge(hgm, cln);
        (b.build(), vec![cln_1, cln])
    }

    #[test]
    fn example2_exact_at_sixteen_units() {
        // Example 2: with a 16-unit budget RBSim finds Q(G_Q) = {cl_{n-1},
        // cl_n} at 100% accuracy.
        let (g, answers) = example_graph(10, 20);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let budget = ResourceBudget::from_units(&g, 16);
        let ans = rbsim(&g, &idx, &q, &budget);
        assert_eq!(ans.matches, answers);
        assert!(ans.gq_size <= 16);
        let exact = match_opt(&q, &g);
        let acc = pattern_accuracy(&exact, &ans.matches);
        assert_eq!(acc.f1, 1.0);
    }

    #[test]
    fn accuracy_monotone_in_budget() {
        let (g, _) = example_graph(40, 60);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let exact = match_opt(&q, &g);
        let mut last_f1 = -1.0f64;
        let mut f1s = Vec::new();
        for units in [4usize, 8, 16, 64, 256] {
            let budget = ResourceBudget::from_units(&g, units);
            let ans = rbsim(&g, &idx, &q, &budget);
            let acc = pattern_accuracy(&exact, &ans.matches);
            f1s.push(acc.f1);
            last_f1 = acc.f1;
        }
        // Largest budget must reach exactness on this localized query;
        // intermediate budgets may fluctuate but the trend ends at 1.
        assert_eq!(last_f1, 1.0, "f1 trajectory {f1s:?}");
    }

    #[test]
    fn answers_subset_of_exact_or_empty_under_tiny_budget() {
        let (g, _) = example_graph(10, 20);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let exact = match_opt(&q, &g);
        let budget = ResourceBudget::from_units(&g, 3);
        let ans = rbsim(&g, &idx, &q, &budget);
        // Strong simulation on an induced subgraph can only under-report
        // (every ball relation embeds in the full graph's).
        for v in &ans.matches {
            assert!(exact.contains(v), "spurious match {v:?}");
        }
    }

    #[test]
    fn theorem3b_large_alpha_gives_exact() {
        // When α exceeds the Theorem 3(b) bound, 100% accuracy is
        // guaranteed. With the full graph budget, RBSim must be exact.
        let (g, _) = example_graph(8, 12);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let exact = match_opt(&q, &g);
        let budget = ResourceBudget::from_ratio(&g, 1.0);
        let ans = rbsim(&g, &idx, &q, &budget);
        assert_eq!(ans.matches, exact);
    }

    #[test]
    fn no_match_graph_returns_empty() {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let hg = b.add_node("HG");
        b.add_edge(michael, hg);
        b.intern_label("CC");
        b.intern_label("CL");
        let g = b.build();
        let idx = NeighborIndex::build(&g);
        // Pattern resolution fails (labels CC/CL interned but no nodes),
        // so construct the query against a graph where labels exist but the
        // topology doesn't match.
        let mut b2 = GraphBuilder::new();
        let michael2 = b2.add_node("Michael");
        let hg2 = b2.add_node("HG");
        let cc2 = b2.add_node("CC");
        let cl2 = b2.add_node("CL");
        b2.add_edge(michael2, hg2);
        b2.add_edge(cl2, cc2); // wrong direction everywhere
        let g2 = b2.build();
        let idx2 = NeighborIndex::build(&g2);
        let q = fig1_pattern().resolve(&g2).unwrap();
        let budget = ResourceBudget::from_ratio(&g2, 1.0);
        let ans = rbsim(&g2, &idx2, &q, &budget);
        assert!(ans.matches.is_empty());
        let _ = (g, idx, michael);
    }

    #[test]
    fn reports_visits_and_rounds() {
        let (g, _) = example_graph(10, 20);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let budget = ResourceBudget::from_units(&g, 16);
        let ans = rbsim(&g, &idx, &q, &budget);
        assert!(ans.visits.total() > 0);
        assert!(ans.rounds >= 1);
        assert!(ans.final_b >= 2);
        assert!(ans.gq_nodes <= ans.gq_size);
    }
}
