//! The dynamic-reduction procedures `Search` and `Pick` (Fig. 3).
//!
//! `Search` performs a controlled traversal of `G` from the personalized
//! match `v_p`, guided by the query: it pops `(query node, data node)` pairs
//! off a stack, adds popped data nodes (with their induced edges) to `G_Q`,
//! and for each query edge incident to the popped query node asks `Pick`
//! for the best new candidates among the data node's neighbors. `Pick`
//! filters by the guarded condition and ranks by the weight
//! `p(v,u)/(c(v,u)+1)`, returning at most `b` candidates — the *selection
//! bound* that keeps dense regions from monopolizing `G_Q`. When the stack
//! drains but progress was made, `b` is incremented and the traversal
//! restarts from `(u_p, v_p)` (Fig. 3, lines 11–12) so every query node
//! keeps a fair chance of finding matches.
//!
//! Termination: `|G_Q|` reaching the budget `α·|G|`, exhausting candidates,
//! or (when configured) blowing the visit cap.
//!
//! ## Scratch threading
//!
//! All of `Search`'s bookkeeping lives in a reusable [`ReductionScratch`]:
//! the `G_Q` buffers ([`rbq_graph::SubgraphScratch`]), the traversal stack,
//! epoch-stamped flat `(query node, data node)` stamp arrays replacing the
//! former `in_stack`/`expanded` hash sets, `Pick`'s scored-candidate
//! buffer, and per-query memos of the guard `C(v, u)` and potential
//! `p(v, u)` (both depend only on the pair, never on `G_Q`, so re-seen
//! candidates skip the summary probes the Weighted policy used to repeat
//! every round). [`search_reduced_graph_scratch`] threads the scratch; the
//! original entry points wrap a fresh one, so results are identical either
//! way (see the scratch-differential property tests).

use crate::budget::{ResourceBudget, VisitAccount};
use crate::guard::{GuardCtx, Semantics};
use crate::neighbor_index::NeighborIndex;
use rbq_graph::{DynamicSubgraph, Graph, GraphView, Label, NodeId, SubgraphScratch};
use rbq_pattern::{PNode, ResolvedPattern};

/// Result of a resource-bounded pattern algorithm (RBSim / RBSub).
#[derive(Debug, Clone, Default)]
pub struct PatternAnswer {
    /// Sorted matches of the output node in `G_Q` — the approximate answer
    /// `Q(G_Q)`.
    pub matches: Vec<NodeId>,
    /// Size `|G_Q|` (nodes + edges) actually fetched.
    pub gq_size: usize,
    /// Nodes in `G_Q`.
    pub gq_nodes: usize,
    /// Data visited during reduction.
    pub visits: VisitAccount,
    /// Whether reduction stopped because the size budget was reached.
    pub hit_budget: bool,
    /// Final selection bound `b`.
    pub final_b: u32,
    /// Number of traversal rounds (restarts + 1).
    pub rounds: u32,
}

/// Outcome of `Search` alone: the reduced graph plus accounting.
pub struct ReductionOutcome<'g> {
    /// The reduced graph `G_Q` (induced subgraph grown node by node).
    pub gq: DynamicSubgraph<'g>,
    /// Data visited.
    pub visits: VisitAccount,
    /// Whether the size budget stopped the search.
    pub hit_budget: bool,
    /// Final selection bound `b`.
    pub final_b: u32,
    /// Traversal rounds executed.
    pub rounds: u32,
}

/// Initial selection bound (Fig. 3 line 1).
const INITIAL_B: u32 = 2;

/// How `Pick` orders candidates — the paper's weight ranking, plus
/// degraded policies for the ablation study (DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PickPolicy {
    /// Rank by the estimated weight `p/(c+1)` (§4.1) — the paper's policy.
    #[default]
    Weighted,
    /// First-come order (adjacency order), no scoring.
    Fifo,
    /// Deterministic pseudo-random order (hash of node id).
    Random,
}

/// Knobs for `Search`, exposing the design choices the ablation benches
/// vary. [`ReductionConfig::default`] reproduces Fig. 3 exactly.
#[derive(Debug, Clone, Copy)]
pub struct ReductionConfig {
    /// Initial selection bound `b` (Fig. 3 line 1: 2).
    pub initial_b: u32,
    /// Whether to widen `b` and restart when progress stalls (Fig. 3
    /// lines 11-12). With `false`, the traversal is single-round.
    pub adaptive_b: bool,
    /// Candidate ordering inside `Pick`.
    pub pick_policy: PickPolicy,
}

impl Default for ReductionConfig {
    fn default() -> Self {
        ReductionConfig {
            initial_b: INITIAL_B,
            adaptive_b: true,
            pick_policy: PickPolicy::Weighted,
        }
    }
}

/// Epoch-stamped flat stamp arrays keyed by `(query node, data node)` —
/// `|V_p|·|V|` u32 slots per array, reused across rounds and queries.
///
/// `in_stack`/`expanded` use the per-round epoch (`Search` clears both at
/// every beam restart; here clearing is one counter bump). The guard and
/// potential memos use the per-query epoch: both values depend only on the
/// pair, so within one query every re-seen candidate is a stamp probe
/// instead of an index-summary walk.
#[derive(Debug, Clone, Default)]
struct PairScratch {
    np: usize,
    nv: usize,
    /// Epoch for `in_stack`/`expanded`; bumped per traversal round.
    round: u32,
    /// Epoch for the guard/potential memos; bumped per query. Kept below
    /// `u32::MAX >> 1` so `(query << 1) | bit` packing cannot overflow.
    query: u32,
    in_stack: Vec<u32>,
    expanded: Vec<u32>,
    /// `(query << 1) | passed` — one array holds both stamp and verdict.
    guard: Vec<u32>,
    pot_stamp: Vec<u32>,
    pot_val: Vec<u32>,
}

/// Size `buf` to at least `len` slots that all read as zero to epoch
/// probes. Growth goes through a fresh `vec![0; len]`: that is `calloc`,
/// and the OS zeroes pages lazily — a budget-bounded search over a huge
/// graph only ever faults in the pages it actually stamps, so the array's
/// *touched* footprint stays proportional to the work done, not to
/// `|V_p|·|V|`. Discarding the old contents is safe at query boundaries:
/// every stamp is epoch-gated, and zero never matches a live epoch.
fn zeroed(buf: &mut Vec<u32>, len: usize) {
    if buf.len() < len {
        *buf = vec![0u32; len];
    }
}

impl PairScratch {
    fn begin_query(&mut self, np: usize, nv: usize) {
        let len = np * nv;
        if nv != self.nv {
            // The data-graph node count is the pair-index stride: under a
            // new stride every stored stamp would alias some other pair.
            // Restart the epochs at zero and make all slots read as
            // unstamped (force fresh arrays so stale non-zero stamps from
            // the old stride cannot survive a same-length resize).
            self.nv = nv;
            self.round = 0;
            self.query = 0;
            for buf in [
                &mut self.in_stack,
                &mut self.expanded,
                &mut self.guard,
                &mut self.pot_stamp,
                &mut self.pot_val,
            ] {
                buf.clear();
                zeroed(buf, len);
            }
        } else if len > self.in_stack.len() {
            // A larger pattern on the same graph only needs more slots:
            // the stride is unchanged, existing stamps stay epoch-stale
            // (never read as live), and the new tail reads as unstamped.
            // Smaller patterns reuse the high-water arrays as-is — mixed
            // pattern sizes in one serving loop never trigger a refill.
            for buf in [
                &mut self.in_stack,
                &mut self.expanded,
                &mut self.guard,
                &mut self.pot_stamp,
                &mut self.pot_val,
            ] {
                zeroed(buf, len);
            }
        }
        self.np = np;
        if self.query >= (u32::MAX >> 1) - 1 {
            self.guard.fill(0);
            self.pot_stamp.fill(0);
            self.query = 0;
        }
        self.query += 1;
    }

    fn begin_round(&mut self) {
        if self.round == u32::MAX {
            self.in_stack.fill(0);
            self.expanded.fill(0);
            self.round = 0;
        }
        self.round += 1;
    }

    #[inline]
    fn idx(&self, u: PNode, v: NodeId) -> usize {
        u.index() * self.nv + v.index()
    }

    #[inline]
    fn in_stack_contains(&self, u: PNode, v: NodeId) -> bool {
        self.in_stack[self.idx(u, v)] == self.round
    }

    #[inline]
    fn in_stack_insert(&mut self, u: PNode, v: NodeId) {
        let i = self.idx(u, v);
        self.in_stack[i] = self.round;
    }

    #[inline]
    fn in_stack_remove(&mut self, u: PNode, v: NodeId) {
        // `round ≥ 1` always, so 0 can never read as present.
        let i = self.idx(u, v);
        self.in_stack[i] = 0;
    }

    #[inline]
    fn expanded_contains(&self, u: PNode, v: NodeId) -> bool {
        self.expanded[self.idx(u, v)] == self.round
    }

    /// Mark `(u, v)` expanded; `true` if it was not already.
    #[inline]
    fn expanded_insert(&mut self, u: PNode, v: NodeId) -> bool {
        let i = self.idx(u, v);
        if self.expanded[i] == self.round {
            false
        } else {
            self.expanded[i] = self.round;
            true
        }
    }

    #[inline]
    fn guard_get(&self, u: PNode, v: NodeId) -> Option<bool> {
        let s = self.guard[self.idx(u, v)];
        (s >> 1 == self.query).then_some(s & 1 == 1)
    }

    #[inline]
    fn guard_set(&mut self, u: PNode, v: NodeId, pass: bool) {
        let i = self.idx(u, v);
        self.guard[i] = (self.query << 1) | pass as u32;
    }

    #[inline]
    fn pot_get(&self, u: PNode, v: NodeId) -> Option<u32> {
        let i = self.idx(u, v);
        (self.pot_stamp[i] == self.query).then(|| self.pot_val[i])
    }

    #[inline]
    fn pot_set(&mut self, u: PNode, v: NodeId, val: u32) {
        let i = self.idx(u, v);
        self.pot_stamp[i] = self.query;
        self.pot_val[i] = val;
    }
}

/// Reusable state for the whole `Search`/`Pick` procedure — thread one
/// through [`search_reduced_graph_scratch`] to make repeated reductions
/// allocation-free in steady state. Results are identical to the one-shot
/// entry points for any scratch history.
#[derive(Debug, Clone, Default)]
pub struct ReductionScratch {
    /// `G_Q` buffers; recovered via [`ReductionScratch::recycle`].
    subgraph: SubgraphScratch,
    stack: Vec<(PNode, NodeId)>,
    pairs: PairScratch,
    scored: Vec<(f64, u32, NodeId)>,
    picked: Vec<NodeId>,
    /// Per-query-node deduplicated child / parent label sets (the
    /// potential's summary lookups).
    uniq_out: Vec<Vec<Label>>,
    uniq_in: Vec<Vec<Label>>,
    cost_out: Vec<(Label, u32)>,
    cost_in: Vec<(Label, u32)>,
    /// Deadline ticker checked once per popped `(u, v)` pair in the
    /// `Search`/`Pick` worklist loop.
    cancel: rbq_graph::CancelTicker,
}

impl ReductionScratch {
    /// Fresh scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or clear) the deadline checked by every subsequent reduction
    /// through this scratch. On expiry the search unwinds with a
    /// [`rbq_graph::CancelPanic`] tagged `"reduction.pick"`.
    pub fn set_cancel(&mut self, token: rbq_graph::CancelToken) {
        self.cancel.arm(token);
    }

    /// Return a finished `G_Q`'s buffers to the scratch so the next
    /// reduction reuses them. Skipping this is sound — the next search
    /// simply starts from cold subgraph buffers.
    pub fn recycle(&mut self, gq: DynamicSubgraph<'_>) {
        self.subgraph = gq.into_scratch();
    }
}

/// `Search` (Fig. 3): fetch a subgraph `G_Q` with `|G_Q| ≤ budget.max_units`
/// by guided traversal from `v_p`.
pub fn search_reduced_graph<'g>(
    g: &'g Graph,
    idx: &NeighborIndex,
    q: &ResolvedPattern,
    budget: &ResourceBudget,
    semantics: Semantics,
) -> ReductionOutcome<'g> {
    search_reduced_graph_with(g, idx, q, budget, semantics, ReductionConfig::default())
}

/// [`search_reduced_graph`] with explicit [`ReductionConfig`].
pub fn search_reduced_graph_with<'g>(
    g: &'g Graph,
    idx: &NeighborIndex,
    q: &ResolvedPattern,
    budget: &ResourceBudget,
    semantics: Semantics,
    config: ReductionConfig,
) -> ReductionOutcome<'g> {
    let mut scratch = ReductionScratch::new();
    search_reduced_graph_scratch(g, idx, q, budget, semantics, config, &mut scratch)
}

/// [`search_reduced_graph_with`] through a reusable [`ReductionScratch`].
///
/// The returned [`ReductionOutcome::gq`] owns the scratch's subgraph
/// buffers; hand it back with [`ReductionScratch::recycle`] once evaluated
/// so the next query starts warm.
// rbq-lint: hot
pub fn search_reduced_graph_scratch<'g>(
    g: &'g Graph,
    idx: &NeighborIndex,
    q: &ResolvedPattern,
    budget: &ResourceBudget,
    semantics: Semantics,
    config: ReductionConfig,
    scratch: &mut ReductionScratch,
) -> ReductionOutcome<'g> {
    rbq_graph::faultpoint::fire("reduction.pick");
    // Copied out (tickers are `Copy`) so the field can ride the `..` of the
    // destructure below.
    let mut cancel = scratch.cancel;
    let ctx = GuardCtx::new(g, idx, q, semantics);
    let mut gq = std::mem::take(&mut scratch.subgraph).begin(g);
    let mut visits = VisitAccount::default();
    let mut b = config.initial_b;
    let mut rounds = 0u32;
    let mut hit_budget = false;

    if budget.max_units == 0 {
        return ReductionOutcome {
            gq,
            visits,
            hit_budget: true,
            final_b: b,
            rounds,
        };
    }

    let p = q.pattern();
    let ReductionScratch {
        stack,
        pairs,
        scored,
        picked,
        uniq_out,
        uniq_in,
        cost_out,
        cost_in,
        ..
    } = scratch;
    pairs.begin_query(p.node_count(), g.node_count());
    // The potential's deduplicated query-neighbor label sets depend only on
    // the query: computed once here, not once per scored candidate.
    if uniq_out.len() < p.node_count() {
        // rbq-lint: allow(hot-path-alloc, "cold first-use growth of the scratch label pools; steady state re-enters the branch only for a larger pattern")
        uniq_out.resize_with(p.node_count(), Vec::new);
        // rbq-lint: allow(hot-path-alloc, "cold first-use growth, same as the line above")
        uniq_in.resize_with(p.node_count(), Vec::new);
    }
    for u in p.nodes() {
        let lo = &mut uniq_out[u.index()];
        lo.clear();
        lo.extend(p.out(u).iter().map(|&uq| q.label(uq)));
        lo.sort_unstable();
        lo.dedup();
        let li = &mut uniq_in[u.index()];
        li.clear();
        li.extend(p.inn(u).iter().map(|&uq| q.label(uq)));
        li.sort_unstable();
        li.dedup();
    }

    'rounds: loop {
        rounds += 1;
        let mut changed = false;
        pairs.begin_round();
        stack.clear();
        stack.push((q.up(), q.vp()));
        pairs.in_stack_insert(q.up(), q.vp());

        while let Some((u, v)) = stack.pop() {
            cancel.tick("reduction.pick");
            pairs.in_stack_remove(u, v);

            // Line 5: add v to G_Q if new, charging its node + induced edges
            // against the budget — one adjacency scan probes and inserts.
            if !gq.contains(v) {
                visits.edges(g.out(v).len());
                visits.edges(g.inn(v).len());
                let remaining = budget.max_units - gq.size();
                if gq.try_add_node(v, remaining).is_none() {
                    hit_budget = true;
                    break 'rounds;
                }
                visits.node();
                changed = true;
            }

            // Each (u, v) pair expands its query edges once per round
            // (lines 8–10).
            if !pairs.expanded_insert(u, v) {
                continue;
            }

            // Children edges (u, u') then parent edges (u', u). Candidates
            // ranked best-last so the best ends on top of the stack.
            for &uc in p.out(u) {
                pick(
                    &ctx,
                    uc,
                    v,
                    true,
                    &gq,
                    pairs,
                    b,
                    config.pick_policy,
                    &mut visits,
                    scored,
                    picked,
                    uniq_out,
                    uniq_in,
                    cost_out,
                    cost_in,
                );
                for k in (0..picked.len()).rev() {
                    let v2 = picked[k];
                    stack.push((uc, v2));
                    pairs.in_stack_insert(uc, v2);
                }
                // Continue the traversal through neighbors already in G_Q:
                // they consume no candidate slot and no budget, but their
                // onward edges must be re-expanded so that beam restarts
                // (with larger b) can reach deeper unexplored regions.
                for &v2 in ctx.g.out(v) {
                    if gq.contains(v2)
                        && !pairs.expanded_contains(uc, v2)
                        && !pairs.in_stack_contains(uc, v2)
                        && guard_memo(&ctx, pairs, v2, uc, &mut visits)
                    {
                        stack.push((uc, v2));
                        pairs.in_stack_insert(uc, v2);
                    }
                }
            }
            for &up_ in p.inn(u) {
                pick(
                    &ctx,
                    up_,
                    v,
                    false,
                    &gq,
                    pairs,
                    b,
                    config.pick_policy,
                    &mut visits,
                    scored,
                    picked,
                    uniq_out,
                    uniq_in,
                    cost_out,
                    cost_in,
                );
                for k in (0..picked.len()).rev() {
                    let v2 = picked[k];
                    stack.push((up_, v2));
                    pairs.in_stack_insert(up_, v2);
                }
                for &v2 in ctx.g.inn(v) {
                    if gq.contains(v2)
                        && !pairs.expanded_contains(up_, v2)
                        && !pairs.in_stack_contains(up_, v2)
                        && guard_memo(&ctx, pairs, v2, up_, &mut visits)
                    {
                        stack.push((up_, v2));
                        pairs.in_stack_insert(up_, v2);
                    }
                }
            }

            if visits.over_cap(budget) {
                break 'rounds;
            }
        }

        // Lines 11-13: widen the beam and retry, or terminate.
        if config.adaptive_b && changed && gq.size() < budget.max_units {
            b += 1;
        } else {
            break;
        }
    }

    ReductionOutcome {
        gq,
        visits,
        hit_budget,
        final_b: b,
        rounds,
    }
}

/// The guard `C(v, u)` through the per-query memo: evaluated (and charged
/// to `visits`) at most once per pair.
fn guard_memo(
    ctx: &GuardCtx<'_>,
    pairs: &mut PairScratch,
    v: NodeId,
    u: PNode,
    visits: &mut VisitAccount,
) -> bool {
    if let Some(hit) = pairs.guard_get(u, v) {
        return hit;
    }
    let pass = ctx.guard(v, u, visits);
    pairs.guard_set(u, v, pass);
    pass
}

/// `Pick`: the top-`b` new candidates for query node `u2` among the
/// neighbors of `v` in the given direction (`out = true` follows the query
/// edge `(u, u2)`, i.e. children of `v`), ranked by weight `p/(c+1)`,
/// written best-first into `picked`.
///
/// Nodes already in `G_Q` or already on the stack for the same query node
/// are skipped; candidates failing the guarded condition are filtered. The
/// potential `p(v2, u2)` is served from the per-query memo (it never
/// depends on `G_Q`); the cost is recomputed, as it must be.
#[allow(clippy::too_many_arguments)]
fn pick(
    ctx: &GuardCtx<'_>,
    u2: PNode,
    v: NodeId,
    out: bool,
    gq: &DynamicSubgraph<'_>,
    pairs: &mut PairScratch,
    b: u32,
    policy: PickPolicy,
    visits: &mut VisitAccount,
    scored: &mut Vec<(f64, u32, NodeId)>,
    picked: &mut Vec<NodeId>,
    uniq_out: &[Vec<Label>],
    uniq_in: &[Vec<Label>],
    cost_out: &mut Vec<(Label, u32)>,
    cost_in: &mut Vec<(Label, u32)>,
) {
    let neighbors = if out { ctx.g.out(v) } else { ctx.g.inn(v) };
    visits.edges(neighbors.len());

    scored.clear();
    for &v2 in neighbors {
        if gq.contains(v2) || pairs.in_stack_contains(u2, v2) {
            continue;
        }
        if !guard_memo(ctx, pairs, v2, u2, visits) {
            continue;
        }
        let key = match policy {
            PickPolicy::Weighted => {
                let pot = match pairs.pot_get(u2, v2) {
                    Some(p) => p,
                    None => {
                        let p = ctx.potential_with(
                            v2,
                            u2,
                            &uniq_out[u2.index()],
                            &uniq_in[u2.index()],
                            visits,
                        );
                        pairs.pot_set(u2, v2, p);
                        p
                    }
                };
                let c = ctx.cost_with(v2, u2, gq, visits, cost_out, cost_in);
                pot as f64 / (c as f64 + 1.0)
            }
            PickPolicy::Fifo => 0.0,
            PickPolicy::Random => {
                // Deterministic hash-based score; no weight computation.
                let mut x = (v2.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 31;
                (x % 1_000_003) as f64
            }
        };
        // Secondary key: degree (descending) — §4.2 favors high-degree
        // candidates for isomorphism; harmless determinism for simulation.
        scored.push((key, ctx.idx.degree(v2), v2));
    }
    match policy {
        PickPolicy::Fifo => {} // keep adjacency order
        _ => {
            // Max-heap semantics: sort by weight desc, degree desc, id asc.
            scored.sort_unstable_by(|a, b_| {
                b_.0.partial_cmp(&a.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b_.1.cmp(&a.1))
                    .then(a.2.cmp(&b_.2))
            });
        }
    }
    scored.truncate(b as usize);
    picked.clear();
    picked.extend(scored.iter().map(|&(_, _, v2)| v2));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::GraphBuilder;
    use rbq_pattern::pattern::fig1_pattern;

    /// Fig. 1 graph at the scale of Example 2/4: Michael, m hiking-group
    /// nodes (only `hgm` connected onward to CLs), cc1..cc3, n cycling
    /// lovers with only the last two fully connected.
    fn example_graph(m: usize, n: usize) -> (Graph, NodeId, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let mut hgs = Vec::new();
        for _ in 0..m {
            hgs.push(b.add_node("HG"));
        }
        let cc1 = b.add_node("CC");
        let cc2 = b.add_node("CC");
        let cc3 = b.add_node("CC");
        let mut cls = Vec::new();
        for _ in 0..n {
            cls.push(b.add_node("CL"));
        }
        for &h in &hgs {
            b.add_edge(michael, h);
        }
        b.add_edge(michael, cc1);
        b.add_edge(michael, cc3);
        let cln_1 = cls[n - 2];
        let cln = cls[n - 1];
        b.add_edge(cc2, cls[0]);
        b.add_edge(cc1, cln_1);
        b.add_edge(cc1, cln);
        b.add_edge(cc3, cln);
        let hgm = hgs[m - 1];
        b.add_edge(hgm, cln_1);
        b.add_edge(hgm, cln);
        (b.build(), michael, vec![cln_1, cln])
    }

    fn run(
        g: &Graph,
        units: usize,
        semantics: Semantics,
    ) -> (ReductionOutcome<'_>, ResolvedPattern) {
        let idx = NeighborIndex::build(g);
        let q = fig1_pattern().resolve(g).unwrap();
        let budget = ResourceBudget::from_units(g, units);
        let out = search_reduced_graph(g, &idx, &q, &budget, semantics);
        (out, q)
    }

    #[test]
    fn example2_finds_ideal_gq_within_16_units() {
        let (g, michael, answers) = example_graph(10, 20);
        let (out, _q) = run(&g, 16, Semantics::Simulation);
        // G_Q must fit the budget.
        assert!(out.gq.size() <= 16, "|G_Q| = {}", out.gq.size());
        assert!(out.gq.contains(michael));
        // The ideal G_Q contains both answers.
        for a in answers {
            assert!(out.gq.contains(a), "missing answer node {a:?}");
        }
    }

    #[test]
    fn budget_is_respected_exactly() {
        let (g, _, _) = example_graph(30, 50);
        for units in [1usize, 2, 4, 8, 12, 20, 40] {
            let (out, _) = run(&g, units, Semantics::Simulation);
            assert!(
                out.gq.size() <= units,
                "budget {units} violated: {}",
                out.gq.size()
            );
        }
    }

    #[test]
    fn zero_budget_returns_empty() {
        let (g, _, _) = example_graph(5, 6);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let budget = ResourceBudget::from_units(&g, 0);
        let out = search_reduced_graph(&g, &idx, &q, &budget, Semantics::Simulation);
        assert_eq!(out.gq.num_nodes(), 0);
        assert!(out.hit_budget);
    }

    #[test]
    fn guard_filters_decoys_out_of_gq() {
        let (g, _, _) = example_graph(10, 20);
        let (out, q) = run(&g, 60, Semantics::Simulation);
        // cc2 (CC without a Michael parent) must never enter G_Q: its guard
        // fails. cc2's id: Michael=0, HGs=1..=10, cc1=11, cc2=12, cc3=13.
        let cc2 = NodeId(12);
        assert!(!out.gq.contains(cc2));
        let _ = q;
    }

    #[test]
    fn large_budget_reaches_fixpoint_without_hitting_it() {
        let (g, _, _) = example_graph(5, 8);
        let (out, _) = run(&g, 1000, Semantics::Simulation);
        assert!(!out.hit_budget);
        // Guarded traversal stops well short of the graph: hg decoys and
        // cl decoys are excluded.
        assert!(out.gq.size() < g.size());
        assert!(out.rounds >= 1);
    }

    #[test]
    fn beam_restart_widens_b() {
        // Many valid CC-like candidates forces multiple rounds when the
        // budget allows more than 2 per query node.
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let hg = b.add_node("HG");
        b.add_edge(michael, hg);
        let mut cls = Vec::new();
        for _ in 0..6 {
            let cc = b.add_node("CC");
            let cl = b.add_node("CL");
            b.add_edge(michael, cc);
            b.add_edge(cc, cl);
            b.add_edge(hg, cl);
            cls.push(cl);
        }
        let g = b.build();
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let budget = ResourceBudget::from_units(&g, g.size());
        let out = search_reduced_graph(&g, &idx, &q, &budget, Semantics::Simulation);
        assert!(out.final_b > INITIAL_B, "b should have grown");
        // Eventually all 6 CC branches are explored.
        for cl in cls {
            assert!(out.gq.contains(cl));
        }
    }

    #[test]
    fn visit_cap_stops_search() {
        let (g, _, _) = example_graph(50, 80);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let budget = ResourceBudget::from_units(&g, 200).with_visit_cap(30);
        let out = search_reduced_graph(&g, &idx, &q, &budget, Semantics::Simulation);
        // The search must stop shortly after the cap trips; allow the
        // within-iteration overshoot of the expansion that tripped it.
        assert!(out.visits.total() <= 30 + g.max_degree() * 8);
    }

    #[test]
    fn isomorphism_semantics_also_bounded() {
        let (g, _, answers) = example_graph(10, 20);
        let (out, _) = run(&g, 16, Semantics::Isomorphism);
        assert!(out.gq.size() <= 16);
        for a in answers {
            assert!(out.gq.contains(a));
        }
    }

    #[test]
    fn gq_is_subgraph_of_dq_neighborhood() {
        let (g, michael, _) = example_graph(10, 20);
        let (out, q) = run(&g, 100, Semantics::Simulation);
        let ball = rbq_pattern::strongsim::ball_nodes(&g, michael, q.dq());
        for &v in out.gq.members() {
            assert!(ball.binary_search(&v).is_ok(), "{v:?} outside G_dQ(v_p)");
        }
    }

    #[test]
    fn visits_stay_within_degree_bound() {
        // Theorem 3(a): at most d_G · α|G| nodes and edges visited, where
        // d_G is the max degree of G_dQ(v_p). Our accounting also includes
        // the candidate-scoring scans, so allow a small constant factor.
        let (g, michael, _) = example_graph(20, 40);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let units = 30usize;
        let budget = ResourceBudget::from_units(&g, units);
        let out = search_reduced_graph(&g, &idx, &q, &budget, Semantics::Simulation);
        let ball = rbq_pattern::strongsim::ball_nodes(&g, michael, q.dq());
        let dg = ball.iter().map(|&v| g.deg(v)).max().unwrap_or(1);
        let bound = dg * units;
        assert!(
            out.visits.total() <= bound * 4,
            "visits {} vs d_G·α|G| = {bound}",
            out.visits.total()
        );
    }

    #[test]
    fn scratch_reuse_across_mixed_pattern_sizes_is_identical_to_fresh() {
        // Alternating pattern sizes through one scratch: the pair arrays
        // only zero-extend at the high-water mark (the index stride is
        // |V|, which is unchanged), and results must match fresh runs.
        let (g, _, _) = example_graph(8, 16);
        let idx = NeighborIndex::build(&g);
        let q4 = fig1_pattern().resolve(&g).unwrap();
        let mut pb = rbq_pattern::PatternBuilder::new();
        let m = pb.add_node("Michael");
        let cc = pb.add_node("CC");
        pb.add_edge(m, cc).personalized(m).output(cc);
        let q2 = pb.build().resolve(&g).unwrap();
        let mut scratch = ReductionScratch::new();
        let budget = ResourceBudget::from_units(&g, 20);
        for _ in 0..3 {
            for q in [&q2, &q4] {
                let fresh = search_reduced_graph(&g, &idx, q, &budget, Semantics::Simulation);
                let warm = search_reduced_graph_scratch(
                    &g,
                    &idx,
                    q,
                    &budget,
                    Semantics::Simulation,
                    ReductionConfig::default(),
                    &mut scratch,
                );
                assert_eq!(warm.gq.members(), fresh.gq.members());
                assert_eq!(warm.visits, fresh.visits);
                assert_eq!(warm.final_b, fresh.final_b);
                scratch.recycle(warm.gq);
            }
        }
    }

    #[test]
    fn scratch_reuse_is_identical_to_fresh_runs() {
        let (g, _, _) = example_graph(12, 24);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let mut scratch = ReductionScratch::new();
        for units in [1usize, 3, 8, 16, 40, 200, 8, 3] {
            let budget = ResourceBudget::from_units(&g, units);
            for policy in [PickPolicy::Weighted, PickPolicy::Fifo, PickPolicy::Random] {
                let config = ReductionConfig {
                    pick_policy: policy,
                    ..Default::default()
                };
                let fresh =
                    search_reduced_graph_with(&g, &idx, &q, &budget, Semantics::Simulation, config);
                let warm = search_reduced_graph_scratch(
                    &g,
                    &idx,
                    &q,
                    &budget,
                    Semantics::Simulation,
                    config,
                    &mut scratch,
                );
                assert_eq!(warm.gq.members(), fresh.gq.members(), "{units} {policy:?}");
                assert_eq!(warm.gq.size(), fresh.gq.size());
                assert_eq!(warm.visits, fresh.visits);
                assert_eq!(warm.hit_budget, fresh.hit_budget);
                assert_eq!(warm.final_b, fresh.final_b);
                assert_eq!(warm.rounds, fresh.rounds);
                scratch.recycle(warm.gq);
            }
        }
    }
}
